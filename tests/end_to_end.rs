//! End-to-end integration tests over the full simulation stack:
//! deterministic topologies with exactly predictable outcomes, scheme
//! invariants, determinism, and failure injection.

use manet_broadcast::{
    AreaThreshold, CounterThreshold, NeighborInfo, PlacementSpec, SchemeSpec, SimConfig,
    SimDuration, SimReport, World,
};

/// A static chain of hosts 450 m apart: every host reaches exactly its
/// chain neighbors; interference cannot reach the propagation frontier.
fn line_config(scheme: SchemeSpec, hosts: u32, broadcasts: u32) -> SimConfig {
    SimConfig::builder(11, scheme)
        .hosts(hosts)
        .broadcasts(broadcasts)
        .placement(PlacementSpec::Line { spacing_m: 450 })
        .max_speed_kmh(0.0)
        .neighbor_info(NeighborInfo::Oracle)
        .max_interarrival(SimDuration::from_secs(4))
        .seed(99)
        .build()
}

#[test]
fn flooding_on_a_static_line_reaches_everyone() {
    let report = World::new(line_config(SchemeSpec::Flooding, 12, 4)).run();
    assert_eq!(
        report.reachability, 1.0,
        "line propagation must be lossless"
    );
    assert_eq!(
        report.saved_rebroadcasts, 0.0,
        "flooding never saves a rebroadcast"
    );
    for outcome in &report.per_broadcast {
        assert_eq!(outcome.received, 11, "all 11 non-source hosts receive");
        assert_eq!(outcome.rebroadcast, 11, "and all of them rebroadcast");
    }
}

#[test]
fn counter_scheme_cannot_suppress_on_a_line() {
    // Each host hears the packet from its upstream neighbor only (the
    // downstream duplicate arrives after it has already transmitted), so
    // the counter never reaches 2 in time: identical to flooding.
    let report = World::new(line_config(SchemeSpec::Counter(2), 12, 4)).run();
    assert_eq!(report.reachability, 1.0);
    assert_eq!(report.saved_rebroadcasts, 0.0);
}

#[test]
fn neighbor_coverage_suppresses_exactly_the_line_endpoint() {
    // With oracle two-hop knowledge, the far endpoint of the chain is the
    // only host whose rebroadcast covers nobody new.
    let report = World::new(line_config(SchemeSpec::NeighborCoverage, 12, 4)).run();
    assert_eq!(report.reachability, 1.0);
    for outcome in &report.per_broadcast {
        // The source sits somewhere on the chain; the packet spreads in
        // both directions, and each chain end is suppressed. A source at
        // an end suppresses one host; an interior source suppresses two.
        let suppressed = outcome.received - outcome.rebroadcast;
        assert!(
            (1..=2).contains(&suppressed),
            "endpoints suppressed, got {suppressed}"
        );
    }
}

#[test]
fn location_scheme_on_a_line_behaves_like_flooding_with_tiny_threshold() {
    // At A = 0.0134 a 450 m-distant sender leaves far more uncovered area
    // than the threshold; nothing is suppressed on a chain.
    let report = World::new(line_config(SchemeSpec::Location(0.0134), 12, 4)).run();
    assert_eq!(report.reachability, 1.0);
    assert_eq!(report.saved_rebroadcasts, 0.0);
}

#[test]
fn dense_clique_suppresses_almost_everything() {
    // 30 hosts in one radio radius: the source's transmission reaches
    // everyone directly, so with C = 2 nearly all rebroadcasts cancel.
    let config = SimConfig::builder(1, SchemeSpec::Counter(2))
        .hosts(30)
        .broadcasts(10)
        .placement(PlacementSpec::Grid)
        .max_speed_kmh(0.0)
        .neighbor_info(NeighborInfo::Oracle)
        .seed(7)
        .build();
    let report = World::new(config).run();
    assert!(report.reachability > 0.95, "RE = {}", report.reachability);
    // With the 15 us CCA latency, same-slot rebroadcasts collide and are
    // not heard as duplicates, so suppression is a little below the
    // instant-sensing ideal.
    assert!(
        report.saved_rebroadcasts > 0.7,
        "clique SRB = {}",
        report.saved_rebroadcasts
    );
}

#[test]
fn same_seed_is_bit_identical_and_different_seeds_differ() {
    let config = |seed: u64| {
        SimConfig::builder(
            5,
            SchemeSpec::AdaptiveCounter(CounterThreshold::paper_recommended()),
        )
        .hosts(40)
        .broadcasts(20)
        .seed(seed)
        .build()
    };
    let a: SimReport = World::new(config(1)).run();
    let b: SimReport = World::new(config(1)).run();
    assert_eq!(a.reachability, b.reachability);
    assert_eq!(a.saved_rebroadcasts, b.saved_rebroadcasts);
    assert_eq!(a.avg_latency_s, b.avg_latency_s);
    assert_eq!(a.data_frames, b.data_frames);
    assert_eq!(a.hello_packets, b.hello_packets);
    assert_eq!(a.collisions, b.collisions);

    let c: SimReport = World::new(config(2)).run();
    assert!(
        a.data_frames != c.data_frames || a.avg_latency_s != c.avg_latency_s,
        "different seeds should alter the run"
    );
}

#[test]
fn injected_loss_degrades_reachability_monotonically() {
    let run = |p: f64| {
        let mut config = SimConfig::builder(5, SchemeSpec::Counter(4))
            .hosts(50)
            .broadcasts(30)
            .seed(3)
            .build();
        config.drop_probability = p;
        World::new(config).run().reachability
    };
    let clean = run(0.0);
    let light = run(0.2);
    let heavy = run(0.6);
    assert!(clean > light, "loss must hurt: {clean} vs {light}");
    assert!(
        light > heavy,
        "more loss must hurt more: {light} vs {heavy}"
    );
    assert!(heavy > 0.0, "some packets still get through");
}

#[test]
fn adaptive_counter_beats_fixed_c2_on_sparse_maps() {
    // The paper's headline claim (Fig. 7): on sparse maps AC keeps
    // reachability high where C = 2 degrades sharply.
    let run = |scheme: SchemeSpec| {
        let config = SimConfig::builder(9, scheme)
            .broadcasts(60)
            .seed(17)
            .build();
        World::new(config).run()
    };
    let fixed = run(SchemeSpec::Counter(2));
    let adaptive = run(SchemeSpec::AdaptiveCounter(
        CounterThreshold::paper_recommended(),
    ));
    assert!(
        adaptive.reachability > fixed.reachability + 0.05,
        "AC {} should clearly beat C=2 {} on a 9x9 map",
        adaptive.reachability,
        fixed.reachability
    );
    assert!(adaptive.reachability > 0.9);
}

#[test]
fn adaptive_location_beats_fixed_high_threshold_on_sparse_maps() {
    let run = |scheme: SchemeSpec| {
        let config = SimConfig::builder(9, scheme)
            .broadcasts(60)
            .seed(23)
            .build();
        World::new(config).run()
    };
    let fixed = run(SchemeSpec::Location(0.1871));
    let adaptive = run(SchemeSpec::AdaptiveLocation(
        AreaThreshold::paper_recommended(),
    ));
    assert!(
        adaptive.reachability >= fixed.reachability,
        "AL {} must not lose to A=0.1871 {} on a sparse map",
        adaptive.reachability,
        fixed.reachability
    );
    assert!(adaptive.reachability > 0.9);
}

#[test]
fn flooding_suffers_on_dense_maps_relative_to_suppression() {
    // The broadcast storm: on the 1x1 map flooding's latency and
    // collision count dwarf a suppression scheme's.
    let run = |scheme: SchemeSpec| {
        let config = SimConfig::builder(1, scheme)
            .broadcasts(60)
            .seed(31)
            .build();
        World::new(config).run()
    };
    let flood = run(SchemeSpec::Flooding);
    let counter = run(SchemeSpec::Counter(2));
    assert!(
        flood.collisions > counter.collisions * 3,
        "storm collisions: flooding {} vs C=2 {}",
        flood.collisions,
        counter.collisions
    );
    assert!(
        flood.avg_latency_s > counter.avg_latency_s * 3.0,
        "storm latency: flooding {} vs C=2 {}",
        flood.avg_latency_s,
        counter.avg_latency_s
    );
}

#[test]
fn oracle_and_hello_neighbor_info_both_work_for_nc() {
    let run = |info: NeighborInfo| {
        let config = SimConfig::builder(3, SchemeSpec::NeighborCoverage)
            .hosts(50)
            .broadcasts(30)
            .neighbor_info(info)
            .seed(13)
            .build();
        World::new(config).run()
    };
    let oracle = run(NeighborInfo::Oracle);
    let hello = run(NeighborInfo::Hello(
        manet_broadcast::HelloIntervalPolicy::fixed_1s(),
    ));
    assert!(
        oracle.reachability > 0.9,
        "oracle RE {}",
        oracle.reachability
    );
    assert!(hello.reachability > 0.85, "hello RE {}", hello.reachability);
    assert_eq!(oracle.hello_packets, 0, "oracle mode sends no hellos");
    assert!(hello.hello_packets > 0, "hello mode beacons");
}

#[test]
fn report_metrics_are_well_formed() {
    let config = SimConfig::builder(7, SchemeSpec::NeighborCoverage)
        .broadcasts(25)
        .seed(5)
        .build();
    let report = World::new(config).run();
    assert_eq!(report.broadcasts, 25);
    assert_eq!(report.per_broadcast.len(), 25);
    assert!((0.0..=1.05).contains(&report.reachability));
    assert!((0.0..=1.0).contains(&report.saved_rebroadcasts));
    assert!(report.avg_latency_s >= 0.0);
    assert!(report.data_frames >= 25, "at least one frame per broadcast");
    assert_eq!(report.map, "7x7");
    for outcome in &report.per_broadcast {
        if let Some(re) = outcome.reachability {
            assert!(re >= 0.0);
        }
        if let Some(srb) = outcome.saved_rebroadcasts {
            assert!((0.0..=1.0).contains(&srb));
        }
        assert!(outcome.rebroadcast <= outcome.received.max(1));
    }
}
