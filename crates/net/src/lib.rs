//! # manet-net
//!
//! The neighborhood layer of the MANET broadcast-storm reproduction:
//! HELLO beacons, per-host [`NeighborTable`]s with two-hop knowledge and
//! sender-interval expiry, the 10-second [`VariationTracker`], and the
//! paper's dynamic-hello-interval rule ([`DynamicHelloParams`]).
//!
//! All adaptive schemes of the paper consume this layer:
//!
//! * The **adaptive counter** and **adaptive location** schemes only need
//!   the live neighbor count `n` = [`NeighborTable::neighbor_count`].
//! * The **neighbor-coverage** scheme additionally needs two-hop sets
//!   `N_{x,h}` = [`NeighborTable::neighbors_of`], which HELLOs carry when
//!   [`HelloPayload::neighbors`] is populated.
//! * The **dynamic hello interval** couples the beacon rate to
//!   neighborhood churn via [`HelloIntervalPolicy::Dynamic`].
//!
//! # Examples
//!
//! ```
//! use manet_net::{DynamicHelloParams, HelloIntervalPolicy, NeighborTable, VariationTracker};
//! use manet_phy::NodeId;
//! use manet_sim_engine::{SimDuration, SimTime};
//!
//! let mut table = NeighborTable::new();
//! let mut tracker = VariationTracker::new();
//! let now = SimTime::from_secs(1);
//!
//! // A HELLO arrives from host 3, announcing a 1 s interval and its own
//! // neighbors {4, 5}.
//! let neighbors = [NodeId::new(4), NodeId::new(5)];
//! if let Some(change) = table.record_hello(
//!     NodeId::new(3), now, SimDuration::from_secs(1), &neighbors,
//! ) {
//!     let _ = change;
//!     tracker.record_change(now);
//! }
//!
//! // The dynamic policy shortens the hello interval under churn.
//! let policy = HelloIntervalPolicy::Dynamic(DynamicHelloParams::paper());
//! let hi = policy.current_interval(&mut tracker, table.neighbor_count(), now);
//! assert!(hi >= SimDuration::from_secs(1));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod hello;
mod neighbor_table;
mod variation;

pub use hello::{
    DynamicHelloParams, HelloIntervalPolicy, HelloPayload, HELLO_BASE_BYTES,
    HELLO_BYTES_PER_NEIGHBOR,
};
pub use neighbor_table::{MembershipChange, NeighborTable};
pub use variation::{VariationTracker, VARIATION_WINDOW};
