//! HELLO beacons and the dynamic hello interval (paper §4.3).
//!
//! Every host periodically broadcasts a small HELLO packet announcing its
//! existence. Depending on the broadcast scheme in use, the HELLO may also
//! carry the sender's one-hop neighbor list (needed by the
//! neighbor-coverage scheme) and always carries the sender's **current
//! hello interval** so receivers can time out its entry correctly.
//!
//! The dynamic-hello-interval controller implements the paper's rule:
//!
//! ```text
//! hi_x = max(hi_min, (nv_max − nv_x) / nv_max · hi_max)
//! ```
//!
//! with `nv_x` clamped into `[0, nv_max]`, so a perfectly stable
//! neighborhood beacons every `hi_max` and a maximally churning one every
//! `hi_min`.

use manet_phy::NodeId;
use manet_sim_engine::{SimDuration, SimTime};

use crate::variation::VariationTracker;

/// Fixed overhead of a HELLO packet in bytes: MAC/IP-style headers plus
/// the sender id and its announced interval. The paper gives no HELLO
/// size; 28 bytes keeps HELLOs an order of magnitude cheaper than the
/// 280-byte broadcast payload, matching their "cheap beacon" role.
pub const HELLO_BASE_BYTES: usize = 28;

/// Additional bytes per neighbor id carried in a HELLO (for two-hop
/// knowledge).
pub const HELLO_BYTES_PER_NEIGHBOR: usize = 4;

/// The content of one HELLO packet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HelloPayload {
    /// The announcing host.
    pub sender: NodeId,
    /// The sender's hello interval; receivers expire the sender's entry
    /// two of these after the last HELLO.
    pub interval: SimDuration,
    /// The sender's one-hop neighbor set, when the scheme requires two-hop
    /// knowledge; empty otherwise.
    pub neighbors: Vec<NodeId>,
}

impl HelloPayload {
    /// Full serialized size in bytes, including the neighbor list.
    pub fn size_bytes(&self) -> usize {
        HELLO_BASE_BYTES + self.neighbors.len() * HELLO_BYTES_PER_NEIGHBOR
    }

    /// Size the beacon occupies **on the air** in the simulation.
    ///
    /// The paper does not model beacon size at all; a naive encoding
    /// would make a dense host's beacon (a hundred neighbor ids) several
    /// times longer than a data packet, and the resulting beacon
    /// collisions trigger spurious neighbor expiry — a churn feedback
    /// loop the paper's results clearly do not contain. Beacons are
    /// therefore modeled at the fixed base size (neighbor sets ride in a
    /// compact incremental encoding), keeping the *information* of
    /// two-hop HELLOs without the artifactual airtime blow-up.
    pub fn air_bytes(&self) -> usize {
        HELLO_BASE_BYTES
    }
}

/// How a host chooses its hello interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum HelloIntervalPolicy {
    /// A constant interval (the paper's Fig. 11 sweeps 1 000–30 000 ms).
    Fixed(SimDuration),
    /// The paper's dynamic rule driven by neighborhood variation.
    Dynamic(DynamicHelloParams),
}

/// Parameters of the dynamic hello interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DynamicHelloParams {
    /// Variation at (or above) which the shortest interval is used.
    pub nv_max: f64,
    /// Shortest allowed interval.
    pub hi_min: SimDuration,
    /// Longest allowed interval.
    pub hi_max: SimDuration,
}

impl DynamicHelloParams {
    /// The values used in the paper's §4.3 simulations:
    /// `nv_max = 0.02`, `hi_min = 1 000 ms`, `hi_max = 10 000 ms`.
    pub fn paper() -> Self {
        DynamicHelloParams {
            nv_max: 0.02,
            hi_min: SimDuration::from_millis(1_000),
            hi_max: SimDuration::from_millis(10_000),
        }
    }

    /// The interval for a given neighborhood variation `nv`.
    pub fn interval_for(&self, nv: f64) -> SimDuration {
        let nv = nv.clamp(0.0, self.nv_max);
        let scaled = (self.nv_max - nv) / self.nv_max * self.hi_max.as_secs_f64();
        self.hi_min.max(SimDuration::from_secs_f64(scaled))
    }
}

impl HelloIntervalPolicy {
    /// The paper's default fixed beacon period of 1 s (used by the
    /// adaptive counter/location schemes, which only need `n`).
    pub fn fixed_1s() -> Self {
        HelloIntervalPolicy::Fixed(SimDuration::from_secs(1))
    }

    /// Evaluates the interval a host should use right now.
    ///
    /// For the dynamic policy this consults the host's variation tracker
    /// and live neighbor count.
    pub fn current_interval(
        &self,
        tracker: &mut VariationTracker,
        neighbor_count: usize,
        now: SimTime,
    ) -> SimDuration {
        match self {
            HelloIntervalPolicy::Fixed(interval) => *interval,
            HelloIntervalPolicy::Dynamic(params) => {
                params.interval_for(tracker.variation(now, neighbor_count))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_size_grows_with_neighbors() {
        let empty = HelloPayload {
            sender: NodeId::new(0),
            interval: SimDuration::from_secs(1),
            neighbors: vec![],
        };
        assert_eq!(empty.size_bytes(), HELLO_BASE_BYTES);
        let with = HelloPayload {
            neighbors: (0..10).map(NodeId::new).collect(),
            ..empty
        };
        assert_eq!(
            with.size_bytes(),
            HELLO_BASE_BYTES + 10 * HELLO_BYTES_PER_NEIGHBOR
        );
    }

    #[test]
    fn dynamic_interval_hits_both_extremes() {
        let p = DynamicHelloParams::paper();
        // No churn: the longest interval.
        assert_eq!(p.interval_for(0.0), SimDuration::from_millis(10_000));
        // At or above nv_max: the shortest.
        assert_eq!(p.interval_for(0.02), SimDuration::from_millis(1_000));
        assert_eq!(p.interval_for(0.5), SimDuration::from_millis(1_000));
    }

    #[test]
    fn dynamic_interval_is_linear_in_between() {
        let p = DynamicHelloParams::paper();
        // nv = nv_max / 2 -> hi = hi_max / 2 = 5 s.
        assert_eq!(p.interval_for(0.01), SimDuration::from_millis(5_000));
        // nv = nv_max / 4 -> 7.5 s.
        assert_eq!(p.interval_for(0.005), SimDuration::from_millis(7_500));
    }

    #[test]
    fn dynamic_interval_respects_floor() {
        let p = DynamicHelloParams {
            nv_max: 0.02,
            hi_min: SimDuration::from_millis(4_000),
            hi_max: SimDuration::from_millis(10_000),
        };
        // Linear value would be 1 s; floor lifts it to 4 s.
        assert_eq!(p.interval_for(0.019), SimDuration::from_millis(4_000));
    }

    #[test]
    fn policy_dispatch() {
        let mut tracker = VariationTracker::new();
        let now = SimTime::from_secs(30);
        let fixed = HelloIntervalPolicy::fixed_1s();
        assert_eq!(
            fixed.current_interval(&mut tracker, 5, now),
            SimDuration::from_secs(1)
        );
        let dynamic = HelloIntervalPolicy::Dynamic(DynamicHelloParams::paper());
        assert_eq!(
            dynamic.current_interval(&mut tracker, 5, now),
            SimDuration::from_millis(10_000),
            "quiet neighborhood -> hi_max"
        );
        // Heavy churn: 2 changes with 1 neighbor in 10 s -> nv = 0.2 >> nv_max.
        tracker.record_change(now);
        tracker.record_change(now);
        assert_eq!(
            dynamic.current_interval(&mut tracker, 1, now),
            SimDuration::from_millis(1_000)
        );
    }
}
