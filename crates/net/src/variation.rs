//! Neighborhood-variation tracking (paper §4.3).
//!
//! The paper defines a host `x`'s neighborhood variation as
//!
//! ```text
//! nv_x = (number of hosts joining or leaving N_x in the past 10 s)
//!        / (|N_x| * 10)
//! ```
//!
//! — a per-neighbor, per-second churn rate. [`VariationTracker`] keeps the
//! 10-second sliding window of membership-change timestamps and evaluates
//! `nv_x` on demand.

use std::collections::VecDeque;

use manet_sim_engine::{SimDuration, SimTime, WireDecoder, WireEncoder, WireError};

/// Length of the paper's churn window: 10 seconds.
pub const VARIATION_WINDOW: SimDuration = SimDuration::from_secs(10);

/// Sliding-window estimator of neighborhood variation.
///
/// # Examples
///
/// ```
/// use manet_net::VariationTracker;
/// use manet_sim_engine::SimTime;
///
/// let mut tracker = VariationTracker::new();
/// tracker.record_change(SimTime::from_secs(1));
/// tracker.record_change(SimTime::from_secs(2));
/// // Two changes in the window, 4 current neighbors:
/// let nv = tracker.variation(SimTime::from_secs(5), 4);
/// assert!((nv - 2.0 / 40.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Default)]
pub struct VariationTracker {
    events: VecDeque<SimTime>,
}

impl VariationTracker {
    /// Creates a tracker with an empty window.
    pub fn new() -> Self {
        VariationTracker::default()
    }

    /// Records one membership change (a join or a leave) at `now`.
    ///
    /// Trims aged-out events first, so the queue stays bounded by the
    /// change rate times the window even on a host that records churn for
    /// hours without ever being asked for [`variation`](Self::variation).
    pub fn record_change(&mut self, now: SimTime) {
        self.trim(now);
        self.events.push_back(now);
    }

    /// Drops events older than the window.
    fn trim(&mut self, now: SimTime) {
        while let Some(&front) = self.events.front() {
            if now.saturating_duration_since(front) > VARIATION_WINDOW {
                self.events.pop_front();
            } else {
                break;
            }
        }
    }

    /// Number of membership changes within the past 10 seconds.
    pub fn changes_in_window(&mut self, now: SimTime) -> usize {
        self.trim(now);
        self.events.len()
    }

    /// The paper's `nv_x` given the current neighbor count.
    ///
    /// With zero neighbors the paper's denominator vanishes; a lone,
    /// churning host plainly has an unstable neighborhood, so the count is
    /// clamped to 1 (an empty *and quiet* neighborhood still yields 0).
    pub fn variation(&mut self, now: SimTime, neighbor_count: usize) -> f64 {
        let changes = self.changes_in_window(now);
        changes as f64 / (neighbor_count.max(1) as f64 * VARIATION_WINDOW.as_secs_f64())
    }

    /// Serializes the event window for a world snapshot.
    pub fn snapshot_into(&self, enc: &mut WireEncoder) {
        enc.len(self.events.len());
        for &event in &self.events {
            enc.u64(event.as_nanos());
        }
    }

    /// Rebuilds a tracker from [`snapshot_into`](Self::snapshot_into)
    /// output.
    pub fn restore_snapshot(dec: &mut WireDecoder<'_>) -> Result<VariationTracker, WireError> {
        let event_count = dec.len()?;
        let mut events = VecDeque::with_capacity(event_count);
        for _ in 0..event_count {
            events.push_back(SimTime::from_nanos(dec.u64()?));
        }
        Ok(VariationTracker { events })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quiet_neighborhood_has_zero_variation() {
        let mut t = VariationTracker::new();
        assert_eq!(t.variation(SimTime::from_secs(100), 5), 0.0);
        assert_eq!(t.variation(SimTime::from_secs(100), 0), 0.0);
    }

    #[test]
    fn matches_paper_formula() {
        let mut t = VariationTracker::new();
        for s in [1, 2, 3] {
            t.record_change(SimTime::from_secs(s));
        }
        // 3 changes, 6 neighbors: nv = 3 / 60.
        let nv = t.variation(SimTime::from_secs(5), 6);
        assert!((nv - 0.05).abs() < 1e-12);
    }

    #[test]
    fn events_age_out_after_ten_seconds() {
        let mut t = VariationTracker::new();
        t.record_change(SimTime::from_secs(1));
        t.record_change(SimTime::from_secs(8));
        assert_eq!(t.changes_in_window(SimTime::from_secs(10)), 2);
        // t = 11.5 s: the event at 1 s is out, the one at 8 s remains.
        assert_eq!(t.changes_in_window(SimTime::from_millis(11_500)), 1);
        assert_eq!(t.changes_in_window(SimTime::from_secs(19)), 0);
    }

    #[test]
    fn boundary_is_inclusive() {
        let mut t = VariationTracker::new();
        t.record_change(SimTime::from_secs(5));
        // Exactly 10 s later the event is still (just) inside the window.
        assert_eq!(t.changes_in_window(SimTime::from_secs(15)), 1);
        assert_eq!(t.changes_in_window(SimTime::from_nanos(15_000_000_001)), 0);
    }

    #[test]
    fn queue_stays_bounded_under_sustained_churn() {
        // One change every 100 ms for 20 simulated minutes, with no
        // variation() queries in between: the window holds at most
        // 10 s / 100 ms + 1 = 101 events at any point.
        let mut t = VariationTracker::new();
        let step = SimDuration::from_millis(100);
        let mut now = SimTime::ZERO;
        for _ in 0..12_000 {
            t.record_change(now);
            assert!(
                t.events.len() <= 101,
                "window grew to {} events",
                t.events.len()
            );
            now += step;
        }
        // And the window is still correct afterwards: `now` is one step
        // past the last record, so events in (now - 10 s, now] span
        // t = 1190.0 s ..= 1199.9 s — exactly 100 of them.
        assert_eq!(t.changes_in_window(now), 100);
    }

    #[test]
    fn zero_neighbors_clamps_denominator() {
        let mut t = VariationTracker::new();
        t.record_change(SimTime::from_secs(1));
        let nv = t.variation(SimTime::from_secs(2), 0);
        assert!((nv - 0.1).abs() < 1e-12, "1 change / (1 * 10 s)");
    }
}
