//! One- and two-hop neighbor tables built from HELLO packets.
//!
//! Paper §4.3: *"A host x enlists another host h as its one-hop neighbor
//! when a HELLO is received from h. If no HELLO has been received from h
//! for the past two hello intervals, host x deletes h as its one-hop
//! neighbor."* Because each host may use its own (possibly dynamic) hello
//! interval, the interval governing expiry is the one the **sender**
//! announced in its last HELLO.
//!
//! For the neighbor-coverage scheme, HELLOs carry the sender's own
//! neighbor list, giving the receiver (possibly stale) two-hop knowledge:
//! `N_{x,h}`, "the set of neighbors of h known by host x".

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

use manet_phy::NodeId;
use manet_sim_engine::{SimDuration, SimTime, WireDecoder, WireEncoder, WireError};

/// Multiplicative hasher for [`NodeId`] keys. Host ids are small dense
/// integers, so Fibonacci hashing spreads them across buckets at the cost
/// of one multiply — the table is touched on every decoded HELLO, where
/// SipHash is measurable. Every iteration consumer sorts its output, so
/// the bucket order this changes never reaches an observable result.
#[derive(Debug, Default)]
struct IdHasher(u64);

impl Hasher for IdHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("NodeId hashes via write_u32");
    }

    fn write_u32(&mut self, value: u32) {
        self.0 = u64::from(value).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
}

type IdMap<V> = HashMap<NodeId, V, BuildHasherDefault<IdHasher>>;

/// What a host knows about one of its neighbors.
#[derive(Debug, Clone)]
struct NeighborEntry {
    /// When the last HELLO from this neighbor arrived.
    last_heard: SimTime,
    /// The hello interval the neighbor announced; entry expires after two
    /// of these without a HELLO.
    interval: SimDuration,
    /// The neighbor's own one-hop set as of its last HELLO (`N_{x,h}`).
    /// Empty when HELLOs do not carry neighbor lists.
    neighbors: Vec<NodeId>,
}

/// Membership changes produced by [`NeighborTable::record_hello`] and
/// [`NeighborTable::expire`]; feed these to the variation tracker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MembershipChange {
    /// A host became a neighbor.
    Joined(NodeId),
    /// A host's entry timed out.
    Left(NodeId),
}

/// One host's view of its neighborhood.
///
/// # Examples
///
/// ```
/// use manet_net::NeighborTable;
/// use manet_phy::NodeId;
/// use manet_sim_engine::{SimDuration, SimTime};
///
/// let mut table = NeighborTable::new();
/// let h = NodeId::new(1);
/// let interval = SimDuration::from_secs(1);
/// table.record_hello(h, SimTime::ZERO, interval, &[]);
/// assert_eq!(table.neighbor_count(), 1);
///
/// // Two intervals pass without another HELLO: h expires.
/// let leaves = table.expire(SimTime::from_millis(2_001));
/// assert_eq!(table.neighbor_count(), 0);
/// assert_eq!(leaves.len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct NeighborTable {
    entries: IdMap<NeighborEntry>,
    /// Lower bound on the earliest entry deadline (`last_heard` plus two
    /// intervals). [`expire`](Self::expire) is a no-op until the clock
    /// passes it, which keeps the per-event expiry check O(1); refreshes
    /// only push deadlines later, so a stale bound merely costs one
    /// harmless rescan. `None` while the table is empty.
    min_deadline: Option<SimTime>,
    /// Lifetime join count (statistics; never reset).
    joins: u64,
    /// Lifetime expiry count (statistics; never reset).
    leaves: u64,
}

impl NeighborTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        NeighborTable::default()
    }

    /// Records a HELLO from `from` announcing its `interval` and one-hop
    /// `neighbors`. Returns `Some(Joined)` when `from` was not already a
    /// neighbor.
    pub fn record_hello(
        &mut self,
        from: NodeId,
        now: SimTime,
        interval: SimDuration,
        neighbors: &[NodeId],
    ) -> Option<MembershipChange> {
        let deadline = now + interval * 2;
        self.min_deadline = Some(self.min_deadline.map_or(deadline, |d| d.min(deadline)));
        match self.entries.entry(from) {
            std::collections::hash_map::Entry::Occupied(mut occupied) => {
                // Refresh in place, reusing the entry's neighbor buffer —
                // this runs once per decoded HELLO and must not allocate
                // in steady state.
                let entry = occupied.get_mut();
                entry.last_heard = now;
                entry.interval = interval;
                entry.neighbors.clear();
                entry.neighbors.extend_from_slice(neighbors);
                None
            }
            std::collections::hash_map::Entry::Vacant(vacant) => {
                vacant.insert(NeighborEntry {
                    last_heard: now,
                    interval,
                    // One allocation per newly-joined neighbor; steady-state
                    // HELLOs take the occupied arm above and reuse the buffer.
                    // simlint: allow(hot-path-alloc) — join-time only
                    neighbors: neighbors.to_vec(),
                });
                self.joins += 1;
                Some(MembershipChange::Joined(from))
            }
        }
    }

    /// Drops every neighbor whose last HELLO is more than two of its own
    /// hello intervals old, returning the leave events.
    ///
    /// An expired host is also purged from every surviving entry's two-hop
    /// list: first-hand silence supersedes a relay's stale claim that the
    /// departed host is still around. (A later HELLO re-listing the host
    /// reinstates it — the relay may legitimately still hear it.) Without
    /// this, a host that left the network lingers in `N_{x,h}` sets until
    /// each relay happens to re-beacon, and the neighbor-coverage scheme
    /// keeps "covering" a ghost.
    pub fn expire(&mut self, now: SimTime) -> Vec<MembershipChange> {
        let mut leaves = Vec::new();
        self.expire_into(now, &mut leaves);
        leaves
    }

    /// Allocation-free form of [`expire`](Self::expire): appends the
    /// leave events to `leaves` so steady-state callers can reuse one
    /// buffer across the whole run.
    pub fn expire_into(&mut self, now: SimTime, leaves: &mut Vec<MembershipChange>) {
        match self.min_deadline {
            // Nothing can have expired yet: every deadline is at or past
            // the cached bound.
            Some(bound) if now <= bound => return,
            None => return,
            Some(_) => {}
        }
        let first = leaves.len();
        let mut next_bound: Option<SimTime> = None;
        self.entries.retain(|&id, entry| {
            let deadline = entry.last_heard + entry.interval * 2;
            if now > deadline {
                leaves.push(MembershipChange::Left(id));
                false
            } else {
                next_bound = Some(next_bound.map_or(deadline, |d| d.min(deadline)));
                true
            }
        });
        self.min_deadline = next_bound;
        let leaves = &mut leaves[first..];
        leaves.sort_by_key(|change| match change {
            MembershipChange::Left(id) | MembershipChange::Joined(id) => *id,
        });
        if !leaves.is_empty() {
            // Expiry is rare relative to HELLO traffic, so a linear sweep
            // over the surviving two-hop lists is fine here.
            let departed = |id: &NodeId| {
                leaves
                    .binary_search_by_key(id, |change| match change {
                        MembershipChange::Left(id) | MembershipChange::Joined(id) => *id,
                    })
                    .is_ok()
            };
            for entry in self.entries.values_mut() {
                entry.neighbors.retain(|id| !departed(id));
            }
        }
        self.leaves += leaves.len() as u64;
    }

    /// Hosts that have ever joined this table (lifetime churn statistic).
    pub fn join_count(&self) -> u64 {
        self.joins
    }

    /// Entries that have ever expired from this table (lifetime churn
    /// statistic).
    pub fn leave_count(&self) -> u64 {
        self.leaves
    }

    /// Number of live neighbors — the `n` that parameterizes the adaptive
    /// thresholds `C(n)` and `A(n)`.
    pub fn neighbor_count(&self) -> usize {
        self.entries.len()
    }

    /// `true` when `id` is currently believed to be a neighbor.
    pub fn contains(&self, id: NodeId) -> bool {
        self.entries.contains_key(&id)
    }

    /// The current one-hop set `N_x`, sorted.
    pub fn neighbor_ids(&self) -> Vec<NodeId> {
        let mut ids = Vec::new();
        self.neighbor_ids_into(&mut ids);
        ids
    }

    /// Writes the current one-hop set `N_x`, sorted, into `out` (cleared
    /// first). Allocation-free once `out` has grown to the peak
    /// neighborhood size — the hot-path variant of
    /// [`neighbor_ids`](Self::neighbor_ids).
    pub fn neighbor_ids_into(&self, out: &mut Vec<NodeId>) {
        out.clear();
        out.extend(self.entries.keys().copied());
        out.sort_unstable();
    }

    /// The two-hop knowledge `N_{x,h}`: what `h` last claimed its
    /// neighborhood was. `None` when `h` is not a (live) neighbor.
    pub fn neighbors_of(&self, h: NodeId) -> Option<&[NodeId]> {
        self.entries.get(&h).map(|e| e.neighbors.as_slice())
    }

    /// Serializes the table for a world snapshot. Entries are written
    /// sorted by neighbor id so the encoding is byte-stable regardless of
    /// hash-map bucket order (which is never observable elsewhere either —
    /// every iteration consumer sorts).
    pub fn snapshot_into(&self, enc: &mut WireEncoder) {
        let mut ids: Vec<NodeId> = self.entries.keys().copied().collect();
        ids.sort_unstable();
        enc.len(ids.len());
        for id in ids {
            let entry = &self.entries[&id];
            enc.u32(id.index() as u32);
            enc.u64(entry.last_heard.as_nanos());
            enc.u64(entry.interval.as_nanos());
            enc.len(entry.neighbors.len());
            for &neighbor in &entry.neighbors {
                enc.u32(neighbor.index() as u32);
            }
        }
        match self.min_deadline {
            None => enc.bool(false),
            Some(deadline) => {
                enc.bool(true);
                enc.u64(deadline.as_nanos());
            }
        }
        enc.u64(self.joins);
        enc.u64(self.leaves);
    }

    /// Rebuilds a table from [`snapshot_into`](Self::snapshot_into)
    /// output.
    pub fn restore_snapshot(dec: &mut WireDecoder<'_>) -> Result<NeighborTable, WireError> {
        let entry_count = dec.len()?;
        let mut entries = IdMap::default();
        entries.reserve(entry_count);
        for _ in 0..entry_count {
            let id = NodeId::new(dec.u32()?);
            let last_heard = SimTime::from_nanos(dec.u64()?);
            let interval = SimDuration::from_nanos(dec.u64()?);
            let neighbor_count = dec.len()?;
            let mut neighbors = Vec::with_capacity(neighbor_count);
            for _ in 0..neighbor_count {
                neighbors.push(NodeId::new(dec.u32()?));
            }
            entries.insert(
                id,
                NeighborEntry {
                    last_heard,
                    interval,
                    neighbors,
                },
            );
        }
        let min_deadline = if dec.bool()? {
            Some(SimTime::from_nanos(dec.u64()?))
        } else {
            None
        };
        Ok(NeighborTable {
            entries,
            min_deadline,
            joins: dec.u64()?,
            leaves: dec.u64()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SEC: SimDuration = SimDuration::from_secs(1);

    fn id(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn records_joins_once() {
        let mut t = NeighborTable::new();
        assert_eq!(
            t.record_hello(id(1), SimTime::ZERO, SEC, &[]),
            Some(MembershipChange::Joined(id(1)))
        );
        assert_eq!(
            t.record_hello(id(1), SimTime::from_secs(1), SEC, &[]),
            None,
            "refresh is not a join"
        );
        assert!(t.contains(id(1)));
        assert_eq!(t.neighbor_count(), 1);
    }

    #[test]
    fn expiry_uses_two_sender_intervals() {
        let mut t = NeighborTable::new();
        t.record_hello(id(1), SimTime::ZERO, SEC, &[]);
        t.record_hello(id(2), SimTime::ZERO, SEC * 5, &[]);
        // At t = 2.5 s: host 1 (interval 1 s) is stale, host 2 (5 s) is not.
        let leaves = t.expire(SimTime::from_millis(2_500));
        assert_eq!(leaves, vec![MembershipChange::Left(id(1))]);
        assert!(!t.contains(id(1)));
        assert!(t.contains(id(2)));
        // Host 2 expires only after 10 s.
        assert!(t.expire(SimTime::from_secs(10)).is_empty());
        assert_eq!(
            t.expire(SimTime::from_millis(10_001)),
            vec![MembershipChange::Left(id(2))]
        );
    }

    #[test]
    fn expiry_boundary_is_exclusive() {
        // The deadline is last_heard + 2 * interval; an entry survives at
        // *exactly* the deadline and expires one nanosecond later.
        let mut t = NeighborTable::new();
        t.record_hello(id(1), SimTime::ZERO, SEC, &[]);
        assert!(
            t.expire(SimTime::from_secs(2)).is_empty(),
            "entry must survive at exactly the deadline"
        );
        assert!(t.contains(id(1)));
        assert_eq!(
            t.expire(SimTime::from_nanos(2_000_000_001)),
            vec![MembershipChange::Left(id(1))],
            "entry must expire just past the deadline"
        );
    }

    #[test]
    fn expiry_purges_departed_hosts_from_two_hop_lists() {
        // Relay 2 (slow 5 s interval) claims 1 and 9 as neighbors; host 1
        // is also a direct neighbor on a 1 s interval. When host 1's own
        // entry expires, it must vanish from the relay's two-hop list too
        // — with the same exclusive boundary as one-hop expiry.
        let mut t = NeighborTable::new();
        t.record_hello(id(1), SimTime::ZERO, SEC, &[]);
        t.record_hello(id(2), SimTime::ZERO, SEC * 5, &[id(1), id(9)]);
        assert!(t.expire(SimTime::from_secs(2)).is_empty());
        assert_eq!(
            t.neighbors_of(id(2)),
            Some(&[id(1), id(9)][..]),
            "two-hop claim intact at exactly host 1's deadline"
        );
        assert_eq!(
            t.expire(SimTime::from_nanos(2_000_000_001)),
            vec![MembershipChange::Left(id(1))]
        );
        assert_eq!(
            t.neighbors_of(id(2)),
            Some(&[id(9)][..]),
            "departed host purged from the surviving relay's list"
        );
        // A fresh HELLO re-listing host 1 reinstates the claim.
        t.record_hello(id(2), SimTime::from_secs(3), SEC * 5, &[id(1), id(9)]);
        assert_eq!(t.neighbors_of(id(2)), Some(&[id(1), id(9)][..]));
    }

    #[test]
    fn churn_counters_accumulate() {
        let mut t = NeighborTable::new();
        t.record_hello(id(1), SimTime::ZERO, SEC, &[]);
        t.record_hello(id(2), SimTime::ZERO, SEC, &[]);
        t.record_hello(id(1), SimTime::from_secs(1), SEC, &[]); // refresh, not a join
        assert_eq!(t.join_count(), 2);
        assert_eq!(t.leave_count(), 0);
        t.expire(SimTime::from_secs(10));
        assert_eq!(t.leave_count(), 2);
        // Rejoining counts again: these are lifetime churn totals.
        t.record_hello(id(1), SimTime::from_secs(10), SEC, &[]);
        assert_eq!(t.join_count(), 3);
    }

    #[test]
    fn refresh_postpones_expiry() {
        let mut t = NeighborTable::new();
        t.record_hello(id(1), SimTime::ZERO, SEC, &[]);
        t.record_hello(id(1), SimTime::from_millis(1_900), SEC, &[]);
        assert!(t.expire(SimTime::from_millis(3_800)).is_empty());
        assert_eq!(t.expire(SimTime::from_millis(3_901)).len(), 1);
    }

    #[test]
    fn two_hop_knowledge_tracks_latest_hello() {
        let mut t = NeighborTable::new();
        t.record_hello(id(1), SimTime::ZERO, SEC, &[id(5), id(6)]);
        assert_eq!(t.neighbors_of(id(1)), Some(&[id(5), id(6)][..]));
        t.record_hello(id(1), SimTime::from_secs(1), SEC, &[id(6)]);
        assert_eq!(t.neighbors_of(id(1)), Some(&[id(6)][..]));
        assert_eq!(t.neighbors_of(id(9)), None);
    }

    #[test]
    fn neighbor_ids_are_sorted() {
        let mut t = NeighborTable::new();
        for i in [5u32, 1, 3] {
            t.record_hello(id(i), SimTime::ZERO, SEC, &[]);
        }
        assert_eq!(t.neighbor_ids(), vec![id(1), id(3), id(5)]);
    }

    #[test]
    fn announced_interval_change_applies() {
        let mut t = NeighborTable::new();
        t.record_hello(id(1), SimTime::ZERO, SEC, &[]);
        // The neighbor slows its beacons to 5 s; expiry horizon follows.
        t.record_hello(id(1), SimTime::from_secs(1), SEC * 5, &[]);
        assert!(t.expire(SimTime::from_secs(10)).is_empty());
        assert_eq!(t.expire(SimTime::from_millis(11_001)).len(), 1);
    }
}
