//! Action-level record/replay: the `MTRC` binary trace format.
//!
//! While a world runs with recording enabled, every [`PureAction`]
//! dispatched into the pure models — and every scheme *decision* the
//! resulting effects carried — is appended to a [`TraceWriter`]. The
//! resulting byte stream is self-contained: it embeds the slice of the
//! [`SimConfig`] the pure models need (scheme, neighbor-info policy,
//! radio radius, coverage resolution, host count), so a trace can be
//! replayed through a fresh [`PureModels`] with **no event queue, no
//! radio medium and no RNG at all** (see [`replay_decisions`]) — ideal
//! for fuzzing scheme logic against recorded runs.
//!
//! # Wire format
//!
//! All fields use the fixed-width little-endian primitives of
//! [`WireEncoder`]. The file layout is:
//!
//! ```text
//! magic "MTRC" | version u32 (=1)
//! replay config:
//!     hosts u32 | radio_radius f64 | coverage_resolution u64
//!     scheme (tagged, below) | neighbor-info (tagged, below)
//! records until end of input, each:
//!     record tag u8: 0 = action, 1 = decision
//!     at u64 (nanoseconds)
//!     payload (tag-specific, below)
//! ```
//!
//! Action payloads (`record tag 0`) begin with an action tag `u8`:
//!
//! | tag | action            | fields |
//! |-----|-------------------|--------|
//! | 0   | `Originate`       | node `u32`, packet |
//! | 1   | `HelloPrepare`    | node `u32` |
//! | 2   | `HelloHeard`      | node `u32`, sender `u32`, interval `u64`, neighbor list |
//! | 3   | `PacketHeard`     | node `u32`, packet, sender `u32`, sender pos `2×f64`, own pos `2×f64`, random unit `f64`, oracle flag `u8` (+ count `u64`, two neighbor lists) |
//! | 4   | `AssessmentFired` | node `u32`, packet |
//! | 5   | `FrameSent`       | node `u32`, packet |
//! | 6   | `Deactivate`      | node `u32`, crash `u8` |
//!
//! A packet is `source u32, seq u32`; a neighbor list is a `u64` count
//! followed by that many `u32` ids. Decision payloads (`record tag 1`)
//! are `node u32, packet, kind u8 (0 scheduled / 1 inhibited / 2
//! cancelled), reason u8 (0 none / 1 counter / 2 coverage / 3
//! neighbor-coverage / 4 probabilistic)`.

use manet_geom::Vec2;
use manet_net::{DynamicHelloParams, HelloIntervalPolicy};
use manet_phy::NodeId;
use manet_sim_engine::{SimDuration, SimTime, WireDecoder, WireEncoder, WireError};

use crate::config::{NeighborInfo, SimConfig};
use crate::ids::PacketId;
use crate::pure::{Effect, OwnedAction, PureAction, PureModels};
use crate::schemes::SchemeSpec;
use crate::threshold::{AreaThreshold, AreaThresholdKind, CounterThreshold};
use crate::trace::{DecisionKind, SuppressReason};

/// Magic bytes opening a trace file.
pub const TRACE_MAGIC: &[u8; 4] = b"MTRC";
/// Current trace format version.
pub const TRACE_VERSION: u32 = 1;

/// One scheme decision as recorded (and as re-derived on replay).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecisionRecord {
    /// When the decision was made.
    pub at: SimTime,
    /// The deciding host.
    pub node: NodeId,
    /// The packet decided about.
    pub packet: PacketId,
    /// What was decided.
    pub kind: DecisionKind,
    /// The suppression criterion that fired, if any.
    pub reason: Option<SuppressReason>,
}

/// One decoded trace record.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceRecord {
    /// An action dispatched into the pure models.
    Action {
        /// Dispatch time.
        at: SimTime,
        /// The action.
        action: OwnedAction,
    },
    /// A scheme decision one of the action's effects carried.
    Decision(DecisionRecord),
}

/// Appends actions and decisions to an `MTRC` byte stream.
#[derive(Debug)]
pub struct TraceWriter {
    enc: WireEncoder,
}

impl TraceWriter {
    /// Starts a trace for a run of `cfg`, writing the header and the
    /// replay slice of the configuration.
    pub fn new(cfg: &SimConfig) -> Self {
        let mut enc = WireEncoder::with_magic(TRACE_MAGIC, TRACE_VERSION);
        encode_replay_config(&mut enc, cfg);
        TraceWriter { enc }
    }

    /// Records one dispatched action.
    pub fn action(&mut self, at: SimTime, action: &PureAction<'_>) {
        self.enc.u8(0);
        self.enc.u64(at.as_nanos());
        encode_action(&mut self.enc, action);
    }

    /// Records one scheme decision.
    pub fn decision(&mut self, record: DecisionRecord) {
        self.enc.u8(1);
        self.enc.u64(record.at.as_nanos());
        self.enc.u32(node_raw(record.node));
        encode_packet(&mut self.enc, record.packet);
        self.enc.u8(match record.kind {
            DecisionKind::Scheduled => 0,
            DecisionKind::InhibitedOnFirstHear => 1,
            DecisionKind::Cancelled => 2,
        });
        self.enc.u8(encode_reason(record.reason));
    }

    /// Finishes the trace, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.enc.into_bytes()
    }
}

/// A fully decoded trace: the replay configuration plus every record in
/// recording order.
#[derive(Debug)]
pub struct TraceFile {
    /// A configuration sufficient to rebuild the pure models (map size,
    /// workload and timing fields are placeholders — the pure models do
    /// not read them).
    pub config: SimConfig,
    /// All records, in recording order.
    pub records: Vec<TraceRecord>,
}

impl TraceFile {
    /// Decodes an `MTRC` byte stream.
    ///
    /// # Errors
    ///
    /// Returns the positioned [`WireError`] on malformed input.
    pub fn decode(bytes: &[u8]) -> Result<TraceFile, WireError> {
        let mut dec = WireDecoder::new(bytes);
        let version = dec.expect_magic(TRACE_MAGIC)?;
        if version != TRACE_VERSION {
            return Err(WireError {
                at: 4,
                what: "unsupported trace version",
            });
        }
        let config = decode_replay_config(&mut dec)?;
        let mut records = Vec::new();
        while !dec.is_empty() {
            let at = dec.position();
            let tag = dec.u8()?;
            let time = SimTime::from_nanos(dec.u64()?);
            match tag {
                0 => records.push(TraceRecord::Action {
                    at: time,
                    action: decode_action(&mut dec)?,
                }),
                1 => {
                    let node = node_from_raw(dec.u32()?);
                    let packet = decode_packet(&mut dec)?;
                    let kind = match dec.u8()? {
                        0 => DecisionKind::Scheduled,
                        1 => DecisionKind::InhibitedOnFirstHear,
                        2 => DecisionKind::Cancelled,
                        _ => {
                            return Err(WireError {
                                at,
                                what: "invalid decision kind",
                            })
                        }
                    };
                    let reason = decode_reason(dec.u8()?, at)?;
                    records.push(TraceRecord::Decision(DecisionRecord {
                        at: time,
                        node,
                        packet,
                        kind,
                        reason,
                    }));
                }
                _ => {
                    return Err(WireError {
                        at,
                        what: "invalid record tag",
                    })
                }
            }
        }
        dec.finish()?;
        Ok(TraceFile { config, records })
    }
}

/// Why a pure-model replay rejected a trace.
#[derive(Debug, Clone, PartialEq)]
pub enum ReplayError {
    /// The byte stream itself was malformed.
    Wire(WireError),
    /// Replay re-derived a different decision stream than the recording.
    Mismatch {
        /// Index of the offending record in [`TraceFile::records`].
        record: usize,
        /// Human-readable description of the divergence.
        detail: String,
    },
}

impl std::fmt::Display for ReplayError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplayError::Wire(e) => write!(f, "trace decode failed: {e}"),
            ReplayError::Mismatch { record, detail } => {
                write!(f, "replay diverged at record {record}: {detail}")
            }
        }
    }
}

impl std::error::Error for ReplayError {}

impl From<WireError> for ReplayError {
    fn from(e: WireError) -> Self {
        ReplayError::Wire(e)
    }
}

/// Totals from a successful pure-model replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReplaySummary {
    /// Actions stepped through the pure models.
    pub actions: u64,
    /// Decisions re-derived and matched against the recording.
    pub decisions: u64,
}

/// Replays a recorded trace through a fresh [`PureModels`] **alone** — no
/// event queue, no medium, no RNG — and checks that the pure transitions
/// re-derive exactly the decision stream that was recorded live.
///
/// # Errors
///
/// [`ReplayError::Wire`] on malformed input; [`ReplayError::Mismatch`]
/// when the re-derived decisions diverge from the recording (a scheme
/// logic bug, or a trace from different code).
pub fn replay_decisions(bytes: &[u8]) -> Result<ReplaySummary, ReplayError> {
    let file = TraceFile::decode(bytes)?;
    let mut pure = PureModels::new(&file.config);
    let mut fx = Vec::new();
    let mut expected: std::collections::VecDeque<DecisionRecord> =
        std::collections::VecDeque::new();
    let mut summary = ReplaySummary::default();
    for (index, record) in file.records.iter().enumerate() {
        match record {
            TraceRecord::Action { at, action } => {
                if let Some(stale) = expected.front() {
                    return Err(ReplayError::Mismatch {
                        record: index,
                        detail: format!("recording is missing re-derived decision {stale:?}"),
                    });
                }
                fx.clear();
                pure.step(*at, &action.as_action(), &mut fx);
                for effect in &fx {
                    if let Some((kind, reason)) = decision_of(effect) {
                        let (node, packet) = effect_target(effect);
                        expected.push_back(DecisionRecord {
                            at: *at,
                            node,
                            packet,
                            kind,
                            reason,
                        });
                    }
                }
                summary.actions += 1;
            }
            TraceRecord::Decision(recorded) => match expected.pop_front() {
                Some(derived) if derived == *recorded => summary.decisions += 1,
                Some(derived) => {
                    return Err(ReplayError::Mismatch {
                        record: index,
                        detail: format!("recorded {recorded:?} but re-derived {derived:?}"),
                    })
                }
                None => {
                    return Err(ReplayError::Mismatch {
                        record: index,
                        detail: format!("recorded {recorded:?} but replay derived no decision"),
                    })
                }
            },
        }
    }
    if let Some(stale) = expected.front() {
        return Err(ReplayError::Mismatch {
            record: file.records.len(),
            detail: format!("recording ended before re-derived decision {stale:?}"),
        });
    }
    Ok(summary)
}

/// The decision an effect carries, if it carries one.
fn decision_of(effect: &Effect) -> Option<(DecisionKind, Option<SuppressReason>)> {
    match effect {
        Effect::ScheduleAssessment { .. } => Some((DecisionKind::Scheduled, None)),
        Effect::InhibitFirstHear { reason, .. } => {
            Some((DecisionKind::InhibitedOnFirstHear, *reason))
        }
        Effect::CancelAssessment { reason, .. } | Effect::CancelQueued { reason, .. } => {
            Some((DecisionKind::Cancelled, *reason))
        }
        _ => None,
    }
}

/// The `(node, packet)` a decision-bearing effect refers to.
fn effect_target(effect: &Effect) -> (NodeId, PacketId) {
    match effect {
        Effect::ScheduleAssessment { node, packet }
        | Effect::InhibitFirstHear { node, packet, .. }
        | Effect::CancelAssessment { node, packet, .. }
        | Effect::CancelQueued { node, packet, .. } => (*node, *packet),
        other => unreachable!("effect {other:?} carries no decision"),
    }
}

fn node_raw(node: NodeId) -> u32 {
    node.index() as u32
}

fn node_from_raw(raw: u32) -> NodeId {
    NodeId::new(raw)
}

fn encode_packet(enc: &mut WireEncoder, packet: PacketId) {
    enc.u32(node_raw(packet.source));
    enc.u32(packet.seq);
}

fn decode_packet(dec: &mut WireDecoder<'_>) -> Result<PacketId, WireError> {
    let source = node_from_raw(dec.u32()?);
    let seq = dec.u32()?;
    Ok(PacketId::new(source, seq))
}

fn encode_nodes(enc: &mut WireEncoder, nodes: &[NodeId]) {
    enc.len(nodes.len());
    for &n in nodes {
        enc.u32(node_raw(n));
    }
}

fn decode_nodes(dec: &mut WireDecoder<'_>) -> Result<Vec<NodeId>, WireError> {
    let count = dec.len()?;
    let mut out = Vec::with_capacity(count.min(1 << 16));
    for _ in 0..count {
        out.push(node_from_raw(dec.u32()?));
    }
    Ok(out)
}

fn encode_reason(reason: Option<SuppressReason>) -> u8 {
    match reason {
        None => 0,
        Some(SuppressReason::CounterThreshold) => 1,
        Some(SuppressReason::CoverageThreshold) => 2,
        Some(SuppressReason::NeighborCoverage) => 3,
        Some(SuppressReason::Probabilistic) => 4,
    }
}

fn decode_reason(raw: u8, at: usize) -> Result<Option<SuppressReason>, WireError> {
    Ok(match raw {
        0 => None,
        1 => Some(SuppressReason::CounterThreshold),
        2 => Some(SuppressReason::CoverageThreshold),
        3 => Some(SuppressReason::NeighborCoverage),
        4 => Some(SuppressReason::Probabilistic),
        _ => {
            return Err(WireError {
                at,
                what: "invalid suppress reason",
            })
        }
    })
}

fn encode_action(enc: &mut WireEncoder, action: &PureAction<'_>) {
    match *action {
        PureAction::Originate { node, packet } => {
            enc.u8(0);
            enc.u32(node_raw(node));
            encode_packet(enc, packet);
        }
        PureAction::HelloPrepare { node } => {
            enc.u8(1);
            enc.u32(node_raw(node));
        }
        PureAction::HelloHeard {
            node,
            sender,
            interval,
            neighbors,
        } => {
            enc.u8(2);
            enc.u32(node_raw(node));
            enc.u32(node_raw(sender));
            enc.u64(interval.as_nanos());
            encode_nodes(enc, neighbors);
        }
        PureAction::PacketHeard {
            node,
            packet,
            sender,
            sender_position,
            own_position,
            random_unit,
            oracle,
        } => {
            enc.u8(3);
            enc.u32(node_raw(node));
            encode_packet(enc, packet);
            enc.u32(node_raw(sender));
            enc.f64(sender_position.x);
            enc.f64(sender_position.y);
            enc.f64(own_position.x);
            enc.f64(own_position.y);
            enc.f64(random_unit);
            match oracle {
                None => enc.bool(false),
                Some(view) => {
                    enc.bool(true);
                    enc.usize(view.neighbor_count);
                    encode_nodes(enc, view.neighbors);
                    encode_nodes(enc, view.sender_neighbors);
                }
            }
        }
        PureAction::AssessmentFired { node, packet } => {
            enc.u8(4);
            enc.u32(node_raw(node));
            encode_packet(enc, packet);
        }
        PureAction::FrameSent { node, packet } => {
            enc.u8(5);
            enc.u32(node_raw(node));
            encode_packet(enc, packet);
        }
        PureAction::Deactivate { node, crash } => {
            enc.u8(6);
            enc.u32(node_raw(node));
            enc.bool(crash);
        }
    }
}

fn decode_action(dec: &mut WireDecoder<'_>) -> Result<OwnedAction, WireError> {
    let at = dec.position();
    Ok(match dec.u8()? {
        0 => OwnedAction::Originate {
            node: node_from_raw(dec.u32()?),
            packet: decode_packet(dec)?,
        },
        1 => OwnedAction::HelloPrepare {
            node: node_from_raw(dec.u32()?),
        },
        2 => OwnedAction::HelloHeard {
            node: node_from_raw(dec.u32()?),
            sender: node_from_raw(dec.u32()?),
            interval: SimDuration::from_nanos(dec.u64()?),
            neighbors: decode_nodes(dec)?,
        },
        3 => {
            let node = node_from_raw(dec.u32()?);
            let packet = decode_packet(dec)?;
            let sender = node_from_raw(dec.u32()?);
            let sender_position = Vec2::new(dec.f64()?, dec.f64()?);
            let own_position = Vec2::new(dec.f64()?, dec.f64()?);
            let random_unit = dec.f64()?;
            let oracle = if dec.bool()? {
                let count = dec.usize()?;
                let neighbors = decode_nodes(dec)?;
                let sender_neighbors = decode_nodes(dec)?;
                Some((count, neighbors, sender_neighbors))
            } else {
                None
            };
            OwnedAction::PacketHeard {
                node,
                packet,
                sender,
                sender_position,
                own_position,
                random_unit,
                oracle,
            }
        }
        4 => OwnedAction::AssessmentFired {
            node: node_from_raw(dec.u32()?),
            packet: decode_packet(dec)?,
        },
        5 => OwnedAction::FrameSent {
            node: node_from_raw(dec.u32()?),
            packet: decode_packet(dec)?,
        },
        6 => OwnedAction::Deactivate {
            node: node_from_raw(dec.u32()?),
            crash: dec.bool()?,
        },
        _ => {
            return Err(WireError {
                at,
                what: "invalid action tag",
            })
        }
    })
}

/// Encodes the slice of the configuration [`PureModels::new`] reads.
pub(crate) fn encode_replay_config(enc: &mut WireEncoder, cfg: &SimConfig) {
    enc.u32(cfg.hosts);
    enc.f64(cfg.radio_radius);
    enc.usize(cfg.coverage_resolution);
    encode_scheme(enc, &cfg.scheme);
    match &cfg.neighbor_info {
        NeighborInfo::Hello(HelloIntervalPolicy::Fixed(d)) => {
            enc.u8(0);
            enc.u64(d.as_nanos());
        }
        NeighborInfo::Hello(HelloIntervalPolicy::Dynamic(p)) => {
            enc.u8(1);
            enc.f64(p.nv_max);
            enc.u64(p.hi_min.as_nanos());
            enc.u64(p.hi_max.as_nanos());
        }
        NeighborInfo::Oracle => enc.u8(2),
    }
}

/// Decodes [`encode_replay_config`] output back into a [`SimConfig`]
/// sufficient for the pure models (workload/timing fields take builder
/// defaults; the pure models never read them).
pub(crate) fn decode_replay_config(dec: &mut WireDecoder<'_>) -> Result<SimConfig, WireError> {
    let at = dec.position();
    let hosts = dec.u32()?;
    let radio_radius = dec.f64()?;
    let coverage_resolution = dec.usize()?;
    let scheme = decode_scheme(dec)?;
    let neighbor_info = match dec.u8()? {
        0 => NeighborInfo::Hello(HelloIntervalPolicy::Fixed(SimDuration::from_nanos(
            dec.u64()?,
        ))),
        1 => NeighborInfo::Hello(HelloIntervalPolicy::Dynamic(DynamicHelloParams {
            nv_max: dec.f64()?,
            hi_min: SimDuration::from_nanos(dec.u64()?),
            hi_max: SimDuration::from_nanos(dec.u64()?),
        })),
        2 => NeighborInfo::Oracle,
        _ => {
            return Err(WireError {
                at,
                what: "invalid neighbor-info tag",
            })
        }
    };
    if hosts == 0 || !(radio_radius.is_finite() && radio_radius > 0.0) || coverage_resolution < 2 {
        return Err(WireError {
            at,
            what: "invalid replay config",
        });
    }
    Ok(SimConfig::builder(1, scheme)
        .hosts(hosts)
        .radio_radius(radio_radius)
        .coverage_resolution(coverage_resolution)
        .neighbor_info(neighbor_info)
        .build())
}

fn encode_scheme(enc: &mut WireEncoder, scheme: &SchemeSpec) {
    match scheme {
        SchemeSpec::Flooding => enc.u8(0),
        SchemeSpec::Counter(c) => {
            enc.u8(1);
            enc.u32(*c);
        }
        SchemeSpec::AdaptiveCounter(t) => {
            enc.u8(2);
            enc.len(t.sequence().len());
            for &c in t.sequence() {
                enc.u32(c);
            }
            enc.str(t.label());
        }
        SchemeSpec::Distance(d) => {
            enc.u8(3);
            enc.f64(*d);
        }
        SchemeSpec::Location(a) => {
            enc.u8(4);
            enc.f64(*a);
        }
        SchemeSpec::AdaptiveLocation(t) => {
            enc.u8(5);
            match t.kind() {
                AreaThresholdKind::Fixed(a) => {
                    enc.u8(0);
                    enc.f64(a);
                }
                AreaThresholdKind::Adaptive { n1, n2, ceiling } => {
                    enc.u8(1);
                    enc.u32(n1);
                    enc.u32(n2);
                    enc.f64(ceiling);
                }
            }
            enc.str(t.label());
        }
        SchemeSpec::NeighborCoverage => enc.u8(6),
        SchemeSpec::Probabilistic(p) => {
            enc.u8(7);
            enc.f64(*p);
        }
    }
}

fn decode_scheme(dec: &mut WireDecoder<'_>) -> Result<SchemeSpec, WireError> {
    let at = dec.position();
    Ok(match dec.u8()? {
        0 => SchemeSpec::Flooding,
        1 => SchemeSpec::Counter(dec.u32()?),
        2 => {
            let count = dec.len()?;
            let mut sequence = Vec::with_capacity(count.min(1 << 16));
            for _ in 0..count {
                sequence.push(dec.u32()?);
            }
            let label = dec.str()?.to_string();
            if sequence.is_empty() || sequence.iter().any(|&c| c < 2) {
                return Err(WireError {
                    at,
                    what: "invalid counter threshold",
                });
            }
            SchemeSpec::AdaptiveCounter(CounterThreshold::from_sequence(sequence, label))
        }
        3 => SchemeSpec::Distance(dec.f64()?),
        4 => SchemeSpec::Location(dec.f64()?),
        5 => {
            let kind = match dec.u8()? {
                0 => AreaThresholdKind::Fixed(dec.f64()?),
                1 => AreaThresholdKind::Adaptive {
                    n1: dec.u32()?,
                    n2: dec.u32()?,
                    ceiling: dec.f64()?,
                },
                _ => {
                    return Err(WireError {
                        at,
                        what: "invalid area threshold kind",
                    })
                }
            };
            let label = dec.str()?.to_string();
            SchemeSpec::AdaptiveLocation(AreaThreshold::from_parts(kind, label))
        }
        6 => SchemeSpec::NeighborCoverage,
        7 => SchemeSpec::Probabilistic(dec.f64()?),
        _ => {
            return Err(WireError {
                at,
                what: "invalid scheme tag",
            })
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::threshold::{AreaThreshold, CounterThreshold};

    fn cfg(scheme: SchemeSpec) -> SimConfig {
        SimConfig::builder(1, scheme).hosts(8).broadcasts(1).build()
    }

    #[test]
    fn actions_round_trip_through_the_wire() {
        let config = cfg(SchemeSpec::NeighborCoverage);
        let mut writer = TraceWriter::new(&config);
        let neighbors = vec![NodeId::new(3), NodeId::new(5)];
        let sender_neighbors = vec![NodeId::new(1)];
        let actions: Vec<OwnedAction> = vec![
            OwnedAction::Originate {
                node: NodeId::new(0),
                packet: PacketId::new(NodeId::new(0), 0),
            },
            OwnedAction::HelloPrepare {
                node: NodeId::new(2),
            },
            OwnedAction::HelloHeard {
                node: NodeId::new(1),
                sender: NodeId::new(2),
                interval: SimDuration::from_secs(1),
                neighbors: neighbors.clone(),
            },
            OwnedAction::PacketHeard {
                node: NodeId::new(4),
                packet: PacketId::new(NodeId::new(0), 0),
                sender: NodeId::new(0),
                sender_position: Vec2::new(1.5, -2.0),
                own_position: Vec2::new(250.0, 300.25),
                random_unit: 0.625,
                oracle: Some((2, neighbors.clone(), sender_neighbors)),
            },
            OwnedAction::AssessmentFired {
                node: NodeId::new(4),
                packet: PacketId::new(NodeId::new(0), 0),
            },
            OwnedAction::FrameSent {
                node: NodeId::new(4),
                packet: PacketId::new(NodeId::new(0), 0),
            },
            OwnedAction::Deactivate {
                node: NodeId::new(5),
                crash: true,
            },
        ];
        for (i, action) in actions.iter().enumerate() {
            writer.action(SimTime::from_millis(i as u64), &action.as_action());
        }
        writer.decision(DecisionRecord {
            at: SimTime::from_millis(3),
            node: NodeId::new(4),
            packet: PacketId::new(NodeId::new(0), 0),
            kind: DecisionKind::Cancelled,
            reason: Some(SuppressReason::NeighborCoverage),
        });

        let bytes = writer.into_bytes();
        let file = TraceFile::decode(&bytes).expect("decode");
        assert_eq!(file.config.scheme.label(), config.scheme.label());
        assert_eq!(file.config.hosts, 8);
        assert_eq!(file.records.len(), actions.len() + 1);
        for (record, action) in file.records.iter().zip(&actions) {
            let TraceRecord::Action {
                action: decoded, ..
            } = record
            else {
                panic!("expected action record, got {record:?}");
            };
            assert_eq!(decoded, action);
        }
        let TraceRecord::Decision(d) = &file.records[actions.len()] else {
            panic!("expected decision record");
        };
        assert_eq!(d.kind, DecisionKind::Cancelled);
        assert_eq!(d.reason, Some(SuppressReason::NeighborCoverage));
    }

    #[test]
    fn every_scheme_round_trips() {
        let schemes = [
            SchemeSpec::Flooding,
            SchemeSpec::Counter(3),
            SchemeSpec::AdaptiveCounter(CounterThreshold::paper_recommended()),
            SchemeSpec::Distance(40.0),
            SchemeSpec::Location(0.0469),
            SchemeSpec::AdaptiveLocation(AreaThreshold::paper_recommended()),
            SchemeSpec::AdaptiveLocation(AreaThreshold::fixed(0.1871)),
            SchemeSpec::NeighborCoverage,
            SchemeSpec::Probabilistic(0.65),
        ];
        for scheme in schemes {
            let mut enc = WireEncoder::new();
            encode_scheme(&mut enc, &scheme);
            let bytes = enc.into_bytes();
            let mut dec = WireDecoder::new(&bytes);
            let decoded = decode_scheme(&mut dec).expect("decode scheme");
            dec.finish().expect("no trailing bytes");
            assert_eq!(decoded.label(), scheme.label());
            // Re-encoding the decoded scheme must be byte-identical.
            let mut enc2 = WireEncoder::new();
            encode_scheme(&mut enc2, &decoded);
            assert_eq!(enc2.into_bytes(), bytes);
        }
    }

    #[test]
    fn decode_rejects_corruption() {
        let config = cfg(SchemeSpec::Flooding);
        let writer = TraceWriter::new(&config);
        let mut bytes = writer.into_bytes();
        assert!(TraceFile::decode(&bytes[..3]).is_err(), "truncated magic");
        bytes.push(9); // invalid record tag
        assert!(TraceFile::decode(&bytes).is_err());
        let mut wrong_magic = bytes.clone();
        wrong_magic[0] = b'X';
        assert!(TraceFile::decode(&wrong_magic).is_err());
    }

    #[test]
    fn replay_verifies_a_hand_built_trace() {
        // Flooding: a heard packet is always Scheduled.
        let config = cfg(SchemeSpec::Flooding);
        let mut writer = TraceWriter::new(&config);
        let packet = PacketId::new(NodeId::new(0), 0);
        let hear = OwnedAction::PacketHeard {
            node: NodeId::new(1),
            packet,
            sender: NodeId::new(0),
            sender_position: Vec2::ZERO,
            own_position: Vec2::new(100.0, 0.0),
            random_unit: 0.5,
            oracle: None,
        };
        writer.action(SimTime::from_millis(1), &hear.as_action());
        writer.decision(DecisionRecord {
            at: SimTime::from_millis(1),
            node: NodeId::new(1),
            packet,
            kind: DecisionKind::Scheduled,
            reason: None,
        });
        let bytes = writer.into_bytes();
        let summary = replay_decisions(&bytes).expect("replay");
        assert_eq!(summary.actions, 1);
        assert_eq!(summary.decisions, 1);

        // Tampering with the recorded decision must be detected.
        let mut writer = TraceWriter::new(&config);
        writer.action(SimTime::from_millis(1), &hear.as_action());
        writer.decision(DecisionRecord {
            at: SimTime::from_millis(1),
            node: NodeId::new(1),
            packet,
            kind: DecisionKind::InhibitedOnFirstHear,
            reason: None,
        });
        let tampered = writer.into_bytes();
        assert!(matches!(
            replay_decisions(&tampered),
            Err(ReplayError::Mismatch { .. })
        ));
    }
}
