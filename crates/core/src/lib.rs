//! # broadcast-core
//!
//! A faithful reproduction of *"Adaptive Approaches to Relieving Broadcast
//! Storms in a Wireless Multihop Mobile Ad Hoc Network"* (Tseng, Ni, Shih;
//! ICDCS 2001 / IEEE ToC 52(5) 2003).
//!
//! Naive flooding in a CSMA/CA ad hoc network causes the **broadcast
//! storm problem** — redundant rebroadcasts, medium contention, and
//! collisions that *reduce* reachability. This crate implements every
//! scheme the paper studies on top of a discrete-event IEEE 802.11 DCF
//! simulation:
//!
//! | Scheme | Spec | Idea |
//! |---|---|---|
//! | Flooding | [`SchemeSpec::Flooding`] | everyone rebroadcasts once |
//! | Counter-based | [`SchemeSpec::Counter`] | cancel after hearing the packet `C` times |
//! | **Adaptive counter (AC)** | [`SchemeSpec::AdaptiveCounter`] | threshold `C(n)` from the live neighbor count |
//! | Distance-based | [`SchemeSpec::Distance`] | cancel when a transmitter was too close |
//! | Location-based | [`SchemeSpec::Location`] | cancel when additional coverage < `A` |
//! | **Adaptive location (AL)** | [`SchemeSpec::AdaptiveLocation`] | threshold `A(n)` |
//! | **Neighbor coverage (NC)** | [`SchemeSpec::NeighborCoverage`] | rebroadcast only while some neighbor is uncovered (two-hop HELLO knowledge) |
//!
//! plus the paper's **dynamic hello interval**
//! ([`manet_net::DynamicHelloParams`], wired via
//! [`NeighborInfo::Hello`]).
//!
//! # Quick start
//!
//! ```
//! use broadcast_core::{CounterThreshold, SchemeSpec, SimConfig, World};
//!
//! // The paper's adaptive counter-based scheme on a 3x3 map.
//! let config = SimConfig::builder(
//!     3,
//!     SchemeSpec::AdaptiveCounter(CounterThreshold::paper_recommended()),
//! )
//! .hosts(30)
//! .broadcasts(5)
//! .seed(42)
//! .build();
//!
//! let report = World::new(config).run();
//! println!(
//!     "RE = {:.3}, SRB = {:.3}, latency = {:.4} s",
//!     report.reachability, report.saved_rebroadcasts, report.avg_latency_s,
//! );
//! # assert!(report.reachability > 0.0);
//! ```
//!
//! # Crate map
//!
//! * [`threshold`] — the `C(n)` / `A(n)` function families (Figs 3, 4, 6, 8).
//! * [`schemes`] — per-packet decision state for all seven schemes.
//! * [`policy`] — the S1–S5 decision interface the schemes implement.
//! * [`pure`] — the pure protocol models (actions in, effects out).
//! * [`world`] — the effectful dispatcher (queue, RNG, channel, MAC, workload).
//! * [`record`] — the action-level `MTRC` trace format and pure replay.
//! * [`metrics`] — RE, SRB, and latency, as defined in §4.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod cancel;
mod config;
mod ids;
mod ledger;
pub mod metrics;
pub mod policy;
pub mod pure;
pub mod record;
pub mod schemes;
pub mod threshold;
pub mod trace;
pub mod world;

pub use cancel::CancelToken;
pub use config::{
    CaptureConfig, MobilitySpec, NeighborInfo, PlacementSpec, SimConfig, SimConfigBuilder,
};
pub use ids::PacketId;
// Report-embedded types from the lower layers, re-exported so downstream
// crates can consume a `SimReport` without depending on phy/mac directly.
pub use manet_mac::MacStats;
pub use manet_phy::{LossCause, LossCounters};
pub use manet_scenario::{ChurnKind, Region, Scenario, ScenarioError, WorldAction};
pub use manet_sim_engine::{KindProfile, LoopProfile};
pub use metrics::{
    latency_summary, summarize, BroadcastOutcome, LatencySummary, MetricsCollector, NetActivity,
    ScenarioCounts, SimReport, SuppressionCounts,
};
pub use policy::{DuplicateDecision, FirstDecision, HearContext, RebroadcastPolicy};
pub use pure::{Effect, OracleView, OwnedAction, PureAction, PureModels};
pub use record::{
    replay_decisions, DecisionRecord, ReplayError, ReplaySummary, TraceFile, TraceRecord,
    TraceWriter, TRACE_MAGIC, TRACE_VERSION,
};
pub use schemes::{
    CounterScheme, DistanceScheme, Flooding, LocationScheme, NeighborCoverageScheme, PacketPolicy,
    ProbabilisticScheme, SchemeSpec,
};
pub use threshold::{
    AreaThreshold, CounterThreshold, DescentShape, EAC2_FRACTION, MIN_COUNTER_THRESHOLD,
};
pub use world::snapshot;
pub use world::World;
