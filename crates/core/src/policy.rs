//! The rebroadcast-decision interface shared by all schemes.
//!
//! Every scheme in the paper fits one shape (§3, steps S1–S5):
//!
//! 1. **S1** — on hearing packet `P` for the first time, initialize some
//!    per-packet state and decide whether to schedule a rebroadcast at all
//!    ([`RebroadcastPolicy::on_first_hear`]).
//! 2. **S2** — wait a random number (0–31) of slots, then submit `P` to
//!    the MAC. The waiting and queueing are *common machinery* owned by
//!    the simulation world, not the scheme.
//! 3. **S4** — every time `P` is heard again before the transmission
//!    actually starts, update the state and possibly cancel
//!    ([`RebroadcastPolicy::on_duplicate_hear`] → S5).
//!
//! A policy instance holds the state for **one packet at one host** and is
//! created per `(host, packet)` pair by
//! [`SchemeSpec::build`](crate::SchemeSpec::build).

use manet_geom::{CoverageGrid, Vec2};
use manet_phy::NodeId;

/// Everything a scheme may consult when a copy of the packet arrives.
///
/// Fields the active scheme does not need are cheap defaults (e.g. the
/// neighbor slices are empty unless the neighbor-coverage scheme runs).
#[derive(Debug)]
pub struct HearContext<'a> {
    /// The hearing host's live neighbor count `n` (HELLO-derived or
    /// oracle, per configuration).
    pub neighbor_count: usize,
    /// The hearing host's position (GPS assumption of the location-based
    /// schemes).
    pub own_position: Vec2,
    /// The host this copy was heard from.
    pub sender: NodeId,
    /// The sender's position as carried in the packet.
    pub sender_position: Vec2,
    /// The hearing host's one-hop set `N_x` (neighbor-coverage only).
    pub neighbors: &'a [NodeId],
    /// The hearing host's knowledge of the sender's one-hop set `N_{x,h}`
    /// (neighbor-coverage only).
    pub sender_neighbors: &'a [NodeId],
    /// Shared additional-coverage estimator (location-based only).
    pub coverage: &'a CoverageGrid,
    /// Radio radius in meters.
    pub radio_radius: f64,
    /// A uniform `[0, 1)` sample drawn by the simulation for this hear
    /// event (consumed by randomized schemes; deterministic policies
    /// ignore it).
    pub random_unit: f64,
}

/// Verdict on first hearing a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FirstDecision {
    /// Schedule a rebroadcast (enter the S2 assessment delay).
    Schedule,
    /// Do not rebroadcast at all (jump straight to S5).
    Inhibit,
}

/// Verdict on hearing a duplicate while the rebroadcast is still pending.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DuplicateDecision {
    /// Keep the pending rebroadcast (resume the interrupted waiting).
    Keep,
    /// Cancel the pending rebroadcast (S5); the host is inhibited from
    /// rebroadcasting this packet forever.
    Cancel,
}

/// Per-packet, per-host rebroadcast decision state.
///
/// The world calls [`on_first_hear`](Self::on_first_hear) exactly once,
/// then [`on_duplicate_hear`](Self::on_duplicate_hear) for every further
/// copy that arrives while the rebroadcast is pending (assessment delay or
/// MAC queue). Once the packet is on the air or cancelled, the policy is
/// dropped.
pub trait RebroadcastPolicy: std::fmt::Debug {
    /// S1: the first copy of the packet arrived.
    fn on_first_hear(&mut self, ctx: &HearContext<'_>) -> FirstDecision;

    /// S4: another copy arrived while the rebroadcast was still pending.
    fn on_duplicate_hear(&mut self, ctx: &HearContext<'_>) -> DuplicateDecision;
}

#[cfg(test)]
pub(crate) mod test_support {
    //! Helpers for scheme unit tests.

    use super::*;

    /// A reusable context backing store, so tests can tweak one field at a
    /// time.
    #[derive(Debug)]
    pub struct CtxFixture {
        pub neighbor_count: usize,
        pub own_position: Vec2,
        pub sender: NodeId,
        pub sender_position: Vec2,
        pub neighbors: Vec<NodeId>,
        pub sender_neighbors: Vec<NodeId>,
        pub coverage: CoverageGrid,
        pub radio_radius: f64,
        pub random_unit: f64,
    }

    impl Default for CtxFixture {
        fn default() -> Self {
            CtxFixture {
                neighbor_count: 5,
                own_position: Vec2::ZERO,
                sender: NodeId::new(99),
                sender_position: Vec2::new(250.0, 0.0),
                neighbors: vec![],
                sender_neighbors: vec![],
                coverage: CoverageGrid::new(64),
                radio_radius: 500.0,
                random_unit: 0.5,
            }
        }
    }

    impl CtxFixture {
        pub fn ctx(&self) -> HearContext<'_> {
            HearContext {
                neighbor_count: self.neighbor_count,
                own_position: self.own_position,
                sender: self.sender,
                sender_position: self.sender_position,
                neighbors: &self.neighbors,
                sender_neighbors: &self.sender_neighbors,
                coverage: &self.coverage,
                radio_radius: self.radio_radius,
                random_unit: self.random_unit,
            }
        }
    }
}
