//! Broadcast packet identification.

use std::fmt;

use manet_phy::NodeId;

/// Identifies one logical broadcast: the `(source ID, sequence number)`
/// tuple the paper prescribes for duplicate detection (§2.1).
///
/// Every copy of the packet — the source's original transmission and all
/// rebroadcasts — carries the same `PacketId`, which is how hosts
/// recognize "the same broadcast packet heard again".
///
/// # Examples
///
/// ```
/// use broadcast_core::PacketId;
/// use manet_phy::NodeId;
///
/// let p = PacketId::new(NodeId::new(4), 17);
/// assert_eq!(p.to_string(), "h4#17");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PacketId {
    /// The host that issued the broadcast.
    pub source: NodeId,
    /// The source's sequence number for this broadcast.
    pub seq: u32,
}

impl PacketId {
    /// Creates the identifier for `source`'s broadcast number `seq`.
    pub const fn new(source: NodeId, seq: u32) -> Self {
        PacketId { source, seq }
    }
}

impl fmt::Display for PacketId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.source, self.seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_and_ordering() {
        let a = PacketId::new(NodeId::new(1), 5);
        let b = PacketId::new(NodeId::new(1), 6);
        let c = PacketId::new(NodeId::new(2), 0);
        assert_eq!(a, PacketId::new(NodeId::new(1), 5));
        assert!(a < b);
        assert!(b < c);
    }
}
