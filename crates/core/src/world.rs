//! The effectful dispatcher: mobility + channel + MAC wired over the
//! engine's event queue, driving the pure protocol models.
//!
//! One [`World`] executes one [`SimConfig`]. Since the pure/effectful
//! split, the protocol state (neighbor tables, packet ledgers, scheme
//! decisions, suppression tallies) lives in [`PureModels`] and is
//! advanced exclusively through [`PureAction`]s; this module owns
//! everything *impure* — the event queue, the RNG streams, the
//! [`Medium`], the per-host MACs, and the metrics — and executes the
//! [`Effect`]s each pure step requests.
//!
//! Every action funnels through [`World::dispatch`], which is also the
//! single tap point for action-level recording (see [`crate::record`]):
//! a recorded trace replayed through [`PureModels`] alone reproduces
//! every scheme decision of the live run.

use manet_geom::Vec2;
use manet_mac::timing::SLOT;
use manet_mac::{frame_airtime, Dcf, FrameHandle, MacAction, MacStats};
use manet_mobility::{
    grid_placement, line_placement, uniform_placement, Map, Mobility, RandomTurn, RandomTurnParams,
    RandomWaypoint, RandomWaypointParams, Segment, Stationary,
};
use manet_net::HelloPayload;
use manet_phy::{CarrierChange, Delivery, FrameId, Medium, NeighborGrid, NodeId, ShardMap};
use manet_scenario::{Region, WorldAction};
use manet_sim_engine::{
    EventKey, EventQueue, LoopProfiler, ShardDelta, SimDuration, SimRng, SimTime, Slab, Timeline,
    WorkerPool,
};

use crate::config::{NeighborInfo, SimConfig};
use crate::ids::PacketId;
use crate::metrics::{summarize, MetricsCollector, NetActivity, ScenarioCounts, SimReport};
use crate::pure::{Effect, OracleView, PureAction, PureModels};
use crate::record::{DecisionRecord, TraceWriter};
use crate::trace::{
    DecisionKind, FrameKind, NoopObserver, SimObserver, SuppressReason, TraceEvent,
};

pub mod snapshot;

/// Events on the simulation queue.
#[derive(Debug)]
enum Event {
    /// A host's motion segment ended; take the next random turn.
    MobilityTurn { node: NodeId },
    /// Time for a host to emit its next HELLO beacon.
    HelloTimer { node: NodeId },
    /// A DCF timer (DIFS or backoff countdown) fired. `epoch` is the
    /// host's churn epoch at scheduling time: a timer armed by a MAC that
    /// has since been deactivated (and later replaced) must not reach the
    /// replacement, whose `generation` counter restarted from zero.
    MacTimer {
        node: NodeId,
        generation: u64,
        epoch: u32,
    },
    /// A frame's airtime ended.
    TxEnd { frame: FrameId },
    /// A host's scheme-level assessment delay (S2's 0–31 slots) elapsed.
    AssessmentDone { node: NodeId, packet: PacketId },
    /// The workload issues the next broadcast request.
    IssueBroadcast,
    /// A delayed carrier-sense report reaches the MACs of every host that
    /// heard one frame's carrier transition (models the CCA assessment
    /// latency). All of a frame's reports fire at the same instant with
    /// consecutive sequence numbers, so one event carrying the hearer
    /// list (parked in `World::carrier_batches`) delivers them in exactly
    /// the order the per-host events would have.
    CarrierBatch { slot: u32, busy: bool },
    /// The scenario timeline's next world action (host churn or a fault
    /// window edge) takes effect; `index` addresses the compiled timeline.
    Scenario { index: u32 },
}

impl Event {
    /// Static label used to attribute event-loop wall time by kind.
    fn kind(&self) -> &'static str {
        match self {
            Event::MobilityTurn { .. } => "mobility_turn",
            Event::HelloTimer { .. } => "hello_timer",
            Event::MacTimer { .. } => "mac_timer",
            Event::TxEnd { .. } => "tx_end",
            Event::AssessmentDone { .. } => "assessment_done",
            Event::IssueBroadcast => "issue_broadcast",
            Event::CarrierBatch { .. } => "carrier_sense",
            Event::Scenario { .. } => "scenario",
        }
    }
}

/// What a queued MAC frame carries.
#[derive(Debug, Clone)]
enum Payload {
    Broadcast(PacketId),
    Hello(HelloPayload),
}

/// A frame currently on the air.
#[derive(Debug)]
struct InFlight {
    sender: NodeId,
    payload: Payload,
    /// Sender position at transmission start (carried in the packet for
    /// the location-based schemes).
    sent_from: Vec2,
    /// Sender's churn epoch at transmission start. If the sender
    /// deactivated mid-flight, its (possibly replaced) MAC must not see
    /// the `on_tx_end` for this frame.
    sender_epoch: u32,
}

/// The configured mobility model for one host.
#[derive(Debug)]
enum HostMobility {
    Turn(RandomTurn),
    Waypoint(RandomWaypoint),
    Fixed(Stationary),
}

impl Mobility for HostMobility {
    fn position_at(&self, t: SimTime) -> Vec2 {
        match self {
            HostMobility::Turn(m) => m.position_at(t),
            HostMobility::Waypoint(m) => m.position_at(t),
            HostMobility::Fixed(m) => m.position_at(t),
        }
    }

    fn next_change(&self) -> Option<SimTime> {
        match self {
            HostMobility::Turn(m) => m.next_change(),
            HostMobility::Waypoint(m) => m.next_change(),
            HostMobility::Fixed(m) => m.next_change(),
        }
    }

    fn advance(&mut self, now: SimTime) {
        match self {
            HostMobility::Turn(m) => m.advance(now),
            HostMobility::Waypoint(m) => m.advance(now),
            HostMobility::Fixed(m) => m.advance(now),
        }
    }

    fn segment(&self) -> Segment {
        match self {
            HostMobility::Turn(m) => m.segment(),
            HostMobility::Waypoint(m) => m.segment(),
            HostMobility::Fixed(m) => m.segment(),
        }
    }
}

/// One mobile host's effectful machinery. Protocol state (neighbor
/// table, variation tracker, packet ledger) lives in [`PureModels`].
#[derive(Debug)]
struct Node {
    mobility: HostMobility,
    mac: Dcf,
    /// Payloads of frames sitting in the MAC queue. A [`FrameHandle`] is
    /// its slab slot: unique among queued frames (all the MAC compares
    /// against), recycled once dequeued or cancelled.
    outgoing: Slab<Payload>,
    /// The scheduled next HELLO (cancellation key and fire time), so a
    /// dynamic-interval host can pull its beacon forward when churn rises.
    hello_pending: Option<(EventKey, SimTime)>,
}

impl Node {
    /// Hands `payload` to this host's MAC queue, returning its handle.
    fn queue_payload(&mut self, payload: Payload) -> FrameHandle {
        FrameHandle(u64::from(self.outgoing.insert(payload)))
    }

    /// Releases and returns the payload queued under `handle`.
    fn take_payload(&mut self, handle: FrameHandle) -> Payload {
        let slot = u32::try_from(handle.0).expect("frame handle out of range");
        assert!(
            self.outgoing.contains(slot),
            "MAC referenced an unknown frame"
        );
        self.outgoing.remove(slot)
    }
}

/// Runtime state of the configured scenario (churn + fault injection).
/// Absent on ordinary runs, which therefore pay nothing for the feature.
#[derive(Debug)]
struct ScenarioState {
    /// The compiled world-action timeline; `Event::Scenario { index }`
    /// addresses into it.
    timeline: Timeline<WorldAction>,
    /// Per-host membership: `false` while a host is left or crashed.
    active: Vec<bool>,
    /// Hosts currently active (validation guarantees it never hits zero).
    active_count: u32,
    /// Per-host churn epoch, bumped on every deactivation. Timers and
    /// in-flight frames carry the epoch they were created under; a
    /// mismatch at delivery time means the event outlived its MAC.
    node_epoch: Vec<u32>,
    /// Currently open link blackouts, as unordered host pairs.
    blackouts: Vec<(u32, u32)>,
    /// Drop probabilities of the currently open noise bursts.
    noise: Vec<f64>,
    /// Currently open partition regions.
    partitions: Vec<Region>,
    /// Scenario randomness: noise-burst drop draws, in delivery order.
    rng: SimRng,
    /// Base stream for per-respawn MACs and hello phases; never drawn
    /// from directly, only forked with `respawn_seq`.
    respawn_rng: SimRng,
    /// Fork counter so every respawned MAC gets a distinct stream.
    respawn_seq: u64,
    /// What the scenario did, reported in [`SimReport::scenario`].
    counts: ScenarioCounts,
    /// MAC stats of replaced (crashed/left) MAC instances, folded into
    /// the final report alongside the live MACs'.
    retired_mac: MacStats,
    /// Neighbor-table join/leave totals of tables reset by crashes.
    retired_joins: u64,
    retired_leaves: u64,
}

impl ScenarioState {
    /// `true` when any fault window is currently open.
    fn any_fault_open(&self) -> bool {
        !(self.blackouts.is_empty() && self.noise.is_empty() && self.partitions.is_empty())
    }
}

/// How often the sharded executor rebuilds strip membership from fresh
/// positions. Between syncs, membership drifts by at most
/// `max_speed × elapsed`, which the query windows absorb (see
/// [`World::in_range_strips`]).
const STRIP_SYNC_INTERVAL: manet_sim_engine::SimDuration =
    manet_sim_engine::SimDuration::from_secs(1);

/// Host count below which a full position refresh stays single-threaded:
/// under ~8k segment evaluations, the fan-out overhead eats the win.
const PARALLEL_REFRESH_MIN_HOSTS: usize = 8_192;

/// Absolute slack (meters) added to the `max_speed × elapsed` drift bound
/// in strip range queries, absorbing the floating-point rounding of that
/// product. Overestimating drift only widens the candidate window — the
/// exact distance test still decides membership — so a micrometer of
/// safety costs nothing and removes any 1-ulp exclusion hazard.
const DRIFT_SLACK: f64 = 1e-6;

/// A `BeginTx` surfaced by a shard drain, deferred to the epoch barrier.
/// `seq` is the global sequence stamp of the timer event that produced it:
/// the barrier executes deferred transmissions in `(time, seq)` order
/// (globally unique stamps, so the shard index never has to break a tie),
/// which is exactly where the sequential executor would have placed them.
#[derive(Debug, Clone, Copy)]
struct DeferredTx {
    time: SimTime,
    seq: u64,
    node: NodeId,
    handle: FrameHandle,
    payload_bytes: usize,
}

/// Unsafe shared-mutable slice for handing disjoint elements (or disjoint
/// index ranges) of one buffer to concurrent pool jobs. Every access site
/// must guarantee disjointness; the epoch executor's is the single-live-
/// timer invariant (each node's pending MAC timer lives in exactly one
/// shard queue, so no two drains ever touch the same node).
struct SharedSliceMut<T>(*mut T, usize);

unsafe impl<T: Send> Sync for SharedSliceMut<T> {}

impl<T> SharedSliceMut<T> {
    fn new(slice: &mut [T]) -> Self {
        SharedSliceMut(slice.as_mut_ptr(), slice.len())
    }

    /// Pointer to element `i`.
    ///
    /// # Safety
    ///
    /// The caller must ensure no two concurrent users dereference the
    /// same index.
    unsafe fn get(&self, i: usize) -> *mut T {
        debug_assert!(i < self.1, "index {i} out of bounds ({})", self.1);
        unsafe { self.0.add(i) }
    }

    /// Mutable subslice `start..end`.
    ///
    /// # Safety
    ///
    /// The caller must ensure concurrent users take disjoint ranges.
    // The `&self -> &mut` shape is this type's entire purpose: it fans
    // one `&mut [T]` out to pool jobs whose disjointness the caller
    // proves (see the safety contract).
    #[allow(clippy::mut_from_ref)]
    unsafe fn slice(&self, start: usize, end: usize) -> &mut [T] {
        debug_assert!(start <= end && end <= self.1, "range out of bounds");
        unsafe { std::slice::from_raw_parts_mut(self.0.add(start), end - start) }
    }
}

/// One shard's epoch drain: pop MAC timers strictly below `limit`, step
/// the owning MACs, re-arm timers into the *same* queue, and defer every
/// `BeginTx` to the barrier. Runs concurrently with the other shards'
/// drains — the `epoch_shard` lint fences it from the global RNGs, the
/// `Medium`, and the global `event_seq` counter, whose ownership stays
/// with the barrier. Re-armed timers are stamped `base_seq + j·shards + s`
/// so stamps are unique across shards and strictly increasing within the
/// queue without touching shared state.
#[cfg_attr(simlint, epoch_shard)]
#[allow(clippy::too_many_arguments)]
fn drain_shard_epoch(
    s: usize,
    shards: u64,
    base_seq: u64,
    limit: (SimTime, u64),
    queue: &mut EventQueue<Event>,
    nodes: &SharedSliceMut<Node>,
    pending: &SharedSliceMut<Option<(u32, EventKey)>>,
    node_epochs: Option<&[u32]>,
    delta: &mut ShardDelta,
    out: &mut Vec<DeferredTx>,
) {
    let mut rearmed = 0u64;
    while queue.peek_key().is_some_and(|key| key < limit) {
        let (now, seq, event) = queue.pop_entry().expect("peeked event vanished");
        let Event::MacTimer {
            node,
            generation,
            epoch,
        } = event
        else {
            unreachable!("shard queues hold only MacTimer events");
        };
        delta.events += 1;
        delta.last_event_at = Some(now);
        if epoch != node_epochs.map_or(0, |epochs| epochs[node.index()]) {
            // Outlived its MAC; its pending slot was cleared (and the key
            // cancelled) at deactivation, so leave the slot alone.
            continue;
        }
        // SAFETY: the single-live-timer invariant — this node's live
        // timer was in *this* queue, so no concurrent drain touches its
        // MAC or pending slot.
        let slot = unsafe { &mut *pending.get(node.index()) };
        *slot = None;
        let mac = unsafe { &mut (*nodes.get(node.index())).mac };
        match mac.on_timer(generation, now) {
            None => {}
            Some(MacAction::StartTimer { delay, generation }) => {
                let stamp = base_seq + rearmed * shards + s as u64;
                rearmed += 1;
                delta.rescheduled += 1;
                let key = queue.schedule_seq(
                    now + delay,
                    stamp,
                    Event::MacTimer {
                        node,
                        generation,
                        epoch,
                    },
                );
                *slot = Some((s as u32, key));
            }
            Some(MacAction::BeginTx {
                handle,
                payload_bytes,
            }) => {
                delta.deferred += 1;
                out.push(DeferredTx {
                    time: now,
                    seq,
                    node,
                    handle,
                    payload_bytes,
                });
            }
        }
    }
}

/// A complete simulation run.
///
/// # Examples
///
/// ```
/// use broadcast_core::{SchemeSpec, SimConfig, World};
///
/// let config = SimConfig::builder(3, SchemeSpec::Flooding)
///     .hosts(20)
///     .broadcasts(3)
///     .seed(7)
///     .build();
/// let report = World::new(config).run();
/// assert_eq!(report.broadcasts, 3);
/// assert!(report.reachability > 0.0);
/// ```
#[derive(Debug)]
pub struct World {
    cfg: SimConfig,
    map: Map,
    queue: EventQueue<Event>,
    /// Per-shard event queues, one per spatial strip; empty on sequential
    /// runs (`shards == 1`), where everything stays on `queue`. Shard
    /// queues hold only [`Event::MacTimer`] — the dominant event kind and
    /// the only one that is never cancelled, so no cross-queue tombstone
    /// routing is needed. All queues share the global [`Self::event_seq`]
    /// counter, making the merged pop order (time, then seq) identical to
    /// the single-queue order for **any** shard count.
    shard_queues: Vec<EventQueue<Event>>,
    /// Global event sequence counter stamping every scheduled event across
    /// the control queue and all shard queues. Assigned in schedule order,
    /// exactly as a single queue's internal counter would — the invariant
    /// behind bit-identical sharded execution.
    event_seq: u64,
    /// Spatial strip partition of the map's x-axis (strips ≥ one radio
    /// radius wide). `shards() == 1` on sequential runs.
    shard_map: ShardMap,
    /// Strip owning each host, as of the last strip sync.
    strip_of_host: Vec<u32>,
    /// Each strip's hosts as `(sync position, id)`, sorted by the
    /// position's y (ties by id), as of the last sync. Read-only between
    /// syncs, so strip range queries can slice out the y-window of a
    /// query disc and prefilter candidates against the cached positions
    /// without touching the mobility segments: a host within `radius` of
    /// a query point now was within `radius + drift` of it at the sync
    /// (nobody outruns [`Self::max_speed_ms`]), and only hosts passing
    /// that coarse test need an exact position evaluation.
    strip_hosts: Vec<Vec<(Vec2, u32)>>,
    /// Host-id-indexed hit bitmap for strip range queries: the spatial
    /// scan marks ids here, then a word sweep reads them back in
    /// ascending-id order (the order the grid query produces) without a
    /// sort. All-zero between queries. Empty on sequential runs.
    range_bits: Vec<u64>,
    /// When strip membership was last rebuilt.
    strip_sync_at: SimTime,
    /// Upper bound on host speed in m/s, for the membership drift margin.
    max_speed_ms: f64,
    nodes: Vec<Node>,
    medium: Medium,
    metrics: MetricsCollector,
    /// All pure protocol state; advanced only via [`World::dispatch`].
    pure: PureModels,
    /// Effect buffer for [`World::dispatch`]. Dispatch never nests (no
    /// effect application dispatches a non-leaf action), so one buffer
    /// suffices; `mem::take` degrades accidental re-entry to a fresh
    /// allocation instead of corruption.
    fx: Vec<Effect>,
    /// Effect buffer for [`World::dispatch_leaf`]. Leaf actions
    /// (`FrameSent`, `Originate`) are dispatched from *inside* effect
    /// application (a MAC enqueue can immediately start transmitting), so
    /// they get a disjoint buffer; they must never produce effects.
    fx_leaf: Vec<Effect>,
    /// Action-level recorder; `Some` while [`World::enable_recording`]
    /// has armed a trace.
    recorder: Option<TraceWriter>,
    /// Workload randomness: interarrivals and source selection.
    workload_rng: SimRng,
    /// Scheme-level randomness: assessment-slot draws, hello jitter.
    proto_rng: SimRng,
    /// Frames on the air, indexed by [`FrameId`] slot (the medium recycles
    /// ids, so a slot is reused only after its frame ends).
    in_flight: Vec<Option<InFlight>>,
    /// Spatial index over `snap_positions`, kept in lockstep by
    /// [`refresh_positions`](Self::refresh_positions).
    grid: NeighborGrid,
    /// Cached host positions, valid at `snap_at`. Mobility is piecewise
    /// deterministic, so every query at the same timestamp returns the
    /// same snapshot; the buffer is reused across refreshes.
    snap_positions: Vec<Vec2>,
    snap_at: Option<SimTime>,
    /// Dense copy of every host's current motion segment, refreshed on
    /// mobility turns. Snapshot refreshes evaluate these in one pass —
    /// identical arithmetic to each model's `position_at`, without the
    /// per-host dispatch into the node structs.
    segments: Vec<Segment>,
    /// Timestamp the grid was last synced to `snap_positions` at; lags
    /// `snap_at` because only grid-using queries pay for re-indexing (see
    /// [`refresh_grid`](Self::refresh_grid)).
    grid_at: Option<SimTime>,
    // Reusable hot-path scratch buffers. Each is `mem::take`n for the
    // duration of the call that fills it and restored afterwards, so
    // accidental re-entry degrades to a fresh allocation instead of
    // corruption. `begin` and `finish` use disjoint buffers because a
    // finished transmission's post-backoff can immediately start the
    // next one.
    scratch_listeners: Vec<NodeId>,
    scratch_signals: Vec<manet_phy::Listener>,
    scratch_begin_carrier: Vec<CarrierChange>,
    scratch_deliveries: Vec<Delivery>,
    scratch_end_carrier: Vec<CarrierChange>,
    scratch_neighbors: Vec<NodeId>,
    scratch_sender_neighbors: Vec<NodeId>,
    scratch_reachable: Vec<NodeId>,
    /// Hearer lists of delayed carrier reports in flight, keyed by the
    /// slot in their [`Event::CarrierBatch`]; `carrier_pool` recycles the
    /// vectors so steady-state reports never allocate.
    carrier_batches: Slab<Vec<NodeId>>,
    carrier_pool: Vec<Vec<NodeId>>,
    /// Recycled HELLO neighbor-list buffers: a beacon's list is built on
    /// [`Effect::EmitHello`] and returned when its frame leaves the air,
    /// so steady-state beaconing does not allocate.
    hello_pool: Vec<Vec<NodeId>>,
    next_seq: u32,
    issued: u32,
    stop_at: SimTime,
    hello_frames: u64,
    data_frames: u64,
    /// HELLO beacons decoded by some listener.
    hello_rx: u64,
    /// Timestamp of the last handled event, reported as the run length.
    last_event_at: SimTime,
    /// Set once the run has drained (or passed `stop_at`); further
    /// [`advance_until`](Self::advance_until) calls return immediately.
    finished: bool,
    /// Event-loop profiler; enabled via `SimConfig::profile_events`.
    profiler: LoopProfiler,
    /// Churn and fault-injection state; `None` unless the config carries
    /// a scenario.
    scenario: Option<ScenarioState>,
    /// Persistent worker pool for the epoch-parallel shard advance and
    /// the dense position refresh. Sized once at construction; zero
    /// workers (inline execution) on single-core hosts or sequential runs.
    pool: WorkerPool,
    /// `true` when this run uses the epoch-parallel executor: the config
    /// opted in **and** the strip partition is real **and** the
    /// carrier-sense delay (the safety horizon) is nonzero.
    epoch_par: bool,
    /// Parallel mode only: per-node `(queue index, key)` of the node's
    /// single live MAC timer, `None` when no timer is pending. Lets the
    /// control phase cancel timers the MAC has invalidated (busy-freeze,
    /// deactivation) instead of delivering them stale — which is also
    /// what makes concurrent drains sound: every live timer of a node
    /// sits in exactly one queue, so no two drains touch the same node.
    pending_timer: Vec<Option<(u32, EventKey)>>,
    /// Per-shard buffers of transmissions surfaced during the current
    /// epoch's drains, merged at the barrier. Kept allocated across
    /// epochs.
    shard_tx: Vec<Vec<DeferredTx>>,
    /// Scratch for the barrier's `(time, seq)`-sorted merge of
    /// `shard_tx`.
    epoch_tx_scratch: Vec<DeferredTx>,
    /// Per-shard drain tallies, merged into the profiler at each barrier.
    shard_deltas: Vec<ShardDelta>,
    /// Number of parallel epochs executed (diagnostics; lets tests assert
    /// the parallel path actually ran).
    epochs: u64,
}

impl World {
    /// Builds the initial state for `config`: places the hosts, arms the
    /// mobility and HELLO timers, and schedules the first broadcast at the
    /// end of the warm-up period.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails [`SimConfig::validate`].
    pub fn new(config: SimConfig) -> Self {
        if let Err(msg) = config.validate() {
            panic!("invalid simulation config: {msg}");
        }
        let map = config.map();
        let root = SimRng::seed_from(config.seed);
        let mut placement_rng = root.fork(0);
        let workload_rng = root.fork(1);
        let mut proto_rng = root.fork(2);
        let hosts = config.hosts as usize;
        let positions = match config.placement {
            crate::config::PlacementSpec::Uniform => {
                uniform_placement(&map, hosts, &mut placement_rng)
            }
            crate::config::PlacementSpec::Grid => grid_placement(&map, hosts),
            crate::config::PlacementSpec::Line { spacing_m } => {
                let length = f64::from(spacing_m) * (hosts as f64 - 1.0);
                let x0 = (map.bounds().width() - length) / 2.0;
                line_placement(&map, hosts, x0, f64::from(spacing_m))
            }
        };
        let max_speed = config.effective_max_speed_kmh();

        let hellos_enabled = matches!(config.neighbor_info, NeighborInfo::Hello(_))
            && (config.scheme.needs_neighbor_count() || config.scheme.needs_two_hop_hellos());

        let mut queue = EventQueue::new();
        let mut nodes = Vec::with_capacity(hosts);
        for (i, &pos) in positions.iter().enumerate() {
            let id = NodeId::new(i as u32);
            let mobility = match config.mobility {
                crate::config::MobilitySpec::RandomTurn => HostMobility::Turn(RandomTurn::new(
                    map,
                    RandomTurnParams::paper(max_speed),
                    pos,
                    SimTime::ZERO,
                    root.fork(100 + i as u64),
                )),
                crate::config::MobilitySpec::RandomWaypoint => {
                    HostMobility::Waypoint(RandomWaypoint::new(
                        map,
                        RandomWaypointParams::conventional(max_speed.max(3.6)),
                        pos,
                        SimTime::ZERO,
                        root.fork(100 + i as u64),
                    ))
                }
                crate::config::MobilitySpec::Stationary => {
                    HostMobility::Fixed(Stationary::new(pos))
                }
            };
            if let Some(next) = mobility.next_change() {
                queue.schedule(next, Event::MobilityTurn { node: id });
            }
            // An `if` rather than `bool::then(|| ..)`: handing a closure
            // that captures `proto_rng` to std would hide the draw from
            // simlint's fork-escape analysis.
            let hello_pending = if hellos_enabled {
                // Random initial phase so beacons do not synchronize.
                let first =
                    proto_rng.gen_duration_up_to(manet_sim_engine::SimDuration::from_secs(1));
                let at = SimTime::ZERO + first;
                Some((queue.schedule(at, Event::HelloTimer { node: id }), at))
            } else {
                None
            };
            nodes.push(Node {
                mobility,
                mac: Dcf::new(root.fork(10_000 + i as u64)),
                outgoing: Slab::new(),
                hello_pending,
            });
        }
        queue.schedule(SimTime::ZERO + config.warmup, Event::IssueBroadcast);
        let segments = nodes.iter().map(|n| n.mobility.segment()).collect();

        let scenario = config.scenario.as_ref().map(|scenario| {
            let timeline = scenario.compile();
            timeline.schedule_into(&mut queue, |index| Event::Scenario {
                index: u32::try_from(index).expect("scenario timeline too long"),
            });
            ScenarioState {
                timeline,
                active: vec![true; hosts],
                active_count: config.hosts,
                node_epoch: vec![0; hosts],
                blackouts: Vec::new(),
                noise: Vec::new(),
                partitions: Vec::new(),
                rng: root.fork(4),
                respawn_rng: root.fork(5),
                respawn_seq: 0,
                counts: ScenarioCounts::default(),
                retired_mac: MacStats::default(),
                retired_joins: 0,
                retired_leaves: 0,
            }
        });

        let pure = PureModels::new(&config);

        // The sharded executor's strip partition. Construction scheduling
        // above used the queue's internal counter; the world-owned global
        // counter picks up exactly where it left off, so sequence numbers
        // are identical to a single-queue run.
        let shard_map = ShardMap::new(map.bounds().width(), config.radio_radius, config.shards);
        let shards = shard_map.shards();
        let event_seq = queue.counters().1;
        let shard_queues: Vec<EventQueue<Event>> = if shards > 1 {
            (0..shards).map(|_| EventQueue::new()).collect()
        } else {
            Vec::new()
        };
        let mut strip_of_host = Vec::new();
        let mut strip_hosts: Vec<Vec<(Vec2, u32)>> = Vec::new();
        if shards > 1 {
            strip_of_host.reserve(hosts);
            strip_hosts.resize_with(shards, Vec::new);
            for (i, &p) in positions.iter().enumerate() {
                let s = shard_map.shard_of_x(p.x);
                strip_of_host.push(s as u32);
                strip_hosts[s].push((p, i as u32));
            }
            for hosts in &mut strip_hosts {
                hosts.sort_unstable_by(|a, b| a.0.y.total_cmp(&b.0.y).then(a.1.cmp(&b.1)));
            }
        }
        // RandomWaypoint floors its speed at 3.6 km/h, so the drift bound
        // must too; overestimating only widens query windows, never
        // changes results.
        let max_speed_ms = config.effective_max_speed_kmh().max(3.6) / 3.6;

        let epoch_par = config.parallel_epochs && shards > 1 && !config.cs_delay.is_zero();
        // One worker per strip, capped by the cores actually present
        // (minus the participating caller). Zero workers means pool jobs
        // run inline — correct, just not concurrent.
        let pool_threads = if shards > 1 {
            match config.workers {
                Some(workers) => (workers as usize).min(shards),
                None => std::thread::available_parallelism()
                    .map_or(0, |n| n.get().saturating_sub(1))
                    .min(shards),
            }
        } else {
            0
        };

        World {
            map,
            queue,
            shard_queues,
            event_seq,
            shard_map,
            strip_of_host,
            strip_hosts,
            range_bits: if shards > 1 {
                vec![0u64; hosts.div_ceil(64)]
            } else {
                Vec::new()
            },
            strip_sync_at: SimTime::ZERO,
            max_speed_ms,
            medium: {
                let mut medium = Medium::new(hosts);
                if config.drop_probability > 0.0 {
                    medium = medium.with_drop_probability(config.drop_probability, root.fork(3));
                }
                if let Some(capture) = config.capture {
                    medium =
                        medium.with_capture(manet_phy::CaptureModel::new(capture.sir_threshold));
                }
                medium
            },
            metrics: MetricsCollector::new(hosts),
            pure,
            fx: Vec::new(),
            fx_leaf: Vec::new(),
            recorder: None,
            workload_rng,
            proto_rng,
            in_flight: Vec::new(),
            grid: NeighborGrid::new(
                map.bounds().width(),
                map.bounds().height(),
                config.radio_radius,
            ),
            // Strip-lazy refreshes write individual entries, so the
            // sharded executor needs the buffer pre-sized (the entries are
            // stale until their strip's stamp says otherwise).
            snap_positions: if shards > 1 { positions } else { Vec::new() },
            snap_at: None,
            grid_at: None,
            segments,
            scratch_listeners: Vec::new(),
            scratch_signals: Vec::new(),
            scratch_begin_carrier: Vec::new(),
            scratch_deliveries: Vec::new(),
            scratch_end_carrier: Vec::new(),
            scratch_neighbors: Vec::new(),
            scratch_sender_neighbors: Vec::new(),
            scratch_reachable: Vec::new(),
            carrier_batches: Slab::new(),
            carrier_pool: Vec::new(),
            hello_pool: Vec::new(),
            next_seq: 0,
            issued: 0,
            stop_at: SimTime::MAX,
            hello_frames: 0,
            data_frames: 0,
            hello_rx: 0,
            last_event_at: SimTime::ZERO,
            finished: false,
            profiler: if config.profile_events {
                LoopProfiler::enabled()
            } else {
                LoopProfiler::disabled()
            },
            scenario,
            pool: WorkerPool::new(pool_threads),
            epoch_par,
            pending_timer: if epoch_par {
                vec![None; hosts]
            } else {
                Vec::new()
            },
            shard_tx: if epoch_par {
                (0..shards).map(|_| Vec::new()).collect()
            } else {
                Vec::new()
            },
            epoch_tx_scratch: Vec::new(),
            shard_deltas: vec![ShardDelta::default(); if epoch_par { shards } else { 0 }],
            epochs: 0,
            nodes,
            cfg: config,
        }
    }

    /// Arms action-level recording: every [`PureAction`] dispatched from
    /// now on (plus the scheme decisions its effects carry) is appended
    /// to an `MTRC` trace, retrievable via [`take_trace`](Self::take_trace).
    ///
    /// Call before the run starts; a trace begun mid-run replays against
    /// protocol state the recording does not contain.
    pub fn enable_recording(&mut self) {
        self.recorder = Some(TraceWriter::new(&self.cfg));
    }

    /// Finishes recording and returns the encoded trace, or `None` when
    /// [`enable_recording`](Self::enable_recording) was never called.
    pub fn take_trace(&mut self) -> Option<Vec<u8>> {
        self.recorder.take().map(TraceWriter::into_bytes)
    }

    /// `true` when `node` is currently part of the network. Always `true`
    /// without a scenario.
    fn is_active(&self, node: NodeId) -> bool {
        self.scenario
            .as_ref()
            .is_none_or(|st| st.active[node.index()])
    }

    /// The host's current churn epoch (0 without a scenario).
    fn current_epoch(&self, node: NodeId) -> u32 {
        self.scenario
            .as_ref()
            .map_or(0, |st| st.node_epoch[node.index()])
    }

    // ---- sharded execution ------------------------------------------------
    //
    // The executor maintains one control queue plus (when `--shards N`
    // asked for more than one strip) a queue per spatial strip. Every
    // scheduled event is stamped from a single global sequence counter in
    // program order, and events are popped in global `(time, seq)` order
    // across all queues — so the delivered event stream, and with it every
    // RNG draw and tie-break, is bit-identical for any shard count. Shard
    // queues hold only `MacTimer` events (never cancelled; cancellation
    // keys always resolve against the control queue), routed by the
    // scheduling host's strip.

    /// Schedules `event`, stamping it from the global sequence counter and
    /// routing it to its owner queue.
    #[cfg_attr(simlint, shard_merge)]
    fn schedule_event(&mut self, time: SimTime, event: Event) -> EventKey {
        let seq = self.event_seq;
        self.event_seq += 1;
        let queue = match &event {
            Event::MacTimer { node, .. } if !self.shard_queues.is_empty() => {
                &mut self.shard_queues[self.strip_of_host[node.index()] as usize]
            }
            _ => &mut self.queue,
        };
        queue.schedule_seq(time, seq, event)
    }

    /// The `(time, queue)` of the globally next event across the control
    /// queue (index 0) and every shard queue (index `strip + 1`), merged
    /// by the deterministic `(time, seq)` rule.
    #[cfg_attr(simlint, shard_merge)]
    fn peek_next(&mut self) -> Option<(SimTime, usize)> {
        let mut best = self.queue.peek_key().map(|key| (key, 0));
        for (i, q) in self.shard_queues.iter_mut().enumerate() {
            if let Some(key) = q.peek_key() {
                if best.is_none_or(|(b, _)| key < b) {
                    best = Some((key, i + 1));
                }
            }
        }
        best.map(|((time, _), queue)| (time, queue))
    }

    /// Pops the head of the queue selected by [`peek_next`](Self::peek_next).
    #[cfg_attr(simlint, shard_merge)]
    fn pop_next(&mut self, queue: usize) -> (SimTime, Event) {
        let q = if queue == 0 {
            &mut self.queue
        } else {
            &mut self.shard_queues[queue - 1]
        };
        q.pop().expect("peeked event vanished")
    }

    /// Merged queue counters `(now, next_seq, delivered, scheduled)` across
    /// the control and shard queues — the values a single-queue run would
    /// report for the same event stream. `now` is the time of the globally
    /// last popped event; `next_seq` is the global sequence counter.
    fn queue_counters(&self) -> (SimTime, u64, u64, u64) {
        let (mut now, _, mut delivered, mut scheduled) = self.queue.counters();
        for q in &self.shard_queues {
            let (q_now, _, q_delivered, q_scheduled) = q.counters();
            now = now.max(q_now);
            delivered += q_delivered;
            scheduled += q_scheduled;
        }
        (now, self.event_seq, delivered, scheduled)
    }

    /// Live entries of the control and shard queues merged into one global
    /// `(time, seq)`-sorted stream — byte-identical to the single-queue
    /// image for any shard count.
    fn queue_image(&self) -> Vec<(SimTime, u64, &Event)> {
        let mut entries = self.queue.snapshot_entries();
        for q in &self.shard_queues {
            entries.extend(q.snapshot_entries());
        }
        entries.sort_unstable_by_key(|&(time, seq, _)| (time, seq));
        entries
    }

    /// Runs the simulation to completion and returns the aggregated
    /// report.
    pub fn run(self) -> SimReport {
        self.run_observed(&mut NoopObserver)
    }

    /// Runs the simulation with an observer receiving every protocol-level
    /// [`TraceEvent`] in simulation order (see [`crate::trace`]).
    pub fn run_observed(mut self, observer: &mut dyn SimObserver) -> SimReport {
        self.advance_until(SimTime::MAX, observer);
        self.into_report()
    }

    /// Runs the simulation to completion unless `token` is cancelled
    /// first, in which case the run is abandoned and `None` returned.
    ///
    /// The token is only observed at [`advance_until`](Self::advance_until)
    /// pause boundaries — the world advances in slices of `slice`
    /// simulated time and checks the flag between slices, so a cancelled
    /// run always stops between events (the same consistent states a
    /// snapshot may be taken at), never mid-dispatch. A token cancelled
    /// before the first slice abandons the run without dispatching any
    /// event. Cancellation latency is bounded by the wall-clock cost of
    /// one slice; campaign-style workloads use sub-second slices so a
    /// cancel drains within a few milliseconds of real time.
    pub fn run_cancellable(
        mut self,
        token: &crate::CancelToken,
        slice: SimDuration,
        observer: &mut dyn SimObserver,
    ) -> Option<SimReport> {
        let slice = if slice.is_zero() {
            SimDuration::from_millis(250)
        } else {
            slice
        };
        let mut pause_at = SimTime::ZERO + slice;
        loop {
            if token.is_cancelled() {
                return None;
            }
            if self.advance_until(pause_at, observer) {
                return Some(self.into_report());
            }
            // Skip idle gaps: resume one slice past the furthest point the
            // run has reached, not merely past the previous pause.
            pause_at = pause_at.max(self.last_event_at) + slice;
        }
    }

    /// Advances the run until the next pending event would fire at or
    /// after `pause_at`, or the run completes. Returns `true` when the
    /// run is finished (queue drained or stop time passed), `false` when
    /// it paused with the boundary event still queued — the natural point
    /// to take a [snapshot](crate::snapshot) before resuming.
    ///
    /// The boundary is exclusive and has exactly one documented winner: a
    /// `pause_at` equal to a queued event's timestamp pauses **strictly
    /// before** any event at that instant fires. Every event at
    /// `pause_at` stays queued and is delivered after the resume, so a
    /// snapshot taken exactly on an event timestamp (or an epoch barrier
    /// landing on one) resumes bit-identically.
    pub fn advance_until(&mut self, pause_at: SimTime, observer: &mut dyn SimObserver) -> bool {
        if self.finished {
            return true;
        }
        // The profiler is moved out for the duration of the loop so the
        // event handlers can borrow `self` freely.
        let mut profiler = std::mem::replace(&mut self.profiler, LoopProfiler::disabled());
        let finished = if self.epoch_par {
            self.advance_epochs(pause_at, &mut profiler, observer)
        } else {
            self.advance_sequential(pause_at, &mut profiler, observer)
        };
        self.profiler = profiler;
        finished
    }

    /// The default executor: one globally `(time, seq)`-ordered event at a
    /// time — bit-identical for any shard count.
    fn advance_sequential(
        &mut self,
        pause_at: SimTime,
        profiler: &mut LoopProfiler,
        observer: &mut dyn SimObserver,
    ) -> bool {
        loop {
            let Some((next, queue)) = self.peek_next() else {
                self.finished = true;
                return true;
            };
            if next >= pause_at {
                return false;
            }
            let (now, event) = self.pop_next(queue);
            if now > self.stop_at {
                self.finished = true;
                return true;
            }
            self.last_event_at = now;
            let kind = event.kind();
            let started = profiler.begin();
            self.handle(now, event, observer);
            profiler.record(kind, started);
        }
    }

    /// The epoch-parallel executor (`--parallel-epochs`): control-queue
    /// events still run one at a time in global order, but whenever the
    /// globally next event is a shard-queue MAC timer, *every* shard
    /// drains its queue concurrently up to the safety horizon.
    ///
    /// Soundness rests on three facts. (1) Physics: a frame transmitted
    /// in strip `i` is first *sensed* anywhere — including strips `i±1`,
    /// the only others it can reach, since strips are ≥ one radio radius
    /// wide — `cs_delay` after transmission start, so MAC state at
    /// `t < epoch_start + cs_delay` cannot depend on any transmission
    /// begun inside the epoch; deferring `BeginTx` side effects to the
    /// barrier is invisible to every MAC. (2) Isolation: a drain touches
    /// only its own queue plus the per-node MAC/pending slots of nodes
    /// whose timers it pops, and the single-live-timer invariant (see
    /// [`Self::pending_timer`]) puts each node's live timer in exactly
    /// one queue — so concurrent drains write disjoint state. (3)
    /// Determinism: re-armed timers are stamped `base + j·shards + s`
    /// (disjoint per shard, monotone per queue), deferred transmissions
    /// are merged in `(time, seq)` order at the barrier, and the global
    /// counter is advanced past every stamp — so results are independent
    /// of drain interleaving and worker count.
    fn advance_epochs(
        &mut self,
        pause_at: SimTime,
        profiler: &mut LoopProfiler,
        observer: &mut dyn SimObserver,
    ) -> bool {
        loop {
            let control = self.queue.peek_key();
            let mut shard_best: Option<(SimTime, u64)> = None;
            for q in self.shard_queues.iter_mut() {
                if let Some(key) = q.peek_key() {
                    if shard_best.is_none_or(|b| key < b) {
                        shard_best = Some(key);
                    }
                }
            }
            let next = match (control, shard_best) {
                (None, None) => {
                    self.finished = true;
                    return true;
                }
                (Some(c), None) => c,
                (None, Some(s)) => s,
                (Some(c), Some(s)) => c.min(s),
            };
            if next.0 >= pause_at {
                return false;
            }
            if next.0 > self.stop_at {
                self.finished = true;
                return true;
            }
            let run_control = match (control, shard_best) {
                (Some(_), None) => true,
                // Stamps are globally unique, so equality cannot happen.
                (Some(c), Some(s)) => c < s,
                _ => false,
            };
            if run_control {
                // Control events (transmission ends, deliveries, carrier
                // reports, workload, scenario) run sequentially: they
                // touch global state and draw from the global RNG.
                let (now, event) = self.queue.pop().expect("peeked control event vanished");
                self.last_event_at = now;
                let kind = event.kind();
                let started = profiler.begin();
                self.handle(now, event, observer);
                profiler.record(kind, started);
            } else {
                // The key comparison above is on full (time, seq), so a
                // control event at the same instant but a later seq still
                // lets earlier-stamped shard timers drain first.
                let epoch_start = shard_best.expect("epoch without shard events").0;
                let mut limit = (epoch_start + self.cfg.cs_delay, 0u64);
                if let Some(c) = control {
                    limit = limit.min(c);
                }
                // Pause is exclusive (events at pause_at stay queued);
                // stop is inclusive (events at stop_at still run).
                limit = limit.min((pause_at, 0));
                limit = limit.min((self.stop_at, u64::MAX));
                self.run_epoch(limit, profiler, observer);
            }
        }
    }

    /// One parallel epoch: concurrently drain every shard queue strictly
    /// below `limit`, then merge the buffered cross-strip effects.
    fn run_epoch(
        &mut self,
        limit: (SimTime, u64),
        profiler: &mut LoopProfiler,
        observer: &mut dyn SimObserver,
    ) {
        self.epochs += 1;
        let shards = self.shard_queues.len();
        let base_seq = self.event_seq;
        let node_epochs = self.scenario.as_ref().map(|st| st.node_epoch.as_slice());
        for delta in &mut self.shard_deltas {
            *delta = ShardDelta::default();
        }
        let started = profiler.begin();
        {
            let queues = SharedSliceMut::new(&mut self.shard_queues);
            let nodes = SharedSliceMut::new(&mut self.nodes);
            let pending = SharedSliceMut::new(&mut self.pending_timer);
            let deltas = SharedSliceMut::new(&mut self.shard_deltas);
            let buffers = SharedSliceMut::new(&mut self.shard_tx);
            self.pool.run(shards, &|s| {
                // SAFETY: job `s` takes shard `s`'s queue, delta, and tx
                // buffer — disjoint by index. Node-level slots are
                // disjoint via the single-live-timer invariant.
                let queue = unsafe { &mut *queues.get(s) };
                let delta = unsafe { &mut *deltas.get(s) };
                let out = unsafe { &mut *buffers.get(s) };
                drain_shard_epoch(
                    s,
                    shards as u64,
                    base_seq,
                    limit,
                    queue,
                    &nodes,
                    &pending,
                    node_epochs,
                    delta,
                    out,
                );
            });
        }
        // Barrier. Advance the global counter past every stamp any shard
        // may have used (stamps are base + j·shards + s with j < max
        // rescheduled), fold the tallies, and replay the deferred
        // transmissions in global (time, seq) order.
        let max_rescheduled = self
            .shard_deltas
            .iter()
            .map(|d| d.rescheduled)
            .max()
            .unwrap_or(0);
        self.event_seq = base_seq + max_rescheduled * shards as u64;
        let mut total = ShardDelta::default();
        for delta in &self.shard_deltas {
            total.merge(delta);
        }
        if let Some(t) = total.last_event_at {
            self.last_event_at = self.last_event_at.max(t);
        }
        let mut merged = std::mem::take(&mut self.epoch_tx_scratch);
        merged.clear();
        for buffer in &mut self.shard_tx {
            merged.append(buffer);
        }
        merged.sort_unstable_by_key(|tx| (tx.time, tx.seq));
        for tx in merged.drain(..) {
            self.begin_transmission(tx.node, tx.handle, tx.payload_bytes, tx.time, observer);
        }
        self.epoch_tx_scratch = merged;
        // One timing window covers the whole epoch (drain + barrier);
        // per-event means stay comparable to the sequential profile, max
        // does not.
        profiler.record_batch("mac_timer", started, total.events);
    }

    /// Number of parallel epochs executed so far (0 in sequential mode).
    pub fn epochs_run(&self) -> u64 {
        self.epochs
    }

    /// The epoch-parallel executor's safety horizon for `config`: the
    /// minimum delay before any event in one strip can influence MAC
    /// state in another, or `None` when the config cannot run parallel
    /// epochs (single effective strip, or instant carrier sensing).
    ///
    /// The horizon is the carrier-sense latency: a cross-strip influence
    /// needs a transmission, and a transmission begun at `t` first
    /// touches any other host's MAC at `t + cs_delay` (its own strip
    /// included — neighboring strips only later or equal, which is all
    /// the executor needs).
    pub fn epoch_horizon(config: &SimConfig) -> Option<manet_sim_engine::SimDuration> {
        let shard_map = ShardMap::new(
            config.map().bounds().width(),
            config.radio_radius,
            config.shards,
        );
        (shard_map.shards() > 1 && !config.cs_delay.is_zero()).then_some(config.cs_delay)
    }

    /// Consumes the (finished or paused) world, harvesting the per-host
    /// stacks into the aggregated [`SimReport`].
    pub fn into_report(self) -> SimReport {
        let mut mac = MacStats::default();
        let (joins, leaves) = self.pure.net_totals();
        let mut net = NetActivity {
            hello_sent: self.hello_frames,
            hello_received: self.hello_rx,
            neighbor_joins: joins,
            neighbor_leaves: leaves,
        };
        for node in &self.nodes {
            mac.merge(node.mac.stats());
        }
        let scenario_counts = self.scenario.as_ref().map(|st| {
            mac.merge(&st.retired_mac);
            net.neighbor_joins += st.retired_joins;
            net.neighbor_leaves += st.retired_leaves;
            st.counts
        });

        let outcomes = self.metrics.outcomes();
        let (re, srb, latency) = summarize(&outcomes);
        SimReport {
            scheme: self.cfg.scheme.label(),
            map: self.map.label(),
            broadcasts: self.issued,
            reachability: re,
            saved_rebroadcasts: srb,
            avg_latency_s: latency,
            hello_packets: self.hello_frames,
            data_frames: self.data_frames,
            collisions: self.medium.collision_count(),
            losses: self.medium.loss_counters(),
            mac,
            net,
            suppression: self.pure.suppression(),
            profile: self.profiler.is_enabled().then(|| self.profiler.profile()),
            sim_seconds: self.last_event_at.as_secs_f64(),
            per_broadcast: outcomes,
            scenario: scenario_counts,
        }
    }

    fn handle(&mut self, now: SimTime, event: Event, observer: &mut dyn SimObserver) {
        match event {
            Event::MobilityTurn { node } => {
                let mobility = &mut self.nodes[node.index()].mobility;
                mobility.advance(now);
                self.segments[node.index()] = mobility.segment();
                // The host's trajectory changed; drop the snapshot (and
                // the grid synced to it) so a later query at this same
                // timestamp re-evaluates it.
                self.snap_at = None;
                self.grid_at = None;
                if let Some(next) = self.nodes[node.index()].mobility.next_change() {
                    self.schedule_event(next, Event::MobilityTurn { node });
                }
            }
            Event::HelloTimer { node } => {
                self.dispatch(now, PureAction::HelloPrepare { node }, observer)
            }
            Event::MacTimer {
                node,
                generation,
                epoch,
            } => {
                // A timer that outlived its MAC (host deactivated since it
                // was armed) must not reach the replacement MAC.
                if epoch != self.current_epoch(node) {
                    return;
                }
                let actions = self.nodes[node.index()].mac.on_timer(generation, now);
                self.process_mac_action(node, actions, now, observer);
            }
            Event::TxEnd { frame } => self.finish_transmission(frame, now, observer),
            Event::AssessmentDone { node, packet } => {
                self.dispatch(now, PureAction::AssessmentFired { node, packet }, observer)
            }
            Event::IssueBroadcast => self.issue_broadcast(now, observer),
            Event::CarrierBatch { slot, busy } => {
                let hearers = self.carrier_batches.remove(slot);
                for &node in &hearers {
                    self.apply_carrier_change(node, busy, now, observer);
                }
                // Recycle the hearer list (keeping its capacity) for the
                // next delayed report.
                self.carrier_pool.push(hearers);
            }
            Event::Scenario { index } => self.apply_scenario_action(index, now, observer),
        }
    }

    // ---- the dispatcher ---------------------------------------------------

    /// Feeds one action through the pure models and executes the effects
    /// it requests, in order. The single entry point for protocol state
    /// changes — and therefore the single tap point for recording.
    fn dispatch(&mut self, now: SimTime, action: PureAction<'_>, observer: &mut dyn SimObserver) {
        if let Some(rec) = &mut self.recorder {
            rec.action(now, &action);
        }
        let mut fx = std::mem::take(&mut self.fx);
        debug_assert!(fx.is_empty(), "dispatch re-entered through an effect");
        self.pure.step(now, &action, &mut fx);
        for effect in fx.drain(..) {
            self.apply_effect(now, effect, observer);
        }
        self.fx = fx;
    }

    /// Dispatches an action that must not produce effects (`FrameSent`,
    /// `Originate`). Safe to call from inside effect application — it
    /// uses a buffer disjoint from [`dispatch`](Self::dispatch)'s.
    fn dispatch_leaf(&mut self, now: SimTime, action: PureAction<'_>) {
        if let Some(rec) = &mut self.recorder {
            rec.action(now, &action);
        }
        self.pure.step(now, &action, &mut self.fx_leaf);
        debug_assert!(self.fx_leaf.is_empty(), "leaf action produced effects");
        self.fx_leaf.clear();
    }

    /// Appends one scheme decision to the trace, if recording.
    fn record_decision(
        &mut self,
        at: SimTime,
        node: NodeId,
        packet: PacketId,
        kind: DecisionKind,
        reason: Option<SuppressReason>,
    ) {
        if let Some(rec) = &mut self.recorder {
            rec.decision(DecisionRecord {
                at,
                node,
                packet,
                kind,
                reason,
            });
        }
    }

    /// Executes one effect requested by a pure step. This is where the
    /// queue, the RNG streams, the MACs, and the metrics are touched on
    /// the pure models' behalf.
    fn apply_effect(&mut self, now: SimTime, effect: Effect, observer: &mut dyn SimObserver) {
        match effect {
            Effect::AccelerateHello { node, target } => {
                // Under the dynamic hello policy, membership churn may
                // shorten the host's hello interval; if the recomputed
                // interval would fire before the currently scheduled
                // beacon, pull the beacon forward. (The paper notes "each
                // host's hello interval may change dynamically".)
                let Some((key, at)) = self.nodes[node.index()].hello_pending else {
                    return;
                };
                if target < at {
                    self.queue.cancel(key);
                    let key = self.schedule_event(target, Event::HelloTimer { node });
                    self.nodes[node.index()].hello_pending = Some((key, target));
                }
            }
            Effect::EmitHello { node, interval } => {
                let include_neighbors = self.cfg.scheme.needs_two_hop_hellos();
                let mut neighbors = self.hello_pool.pop().unwrap_or_default();
                neighbors.clear();
                if include_neighbors {
                    self.pure.neighbor_ids_into(node, &mut neighbors);
                }
                let payload = HelloPayload {
                    sender: node,
                    interval,
                    neighbors,
                };
                let bytes = payload.air_bytes();
                let n = &mut self.nodes[node.index()];
                let handle = n.queue_payload(Payload::Hello(payload));
                let actions = n.mac.enqueue(handle, bytes, now);
                self.process_mac_action(node, actions, now, observer);
                // Re-arm with a small jitter so beacons do not phase-lock.
                let jitter_num = self.proto_rng.gen_range_u32(95..106);
                let next = interval * u64::from(jitter_num) / 100;
                let at = now + next;
                let key = self.schedule_event(at, Event::HelloTimer { node });
                self.nodes[node.index()].hello_pending = Some((key, at));
            }
            Effect::FirstHeard { node, packet } => {
                observer.event(&TraceEvent::FirstHeard {
                    node,
                    packet,
                    at: now,
                });
            }
            Effect::InhibitFirstHear {
                node,
                packet,
                reason,
            } => {
                observer.event(&TraceEvent::Decision {
                    node,
                    packet,
                    kind: DecisionKind::InhibitedOnFirstHear,
                    reason,
                    at: now,
                });
                self.record_decision(
                    now,
                    node,
                    packet,
                    DecisionKind::InhibitedOnFirstHear,
                    reason,
                );
                self.metrics.rebroadcast_inhibited(packet, now);
            }
            Effect::ScheduleAssessment { node, packet } => {
                // S2: random assessment delay of 0-31 slots. The slots
                // count after carrier sensing and DIFS (the standard
                // random-assessment-delay composition), so hosts that
                // drew different slot numbers access the medium at
                // distinct, carrier-separable instants, while same-slot
                // draws contend - the paper's Fig. 2 contention scenario.
                let slots = self.proto_rng.gen_range_u32(0..32);
                let delay = self.cfg.cs_delay + manet_mac::timing::DIFS + SLOT * u64::from(slots);
                let key = self.schedule_event(now + delay, Event::AssessmentDone { node, packet });
                self.pure.set_assessment_key(node, packet.seq, key);
                observer.event(&TraceEvent::Decision {
                    node,
                    packet,
                    kind: DecisionKind::Scheduled,
                    reason: None,
                    at: now,
                });
                self.record_decision(now, node, packet, DecisionKind::Scheduled, None);
            }
            Effect::CancelAssessment {
                node,
                packet,
                key,
                reason,
            } => {
                self.queue.cancel(key);
                observer.event(&TraceEvent::Decision {
                    node,
                    packet,
                    kind: DecisionKind::Cancelled,
                    reason,
                    at: now,
                });
                self.record_decision(now, node, packet, DecisionKind::Cancelled, reason);
                self.metrics.rebroadcast_inhibited(packet, now);
            }
            Effect::CancelQueued {
                node,
                packet,
                handle,
                reason,
            } => {
                let n = &mut self.nodes[node.index()];
                let cancelled = n.mac.cancel(handle);
                debug_assert!(cancelled, "queued frame must still be cancellable");
                n.take_payload(handle);
                observer.event(&TraceEvent::Decision {
                    node,
                    packet,
                    kind: DecisionKind::Cancelled,
                    reason,
                    at: now,
                });
                self.record_decision(now, node, packet, DecisionKind::Cancelled, reason);
                self.metrics.rebroadcast_inhibited(packet, now);
            }
            Effect::EnqueueRebroadcast { node, packet } => {
                // S2 continued: submit to the MAC, then patch the real
                // frame handle over the ledger's placeholder *before*
                // running the MAC action — an immediate `BeginTx` marks
                // the packet done via `FrameSent`, which must find the
                // queued entry intact.
                let n = &mut self.nodes[node.index()];
                let handle = n.queue_payload(Payload::Broadcast(packet));
                let bytes = self.cfg.packet_bytes;
                let actions = n.mac.enqueue(handle, bytes, now);
                self.pure.set_queued_handle(node, packet.seq, handle);
                self.process_mac_action(node, actions, now, observer);
            }
            Effect::AbandonAssessments { keys } => {
                for key in keys {
                    let cancelled = self.queue.cancel(key);
                    debug_assert!(cancelled, "assessment key was already spent");
                }
            }
            Effect::RetireCounters { joins, leaves } => {
                let st = self.scenario_mut();
                st.retired_joins += joins;
                st.retired_leaves += leaves;
            }
        }
    }

    /// Ensures `snap_positions` holds every host's position at `now`.
    /// Mobility models are evaluated once per distinct timestamp; every
    /// further query at the same `now` is free.
    ///
    /// On sharded runs with enough hosts the dense evaluation fans out
    /// over the persistent worker pool. Each job writes a disjoint chunk
    /// of the buffer with a pure function of the (shared, read-only)
    /// segments, so the result is independent of job-to-thread
    /// assignment.
    fn refresh_positions(&mut self, now: SimTime) {
        if self.snap_at == Some(now) {
            return;
        }
        let bounds = self.map.bounds();
        let n = self.segments.len();
        if self.shard_map.shards() > 1 && n >= PARALLEL_REFRESH_MIN_HOSTS {
            let jobs = self.shard_map.shards().min(8);
            let chunk = n.div_ceil(jobs);
            let mut snap = std::mem::take(&mut self.snap_positions);
            snap.resize(n, Vec2::ZERO);
            {
                let out = SharedSliceMut::new(&mut snap);
                let segments = &self.segments;
                self.pool.run(jobs, &|j| {
                    let start = (j * chunk).min(n);
                    let end = ((j + 1) * chunk).min(n);
                    // SAFETY: job `j` writes only `start..end`, disjoint
                    // across jobs.
                    let dst = unsafe { out.slice(start, end) };
                    for (s, p) in segments[start..end].iter().zip(dst) {
                        *p = s.position_at(now, bounds);
                    }
                });
            }
            self.snap_positions = snap;
        } else {
            self.snap_positions.clear();
            self.snap_positions
                .extend(self.segments.iter().map(|s| s.position_at(now, bounds)));
        }
        self.snap_at = Some(now);
    }

    /// Rebuilds strip membership from fresh positions once per
    /// [`STRIP_SYNC_INTERVAL`] of simulated time. The sync is *not* an
    /// event: it consumes no sequence number and draws no randomness, so
    /// it cannot perturb the delivered event stream — it only re-balances
    /// which strip scans which hosts.
    fn maybe_strip_sync(&mut self, now: SimTime) {
        if now < self.strip_sync_at + STRIP_SYNC_INTERVAL {
            return;
        }
        self.refresh_positions(now);
        for hosts in &mut self.strip_hosts {
            hosts.clear();
        }
        for (i, &p) in self.snap_positions.iter().enumerate() {
            let s = self.shard_map.shard_of_x(p.x);
            self.strip_of_host[i] = s as u32;
            self.strip_hosts[s].push((p, i as u32));
        }
        for hosts in &mut self.strip_hosts {
            hosts.sort_unstable_by(|a, b| a.0.y.total_cmp(&b.0.y).then(a.1.cmp(&b.1)));
        }
        self.strip_sync_at = now;
    }

    /// Strip-lazy replacement for the brute-force range scan on sharded
    /// runs: prefilters the strips within reach of `of` against the
    /// sync-time position cache, then runs the exact squared-distance
    /// test on the survivors' *fresh* positions. The result is
    /// byte-identical to [`manet_phy::in_range_into`] over a full
    /// snapshot (ascending ids, identical arithmetic on identical fresh
    /// positions); only the number of segment evaluations changes — a
    /// radius-sized disc's worth instead of whole strips'.
    ///
    /// Window correctness: a host within `radius` of the transmitter now
    /// sat, at the last sync, within `radius + drift` of the
    /// transmitter's *current* position (it moved at most
    /// `max_speed × elapsed` since; `DRIFT_SLACK` absorbs the rounding of
    /// that product), so the coarse test against the sync-time positions
    /// keeps every host that could be in range, and the same inflated
    /// window bounds which strips — and which y-slice of each strip —
    /// can hold candidates. By the same bound, a candidate within
    /// `radius - drift` at the sync cannot have escaped the disc, so
    /// membership is already decided for it; only the remaining annulus
    /// of uncertainty needs a position evaluated at `now` for the exact
    /// test. Downstream readers of [`Self::snap_positions`] see fresh
    /// listener entries only where they look: capture-mode signal
    /// strengths and scenario link faults are the sole consumers, so the
    /// certain candidates' evaluations are skipped unless one of those
    /// features is on.
    #[cfg_attr(simlint, hot_path)]
    fn in_range_strips(&mut self, now: SimTime, of: NodeId, out: &mut Vec<NodeId>) {
        debug_assert!(
            !self.shard_queues.is_empty(),
            "strip scan on a sequential run"
        );
        self.maybe_strip_sync(now);
        let bounds = self.map.bounds();
        let center = if self.snap_at == Some(now) {
            self.snap_positions[of.index()]
        } else {
            let p = self.segments[of.index()].position_at(now, bounds);
            self.snap_positions[of.index()] = p;
            p
        };
        let radius = self.cfg.radio_radius;
        let drift = self.max_speed_ms
            * now
                .saturating_duration_since(self.strip_sync_at)
                .as_secs_f64()
            + DRIFT_SLACK;
        let reach = radius + drift;
        let (lo, hi) = self
            .shard_map
            .strips_overlapping(center.x - reach, center.x + reach);
        out.clear();
        let m2 = reach * reach;
        let r2 = radius * radius;
        // Inside this radius at the sync, a host cannot have left the
        // disc since (negative sentinel when drift swallows the radius:
        // nothing is certain, every candidate takes the exact test).
        let inner = radius - drift;
        let inner2 = if inner > 0.0 { inner * inner } else { -1.0 };
        let needs_positions = self.cfg.capture.is_some() || self.scenario.is_some();
        let me = of.index() as u32;
        let lo_y = center.y - reach;
        let hi_y = center.y + reach;
        for s in lo..=hi {
            let hosts = &self.strip_hosts[s];
            let start = hosts.partition_point(|&(p, _)| p.y < lo_y);
            for &(sync_pos, h) in &hosts[start..] {
                if sync_pos.y > hi_y {
                    break;
                }
                if h == me {
                    continue;
                }
                let d2 = sync_pos.distance_squared_to(center);
                if d2 > m2 {
                    continue;
                }
                if d2 > inner2 {
                    let p = self.segments[h as usize].position_at(now, bounds);
                    self.snap_positions[h as usize] = p;
                    if p.distance_squared_to(center) > r2 {
                        continue;
                    }
                } else if needs_positions {
                    self.snap_positions[h as usize] =
                        self.segments[h as usize].position_at(now, bounds);
                }
                self.range_bits[(h >> 6) as usize] |= 1u64 << (h & 63);
            }
        }
        // The strips were visited in x order and each strip in y order, so
        // the hits land in spatial order; the id-indexed bitmap reads them
        // back ascending — the same order the grid query produces — without
        // sorting. Words are zeroed as they are consumed, keeping the map
        // clean for the next query.
        for (w, word) in self.range_bits.iter_mut().enumerate() {
            let mut bits = *word;
            if bits == 0 {
                continue;
            }
            *word = 0;
            let base = (w as u32) << 6;
            while bits != 0 {
                out.push(NodeId::new(base + bits.trailing_zeros()));
                bits &= bits - 1;
            }
        }
    }

    /// Ensures the spatial grid indexes the position snapshot at `now`.
    /// Re-indexing costs an O(hosts) pass, so only the multi-query
    /// consumers (flood reachability, oracle neighbor views) sync the
    /// grid; single-query paths scan the snapshot directly instead.
    fn refresh_grid(&mut self, now: SimTime) {
        self.refresh_positions(now);
        if self.grid_at == Some(now) {
            return;
        }
        self.grid.update(&self.snap_positions);
        self.grid_at = Some(now);
    }

    // ---- workload -------------------------------------------------------

    fn issue_broadcast(&mut self, now: SimTime, observer: &mut dyn SimObserver) {
        // Under a scenario only active hosts can originate traffic: the
        // draw selects among them by rank so the workload stream stays
        // deterministic for a given membership history. Without a scenario
        // the original draw is preserved bit-for-bit.
        let source = if let Some(st) = &self.scenario {
            let rank = self.workload_rng.gen_range_u32(0..st.active_count);
            let id = st
                .active
                .iter()
                .enumerate()
                .filter(|(_, &up)| up)
                .nth(rank as usize)
                .expect("active_count matches the membership vector")
                .0;
            NodeId::new(id as u32)
        } else {
            NodeId::new(self.workload_rng.gen_range_u32(0..self.cfg.hosts))
        };
        let packet = PacketId::new(source, self.next_seq);
        self.next_seq += 1;
        self.issued += 1;

        self.refresh_grid(now);
        let mut reachable_set = std::mem::take(&mut self.scratch_reachable);
        if let Some(st) = &self.scenario {
            // Hosts that are down cannot relay or receive: reachability
            // (`e` in the RE metric) is computed over the live topology.
            self.grid.reachable_masked_into(
                &self.snap_positions,
                source,
                self.cfg.radio_radius,
                &st.active,
                &mut reachable_set,
            );
        } else {
            self.grid.reachable_into(
                &self.snap_positions,
                source,
                self.cfg.radio_radius,
                &mut reachable_set,
            );
        }
        let reachable = reachable_set.len() as u32;
        if self.scenario.is_some() {
            self.metrics
                .broadcast_issued_scoped(packet, source, &reachable_set, now);
        } else {
            self.metrics
                .broadcast_issued(packet, source, reachable, now);
        }
        self.scratch_reachable = reachable_set;
        observer.event(&TraceEvent::BroadcastIssued {
            packet,
            source,
            reachable,
            at: now,
        });

        // The source transmits unconditionally: queue straight to its MAC.
        self.dispatch_leaf(
            now,
            PureAction::Originate {
                node: source,
                packet,
            },
        );
        let node = &mut self.nodes[source.index()];
        let handle = node.queue_payload(Payload::Broadcast(packet));
        let bytes = self.cfg.packet_bytes;
        let actions = node.mac.enqueue(handle, bytes, now);
        self.process_mac_action(source, actions, now, observer);

        if self.issued < self.cfg.broadcasts {
            let gap = self
                .workload_rng
                .gen_duration_up_to(self.cfg.max_interarrival);
            self.schedule_event(now + gap, Event::IssueBroadcast);
        } else {
            self.stop_at = now + self.cfg.grace;
        }
    }

    // ---- HELLO beaconing ------------------------------------------------

    fn hello_received(
        &mut self,
        node: NodeId,
        payload: &HelloPayload,
        now: SimTime,
        observer: &mut dyn SimObserver,
    ) {
        self.hello_rx += 1;
        self.dispatch(
            now,
            PureAction::HelloHeard {
                node,
                sender: payload.sender,
                interval: payload.interval,
                neighbors: &payload.neighbors,
            },
            observer,
        );
    }

    // ---- MAC / channel wiring --------------------------------------------

    fn process_mac_action(
        &mut self,
        node: NodeId,
        action: Option<MacAction>,
        now: SimTime,
        observer: &mut dyn SimObserver,
    ) {
        match action {
            Some(MacAction::StartTimer { delay, generation }) => {
                let epoch = self.current_epoch(node);
                let key = self.schedule_event(
                    now + delay,
                    Event::MacTimer {
                        node,
                        generation,
                        epoch,
                    },
                );
                if self.epoch_par {
                    // Track the node's (single) live timer so busy-freeze
                    // and deactivation can cancel it instead of letting a
                    // stale delivery float between queues. A previous
                    // entry should already have been cancelled or
                    // delivered; cancel defensively so the invariant
                    // holds even if a new MAC path arms over a live one.
                    let strip = self.strip_of_host[node.index()];
                    let previous = self.pending_timer[node.index()].replace((strip, key));
                    if let Some((queue, old)) = previous {
                        self.shard_queues[queue as usize].cancel(old);
                    }
                }
            }
            Some(MacAction::BeginTx {
                handle,
                payload_bytes,
            }) => self.begin_transmission(node, handle, payload_bytes, now, observer),
            None => {}
        }
    }

    #[cfg_attr(simlint, hot_path)]
    fn begin_transmission(
        &mut self,
        node: NodeId,
        handle: FrameHandle,
        payload_bytes: usize,
        now: SimTime,
        observer: &mut dyn SimObserver,
    ) {
        let payload = self.nodes[node.index()].take_payload(handle);
        match &payload {
            Payload::Broadcast(packet) => {
                self.data_frames += 1;
                // On the air: no longer cancellable.
                self.dispatch_leaf(
                    now,
                    PureAction::FrameSent {
                        node,
                        packet: *packet,
                    },
                );
            }
            Payload::Hello(_) => self.hello_frames += 1,
        }
        let mut listeners = std::mem::take(&mut self.scratch_listeners);
        if self.shard_queues.is_empty() {
            self.refresh_positions(now);
            // A transmission start makes exactly one range query at this
            // timestamp, so the O(hosts) snapshot scan beats re-indexing
            // the grid (also O(hosts)) just to make one O(1) cell lookup.
            manet_phy::in_range_into(
                &self.snap_positions,
                node,
                self.cfg.radio_radius,
                &mut listeners,
            );
        } else {
            // Sharded runs refresh and scan only the strips within reach
            // of the transmitter — same output, a fraction of the segment
            // evaluations.
            self.in_range_strips(now, node, &mut listeners);
        }
        if let Some(st) = &self.scenario {
            // Hosts that are down have no radio: they neither sense this
            // frame's carrier nor receive it.
            listeners.retain(|l| st.active[l.index()]);
        }
        observer.event(&TraceEvent::FrameStarted {
            node,
            kind: match &payload {
                Payload::Broadcast(packet) => FrameKind::Broadcast(*packet),
                Payload::Hello(_) => FrameKind::Hello,
            },
            listeners: listeners.len() as u32,
            at: now,
        });
        let end = now + frame_airtime(payload_bytes);
        let own = self.snap_positions[node.index()];
        let mut carrier = std::mem::take(&mut self.scratch_begin_carrier);
        let frame = if let Some(capture) = self.cfg.capture {
            // Received power falls off as (r / d)^alpha, normalized so a
            // listener at the coverage edge receives strength 1.
            let mut signals = std::mem::take(&mut self.scratch_signals);
            signals.clear();
            signals.extend(listeners.iter().map(|&l| {
                let d = self.snap_positions[l.index()].distance_to(own).max(1.0);
                manet_phy::Listener {
                    node: l,
                    signal: (self.cfg.radio_radius / d).powf(capture.path_loss_exponent),
                }
            }));
            let frame = self.medium.begin_transmission_with_signals_into(
                node,
                now,
                end,
                &signals,
                &mut carrier,
            );
            self.scratch_signals = signals;
            frame
        } else {
            self.medium
                .begin_transmission_into(node, now, end, &listeners, &mut carrier)
        };
        // Scenario link faults destroy individual deliveries the moment
        // the frame starts (the loss is decided per-link, not per-frame).
        if self
            .scenario
            .as_ref()
            .is_some_and(ScenarioState::any_fault_open)
        {
            self.apply_link_faults(frame, node, &listeners);
        }
        self.scratch_listeners = listeners;
        self.schedule_event(end, Event::TxEnd { frame });
        let slot = usize::try_from(frame.as_u64()).expect("frame slot out of range");
        if slot >= self.in_flight.len() {
            self.in_flight.resize_with(slot + 1, || None);
        }
        debug_assert!(self.in_flight[slot].is_none(), "frame slot still occupied");
        self.in_flight[slot] = Some(InFlight {
            sender: node,
            payload,
            sent_from: own,
            sender_epoch: self.current_epoch(node),
        });
        // Busy-carrier fan-out cannot re-enter this function: a MAC that
        // senses carrier never starts a transmission in response (it only
        // freezes backoff), so the scratch buffers above are settled.
        self.deliver_carrier_changes(&carrier, true, now, observer);
        self.scratch_begin_carrier = carrier;
    }

    /// Routes one frame's carrier-sense transitions to the hearers' MACs,
    /// applying the configured CCA latency. With a nonzero delay the whole
    /// fan-out rides a single [`Event::CarrierBatch`]: every per-host
    /// report would fire at the same instant with consecutive sequence
    /// numbers anyway, so one event delivering them in list order is
    /// indistinguishable from scheduling them individually — at a fraction
    /// of the event-queue traffic (carrier reports are over half of all
    /// events in a storm).
    #[cfg_attr(simlint, hot_path)]
    fn deliver_carrier_changes(
        &mut self,
        changes: &[CarrierChange],
        busy: bool,
        now: SimTime,
        observer: &mut dyn SimObserver,
    ) {
        if changes.is_empty() {
            return;
        }
        if self.cfg.cs_delay.is_zero() {
            for &CarrierChange { node, .. } in changes {
                self.apply_carrier_change(node, busy, now, observer);
            }
        } else {
            let mut hearers = self.carrier_pool.pop().unwrap_or_default();
            hearers.clear();
            hearers.extend(changes.iter().map(|c| c.node));
            let slot = self.carrier_batches.insert(hearers);
            self.schedule_event(now + self.cfg.cs_delay, Event::CarrierBatch { slot, busy });
        }
    }

    /// Feeds one carrier transition to a host's MAC.
    #[cfg_attr(simlint, hot_path)]
    fn apply_carrier_change(
        &mut self,
        node: NodeId,
        busy: bool,
        now: SimTime,
        observer: &mut dyn SimObserver,
    ) {
        // A host that deactivated after the report was scheduled has no
        // radio; its replacement MAC syncs its own carrier view on rejoin.
        if !self.is_active(node) {
            return;
        }
        if busy && self.epoch_par {
            // Busy invalidates any armed DIFS/backoff countdown (the MAC
            // bumps its generation below). Cancel the tracked timer so the
            // stale delivery never floats in a shard queue; whenever the
            // node holds a live timer it is in Difs/Backoff, so the slot
            // is `Some` exactly when there is something to cancel.
            if let Some((queue, key)) = self.pending_timer[node.index()].take() {
                self.shard_queues[queue as usize].cancel(key);
            }
        }
        let mac = &mut self.nodes[node.index()].mac;
        let action = if busy {
            mac.on_medium_busy(now)
        } else {
            mac.on_medium_idle(now)
        };
        self.process_mac_action(node, action, now, observer);
    }

    #[cfg_attr(simlint, hot_path)]
    fn finish_transmission(
        &mut self,
        frame: FrameId,
        now: SimTime,
        observer: &mut dyn SimObserver,
    ) {
        let mut deliveries = std::mem::take(&mut self.scratch_deliveries);
        let mut carrier = std::mem::take(&mut self.scratch_end_carrier);
        let source = self
            .medium
            .end_transmission_into(frame, now, &mut deliveries, &mut carrier);
        let slot = usize::try_from(frame.as_u64()).expect("frame slot out of range");
        let in_flight = self.in_flight[slot].take().expect("unknown frame finished");
        debug_assert_eq!(source, in_flight.sender);

        // The transmitter's MAC enters post-backoff. This may immediately
        // start the host's next queued frame — which is why `begin` and
        // `finish` use disjoint scratch buffers. A sender that deactivated
        // mid-flight is skipped: its current MAC never started this frame.
        if in_flight.sender_epoch == self.current_epoch(source) {
            let actions = self.nodes[source.index()].mac.on_tx_end(now);
            self.process_mac_action(source, actions, now, observer);
        }

        if let Payload::Broadcast(packet) = in_flight.payload {
            self.metrics.transmission_finished(packet, source, now);
        }
        let decoded = deliveries.iter().filter(|d| d.decoded).count() as u32;
        observer.event(&TraceEvent::FrameFinished {
            node: source,
            kind: match &in_flight.payload {
                Payload::Broadcast(packet) => FrameKind::Broadcast(*packet),
                Payload::Hello(_) => FrameKind::Hello,
            },
            decoded,
            lost: deliveries.len() as u32 - decoded,
            at: now,
        });

        // Deliver decoded copies to the upper layer. A listener that went
        // down while the frame was airing has no radio left to decode it.
        for delivery in &deliveries {
            if !delivery.decoded || !self.is_active(delivery.to) {
                continue;
            }
            match &in_flight.payload {
                Payload::Hello(h) => self.hello_received(delivery.to, h, now, observer),
                Payload::Broadcast(packet) => {
                    self.packet_heard(
                        delivery.to,
                        *packet,
                        source,
                        in_flight.sent_from,
                        now,
                        observer,
                    );
                }
            }
        }

        // A beacon's neighbor list goes back to the pool for the next one.
        if let Payload::Hello(hello) = in_flight.payload {
            self.hello_pool.push(hello.neighbors);
        }

        // Carrier-sense idle transitions may resume frozen backoffs.
        self.deliver_carrier_changes(&carrier, false, now, observer);
        self.scratch_deliveries = deliveries;
        self.scratch_end_carrier = carrier;
    }

    // ---- scheme-level packet handling ------------------------------------

    fn packet_heard(
        &mut self,
        node: NodeId,
        packet: PacketId,
        sender: NodeId,
        sender_pos: Vec2,
        now: SimTime,
        observer: &mut dyn SimObserver,
    ) {
        self.metrics.packet_received(packet, node);
        let own_position = self.segments[node.index()].position_at(now, self.map.bounds());

        // Oracle-mode neighbor views are geometry, which only the
        // dispatcher can evaluate; they ride into the pure step on the
        // action. HELLO-mode views come from the models' own tables.
        let needs_count = self.cfg.scheme.needs_neighbor_count();
        let needs_two_hop = self.cfg.scheme.needs_two_hop_hellos();
        let use_oracle = matches!(self.cfg.neighbor_info, NeighborInfo::Oracle)
            && (needs_count || needs_two_hop);
        let mut neighbors = std::mem::take(&mut self.scratch_neighbors);
        let mut sender_neighbors = std::mem::take(&mut self.scratch_sender_neighbors);
        neighbors.clear();
        sender_neighbors.clear();
        let oracle = if use_oracle {
            if self.shard_queues.is_empty() {
                self.refresh_grid(now);
                self.grid.in_range_into(
                    &self.snap_positions,
                    node,
                    self.cfg.radio_radius,
                    &mut neighbors,
                );
                let neighbor_count = neighbors.len();
                if needs_two_hop {
                    self.grid.in_range_into(
                        &self.snap_positions,
                        sender,
                        self.cfg.radio_radius,
                        &mut sender_neighbors,
                    );
                } else {
                    neighbors.clear();
                }
                Some(OracleView {
                    neighbor_count,
                    neighbors: &neighbors,
                    sender_neighbors: &sender_neighbors,
                })
            } else {
                // Sharded runs answer oracle views with the strip scan —
                // byte-identical to the grid query, without the O(hosts)
                // grid re-index per timestamp.
                self.in_range_strips(now, node, &mut neighbors);
                let neighbor_count = neighbors.len();
                if needs_two_hop {
                    self.in_range_strips(now, sender, &mut sender_neighbors);
                } else {
                    neighbors.clear();
                }
                Some(OracleView {
                    neighbor_count,
                    neighbors: &neighbors,
                    sender_neighbors: &sender_neighbors,
                })
            }
        } else {
            None
        };

        // The random draw happens for every heard copy, decision or not,
        // to keep the protocol RNG stream independent of scheme choices.
        let random_unit = self.proto_rng.gen_unit_f64();
        self.dispatch(
            now,
            PureAction::PacketHeard {
                node,
                packet,
                sender,
                sender_position: sender_pos,
                own_position,
                random_unit,
                oracle,
            },
            observer,
        );
        self.scratch_neighbors = neighbors;
        self.scratch_sender_neighbors = sender_neighbors;
    }

    // ---- scenario: host churn & fault injection --------------------------

    fn scenario_mut(&mut self) -> &mut ScenarioState {
        self.scenario
            .as_mut()
            .expect("scenario event without scenario state")
    }

    /// Whether this run beacons HELLOs at all (mirrors the construction-
    /// time decision in [`World::new`]).
    fn hellos_enabled(&self) -> bool {
        matches!(self.cfg.neighbor_info, NeighborInfo::Hello(_))
            && (self.cfg.scheme.needs_neighbor_count() || self.cfg.scheme.needs_two_hop_hellos())
    }

    /// Applies the scenario timeline entry at `index`.
    fn apply_scenario_action(&mut self, index: u32, now: SimTime, observer: &mut dyn SimObserver) {
        let action = *self.scenario_mut().timeline.get(index as usize).1;
        match action {
            WorldAction::Leave { host } => self.deactivate_host(host, false, now, observer),
            WorldAction::Crash { host } => self.deactivate_host(host, true, now, observer),
            WorldAction::Join { host } => self.reactivate_host(index, host, false, now, observer),
            WorldAction::Recover { host } => self.reactivate_host(index, host, true, now, observer),
            WorldAction::BlackoutStart { a, b } => self.scenario_mut().blackouts.push((a, b)),
            WorldAction::BlackoutEnd { a, b } => {
                let st = self.scenario_mut();
                let pos = st
                    .blackouts
                    .iter()
                    .position(|&open| open == (a, b))
                    .expect("blackout end without a matching start");
                st.blackouts.remove(pos);
            }
            WorldAction::NoiseStart { drop_probability } => {
                self.scenario_mut().noise.push(drop_probability)
            }
            WorldAction::NoiseEnd { drop_probability } => {
                let st = self.scenario_mut();
                let pos = st
                    .noise
                    .iter()
                    .position(|open| open.to_bits() == drop_probability.to_bits())
                    .expect("noise end without a matching start");
                st.noise.remove(pos);
            }
            WorldAction::PartitionStart { region } => self.scenario_mut().partitions.push(region),
            WorldAction::PartitionEnd { region } => {
                let st = self.scenario_mut();
                let pos = st
                    .partitions
                    .iter()
                    .position(|open| *open == region)
                    .expect("partition end without a matching start");
                st.partitions.remove(pos);
            }
        }
    }

    /// Takes a host off the air: its radio stops hearing and sending, all
    /// of its cancellable protocol activity is abandoned, and (on a crash)
    /// its protocol state is wiped. Mobility continues — a parked radio
    /// still moves with its host.
    fn deactivate_host(
        &mut self,
        host: u32,
        crash: bool,
        now: SimTime,
        observer: &mut dyn SimObserver,
    ) {
        let node = NodeId::new(host);
        let idx = node.index();
        {
            let st = self.scenario_mut();
            debug_assert!(st.active[idx], "deactivating a host that is already down");
            st.active[idx] = false;
            st.active_count -= 1;
            st.node_epoch[idx] += 1;
            if crash {
                st.counts.crashes += 1;
            } else {
                st.counts.leaves += 1;
            }
        }
        // Silence the beacon.
        if let Some((key, _)) = self.nodes[idx].hello_pending.take() {
            self.queue.cancel(key);
        }
        // Parallel mode: the epoch bump above already makes any pending
        // MAC timer undeliverable; cancel it too so the tracked-timer
        // invariant (slot `Some` ⇔ one live timer in that queue) holds.
        if self.epoch_par {
            if let Some((queue, key)) = self.pending_timer[idx].take() {
                self.shard_queues[queue as usize].cancel(key);
            }
        }
        // Abandon per-packet scheme state: pending assessment wakeups come
        // back as an `AbandonAssessments` effect and are cancelled there;
        // MAC-queued rebroadcasts are handled by the queue sweep below
        // (which also covers HELLO frames). On a crash the models also
        // wipe the host's memory, retiring its counters.
        self.dispatch(now, PureAction::Deactivate { node, crash }, observer);
        // Sweep the MAC queue: every payload still in `outgoing` belongs
        // to a queued (not yet airing) frame — `begin_transmission` takes
        // the payload out the moment a frame hits the air.
        let slots: Vec<u32> = self.nodes[idx]
            .outgoing
            .iter()
            .map(|(slot, _)| slot)
            .collect();
        for slot in slots {
            let n = &mut self.nodes[idx];
            let cancelled = n.mac.cancel(FrameHandle(u64::from(slot)));
            debug_assert!(cancelled, "orphan payload was not queued in the MAC");
            if let Payload::Hello(hello) = n.outgoing.remove(slot) {
                self.hello_pool.push(hello.neighbors);
            }
        }
    }

    /// Puts a host back on the air with a factory-fresh radio/MAC, syncing
    /// its carrier view with whatever is currently airing around it.
    fn reactivate_host(
        &mut self,
        index: u32,
        host: u32,
        recover: bool,
        now: SimTime,
        observer: &mut dyn SimObserver,
    ) {
        let node = NodeId::new(host);
        let idx = node.index();
        // The host's final frame may still be draining out of its old
        // radio (a transmission cannot be recalled once started). Let it
        // finish before the replacement radio powers up; the retry is
        // deterministic and terminates because the downed MAC cannot
        // start anything new.
        if self.medium.is_transmitting(node) {
            self.schedule_event(
                now + manet_sim_engine::SimDuration::from_millis(5),
                Event::Scenario { index },
            );
            return;
        }
        let (mac_rng, phase) = {
            let st = self.scenario_mut();
            debug_assert!(!st.active[idx], "reactivating a host that is already up");
            st.active[idx] = true;
            st.active_count += 1;
            if recover {
                st.counts.recoveries += 1;
            } else {
                st.counts.joins += 1;
            }
            st.respawn_seq += 1;
            let mut rng = st.respawn_rng.fork(st.respawn_seq);
            let phase = rng.gen_duration_up_to(manet_sim_engine::SimDuration::from_secs(1));
            (rng, phase)
        };
        let old = std::mem::replace(&mut self.nodes[idx].mac, Dcf::new(mac_rng));
        self.scenario_mut().retired_mac.merge(old.stats());
        // The fresh MAC boots believing the medium is idle; correct that
        // if a neighbor's frame is airing over this host right now.
        if self.medium.is_carrier_busy(node) {
            let action = self.nodes[idx].mac.on_medium_busy(now);
            self.process_mac_action(node, action, now, observer);
        }
        if self.hellos_enabled() {
            let at = now + phase;
            let key = self.schedule_event(at, Event::HelloTimer { node });
            self.nodes[idx].hello_pending = Some((key, at));
        }
    }

    /// Destroys individual deliveries of the frame that just started, per
    /// the open fault windows: a link blackout beats a partition-boundary
    /// crossing beats an ambient-noise draw (the draw is only made when no
    /// deterministic fault already applies). Injection respects the
    /// medium's first-cause-wins rule, so a delivery already garbled by a
    /// collision stays a collision.
    fn apply_link_faults(&mut self, frame: FrameId, sender: NodeId, listeners: &[NodeId]) {
        enum FaultKind {
            Blackout,
            Partition,
            Noise,
        }
        let st = self.scenario.as_mut().expect("faults without a scenario");
        let s = sender.index() as u32;
        let sender_pos = self.snap_positions[sender.index()];
        // Independent overlapping bursts compose: survive all or drop.
        let noise_drop = 1.0 - st.noise.iter().fold(1.0, |acc, &p| acc * (1.0 - p));
        for &listener in listeners {
            let l = listener.index() as u32;
            let kind = if st
                .blackouts
                .iter()
                .any(|&(a, b)| (a == s && b == l) || (a == l && b == s))
            {
                Some(FaultKind::Blackout)
            } else if st.partitions.iter().any(|region| {
                let lp = self.snap_positions[listener.index()];
                region.contains(sender_pos.x, sender_pos.y) != region.contains(lp.x, lp.y)
            }) {
                Some(FaultKind::Partition)
            } else if noise_drop > 0.0 && st.rng.gen_unit_f64() < noise_drop {
                Some(FaultKind::Noise)
            } else {
                None
            };
            if let Some(kind) = kind {
                if self.medium.inject_loss(frame, listener) {
                    match kind {
                        FaultKind::Blackout => st.counts.blackout_drops += 1,
                        FaultKind::Partition => st.counts.partition_drops += 1,
                        FaultKind::Noise => st.counts.noise_drops += 1,
                    }
                }
            }
        }
    }
}
