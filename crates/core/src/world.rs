//! The full event-driven simulation: mobility + channel + MAC + HELLO +
//! broadcast scheme, wired together over the engine's event queue.
//!
//! One [`World`] executes one [`SimConfig`]: it issues the broadcast
//! workload, moves the hosts, runs the per-host DCF MACs against the
//! shared [`Medium`], delivers decoded frames up to the HELLO layer or the
//! configured broadcast scheme, and collects the paper's RE / SRB /
//! latency metrics.
//!
//! The layering mirrors the crates: lower layers are pure state machines
//! (`manet-mac::Dcf`, `manet-phy::Medium`, the schemes); this module is
//! the *only* place where they are connected and where geometry (who is
//! in range) is evaluated.

use std::collections::HashMap;

use manet_geom::{CoverageGrid, Vec2};
use manet_mac::timing::SLOT;
use manet_mac::{frame_airtime, Dcf, FrameHandle, MacAction, MacStats};
use manet_mobility::{
    grid_placement, line_placement, uniform_placement, Map, Mobility, RandomTurn, RandomTurnParams,
    RandomWaypoint, RandomWaypointParams, Stationary,
};
use manet_net::{HelloPayload, NeighborTable, VariationTracker};
use manet_phy::{in_range_of, reachable_from, FrameId, Medium, NodeId};
use manet_sim_engine::{EventKey, EventQueue, LoopProfiler, SimRng, SimTime};

use crate::config::{NeighborInfo, SimConfig};
use crate::ids::PacketId;
use crate::metrics::{summarize, MetricsCollector, NetActivity, SimReport, SuppressionCounts};
use crate::policy::{DuplicateDecision, FirstDecision, HearContext, RebroadcastPolicy};
use crate::schemes::PacketPolicy;
use crate::trace::{DecisionKind, FrameKind, NoopObserver, SimObserver, TraceEvent};

/// Events on the simulation queue.
#[derive(Debug)]
enum Event {
    /// A host's motion segment ended; take the next random turn.
    MobilityTurn { node: NodeId },
    /// Time for a host to emit its next HELLO beacon.
    HelloTimer { node: NodeId },
    /// A DCF timer (DIFS or backoff countdown) fired.
    MacTimer { node: NodeId, generation: u64 },
    /// A frame's airtime ended.
    TxEnd { frame: FrameId },
    /// A host's scheme-level assessment delay (S2's 0–31 slots) elapsed.
    AssessmentDone { node: NodeId, packet: PacketId },
    /// The workload issues the next broadcast request.
    IssueBroadcast,
    /// A delayed carrier-sense report reaches a host's MAC (models the
    /// CCA assessment latency).
    CarrierSense { node: NodeId, busy: bool },
}

impl Event {
    /// Static label used to attribute event-loop wall time by kind.
    fn kind(&self) -> &'static str {
        match self {
            Event::MobilityTurn { .. } => "mobility_turn",
            Event::HelloTimer { .. } => "hello_timer",
            Event::MacTimer { .. } => "mac_timer",
            Event::TxEnd { .. } => "tx_end",
            Event::AssessmentDone { .. } => "assessment_done",
            Event::IssueBroadcast => "issue_broadcast",
            Event::CarrierSense { .. } => "carrier_sense",
        }
    }
}

/// What a queued MAC frame carries.
#[derive(Debug, Clone)]
enum Payload {
    Broadcast(PacketId),
    Hello(HelloPayload),
}

/// A frame currently on the air.
#[derive(Debug)]
struct InFlight {
    sender: NodeId,
    payload: Payload,
    /// Sender position at transmission start (carried in the packet for
    /// the location-based schemes).
    sent_from: Vec2,
}

/// Progress of one packet at one host.
#[derive(Debug)]
enum PacketState {
    /// This host issued the packet; its original transmission is queued.
    SourcePending,
    /// In the S2 assessment delay; `key` cancels the wakeup.
    Assessing { key: EventKey, policy: PacketPolicy },
    /// Submitted to the MAC; cancellable until it hits the air.
    Queued {
        handle: FrameHandle,
        policy: PacketPolicy,
    },
    /// Transmitted or inhibited; nothing more will happen.
    Done,
}

/// The configured mobility model for one host.
#[derive(Debug)]
enum HostMobility {
    Turn(RandomTurn),
    Waypoint(RandomWaypoint),
    Fixed(Stationary),
}

impl Mobility for HostMobility {
    fn position_at(&self, t: SimTime) -> Vec2 {
        match self {
            HostMobility::Turn(m) => m.position_at(t),
            HostMobility::Waypoint(m) => m.position_at(t),
            HostMobility::Fixed(m) => m.position_at(t),
        }
    }

    fn next_change(&self) -> Option<SimTime> {
        match self {
            HostMobility::Turn(m) => m.next_change(),
            HostMobility::Waypoint(m) => m.next_change(),
            HostMobility::Fixed(m) => m.next_change(),
        }
    }

    fn advance(&mut self, now: SimTime) {
        match self {
            HostMobility::Turn(m) => m.advance(now),
            HostMobility::Waypoint(m) => m.advance(now),
            HostMobility::Fixed(m) => m.advance(now),
        }
    }
}

/// One mobile host.
#[derive(Debug)]
struct Node {
    mobility: HostMobility,
    mac: Dcf,
    table: NeighborTable,
    tracker: VariationTracker,
    packets: HashMap<PacketId, PacketState>,
    /// Payloads of frames sitting in the MAC queue.
    outgoing: HashMap<FrameHandle, Payload>,
    next_handle: u64,
    /// The scheduled next HELLO (cancellation key and fire time), so a
    /// dynamic-interval host can pull its beacon forward when churn rises.
    hello_pending: Option<(EventKey, SimTime)>,
}

impl Node {
    fn new_handle(&mut self) -> FrameHandle {
        let h = FrameHandle(self.next_handle);
        self.next_handle += 1;
        h
    }
}

/// A complete simulation run.
///
/// # Examples
///
/// ```
/// use broadcast_core::{SchemeSpec, SimConfig, World};
///
/// let config = SimConfig::builder(3, SchemeSpec::Flooding)
///     .hosts(20)
///     .broadcasts(3)
///     .seed(7)
///     .build();
/// let report = World::new(config).run();
/// assert_eq!(report.broadcasts, 3);
/// assert!(report.reachability > 0.0);
/// ```
#[derive(Debug)]
pub struct World {
    cfg: SimConfig,
    map: Map,
    queue: EventQueue<Event>,
    nodes: Vec<Node>,
    medium: Medium,
    metrics: MetricsCollector,
    coverage: CoverageGrid,
    /// Workload randomness: interarrivals and source selection.
    workload_rng: SimRng,
    /// Scheme-level randomness: assessment-slot draws, hello jitter.
    proto_rng: SimRng,
    in_flight: HashMap<FrameId, InFlight>,
    next_seq: u32,
    issued: u32,
    stop_at: SimTime,
    hello_frames: u64,
    data_frames: u64,
    /// HELLO beacons decoded by some listener.
    hello_rx: u64,
    /// Scheme decisions tallied as they happen.
    suppression: SuppressionCounts,
    /// Event-loop profiler; enabled via `SimConfig::profile_events`.
    profiler: LoopProfiler,
}

impl World {
    /// Builds the initial state for `config`: places the hosts, arms the
    /// mobility and HELLO timers, and schedules the first broadcast at the
    /// end of the warm-up period.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails [`SimConfig::validate`].
    pub fn new(config: SimConfig) -> Self {
        if let Err(msg) = config.validate() {
            panic!("invalid simulation config: {msg}");
        }
        let map = config.map();
        let root = SimRng::seed_from(config.seed);
        let mut placement_rng = root.fork(0);
        let workload_rng = root.fork(1);
        let mut proto_rng = root.fork(2);
        let hosts = config.hosts as usize;
        let positions = match config.placement {
            crate::config::PlacementSpec::Uniform => {
                uniform_placement(&map, hosts, &mut placement_rng)
            }
            crate::config::PlacementSpec::Grid => grid_placement(&map, hosts),
            crate::config::PlacementSpec::Line { spacing_m } => {
                let length = f64::from(spacing_m) * (hosts as f64 - 1.0);
                let x0 = (map.bounds().width() - length) / 2.0;
                line_placement(&map, hosts, x0, f64::from(spacing_m))
            }
        };
        let max_speed = config.effective_max_speed_kmh();

        let hellos_enabled = matches!(config.neighbor_info, NeighborInfo::Hello(_))
            && (config.scheme.needs_neighbor_count() || config.scheme.needs_two_hop_hellos());

        let mut queue = EventQueue::new();
        let mut nodes = Vec::with_capacity(hosts);
        for (i, &pos) in positions.iter().enumerate() {
            let id = NodeId::new(i as u32);
            let mobility = match config.mobility {
                crate::config::MobilitySpec::RandomTurn => HostMobility::Turn(RandomTurn::new(
                    map,
                    RandomTurnParams::paper(max_speed),
                    pos,
                    SimTime::ZERO,
                    root.fork(100 + i as u64),
                )),
                crate::config::MobilitySpec::RandomWaypoint => {
                    HostMobility::Waypoint(RandomWaypoint::new(
                        map,
                        RandomWaypointParams::conventional(max_speed.max(3.6)),
                        pos,
                        SimTime::ZERO,
                        root.fork(100 + i as u64),
                    ))
                }
                crate::config::MobilitySpec::Stationary => {
                    HostMobility::Fixed(Stationary::new(pos))
                }
            };
            if let Some(next) = mobility.next_change() {
                queue.schedule(next, Event::MobilityTurn { node: id });
            }
            let hello_pending = hellos_enabled.then(|| {
                // Random initial phase so beacons do not synchronize.
                let first =
                    proto_rng.gen_duration_up_to(manet_sim_engine::SimDuration::from_secs(1));
                let at = SimTime::ZERO + first;
                (queue.schedule(at, Event::HelloTimer { node: id }), at)
            });
            nodes.push(Node {
                mobility,
                mac: Dcf::new(root.fork(10_000 + i as u64)),
                table: NeighborTable::new(),
                tracker: VariationTracker::new(),
                packets: HashMap::new(),
                outgoing: HashMap::new(),
                next_handle: 0,
                hello_pending,
            });
        }
        queue.schedule(SimTime::ZERO + config.warmup, Event::IssueBroadcast);

        World {
            map,
            queue,
            medium: {
                let mut medium = Medium::new(hosts);
                if config.drop_probability > 0.0 {
                    medium = medium.with_drop_probability(config.drop_probability, root.fork(3));
                }
                if let Some(capture) = config.capture {
                    medium =
                        medium.with_capture(manet_phy::CaptureModel::new(capture.sir_threshold));
                }
                medium
            },
            metrics: MetricsCollector::new(hosts),
            coverage: CoverageGrid::new(config.coverage_resolution),
            workload_rng,
            proto_rng,
            in_flight: HashMap::new(),
            next_seq: 0,
            issued: 0,
            stop_at: SimTime::MAX,
            hello_frames: 0,
            data_frames: 0,
            hello_rx: 0,
            suppression: SuppressionCounts::default(),
            profiler: if config.profile_events {
                LoopProfiler::enabled()
            } else {
                LoopProfiler::disabled()
            },
            nodes,
            cfg: config,
        }
    }

    /// Runs the simulation to completion and returns the aggregated
    /// report.
    pub fn run(self) -> SimReport {
        self.run_observed(&mut NoopObserver)
    }

    /// Runs the simulation with an observer receiving every protocol-level
    /// [`TraceEvent`] in simulation order (see [`crate::trace`]).
    pub fn run_observed(mut self, observer: &mut dyn SimObserver) -> SimReport {
        let mut last = SimTime::ZERO;
        // The profiler is moved out for the duration of the loop so the
        // event handlers can borrow `self` freely.
        let mut profiler = std::mem::replace(&mut self.profiler, LoopProfiler::disabled());
        while let Some((now, event)) = self.queue.pop() {
            if now > self.stop_at {
                break;
            }
            last = now;
            let kind = event.kind();
            let started = profiler.begin();
            self.handle(now, event, observer);
            profiler.record(kind, started);
        }

        // Harvest the per-host stacks into run-wide totals.
        let mut mac = MacStats::default();
        let mut net = NetActivity {
            hello_sent: self.hello_frames,
            hello_received: self.hello_rx,
            ..NetActivity::default()
        };
        for node in &self.nodes {
            mac.merge(node.mac.stats());
            net.neighbor_joins += node.table.join_count();
            net.neighbor_leaves += node.table.leave_count();
        }

        let outcomes = self.metrics.outcomes();
        let (re, srb, latency) = summarize(&outcomes);
        SimReport {
            scheme: self.cfg.scheme.label(),
            map: self.map.label(),
            broadcasts: self.issued,
            reachability: re,
            saved_rebroadcasts: srb,
            avg_latency_s: latency,
            hello_packets: self.hello_frames,
            data_frames: self.data_frames,
            collisions: self.medium.collision_count(),
            losses: self.medium.loss_counters(),
            mac,
            net,
            suppression: self.suppression,
            profile: profiler.is_enabled().then(|| profiler.profile()),
            sim_seconds: last.as_secs_f64(),
            per_broadcast: outcomes,
        }
    }

    fn handle(&mut self, now: SimTime, event: Event, observer: &mut dyn SimObserver) {
        match event {
            Event::MobilityTurn { node } => {
                let mobility = &mut self.nodes[node.index()].mobility;
                mobility.advance(now);
                if let Some(next) = mobility.next_change() {
                    self.queue.schedule(next, Event::MobilityTurn { node });
                }
            }
            Event::HelloTimer { node } => self.send_hello(node, now, observer),
            Event::MacTimer { node, generation } => {
                let actions = self.nodes[node.index()].mac.on_timer(generation, now);
                self.process_mac_actions(node, actions, now, observer);
            }
            Event::TxEnd { frame } => self.finish_transmission(frame, now, observer),
            Event::AssessmentDone { node, packet } => {
                self.assessment_done(node, packet, now, observer)
            }
            Event::IssueBroadcast => self.issue_broadcast(now, observer),
            Event::CarrierSense { node, busy } => {
                let mac = &mut self.nodes[node.index()].mac;
                let actions = if busy {
                    mac.on_medium_busy(now)
                } else {
                    mac.on_medium_idle(now)
                };
                self.process_mac_actions(node, actions, now, observer);
            }
        }
    }

    /// Current positions of all hosts.
    fn positions(&self, now: SimTime) -> Vec<Vec2> {
        self.nodes
            .iter()
            .map(|n| n.mobility.position_at(now))
            .collect()
    }

    /// Expires stale neighbors, feeding leave events to the variation
    /// tracker.
    fn refresh_table(&mut self, node: NodeId, now: SimTime) {
        let n = &mut self.nodes[node.index()];
        let mut changed = false;
        for _leave in n.table.expire(now) {
            n.tracker.record_change(now);
            changed = true;
        }
        if changed {
            self.maybe_accelerate_hello(node, now);
        }
    }

    /// Under the dynamic hello policy, membership churn may shorten the
    /// host's hello interval; if the recomputed interval would fire before
    /// the currently scheduled beacon, pull the beacon forward. (The paper
    /// notes "each host's hello interval may change dynamically".)
    fn maybe_accelerate_hello(&mut self, node: NodeId, now: SimTime) {
        let NeighborInfo::Hello(manet_net::HelloIntervalPolicy::Dynamic(params)) =
            self.cfg.neighbor_info
        else {
            return;
        };
        let n = &mut self.nodes[node.index()];
        let Some((key, at)) = n.hello_pending else {
            return;
        };
        let count = n.table.neighbor_count();
        let interval = params.interval_for(n.tracker.variation(now, count));
        let target = now + interval;
        if target < at {
            self.queue.cancel(key);
            let key = self.queue.schedule(target, Event::HelloTimer { node });
            self.nodes[node.index()].hello_pending = Some((key, target));
        }
    }

    // ---- workload -------------------------------------------------------

    fn issue_broadcast(&mut self, now: SimTime, observer: &mut dyn SimObserver) {
        let source = NodeId::new(self.workload_rng.gen_range_u32(0..self.cfg.hosts));
        let packet = PacketId::new(source, self.next_seq);
        self.next_seq += 1;
        self.issued += 1;

        let positions = self.positions(now);
        let reachable = reachable_from(&positions, source, self.cfg.radio_radius).len() as u32;
        self.metrics
            .broadcast_issued(packet, source, reachable, now);
        observer.event(&TraceEvent::BroadcastIssued {
            packet,
            source,
            reachable,
            at: now,
        });

        // The source transmits unconditionally: queue straight to its MAC.
        let node = &mut self.nodes[source.index()];
        let handle = node.new_handle();
        node.outgoing.insert(handle, Payload::Broadcast(packet));
        node.packets.insert(packet, PacketState::SourcePending);
        let bytes = self.cfg.packet_bytes;
        let actions = node.mac.enqueue(handle, bytes, now);
        self.process_mac_actions(source, actions, now, observer);

        if self.issued < self.cfg.broadcasts {
            let gap = self
                .workload_rng
                .gen_duration_up_to(self.cfg.max_interarrival);
            self.queue.schedule(now + gap, Event::IssueBroadcast);
        } else {
            self.stop_at = now + self.cfg.grace;
        }
    }

    // ---- HELLO beaconing ------------------------------------------------

    fn send_hello(&mut self, node: NodeId, now: SimTime, observer: &mut dyn SimObserver) {
        self.refresh_table(node, now);
        let interval_policy = match &self.cfg.neighbor_info {
            NeighborInfo::Hello(policy) => *policy,
            NeighborInfo::Oracle => unreachable!("hello timer armed in oracle mode"),
        };
        let include_neighbors = self.cfg.scheme.needs_two_hop_hellos();
        let n = &mut self.nodes[node.index()];
        let neighbor_count = n.table.neighbor_count();
        let interval = interval_policy.current_interval(&mut n.tracker, neighbor_count, now);
        let payload = HelloPayload {
            sender: node,
            interval,
            neighbors: if include_neighbors {
                n.table.neighbor_ids()
            } else {
                Vec::new()
            },
        };
        let bytes = payload.air_bytes();
        let handle = n.new_handle();
        n.outgoing.insert(handle, Payload::Hello(payload));
        let actions = n.mac.enqueue(handle, bytes, now);
        self.process_mac_actions(node, actions, now, observer);
        // Re-arm with a small jitter so beacons do not phase-lock.
        let jitter_num = self.proto_rng.gen_range_u32(95..106);
        let next = interval * u64::from(jitter_num) / 100;
        let at = now + next;
        let key = self.queue.schedule(at, Event::HelloTimer { node });
        self.nodes[node.index()].hello_pending = Some((key, at));
    }

    fn hello_received(&mut self, node: NodeId, payload: &HelloPayload, now: SimTime) {
        self.hello_rx += 1;
        self.refresh_table(node, now);
        let n = &mut self.nodes[node.index()];
        if n.table
            .record_hello(payload.sender, now, payload.interval, &payload.neighbors)
            .is_some()
        {
            n.tracker.record_change(now);
            self.maybe_accelerate_hello(node, now);
        }
    }

    // ---- MAC / channel wiring --------------------------------------------

    fn process_mac_actions(
        &mut self,
        node: NodeId,
        actions: Vec<MacAction>,
        now: SimTime,
        observer: &mut dyn SimObserver,
    ) {
        for action in actions {
            match action {
                MacAction::StartTimer { delay, generation } => {
                    self.queue
                        .schedule(now + delay, Event::MacTimer { node, generation });
                }
                MacAction::BeginTx {
                    handle,
                    payload_bytes,
                } => self.begin_transmission(node, handle, payload_bytes, now, observer),
            }
        }
    }

    fn begin_transmission(
        &mut self,
        node: NodeId,
        handle: FrameHandle,
        payload_bytes: usize,
        now: SimTime,
        observer: &mut dyn SimObserver,
    ) {
        let payload = self.nodes[node.index()]
            .outgoing
            .remove(&handle)
            .expect("MAC transmitted an unknown frame");
        match &payload {
            Payload::Broadcast(packet) => {
                self.data_frames += 1;
                // On the air: no longer cancellable.
                self.nodes[node.index()]
                    .packets
                    .insert(*packet, PacketState::Done);
            }
            Payload::Hello(_) => self.hello_frames += 1,
        }
        let positions = self.positions(now);
        let listeners = in_range_of(&positions, node, self.cfg.radio_radius);
        observer.event(&TraceEvent::FrameStarted {
            node,
            kind: match &payload {
                Payload::Broadcast(packet) => FrameKind::Broadcast(*packet),
                Payload::Hello(_) => FrameKind::Hello,
            },
            listeners: listeners.len() as u32,
            at: now,
        });
        let end = now + frame_airtime(payload_bytes);
        let start = if let Some(capture) = self.cfg.capture {
            // Received power falls off as (r / d)^alpha, normalized so a
            // listener at the coverage edge receives strength 1.
            let own = positions[node.index()];
            let with_signals: Vec<manet_phy::Listener> = listeners
                .iter()
                .map(|&l| {
                    let d = positions[l.index()].distance_to(own).max(1.0);
                    manet_phy::Listener {
                        node: l,
                        signal: (self.cfg.radio_radius / d).powf(capture.path_loss_exponent),
                    }
                })
                .collect();
            self.medium
                .begin_transmission_with_signals(node, now, end, &with_signals)
        } else {
            self.medium.begin_transmission(node, now, end, &listeners)
        };
        self.queue
            .schedule(end, Event::TxEnd { frame: start.frame });
        self.in_flight.insert(
            start.frame,
            InFlight {
                sender: node,
                payload,
                sent_from: positions[node.index()],
            },
        );
        for change in start.carrier_changes {
            self.deliver_carrier_change(change.node, true, now, observer);
        }
    }

    /// Routes a carrier-sense transition to a host's MAC, applying the
    /// configured CCA latency.
    fn deliver_carrier_change(
        &mut self,
        node: NodeId,
        busy: bool,
        now: SimTime,
        observer: &mut dyn SimObserver,
    ) {
        if self.cfg.cs_delay.is_zero() {
            let mac = &mut self.nodes[node.index()].mac;
            let actions = if busy {
                mac.on_medium_busy(now)
            } else {
                mac.on_medium_idle(now)
            };
            self.process_mac_actions(node, actions, now, observer);
        } else {
            self.queue
                .schedule(now + self.cfg.cs_delay, Event::CarrierSense { node, busy });
        }
    }

    fn finish_transmission(
        &mut self,
        frame: FrameId,
        now: SimTime,
        observer: &mut dyn SimObserver,
    ) {
        let tx = self.medium.end_transmission(frame, now);
        let in_flight = self
            .in_flight
            .remove(&frame)
            .expect("unknown frame finished");
        debug_assert_eq!(tx.source, in_flight.sender);

        // The transmitter's MAC enters post-backoff.
        let actions = self.nodes[tx.source.index()].mac.on_tx_end(now);
        self.process_mac_actions(tx.source, actions, now, observer);

        if let Payload::Broadcast(packet) = in_flight.payload {
            self.metrics.transmission_finished(packet, tx.source, now);
        }
        let decoded = tx.deliveries.iter().filter(|d| d.decoded).count() as u32;
        observer.event(&TraceEvent::FrameFinished {
            node: tx.source,
            kind: match &in_flight.payload {
                Payload::Broadcast(packet) => FrameKind::Broadcast(*packet),
                Payload::Hello(_) => FrameKind::Hello,
            },
            decoded,
            lost: tx.deliveries.len() as u32 - decoded,
            at: now,
        });

        // Deliver decoded copies to the upper layer.
        for delivery in &tx.deliveries {
            if !delivery.decoded {
                continue;
            }
            match &in_flight.payload {
                Payload::Hello(h) => self.hello_received(delivery.to, h, now),
                Payload::Broadcast(packet) => {
                    self.packet_heard(
                        delivery.to,
                        *packet,
                        tx.source,
                        in_flight.sent_from,
                        now,
                        observer,
                    );
                }
            }
        }

        // Carrier-sense idle transitions may resume frozen backoffs.
        for change in tx.carrier_changes {
            self.deliver_carrier_change(change.node, false, now, observer);
        }
    }

    // ---- scheme-level packet handling ------------------------------------

    /// Gathers the neighbor information the configured scheme needs for a
    /// decision at `node` about a packet heard from `sender`.
    fn neighbor_view(
        &mut self,
        node: NodeId,
        sender: NodeId,
        now: SimTime,
    ) -> (usize, Vec<NodeId>, Vec<NodeId>) {
        let needs_count = self.cfg.scheme.needs_neighbor_count();
        let needs_two_hop = self.cfg.scheme.needs_two_hop_hellos();
        if !needs_count && !needs_two_hop {
            return (0, Vec::new(), Vec::new());
        }
        match self.cfg.neighbor_info {
            NeighborInfo::Hello(_) => {
                self.refresh_table(node, now);
                let table = &self.nodes[node.index()].table;
                let count = table.neighbor_count();
                if needs_two_hop {
                    let neighbors = table.neighbor_ids();
                    let sender_neighbors = table
                        .neighbors_of(sender)
                        .map(<[NodeId]>::to_vec)
                        .unwrap_or_default();
                    (count, neighbors, sender_neighbors)
                } else {
                    (count, Vec::new(), Vec::new())
                }
            }
            NeighborInfo::Oracle => {
                let positions = self.positions(now);
                let neighbors = in_range_of(&positions, node, self.cfg.radio_radius);
                let count = neighbors.len();
                if needs_two_hop {
                    let sender_neighbors = in_range_of(&positions, sender, self.cfg.radio_radius);
                    (count, neighbors, sender_neighbors)
                } else {
                    (count, Vec::new(), Vec::new())
                }
            }
        }
    }

    fn packet_heard(
        &mut self,
        node: NodeId,
        packet: PacketId,
        sender: NodeId,
        sender_pos: Vec2,
        now: SimTime,
        observer: &mut dyn SimObserver,
    ) {
        self.metrics.packet_received(packet, node);

        let (neighbor_count, neighbors, sender_neighbors) = self.neighbor_view(node, sender, now);
        let own_position = self.nodes[node.index()].mobility.position_at(now);

        // Split borrows: context data is owned or from `self.coverage`,
        // the policy lives in the node's packet map.
        let ctx = HearContext {
            neighbor_count,
            own_position,
            sender,
            sender_position: sender_pos,
            neighbors: &neighbors,
            sender_neighbors: &sender_neighbors,
            coverage: &self.coverage,
            radio_radius: self.cfg.radio_radius,
            random_unit: self.proto_rng.gen_unit_f64(),
        };

        let entry = self.nodes[node.index()].packets.get_mut(&packet);
        match entry {
            None => {
                // S1: first copy.
                observer.event(&TraceEvent::FirstHeard {
                    node,
                    packet,
                    at: now,
                });
                let mut policy = self.cfg.scheme.build();
                match policy.on_first_hear(&ctx) {
                    FirstDecision::Inhibit => {
                        let reason = policy.suppress_reason();
                        observer.event(&TraceEvent::Decision {
                            node,
                            packet,
                            kind: DecisionKind::InhibitedOnFirstHear,
                            reason,
                            at: now,
                        });
                        self.suppression.inhibited_first_hear += 1;
                        self.suppression.record_reason(reason);
                        self.metrics.rebroadcast_inhibited(packet, now);
                        self.nodes[node.index()]
                            .packets
                            .insert(packet, PacketState::Done);
                    }
                    FirstDecision::Schedule => {
                        // S2: random assessment delay of 0-31 slots. The
                        // slots count after carrier sensing and DIFS (the
                        // standard random-assessment-delay composition), so
                        // hosts that drew different slot numbers access the
                        // medium at distinct, carrier-separable instants,
                        // while same-slot draws contend - the paper's
                        // Fig. 2 contention scenario.
                        let slots = self.proto_rng.gen_range_u32(0..32);
                        let delay =
                            self.cfg.cs_delay + manet_mac::timing::DIFS + SLOT * u64::from(slots);
                        let key = self
                            .queue
                            .schedule(now + delay, Event::AssessmentDone { node, packet });
                        observer.event(&TraceEvent::Decision {
                            node,
                            packet,
                            kind: DecisionKind::Scheduled,
                            reason: None,
                            at: now,
                        });
                        self.suppression.scheduled += 1;
                        self.nodes[node.index()]
                            .packets
                            .insert(packet, PacketState::Assessing { key, policy });
                    }
                }
            }
            Some(PacketState::Assessing { key, policy }) => {
                if policy.on_duplicate_hear(&ctx) == DuplicateDecision::Cancel {
                    let key = *key;
                    let reason = policy.suppress_reason();
                    self.queue.cancel(key);
                    observer.event(&TraceEvent::Decision {
                        node,
                        packet,
                        kind: DecisionKind::Cancelled,
                        reason,
                        at: now,
                    });
                    self.suppression.cancelled += 1;
                    self.suppression.record_reason(reason);
                    self.metrics.rebroadcast_inhibited(packet, now);
                    self.nodes[node.index()]
                        .packets
                        .insert(packet, PacketState::Done);
                }
            }
            Some(PacketState::Queued { handle, policy }) => {
                if policy.on_duplicate_hear(&ctx) == DuplicateDecision::Cancel {
                    let handle = *handle;
                    let reason = policy.suppress_reason();
                    let n = &mut self.nodes[node.index()];
                    let cancelled = n.mac.cancel(handle);
                    debug_assert!(cancelled, "queued frame must still be cancellable");
                    n.outgoing.remove(&handle);
                    observer.event(&TraceEvent::Decision {
                        node,
                        packet,
                        kind: DecisionKind::Cancelled,
                        reason,
                        at: now,
                    });
                    self.suppression.cancelled += 1;
                    self.suppression.record_reason(reason);
                    self.metrics.rebroadcast_inhibited(packet, now);
                    let n = &mut self.nodes[node.index()];
                    n.packets.insert(packet, PacketState::Done);
                }
            }
            // The source never reacts to copies of its own broadcast, and
            // finished packets stay finished ("rebroadcast at most once").
            Some(PacketState::SourcePending) | Some(PacketState::Done) => {}
        }
    }

    fn assessment_done(
        &mut self,
        node: NodeId,
        packet: PacketId,
        now: SimTime,
        observer: &mut dyn SimObserver,
    ) {
        let n = &mut self.nodes[node.index()];
        let state = n
            .packets
            .remove(&packet)
            .expect("assessment fired for unknown packet");
        match state {
            PacketState::Assessing { policy, .. } => {
                // S2 continued: submit to the MAC.
                let handle = n.new_handle();
                n.outgoing.insert(handle, Payload::Broadcast(packet));
                n.packets
                    .insert(packet, PacketState::Queued { handle, policy });
                let bytes = self.cfg.packet_bytes;
                let actions = n.mac.enqueue(handle, bytes, now);
                self.process_mac_actions(node, actions, now, observer);
            }
            other => unreachable!("assessment fired in state {other:?}"),
        }
    }
}
