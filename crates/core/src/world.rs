//! The effectful dispatcher: mobility + channel + MAC wired over the
//! engine's event queue, driving the pure protocol models.
//!
//! One [`World`] executes one [`SimConfig`]. Since the pure/effectful
//! split, the protocol state (neighbor tables, packet ledgers, scheme
//! decisions, suppression tallies) lives in [`PureModels`] and is
//! advanced exclusively through [`PureAction`]s; this module owns
//! everything *impure* — the event queue, the RNG streams, the
//! [`Medium`], the per-host MACs, and the metrics — and executes the
//! [`Effect`]s each pure step requests.
//!
//! Every action funnels through [`World::dispatch`], which is also the
//! single tap point for action-level recording (see [`crate::record`]):
//! a recorded trace replayed through [`PureModels`] alone reproduces
//! every scheme decision of the live run.

use manet_geom::Vec2;
use manet_mac::timing::SLOT;
use manet_mac::{frame_airtime, Dcf, FrameHandle, MacAction, MacStats};
use manet_mobility::{
    grid_placement, line_placement, uniform_placement, Map, Mobility, RandomTurn, RandomTurnParams,
    RandomWaypoint, RandomWaypointParams, Segment, Stationary,
};
use manet_net::HelloPayload;
use manet_phy::{CarrierChange, Delivery, FrameId, Medium, NeighborGrid, NodeId, ShardMap};
use manet_scenario::{Region, WorldAction};
use manet_sim_engine::{EventKey, EventQueue, LoopProfiler, SimRng, SimTime, Slab, Timeline};

use crate::config::{NeighborInfo, SimConfig};
use crate::ids::PacketId;
use crate::metrics::{summarize, MetricsCollector, NetActivity, ScenarioCounts, SimReport};
use crate::pure::{Effect, OracleView, PureAction, PureModels};
use crate::record::{DecisionRecord, TraceWriter};
use crate::trace::{
    DecisionKind, FrameKind, NoopObserver, SimObserver, SuppressReason, TraceEvent,
};

pub mod snapshot;

/// Events on the simulation queue.
#[derive(Debug)]
enum Event {
    /// A host's motion segment ended; take the next random turn.
    MobilityTurn { node: NodeId },
    /// Time for a host to emit its next HELLO beacon.
    HelloTimer { node: NodeId },
    /// A DCF timer (DIFS or backoff countdown) fired. `epoch` is the
    /// host's churn epoch at scheduling time: a timer armed by a MAC that
    /// has since been deactivated (and later replaced) must not reach the
    /// replacement, whose `generation` counter restarted from zero.
    MacTimer {
        node: NodeId,
        generation: u64,
        epoch: u32,
    },
    /// A frame's airtime ended.
    TxEnd { frame: FrameId },
    /// A host's scheme-level assessment delay (S2's 0–31 slots) elapsed.
    AssessmentDone { node: NodeId, packet: PacketId },
    /// The workload issues the next broadcast request.
    IssueBroadcast,
    /// A delayed carrier-sense report reaches the MACs of every host that
    /// heard one frame's carrier transition (models the CCA assessment
    /// latency). All of a frame's reports fire at the same instant with
    /// consecutive sequence numbers, so one event carrying the hearer
    /// list (parked in `World::carrier_batches`) delivers them in exactly
    /// the order the per-host events would have.
    CarrierBatch { slot: u32, busy: bool },
    /// The scenario timeline's next world action (host churn or a fault
    /// window edge) takes effect; `index` addresses the compiled timeline.
    Scenario { index: u32 },
}

impl Event {
    /// Static label used to attribute event-loop wall time by kind.
    fn kind(&self) -> &'static str {
        match self {
            Event::MobilityTurn { .. } => "mobility_turn",
            Event::HelloTimer { .. } => "hello_timer",
            Event::MacTimer { .. } => "mac_timer",
            Event::TxEnd { .. } => "tx_end",
            Event::AssessmentDone { .. } => "assessment_done",
            Event::IssueBroadcast => "issue_broadcast",
            Event::CarrierBatch { .. } => "carrier_sense",
            Event::Scenario { .. } => "scenario",
        }
    }
}

/// What a queued MAC frame carries.
#[derive(Debug, Clone)]
enum Payload {
    Broadcast(PacketId),
    Hello(HelloPayload),
}

/// A frame currently on the air.
#[derive(Debug)]
struct InFlight {
    sender: NodeId,
    payload: Payload,
    /// Sender position at transmission start (carried in the packet for
    /// the location-based schemes).
    sent_from: Vec2,
    /// Sender's churn epoch at transmission start. If the sender
    /// deactivated mid-flight, its (possibly replaced) MAC must not see
    /// the `on_tx_end` for this frame.
    sender_epoch: u32,
}

/// The configured mobility model for one host.
#[derive(Debug)]
enum HostMobility {
    Turn(RandomTurn),
    Waypoint(RandomWaypoint),
    Fixed(Stationary),
}

impl Mobility for HostMobility {
    fn position_at(&self, t: SimTime) -> Vec2 {
        match self {
            HostMobility::Turn(m) => m.position_at(t),
            HostMobility::Waypoint(m) => m.position_at(t),
            HostMobility::Fixed(m) => m.position_at(t),
        }
    }

    fn next_change(&self) -> Option<SimTime> {
        match self {
            HostMobility::Turn(m) => m.next_change(),
            HostMobility::Waypoint(m) => m.next_change(),
            HostMobility::Fixed(m) => m.next_change(),
        }
    }

    fn advance(&mut self, now: SimTime) {
        match self {
            HostMobility::Turn(m) => m.advance(now),
            HostMobility::Waypoint(m) => m.advance(now),
            HostMobility::Fixed(m) => m.advance(now),
        }
    }

    fn segment(&self) -> Segment {
        match self {
            HostMobility::Turn(m) => m.segment(),
            HostMobility::Waypoint(m) => m.segment(),
            HostMobility::Fixed(m) => m.segment(),
        }
    }
}

/// One mobile host's effectful machinery. Protocol state (neighbor
/// table, variation tracker, packet ledger) lives in [`PureModels`].
#[derive(Debug)]
struct Node {
    mobility: HostMobility,
    mac: Dcf,
    /// Payloads of frames sitting in the MAC queue. A [`FrameHandle`] is
    /// its slab slot: unique among queued frames (all the MAC compares
    /// against), recycled once dequeued or cancelled.
    outgoing: Slab<Payload>,
    /// The scheduled next HELLO (cancellation key and fire time), so a
    /// dynamic-interval host can pull its beacon forward when churn rises.
    hello_pending: Option<(EventKey, SimTime)>,
}

impl Node {
    /// Hands `payload` to this host's MAC queue, returning its handle.
    fn queue_payload(&mut self, payload: Payload) -> FrameHandle {
        FrameHandle(u64::from(self.outgoing.insert(payload)))
    }

    /// Releases and returns the payload queued under `handle`.
    fn take_payload(&mut self, handle: FrameHandle) -> Payload {
        let slot = u32::try_from(handle.0).expect("frame handle out of range");
        assert!(
            self.outgoing.contains(slot),
            "MAC referenced an unknown frame"
        );
        self.outgoing.remove(slot)
    }
}

/// Runtime state of the configured scenario (churn + fault injection).
/// Absent on ordinary runs, which therefore pay nothing for the feature.
#[derive(Debug)]
struct ScenarioState {
    /// The compiled world-action timeline; `Event::Scenario { index }`
    /// addresses into it.
    timeline: Timeline<WorldAction>,
    /// Per-host membership: `false` while a host is left or crashed.
    active: Vec<bool>,
    /// Hosts currently active (validation guarantees it never hits zero).
    active_count: u32,
    /// Per-host churn epoch, bumped on every deactivation. Timers and
    /// in-flight frames carry the epoch they were created under; a
    /// mismatch at delivery time means the event outlived its MAC.
    node_epoch: Vec<u32>,
    /// Currently open link blackouts, as unordered host pairs.
    blackouts: Vec<(u32, u32)>,
    /// Drop probabilities of the currently open noise bursts.
    noise: Vec<f64>,
    /// Currently open partition regions.
    partitions: Vec<Region>,
    /// Scenario randomness: noise-burst drop draws, in delivery order.
    rng: SimRng,
    /// Base stream for per-respawn MACs and hello phases; never drawn
    /// from directly, only forked with `respawn_seq`.
    respawn_rng: SimRng,
    /// Fork counter so every respawned MAC gets a distinct stream.
    respawn_seq: u64,
    /// What the scenario did, reported in [`SimReport::scenario`].
    counts: ScenarioCounts,
    /// MAC stats of replaced (crashed/left) MAC instances, folded into
    /// the final report alongside the live MACs'.
    retired_mac: MacStats,
    /// Neighbor-table join/leave totals of tables reset by crashes.
    retired_joins: u64,
    retired_leaves: u64,
}

impl ScenarioState {
    /// `true` when any fault window is currently open.
    fn any_fault_open(&self) -> bool {
        !(self.blackouts.is_empty() && self.noise.is_empty() && self.partitions.is_empty())
    }
}

/// How often the sharded executor rebuilds strip membership from fresh
/// positions. Between syncs, membership drifts by at most
/// `max_speed × elapsed`, which the query windows absorb (see
/// [`World::in_range_strips`]).
const STRIP_SYNC_INTERVAL: manet_sim_engine::SimDuration =
    manet_sim_engine::SimDuration::from_secs(1);

/// Host count below which a full position refresh stays single-threaded:
/// under ~8k segment evaluations, scoped-thread spawn overhead eats the
/// win.
const PARALLEL_REFRESH_MIN_HOSTS: usize = 8_192;

/// A complete simulation run.
///
/// # Examples
///
/// ```
/// use broadcast_core::{SchemeSpec, SimConfig, World};
///
/// let config = SimConfig::builder(3, SchemeSpec::Flooding)
///     .hosts(20)
///     .broadcasts(3)
///     .seed(7)
///     .build();
/// let report = World::new(config).run();
/// assert_eq!(report.broadcasts, 3);
/// assert!(report.reachability > 0.0);
/// ```
#[derive(Debug)]
pub struct World {
    cfg: SimConfig,
    map: Map,
    queue: EventQueue<Event>,
    /// Per-shard event queues, one per spatial strip; empty on sequential
    /// runs (`shards == 1`), where everything stays on `queue`. Shard
    /// queues hold only [`Event::MacTimer`] — the dominant event kind and
    /// the only one that is never cancelled, so no cross-queue tombstone
    /// routing is needed. All queues share the global [`Self::event_seq`]
    /// counter, making the merged pop order (time, then seq) identical to
    /// the single-queue order for **any** shard count.
    shard_queues: Vec<EventQueue<Event>>,
    /// Global event sequence counter stamping every scheduled event across
    /// the control queue and all shard queues. Assigned in schedule order,
    /// exactly as a single queue's internal counter would — the invariant
    /// behind bit-identical sharded execution.
    event_seq: u64,
    /// Spatial strip partition of the map's x-axis (strips ≥ one radio
    /// radius wide). `shards() == 1` on sequential runs.
    shard_map: ShardMap,
    /// Strip owning each host, as of the last strip sync.
    strip_of_host: Vec<u32>,
    /// Hosts of each strip in ascending id order, as of the last sync.
    strip_hosts: Vec<Vec<u32>>,
    /// Per-strip freshness stamp: `snap_positions` entries of a strip's
    /// hosts are valid at a query instant iff the stamp equals it.
    strip_snap_at: Vec<Option<SimTime>>,
    /// When strip membership was last rebuilt.
    strip_sync_at: SimTime,
    /// Upper bound on host speed in m/s, for the membership drift margin.
    max_speed_ms: f64,
    nodes: Vec<Node>,
    medium: Medium,
    metrics: MetricsCollector,
    /// All pure protocol state; advanced only via [`World::dispatch`].
    pure: PureModels,
    /// Effect buffer for [`World::dispatch`]. Dispatch never nests (no
    /// effect application dispatches a non-leaf action), so one buffer
    /// suffices; `mem::take` degrades accidental re-entry to a fresh
    /// allocation instead of corruption.
    fx: Vec<Effect>,
    /// Effect buffer for [`World::dispatch_leaf`]. Leaf actions
    /// (`FrameSent`, `Originate`) are dispatched from *inside* effect
    /// application (a MAC enqueue can immediately start transmitting), so
    /// they get a disjoint buffer; they must never produce effects.
    fx_leaf: Vec<Effect>,
    /// Action-level recorder; `Some` while [`World::enable_recording`]
    /// has armed a trace.
    recorder: Option<TraceWriter>,
    /// Workload randomness: interarrivals and source selection.
    workload_rng: SimRng,
    /// Scheme-level randomness: assessment-slot draws, hello jitter.
    proto_rng: SimRng,
    /// Frames on the air, indexed by [`FrameId`] slot (the medium recycles
    /// ids, so a slot is reused only after its frame ends).
    in_flight: Vec<Option<InFlight>>,
    /// Spatial index over `snap_positions`, kept in lockstep by
    /// [`refresh_positions`](Self::refresh_positions).
    grid: NeighborGrid,
    /// Cached host positions, valid at `snap_at`. Mobility is piecewise
    /// deterministic, so every query at the same timestamp returns the
    /// same snapshot; the buffer is reused across refreshes.
    snap_positions: Vec<Vec2>,
    snap_at: Option<SimTime>,
    /// Dense copy of every host's current motion segment, refreshed on
    /// mobility turns. Snapshot refreshes evaluate these in one pass —
    /// identical arithmetic to each model's `position_at`, without the
    /// per-host dispatch into the node structs.
    segments: Vec<Segment>,
    /// Timestamp the grid was last synced to `snap_positions` at; lags
    /// `snap_at` because only grid-using queries pay for re-indexing (see
    /// [`refresh_grid`](Self::refresh_grid)).
    grid_at: Option<SimTime>,
    // Reusable hot-path scratch buffers. Each is `mem::take`n for the
    // duration of the call that fills it and restored afterwards, so
    // accidental re-entry degrades to a fresh allocation instead of
    // corruption. `begin` and `finish` use disjoint buffers because a
    // finished transmission's post-backoff can immediately start the
    // next one.
    scratch_listeners: Vec<NodeId>,
    scratch_signals: Vec<manet_phy::Listener>,
    scratch_begin_carrier: Vec<CarrierChange>,
    scratch_deliveries: Vec<Delivery>,
    scratch_end_carrier: Vec<CarrierChange>,
    scratch_neighbors: Vec<NodeId>,
    scratch_sender_neighbors: Vec<NodeId>,
    scratch_reachable: Vec<NodeId>,
    /// Hearer lists of delayed carrier reports in flight, keyed by the
    /// slot in their [`Event::CarrierBatch`]; `carrier_pool` recycles the
    /// vectors so steady-state reports never allocate.
    carrier_batches: Slab<Vec<NodeId>>,
    carrier_pool: Vec<Vec<NodeId>>,
    /// Recycled HELLO neighbor-list buffers: a beacon's list is built on
    /// [`Effect::EmitHello`] and returned when its frame leaves the air,
    /// so steady-state beaconing does not allocate.
    hello_pool: Vec<Vec<NodeId>>,
    next_seq: u32,
    issued: u32,
    stop_at: SimTime,
    hello_frames: u64,
    data_frames: u64,
    /// HELLO beacons decoded by some listener.
    hello_rx: u64,
    /// Timestamp of the last handled event, reported as the run length.
    last_event_at: SimTime,
    /// Set once the run has drained (or passed `stop_at`); further
    /// [`advance_until`](Self::advance_until) calls return immediately.
    finished: bool,
    /// Event-loop profiler; enabled via `SimConfig::profile_events`.
    profiler: LoopProfiler,
    /// Churn and fault-injection state; `None` unless the config carries
    /// a scenario.
    scenario: Option<ScenarioState>,
}

impl World {
    /// Builds the initial state for `config`: places the hosts, arms the
    /// mobility and HELLO timers, and schedules the first broadcast at the
    /// end of the warm-up period.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails [`SimConfig::validate`].
    pub fn new(config: SimConfig) -> Self {
        if let Err(msg) = config.validate() {
            panic!("invalid simulation config: {msg}");
        }
        let map = config.map();
        let root = SimRng::seed_from(config.seed);
        let mut placement_rng = root.fork(0);
        let workload_rng = root.fork(1);
        let mut proto_rng = root.fork(2);
        let hosts = config.hosts as usize;
        let positions = match config.placement {
            crate::config::PlacementSpec::Uniform => {
                uniform_placement(&map, hosts, &mut placement_rng)
            }
            crate::config::PlacementSpec::Grid => grid_placement(&map, hosts),
            crate::config::PlacementSpec::Line { spacing_m } => {
                let length = f64::from(spacing_m) * (hosts as f64 - 1.0);
                let x0 = (map.bounds().width() - length) / 2.0;
                line_placement(&map, hosts, x0, f64::from(spacing_m))
            }
        };
        let max_speed = config.effective_max_speed_kmh();

        let hellos_enabled = matches!(config.neighbor_info, NeighborInfo::Hello(_))
            && (config.scheme.needs_neighbor_count() || config.scheme.needs_two_hop_hellos());

        let mut queue = EventQueue::new();
        let mut nodes = Vec::with_capacity(hosts);
        for (i, &pos) in positions.iter().enumerate() {
            let id = NodeId::new(i as u32);
            let mobility = match config.mobility {
                crate::config::MobilitySpec::RandomTurn => HostMobility::Turn(RandomTurn::new(
                    map,
                    RandomTurnParams::paper(max_speed),
                    pos,
                    SimTime::ZERO,
                    root.fork(100 + i as u64),
                )),
                crate::config::MobilitySpec::RandomWaypoint => {
                    HostMobility::Waypoint(RandomWaypoint::new(
                        map,
                        RandomWaypointParams::conventional(max_speed.max(3.6)),
                        pos,
                        SimTime::ZERO,
                        root.fork(100 + i as u64),
                    ))
                }
                crate::config::MobilitySpec::Stationary => {
                    HostMobility::Fixed(Stationary::new(pos))
                }
            };
            if let Some(next) = mobility.next_change() {
                queue.schedule(next, Event::MobilityTurn { node: id });
            }
            let hello_pending = hellos_enabled.then(|| {
                // Random initial phase so beacons do not synchronize.
                let first =
                    proto_rng.gen_duration_up_to(manet_sim_engine::SimDuration::from_secs(1));
                let at = SimTime::ZERO + first;
                (queue.schedule(at, Event::HelloTimer { node: id }), at)
            });
            nodes.push(Node {
                mobility,
                mac: Dcf::new(root.fork(10_000 + i as u64)),
                outgoing: Slab::new(),
                hello_pending,
            });
        }
        queue.schedule(SimTime::ZERO + config.warmup, Event::IssueBroadcast);
        let segments = nodes.iter().map(|n| n.mobility.segment()).collect();

        let scenario = config.scenario.as_ref().map(|scenario| {
            let timeline = scenario.compile();
            timeline.schedule_into(&mut queue, |index| Event::Scenario {
                index: u32::try_from(index).expect("scenario timeline too long"),
            });
            ScenarioState {
                timeline,
                active: vec![true; hosts],
                active_count: config.hosts,
                node_epoch: vec![0; hosts],
                blackouts: Vec::new(),
                noise: Vec::new(),
                partitions: Vec::new(),
                rng: root.fork(4),
                respawn_rng: root.fork(5),
                respawn_seq: 0,
                counts: ScenarioCounts::default(),
                retired_mac: MacStats::default(),
                retired_joins: 0,
                retired_leaves: 0,
            }
        });

        let pure = PureModels::new(&config);

        // The sharded executor's strip partition. Construction scheduling
        // above used the queue's internal counter; the world-owned global
        // counter picks up exactly where it left off, so sequence numbers
        // are identical to a single-queue run.
        let shard_map = ShardMap::new(map.bounds().width(), config.radio_radius, config.shards);
        let shards = shard_map.shards();
        let event_seq = queue.counters().1;
        let shard_queues: Vec<EventQueue<Event>> = if shards > 1 {
            (0..shards).map(|_| EventQueue::new()).collect()
        } else {
            Vec::new()
        };
        let mut strip_of_host = Vec::new();
        let mut strip_hosts = Vec::new();
        if shards > 1 {
            strip_of_host.reserve(hosts);
            strip_hosts.resize_with(shards, Vec::new);
            for (i, p) in positions.iter().enumerate() {
                let s = shard_map.shard_of_x(p.x);
                strip_of_host.push(s as u32);
                strip_hosts[s].push(i as u32);
            }
        }
        // RandomWaypoint floors its speed at 3.6 km/h, so the drift bound
        // must too; overestimating only widens query windows, never
        // changes results.
        let max_speed_ms = config.effective_max_speed_kmh().max(3.6) / 3.6;

        World {
            map,
            queue,
            shard_queues,
            event_seq,
            shard_map,
            strip_of_host,
            strip_hosts,
            strip_snap_at: vec![None; if shards > 1 { shards } else { 0 }],
            strip_sync_at: SimTime::ZERO,
            max_speed_ms,
            medium: {
                let mut medium = Medium::new(hosts);
                if config.drop_probability > 0.0 {
                    medium = medium.with_drop_probability(config.drop_probability, root.fork(3));
                }
                if let Some(capture) = config.capture {
                    medium =
                        medium.with_capture(manet_phy::CaptureModel::new(capture.sir_threshold));
                }
                medium
            },
            metrics: MetricsCollector::new(hosts),
            pure,
            fx: Vec::new(),
            fx_leaf: Vec::new(),
            recorder: None,
            workload_rng,
            proto_rng,
            in_flight: Vec::new(),
            grid: NeighborGrid::new(
                map.bounds().width(),
                map.bounds().height(),
                config.radio_radius,
            ),
            // Strip-lazy refreshes write individual entries, so the
            // sharded executor needs the buffer pre-sized (the entries are
            // stale until their strip's stamp says otherwise).
            snap_positions: if shards > 1 { positions } else { Vec::new() },
            snap_at: None,
            grid_at: None,
            segments,
            scratch_listeners: Vec::new(),
            scratch_signals: Vec::new(),
            scratch_begin_carrier: Vec::new(),
            scratch_deliveries: Vec::new(),
            scratch_end_carrier: Vec::new(),
            scratch_neighbors: Vec::new(),
            scratch_sender_neighbors: Vec::new(),
            scratch_reachable: Vec::new(),
            carrier_batches: Slab::new(),
            carrier_pool: Vec::new(),
            hello_pool: Vec::new(),
            next_seq: 0,
            issued: 0,
            stop_at: SimTime::MAX,
            hello_frames: 0,
            data_frames: 0,
            hello_rx: 0,
            last_event_at: SimTime::ZERO,
            finished: false,
            profiler: if config.profile_events {
                LoopProfiler::enabled()
            } else {
                LoopProfiler::disabled()
            },
            scenario,
            nodes,
            cfg: config,
        }
    }

    /// Arms action-level recording: every [`PureAction`] dispatched from
    /// now on (plus the scheme decisions its effects carry) is appended
    /// to an `MTRC` trace, retrievable via [`take_trace`](Self::take_trace).
    ///
    /// Call before the run starts; a trace begun mid-run replays against
    /// protocol state the recording does not contain.
    pub fn enable_recording(&mut self) {
        self.recorder = Some(TraceWriter::new(&self.cfg));
    }

    /// Finishes recording and returns the encoded trace, or `None` when
    /// [`enable_recording`](Self::enable_recording) was never called.
    pub fn take_trace(&mut self) -> Option<Vec<u8>> {
        self.recorder.take().map(TraceWriter::into_bytes)
    }

    /// `true` when `node` is currently part of the network. Always `true`
    /// without a scenario.
    fn is_active(&self, node: NodeId) -> bool {
        self.scenario
            .as_ref()
            .is_none_or(|st| st.active[node.index()])
    }

    /// The host's current churn epoch (0 without a scenario).
    fn current_epoch(&self, node: NodeId) -> u32 {
        self.scenario
            .as_ref()
            .map_or(0, |st| st.node_epoch[node.index()])
    }

    // ---- sharded execution ------------------------------------------------
    //
    // The executor maintains one control queue plus (when `--shards N`
    // asked for more than one strip) a queue per spatial strip. Every
    // scheduled event is stamped from a single global sequence counter in
    // program order, and events are popped in global `(time, seq)` order
    // across all queues — so the delivered event stream, and with it every
    // RNG draw and tie-break, is bit-identical for any shard count. Shard
    // queues hold only `MacTimer` events (never cancelled; cancellation
    // keys always resolve against the control queue), routed by the
    // scheduling host's strip.

    /// Schedules `event`, stamping it from the global sequence counter and
    /// routing it to its owner queue.
    #[cfg_attr(simlint, shard_merge)]
    fn schedule_event(&mut self, time: SimTime, event: Event) -> EventKey {
        let seq = self.event_seq;
        self.event_seq += 1;
        let queue = match &event {
            Event::MacTimer { node, .. } if !self.shard_queues.is_empty() => {
                &mut self.shard_queues[self.strip_of_host[node.index()] as usize]
            }
            _ => &mut self.queue,
        };
        queue.schedule_seq(time, seq, event)
    }

    /// The `(time, queue)` of the globally next event across the control
    /// queue (index 0) and every shard queue (index `strip + 1`), merged
    /// by the deterministic `(time, seq)` rule.
    #[cfg_attr(simlint, shard_merge)]
    fn peek_next(&mut self) -> Option<(SimTime, usize)> {
        let mut best = self.queue.peek_key().map(|key| (key, 0));
        for (i, q) in self.shard_queues.iter_mut().enumerate() {
            if let Some(key) = q.peek_key() {
                if best.is_none_or(|(b, _)| key < b) {
                    best = Some((key, i + 1));
                }
            }
        }
        best.map(|((time, _), queue)| (time, queue))
    }

    /// Pops the head of the queue selected by [`peek_next`](Self::peek_next).
    #[cfg_attr(simlint, shard_merge)]
    fn pop_next(&mut self, queue: usize) -> (SimTime, Event) {
        let q = if queue == 0 {
            &mut self.queue
        } else {
            &mut self.shard_queues[queue - 1]
        };
        q.pop().expect("peeked event vanished")
    }

    /// Merged queue counters `(now, next_seq, delivered, scheduled)` across
    /// the control and shard queues — the values a single-queue run would
    /// report for the same event stream. `now` is the time of the globally
    /// last popped event; `next_seq` is the global sequence counter.
    fn queue_counters(&self) -> (SimTime, u64, u64, u64) {
        let (mut now, _, mut delivered, mut scheduled) = self.queue.counters();
        for q in &self.shard_queues {
            let (q_now, _, q_delivered, q_scheduled) = q.counters();
            now = now.max(q_now);
            delivered += q_delivered;
            scheduled += q_scheduled;
        }
        (now, self.event_seq, delivered, scheduled)
    }

    /// Live entries of the control and shard queues merged into one global
    /// `(time, seq)`-sorted stream — byte-identical to the single-queue
    /// image for any shard count.
    fn queue_image(&self) -> Vec<(SimTime, u64, &Event)> {
        let mut entries = self.queue.snapshot_entries();
        for q in &self.shard_queues {
            entries.extend(q.snapshot_entries());
        }
        entries.sort_unstable_by_key(|&(time, seq, _)| (time, seq));
        entries
    }

    /// Runs the simulation to completion and returns the aggregated
    /// report.
    pub fn run(self) -> SimReport {
        self.run_observed(&mut NoopObserver)
    }

    /// Runs the simulation with an observer receiving every protocol-level
    /// [`TraceEvent`] in simulation order (see [`crate::trace`]).
    pub fn run_observed(mut self, observer: &mut dyn SimObserver) -> SimReport {
        self.advance_until(SimTime::MAX, observer);
        self.into_report()
    }

    /// Advances the run until the next pending event would fire at or
    /// after `pause_at`, or the run completes. Returns `true` when the
    /// run is finished (queue drained or stop time passed), `false` when
    /// it paused with the boundary event still queued — the natural point
    /// to take a [snapshot](crate::snapshot) before resuming.
    ///
    /// The boundary is exclusive and has exactly one documented winner: a
    /// `pause_at` equal to a queued event's timestamp pauses **strictly
    /// before** any event at that instant fires. Every event at
    /// `pause_at` stays queued and is delivered after the resume, so a
    /// snapshot taken exactly on an event timestamp (or an epoch barrier
    /// landing on one) resumes bit-identically.
    pub fn advance_until(&mut self, pause_at: SimTime, observer: &mut dyn SimObserver) -> bool {
        if self.finished {
            return true;
        }
        // The profiler is moved out for the duration of the loop so the
        // event handlers can borrow `self` freely.
        let mut profiler = std::mem::replace(&mut self.profiler, LoopProfiler::disabled());
        loop {
            let Some((next, queue)) = self.peek_next() else {
                self.finished = true;
                break;
            };
            if next >= pause_at {
                self.profiler = profiler;
                return false;
            }
            let (now, event) = self.pop_next(queue);
            if now > self.stop_at {
                self.finished = true;
                break;
            }
            self.last_event_at = now;
            let kind = event.kind();
            let started = profiler.begin();
            self.handle(now, event, observer);
            profiler.record(kind, started);
        }
        self.profiler = profiler;
        true
    }

    /// Consumes the (finished or paused) world, harvesting the per-host
    /// stacks into the aggregated [`SimReport`].
    pub fn into_report(self) -> SimReport {
        let mut mac = MacStats::default();
        let (joins, leaves) = self.pure.net_totals();
        let mut net = NetActivity {
            hello_sent: self.hello_frames,
            hello_received: self.hello_rx,
            neighbor_joins: joins,
            neighbor_leaves: leaves,
        };
        for node in &self.nodes {
            mac.merge(node.mac.stats());
        }
        let scenario_counts = self.scenario.as_ref().map(|st| {
            mac.merge(&st.retired_mac);
            net.neighbor_joins += st.retired_joins;
            net.neighbor_leaves += st.retired_leaves;
            st.counts
        });

        let outcomes = self.metrics.outcomes();
        let (re, srb, latency) = summarize(&outcomes);
        SimReport {
            scheme: self.cfg.scheme.label(),
            map: self.map.label(),
            broadcasts: self.issued,
            reachability: re,
            saved_rebroadcasts: srb,
            avg_latency_s: latency,
            hello_packets: self.hello_frames,
            data_frames: self.data_frames,
            collisions: self.medium.collision_count(),
            losses: self.medium.loss_counters(),
            mac,
            net,
            suppression: self.pure.suppression(),
            profile: self.profiler.is_enabled().then(|| self.profiler.profile()),
            sim_seconds: self.last_event_at.as_secs_f64(),
            per_broadcast: outcomes,
            scenario: scenario_counts,
        }
    }

    fn handle(&mut self, now: SimTime, event: Event, observer: &mut dyn SimObserver) {
        match event {
            Event::MobilityTurn { node } => {
                let mobility = &mut self.nodes[node.index()].mobility;
                mobility.advance(now);
                self.segments[node.index()] = mobility.segment();
                // The host's trajectory changed; drop the snapshot (and
                // the grid synced to it) so a later query at this same
                // timestamp re-evaluates it.
                self.snap_at = None;
                self.grid_at = None;
                if let Some(next) = self.nodes[node.index()].mobility.next_change() {
                    self.schedule_event(next, Event::MobilityTurn { node });
                }
            }
            Event::HelloTimer { node } => {
                self.dispatch(now, PureAction::HelloPrepare { node }, observer)
            }
            Event::MacTimer {
                node,
                generation,
                epoch,
            } => {
                // A timer that outlived its MAC (host deactivated since it
                // was armed) must not reach the replacement MAC.
                if epoch != self.current_epoch(node) {
                    return;
                }
                let actions = self.nodes[node.index()].mac.on_timer(generation, now);
                self.process_mac_action(node, actions, now, observer);
            }
            Event::TxEnd { frame } => self.finish_transmission(frame, now, observer),
            Event::AssessmentDone { node, packet } => {
                self.dispatch(now, PureAction::AssessmentFired { node, packet }, observer)
            }
            Event::IssueBroadcast => self.issue_broadcast(now, observer),
            Event::CarrierBatch { slot, busy } => {
                let hearers = self.carrier_batches.remove(slot);
                for &node in &hearers {
                    self.apply_carrier_change(node, busy, now, observer);
                }
                // Recycle the hearer list (keeping its capacity) for the
                // next delayed report.
                self.carrier_pool.push(hearers);
            }
            Event::Scenario { index } => self.apply_scenario_action(index, now, observer),
        }
    }

    // ---- the dispatcher ---------------------------------------------------

    /// Feeds one action through the pure models and executes the effects
    /// it requests, in order. The single entry point for protocol state
    /// changes — and therefore the single tap point for recording.
    fn dispatch(&mut self, now: SimTime, action: PureAction<'_>, observer: &mut dyn SimObserver) {
        if let Some(rec) = &mut self.recorder {
            rec.action(now, &action);
        }
        let mut fx = std::mem::take(&mut self.fx);
        debug_assert!(fx.is_empty(), "dispatch re-entered through an effect");
        self.pure.step(now, &action, &mut fx);
        for effect in fx.drain(..) {
            self.apply_effect(now, effect, observer);
        }
        self.fx = fx;
    }

    /// Dispatches an action that must not produce effects (`FrameSent`,
    /// `Originate`). Safe to call from inside effect application — it
    /// uses a buffer disjoint from [`dispatch`](Self::dispatch)'s.
    fn dispatch_leaf(&mut self, now: SimTime, action: PureAction<'_>) {
        if let Some(rec) = &mut self.recorder {
            rec.action(now, &action);
        }
        self.pure.step(now, &action, &mut self.fx_leaf);
        debug_assert!(self.fx_leaf.is_empty(), "leaf action produced effects");
        self.fx_leaf.clear();
    }

    /// Appends one scheme decision to the trace, if recording.
    fn record_decision(
        &mut self,
        at: SimTime,
        node: NodeId,
        packet: PacketId,
        kind: DecisionKind,
        reason: Option<SuppressReason>,
    ) {
        if let Some(rec) = &mut self.recorder {
            rec.decision(DecisionRecord {
                at,
                node,
                packet,
                kind,
                reason,
            });
        }
    }

    /// Executes one effect requested by a pure step. This is where the
    /// queue, the RNG streams, the MACs, and the metrics are touched on
    /// the pure models' behalf.
    fn apply_effect(&mut self, now: SimTime, effect: Effect, observer: &mut dyn SimObserver) {
        match effect {
            Effect::AccelerateHello { node, target } => {
                // Under the dynamic hello policy, membership churn may
                // shorten the host's hello interval; if the recomputed
                // interval would fire before the currently scheduled
                // beacon, pull the beacon forward. (The paper notes "each
                // host's hello interval may change dynamically".)
                let Some((key, at)) = self.nodes[node.index()].hello_pending else {
                    return;
                };
                if target < at {
                    self.queue.cancel(key);
                    let key = self.schedule_event(target, Event::HelloTimer { node });
                    self.nodes[node.index()].hello_pending = Some((key, target));
                }
            }
            Effect::EmitHello { node, interval } => {
                let include_neighbors = self.cfg.scheme.needs_two_hop_hellos();
                let mut neighbors = self.hello_pool.pop().unwrap_or_default();
                neighbors.clear();
                if include_neighbors {
                    self.pure.neighbor_ids_into(node, &mut neighbors);
                }
                let payload = HelloPayload {
                    sender: node,
                    interval,
                    neighbors,
                };
                let bytes = payload.air_bytes();
                let n = &mut self.nodes[node.index()];
                let handle = n.queue_payload(Payload::Hello(payload));
                let actions = n.mac.enqueue(handle, bytes, now);
                self.process_mac_action(node, actions, now, observer);
                // Re-arm with a small jitter so beacons do not phase-lock.
                let jitter_num = self.proto_rng.gen_range_u32(95..106);
                let next = interval * u64::from(jitter_num) / 100;
                let at = now + next;
                let key = self.schedule_event(at, Event::HelloTimer { node });
                self.nodes[node.index()].hello_pending = Some((key, at));
            }
            Effect::FirstHeard { node, packet } => {
                observer.event(&TraceEvent::FirstHeard {
                    node,
                    packet,
                    at: now,
                });
            }
            Effect::InhibitFirstHear {
                node,
                packet,
                reason,
            } => {
                observer.event(&TraceEvent::Decision {
                    node,
                    packet,
                    kind: DecisionKind::InhibitedOnFirstHear,
                    reason,
                    at: now,
                });
                self.record_decision(
                    now,
                    node,
                    packet,
                    DecisionKind::InhibitedOnFirstHear,
                    reason,
                );
                self.metrics.rebroadcast_inhibited(packet, now);
            }
            Effect::ScheduleAssessment { node, packet } => {
                // S2: random assessment delay of 0-31 slots. The slots
                // count after carrier sensing and DIFS (the standard
                // random-assessment-delay composition), so hosts that
                // drew different slot numbers access the medium at
                // distinct, carrier-separable instants, while same-slot
                // draws contend - the paper's Fig. 2 contention scenario.
                let slots = self.proto_rng.gen_range_u32(0..32);
                let delay = self.cfg.cs_delay + manet_mac::timing::DIFS + SLOT * u64::from(slots);
                let key = self.schedule_event(now + delay, Event::AssessmentDone { node, packet });
                self.pure.set_assessment_key(node, packet.seq, key);
                observer.event(&TraceEvent::Decision {
                    node,
                    packet,
                    kind: DecisionKind::Scheduled,
                    reason: None,
                    at: now,
                });
                self.record_decision(now, node, packet, DecisionKind::Scheduled, None);
            }
            Effect::CancelAssessment {
                node,
                packet,
                key,
                reason,
            } => {
                self.queue.cancel(key);
                observer.event(&TraceEvent::Decision {
                    node,
                    packet,
                    kind: DecisionKind::Cancelled,
                    reason,
                    at: now,
                });
                self.record_decision(now, node, packet, DecisionKind::Cancelled, reason);
                self.metrics.rebroadcast_inhibited(packet, now);
            }
            Effect::CancelQueued {
                node,
                packet,
                handle,
                reason,
            } => {
                let n = &mut self.nodes[node.index()];
                let cancelled = n.mac.cancel(handle);
                debug_assert!(cancelled, "queued frame must still be cancellable");
                n.take_payload(handle);
                observer.event(&TraceEvent::Decision {
                    node,
                    packet,
                    kind: DecisionKind::Cancelled,
                    reason,
                    at: now,
                });
                self.record_decision(now, node, packet, DecisionKind::Cancelled, reason);
                self.metrics.rebroadcast_inhibited(packet, now);
            }
            Effect::EnqueueRebroadcast { node, packet } => {
                // S2 continued: submit to the MAC, then patch the real
                // frame handle over the ledger's placeholder *before*
                // running the MAC action — an immediate `BeginTx` marks
                // the packet done via `FrameSent`, which must find the
                // queued entry intact.
                let n = &mut self.nodes[node.index()];
                let handle = n.queue_payload(Payload::Broadcast(packet));
                let bytes = self.cfg.packet_bytes;
                let actions = n.mac.enqueue(handle, bytes, now);
                self.pure.set_queued_handle(node, packet.seq, handle);
                self.process_mac_action(node, actions, now, observer);
            }
            Effect::AbandonAssessments { keys } => {
                for key in keys {
                    let cancelled = self.queue.cancel(key);
                    debug_assert!(cancelled, "assessment key was already spent");
                }
            }
            Effect::RetireCounters { joins, leaves } => {
                let st = self.scenario_mut();
                st.retired_joins += joins;
                st.retired_leaves += leaves;
            }
        }
    }

    /// Ensures `snap_positions` holds every host's position at `now`.
    /// Mobility models are evaluated once per distinct timestamp; every
    /// further query at the same `now` is free.
    ///
    /// On sharded runs with enough hosts the dense evaluation fans out
    /// over scoped threads. Each thread writes a disjoint chunk of the
    /// buffer with a pure function of the (shared, read-only) segments,
    /// so the result is independent of thread scheduling.
    fn refresh_positions(&mut self, now: SimTime) {
        if self.snap_at == Some(now) {
            return;
        }
        let bounds = self.map.bounds();
        let n = self.segments.len();
        if self.shard_map.shards() > 1 && n >= PARALLEL_REFRESH_MIN_HOSTS {
            let chunk = n.div_ceil(self.shard_map.shards().min(8));
            self.snap_positions.resize(n, Vec2::ZERO);
            let segments = &self.segments;
            std::thread::scope(|scope| {
                for (seg, pos) in segments
                    .chunks(chunk)
                    .zip(self.snap_positions.chunks_mut(chunk))
                {
                    scope.spawn(move || {
                        for (s, p) in seg.iter().zip(pos) {
                            *p = s.position_at(now, bounds);
                        }
                    });
                }
            });
        } else {
            self.snap_positions.clear();
            self.snap_positions
                .extend(self.segments.iter().map(|s| s.position_at(now, bounds)));
        }
        self.snap_at = Some(now);
    }

    /// Rebuilds strip membership from fresh positions once per
    /// [`STRIP_SYNC_INTERVAL`] of simulated time. The sync is *not* an
    /// event: it consumes no sequence number and draws no randomness, so
    /// it cannot perturb the delivered event stream — it only re-balances
    /// which strip scans which hosts.
    fn maybe_strip_sync(&mut self, now: SimTime) {
        if now < self.strip_sync_at + STRIP_SYNC_INTERVAL {
            return;
        }
        self.refresh_positions(now);
        for hosts in &mut self.strip_hosts {
            hosts.clear();
        }
        for (i, p) in self.snap_positions.iter().enumerate() {
            let s = self.shard_map.shard_of_x(p.x);
            self.strip_of_host[i] = s as u32;
            self.strip_hosts[s].push(i as u32);
        }
        for stamp in &mut self.strip_snap_at {
            *stamp = Some(now);
        }
        self.strip_sync_at = now;
    }

    /// Strip-lazy replacement for the brute-force range scan on sharded
    /// runs: refreshes only the strips that can hold hosts within the
    /// radio radius of `of`, then runs the exact squared-distance test
    /// over their members. The result is byte-identical to
    /// [`manet_phy::in_range_into`] over a full snapshot (ascending ids,
    /// identical arithmetic on identical fresh positions); only the number
    /// of segment evaluations changes.
    ///
    /// Window correctness: a host within `radius` of the transmitter now
    /// sat, at the last membership sync, within `radius + drift` of the
    /// transmitter's *current* x (it moved at most `max_speed × elapsed`
    /// since), so scanning the strips overlapping that inflated window
    /// finds every candidate; the exact test then decides membership.
    #[cfg_attr(simlint, hot_path)]
    fn in_range_strips(&mut self, now: SimTime, of: NodeId, out: &mut Vec<NodeId>) {
        debug_assert!(
            !self.shard_queues.is_empty(),
            "strip scan on a sequential run"
        );
        self.maybe_strip_sync(now);
        let bounds = self.map.bounds();
        let full = self.snap_at == Some(now);
        let center = if full {
            self.snap_positions[of.index()]
        } else {
            let p = self.segments[of.index()].position_at(now, bounds);
            self.snap_positions[of.index()] = p;
            p
        };
        let radius = self.cfg.radio_radius;
        let drift = self.max_speed_ms
            * now
                .saturating_duration_since(self.strip_sync_at)
                .as_secs_f64();
        let reach = radius + drift;
        let (lo, hi) = self
            .shard_map
            .strips_overlapping(center.x - reach, center.x + reach);
        for s in lo..=hi {
            if full || self.strip_snap_at[s] == Some(now) {
                continue;
            }
            for &h in &self.strip_hosts[s] {
                self.snap_positions[h as usize] =
                    self.segments[h as usize].position_at(now, bounds);
            }
            self.strip_snap_at[s] = Some(now);
        }
        out.clear();
        let r2 = radius * radius;
        let me = of.index() as u32;
        for s in lo..=hi {
            for &h in &self.strip_hosts[s] {
                if h != me && self.snap_positions[h as usize].distance_squared_to(center) <= r2 {
                    out.push(NodeId::new(h));
                }
            }
        }
        out.sort_unstable();
    }

    /// Ensures the spatial grid indexes the position snapshot at `now`.
    /// Re-indexing costs an O(hosts) pass, so only the multi-query
    /// consumers (flood reachability, oracle neighbor views) sync the
    /// grid; single-query paths scan the snapshot directly instead.
    fn refresh_grid(&mut self, now: SimTime) {
        self.refresh_positions(now);
        if self.grid_at == Some(now) {
            return;
        }
        self.grid.update(&self.snap_positions);
        self.grid_at = Some(now);
    }

    // ---- workload -------------------------------------------------------

    fn issue_broadcast(&mut self, now: SimTime, observer: &mut dyn SimObserver) {
        // Under a scenario only active hosts can originate traffic: the
        // draw selects among them by rank so the workload stream stays
        // deterministic for a given membership history. Without a scenario
        // the original draw is preserved bit-for-bit.
        let source = if let Some(st) = &self.scenario {
            let rank = self.workload_rng.gen_range_u32(0..st.active_count);
            let id = st
                .active
                .iter()
                .enumerate()
                .filter(|(_, &up)| up)
                .nth(rank as usize)
                .expect("active_count matches the membership vector")
                .0;
            NodeId::new(id as u32)
        } else {
            NodeId::new(self.workload_rng.gen_range_u32(0..self.cfg.hosts))
        };
        let packet = PacketId::new(source, self.next_seq);
        self.next_seq += 1;
        self.issued += 1;

        self.refresh_grid(now);
        let mut reachable_set = std::mem::take(&mut self.scratch_reachable);
        if let Some(st) = &self.scenario {
            // Hosts that are down cannot relay or receive: reachability
            // (`e` in the RE metric) is computed over the live topology.
            self.grid.reachable_masked_into(
                &self.snap_positions,
                source,
                self.cfg.radio_radius,
                &st.active,
                &mut reachable_set,
            );
        } else {
            self.grid.reachable_into(
                &self.snap_positions,
                source,
                self.cfg.radio_radius,
                &mut reachable_set,
            );
        }
        let reachable = reachable_set.len() as u32;
        if self.scenario.is_some() {
            self.metrics
                .broadcast_issued_scoped(packet, source, &reachable_set, now);
        } else {
            self.metrics
                .broadcast_issued(packet, source, reachable, now);
        }
        self.scratch_reachable = reachable_set;
        observer.event(&TraceEvent::BroadcastIssued {
            packet,
            source,
            reachable,
            at: now,
        });

        // The source transmits unconditionally: queue straight to its MAC.
        self.dispatch_leaf(
            now,
            PureAction::Originate {
                node: source,
                packet,
            },
        );
        let node = &mut self.nodes[source.index()];
        let handle = node.queue_payload(Payload::Broadcast(packet));
        let bytes = self.cfg.packet_bytes;
        let actions = node.mac.enqueue(handle, bytes, now);
        self.process_mac_action(source, actions, now, observer);

        if self.issued < self.cfg.broadcasts {
            let gap = self
                .workload_rng
                .gen_duration_up_to(self.cfg.max_interarrival);
            self.schedule_event(now + gap, Event::IssueBroadcast);
        } else {
            self.stop_at = now + self.cfg.grace;
        }
    }

    // ---- HELLO beaconing ------------------------------------------------

    fn hello_received(
        &mut self,
        node: NodeId,
        payload: &HelloPayload,
        now: SimTime,
        observer: &mut dyn SimObserver,
    ) {
        self.hello_rx += 1;
        self.dispatch(
            now,
            PureAction::HelloHeard {
                node,
                sender: payload.sender,
                interval: payload.interval,
                neighbors: &payload.neighbors,
            },
            observer,
        );
    }

    // ---- MAC / channel wiring --------------------------------------------

    fn process_mac_action(
        &mut self,
        node: NodeId,
        action: Option<MacAction>,
        now: SimTime,
        observer: &mut dyn SimObserver,
    ) {
        match action {
            Some(MacAction::StartTimer { delay, generation }) => {
                let epoch = self.current_epoch(node);
                self.schedule_event(
                    now + delay,
                    Event::MacTimer {
                        node,
                        generation,
                        epoch,
                    },
                );
            }
            Some(MacAction::BeginTx {
                handle,
                payload_bytes,
            }) => self.begin_transmission(node, handle, payload_bytes, now, observer),
            None => {}
        }
    }

    #[cfg_attr(simlint, hot_path)]
    fn begin_transmission(
        &mut self,
        node: NodeId,
        handle: FrameHandle,
        payload_bytes: usize,
        now: SimTime,
        observer: &mut dyn SimObserver,
    ) {
        let payload = self.nodes[node.index()].take_payload(handle);
        match &payload {
            Payload::Broadcast(packet) => {
                self.data_frames += 1;
                // On the air: no longer cancellable.
                self.dispatch_leaf(
                    now,
                    PureAction::FrameSent {
                        node,
                        packet: *packet,
                    },
                );
            }
            Payload::Hello(_) => self.hello_frames += 1,
        }
        let mut listeners = std::mem::take(&mut self.scratch_listeners);
        if self.shard_queues.is_empty() {
            self.refresh_positions(now);
            // A transmission start makes exactly one range query at this
            // timestamp, so the O(hosts) snapshot scan beats re-indexing
            // the grid (also O(hosts)) just to make one O(1) cell lookup.
            manet_phy::in_range_into(
                &self.snap_positions,
                node,
                self.cfg.radio_radius,
                &mut listeners,
            );
        } else {
            // Sharded runs refresh and scan only the strips within reach
            // of the transmitter — same output, a fraction of the segment
            // evaluations.
            self.in_range_strips(now, node, &mut listeners);
        }
        if let Some(st) = &self.scenario {
            // Hosts that are down have no radio: they neither sense this
            // frame's carrier nor receive it.
            listeners.retain(|l| st.active[l.index()]);
        }
        observer.event(&TraceEvent::FrameStarted {
            node,
            kind: match &payload {
                Payload::Broadcast(packet) => FrameKind::Broadcast(*packet),
                Payload::Hello(_) => FrameKind::Hello,
            },
            listeners: listeners.len() as u32,
            at: now,
        });
        let end = now + frame_airtime(payload_bytes);
        let own = self.snap_positions[node.index()];
        let mut carrier = std::mem::take(&mut self.scratch_begin_carrier);
        let frame = if let Some(capture) = self.cfg.capture {
            // Received power falls off as (r / d)^alpha, normalized so a
            // listener at the coverage edge receives strength 1.
            let mut signals = std::mem::take(&mut self.scratch_signals);
            signals.clear();
            signals.extend(listeners.iter().map(|&l| {
                let d = self.snap_positions[l.index()].distance_to(own).max(1.0);
                manet_phy::Listener {
                    node: l,
                    signal: (self.cfg.radio_radius / d).powf(capture.path_loss_exponent),
                }
            }));
            let frame = self.medium.begin_transmission_with_signals_into(
                node,
                now,
                end,
                &signals,
                &mut carrier,
            );
            self.scratch_signals = signals;
            frame
        } else {
            self.medium
                .begin_transmission_into(node, now, end, &listeners, &mut carrier)
        };
        // Scenario link faults destroy individual deliveries the moment
        // the frame starts (the loss is decided per-link, not per-frame).
        if self
            .scenario
            .as_ref()
            .is_some_and(ScenarioState::any_fault_open)
        {
            self.apply_link_faults(frame, node, &listeners);
        }
        self.scratch_listeners = listeners;
        self.schedule_event(end, Event::TxEnd { frame });
        let slot = usize::try_from(frame.as_u64()).expect("frame slot out of range");
        if slot >= self.in_flight.len() {
            self.in_flight.resize_with(slot + 1, || None);
        }
        debug_assert!(self.in_flight[slot].is_none(), "frame slot still occupied");
        self.in_flight[slot] = Some(InFlight {
            sender: node,
            payload,
            sent_from: own,
            sender_epoch: self.current_epoch(node),
        });
        // Busy-carrier fan-out cannot re-enter this function: a MAC that
        // senses carrier never starts a transmission in response (it only
        // freezes backoff), so the scratch buffers above are settled.
        self.deliver_carrier_changes(&carrier, true, now, observer);
        self.scratch_begin_carrier = carrier;
    }

    /// Routes one frame's carrier-sense transitions to the hearers' MACs,
    /// applying the configured CCA latency. With a nonzero delay the whole
    /// fan-out rides a single [`Event::CarrierBatch`]: every per-host
    /// report would fire at the same instant with consecutive sequence
    /// numbers anyway, so one event delivering them in list order is
    /// indistinguishable from scheduling them individually — at a fraction
    /// of the event-queue traffic (carrier reports are over half of all
    /// events in a storm).
    #[cfg_attr(simlint, hot_path)]
    fn deliver_carrier_changes(
        &mut self,
        changes: &[CarrierChange],
        busy: bool,
        now: SimTime,
        observer: &mut dyn SimObserver,
    ) {
        if changes.is_empty() {
            return;
        }
        if self.cfg.cs_delay.is_zero() {
            for &CarrierChange { node, .. } in changes {
                self.apply_carrier_change(node, busy, now, observer);
            }
        } else {
            let mut hearers = self.carrier_pool.pop().unwrap_or_default();
            hearers.clear();
            hearers.extend(changes.iter().map(|c| c.node));
            let slot = self.carrier_batches.insert(hearers);
            self.schedule_event(now + self.cfg.cs_delay, Event::CarrierBatch { slot, busy });
        }
    }

    /// Feeds one carrier transition to a host's MAC.
    #[cfg_attr(simlint, hot_path)]
    fn apply_carrier_change(
        &mut self,
        node: NodeId,
        busy: bool,
        now: SimTime,
        observer: &mut dyn SimObserver,
    ) {
        // A host that deactivated after the report was scheduled has no
        // radio; its replacement MAC syncs its own carrier view on rejoin.
        if !self.is_active(node) {
            return;
        }
        let mac = &mut self.nodes[node.index()].mac;
        let action = if busy {
            mac.on_medium_busy(now)
        } else {
            mac.on_medium_idle(now)
        };
        self.process_mac_action(node, action, now, observer);
    }

    #[cfg_attr(simlint, hot_path)]
    fn finish_transmission(
        &mut self,
        frame: FrameId,
        now: SimTime,
        observer: &mut dyn SimObserver,
    ) {
        let mut deliveries = std::mem::take(&mut self.scratch_deliveries);
        let mut carrier = std::mem::take(&mut self.scratch_end_carrier);
        let source = self
            .medium
            .end_transmission_into(frame, now, &mut deliveries, &mut carrier);
        let slot = usize::try_from(frame.as_u64()).expect("frame slot out of range");
        let in_flight = self.in_flight[slot].take().expect("unknown frame finished");
        debug_assert_eq!(source, in_flight.sender);

        // The transmitter's MAC enters post-backoff. This may immediately
        // start the host's next queued frame — which is why `begin` and
        // `finish` use disjoint scratch buffers. A sender that deactivated
        // mid-flight is skipped: its current MAC never started this frame.
        if in_flight.sender_epoch == self.current_epoch(source) {
            let actions = self.nodes[source.index()].mac.on_tx_end(now);
            self.process_mac_action(source, actions, now, observer);
        }

        if let Payload::Broadcast(packet) = in_flight.payload {
            self.metrics.transmission_finished(packet, source, now);
        }
        let decoded = deliveries.iter().filter(|d| d.decoded).count() as u32;
        observer.event(&TraceEvent::FrameFinished {
            node: source,
            kind: match &in_flight.payload {
                Payload::Broadcast(packet) => FrameKind::Broadcast(*packet),
                Payload::Hello(_) => FrameKind::Hello,
            },
            decoded,
            lost: deliveries.len() as u32 - decoded,
            at: now,
        });

        // Deliver decoded copies to the upper layer. A listener that went
        // down while the frame was airing has no radio left to decode it.
        for delivery in &deliveries {
            if !delivery.decoded || !self.is_active(delivery.to) {
                continue;
            }
            match &in_flight.payload {
                Payload::Hello(h) => self.hello_received(delivery.to, h, now, observer),
                Payload::Broadcast(packet) => {
                    self.packet_heard(
                        delivery.to,
                        *packet,
                        source,
                        in_flight.sent_from,
                        now,
                        observer,
                    );
                }
            }
        }

        // A beacon's neighbor list goes back to the pool for the next one.
        if let Payload::Hello(hello) = in_flight.payload {
            self.hello_pool.push(hello.neighbors);
        }

        // Carrier-sense idle transitions may resume frozen backoffs.
        self.deliver_carrier_changes(&carrier, false, now, observer);
        self.scratch_deliveries = deliveries;
        self.scratch_end_carrier = carrier;
    }

    // ---- scheme-level packet handling ------------------------------------

    fn packet_heard(
        &mut self,
        node: NodeId,
        packet: PacketId,
        sender: NodeId,
        sender_pos: Vec2,
        now: SimTime,
        observer: &mut dyn SimObserver,
    ) {
        self.metrics.packet_received(packet, node);
        let own_position = self.segments[node.index()].position_at(now, self.map.bounds());

        // Oracle-mode neighbor views are geometry, which only the
        // dispatcher can evaluate; they ride into the pure step on the
        // action. HELLO-mode views come from the models' own tables.
        let needs_count = self.cfg.scheme.needs_neighbor_count();
        let needs_two_hop = self.cfg.scheme.needs_two_hop_hellos();
        let use_oracle = matches!(self.cfg.neighbor_info, NeighborInfo::Oracle)
            && (needs_count || needs_two_hop);
        let mut neighbors = std::mem::take(&mut self.scratch_neighbors);
        let mut sender_neighbors = std::mem::take(&mut self.scratch_sender_neighbors);
        neighbors.clear();
        sender_neighbors.clear();
        let oracle = if use_oracle {
            if self.shard_queues.is_empty() {
                self.refresh_grid(now);
                self.grid.in_range_into(
                    &self.snap_positions,
                    node,
                    self.cfg.radio_radius,
                    &mut neighbors,
                );
                let neighbor_count = neighbors.len();
                if needs_two_hop {
                    self.grid.in_range_into(
                        &self.snap_positions,
                        sender,
                        self.cfg.radio_radius,
                        &mut sender_neighbors,
                    );
                } else {
                    neighbors.clear();
                }
                Some(OracleView {
                    neighbor_count,
                    neighbors: &neighbors,
                    sender_neighbors: &sender_neighbors,
                })
            } else {
                // Sharded runs answer oracle views with the strip scan —
                // byte-identical to the grid query, without the O(hosts)
                // grid re-index per timestamp.
                self.in_range_strips(now, node, &mut neighbors);
                let neighbor_count = neighbors.len();
                if needs_two_hop {
                    self.in_range_strips(now, sender, &mut sender_neighbors);
                } else {
                    neighbors.clear();
                }
                Some(OracleView {
                    neighbor_count,
                    neighbors: &neighbors,
                    sender_neighbors: &sender_neighbors,
                })
            }
        } else {
            None
        };

        // The random draw happens for every heard copy, decision or not,
        // to keep the protocol RNG stream independent of scheme choices.
        let random_unit = self.proto_rng.gen_unit_f64();
        self.dispatch(
            now,
            PureAction::PacketHeard {
                node,
                packet,
                sender,
                sender_position: sender_pos,
                own_position,
                random_unit,
                oracle,
            },
            observer,
        );
        self.scratch_neighbors = neighbors;
        self.scratch_sender_neighbors = sender_neighbors;
    }

    // ---- scenario: host churn & fault injection --------------------------

    fn scenario_mut(&mut self) -> &mut ScenarioState {
        self.scenario
            .as_mut()
            .expect("scenario event without scenario state")
    }

    /// Whether this run beacons HELLOs at all (mirrors the construction-
    /// time decision in [`World::new`]).
    fn hellos_enabled(&self) -> bool {
        matches!(self.cfg.neighbor_info, NeighborInfo::Hello(_))
            && (self.cfg.scheme.needs_neighbor_count() || self.cfg.scheme.needs_two_hop_hellos())
    }

    /// Applies the scenario timeline entry at `index`.
    fn apply_scenario_action(&mut self, index: u32, now: SimTime, observer: &mut dyn SimObserver) {
        let action = *self.scenario_mut().timeline.get(index as usize).1;
        match action {
            WorldAction::Leave { host } => self.deactivate_host(host, false, now, observer),
            WorldAction::Crash { host } => self.deactivate_host(host, true, now, observer),
            WorldAction::Join { host } => self.reactivate_host(index, host, false, now, observer),
            WorldAction::Recover { host } => self.reactivate_host(index, host, true, now, observer),
            WorldAction::BlackoutStart { a, b } => self.scenario_mut().blackouts.push((a, b)),
            WorldAction::BlackoutEnd { a, b } => {
                let st = self.scenario_mut();
                let pos = st
                    .blackouts
                    .iter()
                    .position(|&open| open == (a, b))
                    .expect("blackout end without a matching start");
                st.blackouts.remove(pos);
            }
            WorldAction::NoiseStart { drop_probability } => {
                self.scenario_mut().noise.push(drop_probability)
            }
            WorldAction::NoiseEnd { drop_probability } => {
                let st = self.scenario_mut();
                let pos = st
                    .noise
                    .iter()
                    .position(|open| open.to_bits() == drop_probability.to_bits())
                    .expect("noise end without a matching start");
                st.noise.remove(pos);
            }
            WorldAction::PartitionStart { region } => self.scenario_mut().partitions.push(region),
            WorldAction::PartitionEnd { region } => {
                let st = self.scenario_mut();
                let pos = st
                    .partitions
                    .iter()
                    .position(|open| *open == region)
                    .expect("partition end without a matching start");
                st.partitions.remove(pos);
            }
        }
    }

    /// Takes a host off the air: its radio stops hearing and sending, all
    /// of its cancellable protocol activity is abandoned, and (on a crash)
    /// its protocol state is wiped. Mobility continues — a parked radio
    /// still moves with its host.
    fn deactivate_host(
        &mut self,
        host: u32,
        crash: bool,
        now: SimTime,
        observer: &mut dyn SimObserver,
    ) {
        let node = NodeId::new(host);
        let idx = node.index();
        {
            let st = self.scenario_mut();
            debug_assert!(st.active[idx], "deactivating a host that is already down");
            st.active[idx] = false;
            st.active_count -= 1;
            st.node_epoch[idx] += 1;
            if crash {
                st.counts.crashes += 1;
            } else {
                st.counts.leaves += 1;
            }
        }
        // Silence the beacon.
        if let Some((key, _)) = self.nodes[idx].hello_pending.take() {
            self.queue.cancel(key);
        }
        // Abandon per-packet scheme state: pending assessment wakeups come
        // back as an `AbandonAssessments` effect and are cancelled there;
        // MAC-queued rebroadcasts are handled by the queue sweep below
        // (which also covers HELLO frames). On a crash the models also
        // wipe the host's memory, retiring its counters.
        self.dispatch(now, PureAction::Deactivate { node, crash }, observer);
        // Sweep the MAC queue: every payload still in `outgoing` belongs
        // to a queued (not yet airing) frame — `begin_transmission` takes
        // the payload out the moment a frame hits the air.
        let slots: Vec<u32> = self.nodes[idx]
            .outgoing
            .iter()
            .map(|(slot, _)| slot)
            .collect();
        for slot in slots {
            let n = &mut self.nodes[idx];
            let cancelled = n.mac.cancel(FrameHandle(u64::from(slot)));
            debug_assert!(cancelled, "orphan payload was not queued in the MAC");
            if let Payload::Hello(hello) = n.outgoing.remove(slot) {
                self.hello_pool.push(hello.neighbors);
            }
        }
    }

    /// Puts a host back on the air with a factory-fresh radio/MAC, syncing
    /// its carrier view with whatever is currently airing around it.
    fn reactivate_host(
        &mut self,
        index: u32,
        host: u32,
        recover: bool,
        now: SimTime,
        observer: &mut dyn SimObserver,
    ) {
        let node = NodeId::new(host);
        let idx = node.index();
        // The host's final frame may still be draining out of its old
        // radio (a transmission cannot be recalled once started). Let it
        // finish before the replacement radio powers up; the retry is
        // deterministic and terminates because the downed MAC cannot
        // start anything new.
        if self.medium.is_transmitting(node) {
            self.schedule_event(
                now + manet_sim_engine::SimDuration::from_millis(5),
                Event::Scenario { index },
            );
            return;
        }
        let (mac_rng, phase) = {
            let st = self.scenario_mut();
            debug_assert!(!st.active[idx], "reactivating a host that is already up");
            st.active[idx] = true;
            st.active_count += 1;
            if recover {
                st.counts.recoveries += 1;
            } else {
                st.counts.joins += 1;
            }
            st.respawn_seq += 1;
            let mut rng = st.respawn_rng.fork(st.respawn_seq);
            let phase = rng.gen_duration_up_to(manet_sim_engine::SimDuration::from_secs(1));
            (rng, phase)
        };
        let old = std::mem::replace(&mut self.nodes[idx].mac, Dcf::new(mac_rng));
        self.scenario_mut().retired_mac.merge(old.stats());
        // The fresh MAC boots believing the medium is idle; correct that
        // if a neighbor's frame is airing over this host right now.
        if self.medium.is_carrier_busy(node) {
            let action = self.nodes[idx].mac.on_medium_busy(now);
            self.process_mac_action(node, action, now, observer);
        }
        if self.hellos_enabled() {
            let at = now + phase;
            let key = self.schedule_event(at, Event::HelloTimer { node });
            self.nodes[idx].hello_pending = Some((key, at));
        }
    }

    /// Destroys individual deliveries of the frame that just started, per
    /// the open fault windows: a link blackout beats a partition-boundary
    /// crossing beats an ambient-noise draw (the draw is only made when no
    /// deterministic fault already applies). Injection respects the
    /// medium's first-cause-wins rule, so a delivery already garbled by a
    /// collision stays a collision.
    fn apply_link_faults(&mut self, frame: FrameId, sender: NodeId, listeners: &[NodeId]) {
        enum FaultKind {
            Blackout,
            Partition,
            Noise,
        }
        let st = self.scenario.as_mut().expect("faults without a scenario");
        let s = sender.index() as u32;
        let sender_pos = self.snap_positions[sender.index()];
        // Independent overlapping bursts compose: survive all or drop.
        let noise_drop = 1.0 - st.noise.iter().fold(1.0, |acc, &p| acc * (1.0 - p));
        for &listener in listeners {
            let l = listener.index() as u32;
            let kind = if st
                .blackouts
                .iter()
                .any(|&(a, b)| (a == s && b == l) || (a == l && b == s))
            {
                Some(FaultKind::Blackout)
            } else if st.partitions.iter().any(|region| {
                let lp = self.snap_positions[listener.index()];
                region.contains(sender_pos.x, sender_pos.y) != region.contains(lp.x, lp.y)
            }) {
                Some(FaultKind::Partition)
            } else if noise_drop > 0.0 && st.rng.gen_unit_f64() < noise_drop {
                Some(FaultKind::Noise)
            } else {
                None
            };
            if let Some(kind) = kind {
                if self.medium.inject_loss(frame, listener) {
                    match kind {
                        FaultKind::Blackout => st.counts.blackout_drops += 1,
                        FaultKind::Partition => st.counts.partition_drops += 1,
                        FaultKind::Noise => st.counts.noise_drops += 1,
                    }
                }
            }
        }
    }
}
