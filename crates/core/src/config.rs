//! Simulation configuration.
//!
//! [`SimConfig`] captures one simulation run: the map, the host
//! population and mobility, the broadcast scheme, how neighborhood
//! information is obtained, and the workload. Defaults match the paper's
//! fixed parameters (§4); a builder makes the sweeps in the experiment
//! harness terse.

use manet_mobility::{Map, PAPER_RADIO_RADIUS_M};
use manet_net::HelloIntervalPolicy;
use manet_scenario::Scenario;
use manet_sim_engine::SimDuration;

use crate::schemes::SchemeSpec;

/// Where the adaptive schemes get their neighborhood information.
#[derive(Debug, Clone, PartialEq)]
pub enum NeighborInfo {
    /// Real HELLO beacons over the simulated channel (the paper's setup):
    /// neighbor knowledge costs bandwidth and can go stale.
    Hello(HelloIntervalPolicy),
    /// Perfect instantaneous knowledge from the simulator's geometry.
    /// Not part of the paper — used by tests and the oracle-vs-hello
    /// ablation.
    Oracle,
}

/// Which mobility model hosts follow.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MobilitySpec {
    /// The paper's random-turn roaming (uniform direction, speed, and
    /// 1–100 s interval per turn).
    RandomTurn,
    /// The classic random-waypoint model (travel to a uniform destination,
    /// pause, repeat) — an extension for robustness checks.
    RandomWaypoint,
    /// Hosts never move (deterministic topologies for tests).
    Stationary,
}

/// Physical-layer capture configuration (an extension beyond the paper,
/// which assumes any overlap garbles all frames involved).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CaptureConfig {
    /// Required linear signal-to-interference ratio for a frame to
    /// survive overlap (e.g. 4.0 ≈ 6 dB).
    pub sir_threshold: f64,
    /// Path-loss exponent used to derive received signal strength
    /// `(r / d)^alpha` from the transmitter distance `d` (2 = free space,
    /// 4 = ground reflection).
    pub path_loss_exponent: f64,
}

impl CaptureConfig {
    /// A conventional 802.11-ish model: 10 dB SIR, path-loss exponent 4.
    pub fn typical() -> Self {
        CaptureConfig {
            sir_threshold: 10.0,
            path_loss_exponent: 4.0,
        }
    }
}

/// How hosts are initially placed on the map.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementSpec {
    /// Independent uniform positions (the paper's setup).
    Uniform,
    /// An evenly spaced grid covering the map — deterministic, fully
    /// connected on dense maps.
    Grid,
    /// A horizontal chain through the map center with the given spacing
    /// in meters. With spacing below the radio radius each host reaches
    /// exactly its chain neighbors — ideal for exact-propagation tests.
    Line {
        /// Distance between consecutive hosts, meters.
        spacing_m: u32,
    },
}

/// Full description of one simulation run.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Side of the square map in 500 m units (the paper uses 1–11).
    pub map_units: u32,
    /// Number of mobile hosts (paper: 100).
    pub hosts: u32,
    /// Maximum roaming speed in km/h; `None` uses the paper's default for
    /// the map size (10 km/h per map unit).
    pub max_speed_kmh: Option<f64>,
    /// The broadcast scheme under test.
    pub scheme: SchemeSpec,
    /// Source of neighborhood information.
    pub neighbor_info: NeighborInfo,
    /// Initial host placement.
    pub placement: PlacementSpec,
    /// Mobility model (default: the paper's random turns).
    pub mobility: MobilitySpec,
    /// Number of broadcast requests to issue (paper: 10 000).
    pub broadcasts: u32,
    /// Interarrival between broadcasts is uniform in `[0, this]`
    /// (paper: 2 s).
    pub max_interarrival: SimDuration,
    /// Broadcast payload size in bytes (paper: 280).
    pub packet_bytes: usize,
    /// Transmission radius in meters (paper: 500).
    pub radio_radius: f64,
    /// Root RNG seed; every component derives its stream from this.
    pub seed: u64,
    /// Extra simulated time after the last broadcast is issued, letting
    /// in-flight packets settle before metrics are read.
    pub grace: SimDuration,
    /// Simulated time before the first broadcast is issued, giving HELLO
    /// beacons a chance to populate neighbor tables.
    pub warmup: SimDuration,
    /// Independent per-delivery frame-loss probability (failure
    /// injection; 0 reproduces the paper).
    pub drop_probability: f64,
    /// Grid resolution of the location schemes' coverage estimator.
    pub coverage_resolution: usize,
    /// Carrier-sense latency: how long after a frame appears on the air
    /// neighbors' clear-channel assessment reports busy (and how long
    /// after it ends they report idle). The paper's collision analysis
    /// leans on carriers not being sensed immediately ("RF delays");
    /// 15 µs is the DSSS CCA assessment time. Zero gives an idealized
    /// instant-sensing channel.
    pub cs_delay: SimDuration,
    /// Optional physical-layer capture model; `None` reproduces the
    /// paper's no-capture collisions.
    pub capture: Option<CaptureConfig>,
    /// When `true`, the event loop measures wall-clock time per event
    /// kind and attaches a [`LoopProfile`](manet_sim_engine::LoopProfile)
    /// to the report. Off by default: the disabled path costs a single
    /// branch per event.
    pub profile_events: bool,
    /// Optional scripted scenario: host churn and fault windows compiled
    /// into world events (see the `manet-scenario` crate). `None`
    /// reproduces the paper's fault-free fixed population.
    pub scenario: Option<Scenario>,
    /// Number of spatial shards the world executor splits the map into
    /// (default 1 = the plain sequential run). Shards are vertical strips
    /// at least one radio radius wide; requests past the feasible maximum
    /// are clamped, not rejected. Results are bit-identical for every
    /// shard count — this is purely an execution-strategy knob, which is
    /// also why it is **excluded** from the snapshot fingerprint: a run
    /// snapshotted at 4 shards resumes at 1 (and vice versa).
    pub shards: u32,
    /// Opt into the epoch-parallel executor: shard queues drain their
    /// `MacTimer` events concurrently inside safety epochs bounded by the
    /// carrier-sense delay, with cross-strip effects merged at the epoch
    /// barrier. Trades byte-identity with the sequential run for
    /// *verified equivalence* (see DESIGN.md §14). Ignored (quiet
    /// sequential fallback) when `shards` resolves to 1 or `cs_delay` is
    /// zero. Like `shards`, this is an execution-strategy knob excluded
    /// from the snapshot fingerprint.
    pub parallel_epochs: bool,
    /// Worker-thread override for the sharded executors' pool. `None`
    /// auto-detects (`available_parallelism - 1`, capped by the shard
    /// count); `Some(0)` forces inline execution; `Some(n)` asks for `n`
    /// pool threads even on a box with fewer cores (oversubscription is
    /// allowed — useful for exercising the concurrent paths on small
    /// hosts). Purely an execution-strategy knob: results are unaffected,
    /// and like `shards` it is **excluded** from the snapshot fingerprint.
    pub workers: Option<u32>,
}

impl SimConfig {
    /// Starts a builder for a run of `scheme` on a `map_units × map_units`
    /// map.
    pub fn builder(map_units: u32, scheme: SchemeSpec) -> SimConfigBuilder {
        SimConfigBuilder {
            config: SimConfig {
                map_units,
                hosts: 100,
                max_speed_kmh: None,
                scheme,
                neighbor_info: NeighborInfo::Hello(HelloIntervalPolicy::fixed_1s()),
                placement: PlacementSpec::Uniform,
                mobility: MobilitySpec::RandomTurn,
                broadcasts: 100,
                max_interarrival: SimDuration::from_secs(2),
                packet_bytes: 280,
                radio_radius: PAPER_RADIO_RADIUS_M,
                seed: 1,
                grace: SimDuration::from_secs(5),
                warmup: SimDuration::from_secs(5),
                drop_probability: 0.0,
                coverage_resolution: 48,
                cs_delay: SimDuration::from_micros(15),
                capture: None,
                profile_events: false,
                scenario: None,
                shards: 1,
                parallel_epochs: false,
                workers: None,
            },
        }
    }

    /// The map this configuration runs on.
    pub fn map(&self) -> Map {
        Map::square_units(self.map_units)
    }

    /// The effective maximum roaming speed in km/h.
    pub fn effective_max_speed_kmh(&self) -> f64 {
        self.max_speed_kmh
            .unwrap_or_else(|| self.map().paper_max_speed_kmh())
    }

    /// Checks internal consistency.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.map_units == 0 {
            return Err("map must be at least 1x1".into());
        }
        if self.hosts == 0 {
            return Err("need at least one host".into());
        }
        if self.broadcasts == 0 {
            return Err("need at least one broadcast".into());
        }
        if !(self.radio_radius.is_finite() && self.radio_radius > 0.0) {
            return Err(format!("bad radio radius {}", self.radio_radius));
        }
        if !(0.0..=1.0).contains(&self.drop_probability) {
            return Err(format!("bad drop probability {}", self.drop_probability));
        }
        if self.coverage_resolution < 2 {
            return Err("coverage resolution must be at least 2".into());
        }
        if let Some(speed) = self.max_speed_kmh {
            if !(speed.is_finite() && speed >= 0.0) {
                return Err(format!("bad max speed {speed}"));
            }
        }
        if self.packet_bytes == 0 {
            return Err("packet must have at least one byte".into());
        }
        if let Some(capture) = self.capture {
            if !(capture.sir_threshold.is_finite() && capture.sir_threshold > 0.0) {
                return Err(format!("bad SIR threshold {}", capture.sir_threshold));
            }
            if !(capture.path_loss_exponent.is_finite() && capture.path_loss_exponent > 0.0) {
                return Err(format!(
                    "bad path-loss exponent {}",
                    capture.path_loss_exponent
                ));
            }
        }
        if let Some(scenario) = &self.scenario {
            scenario
                .validate(self.hosts)
                .map_err(|e| format!("scenario: {e}"))?;
        }
        if self.shards == 0 {
            return Err("need at least one shard".into());
        }
        if let PlacementSpec::Line { spacing_m } = self.placement {
            let length = f64::from(spacing_m) * f64::from(self.hosts - 1);
            if length > self.map().bounds().width() {
                return Err(format!(
                    "line placement of {} hosts at {spacing_m} m does not fit the map",
                    self.hosts
                ));
            }
        }
        Ok(())
    }
}

/// Builder for [`SimConfig`].
///
/// # Examples
///
/// ```
/// use broadcast_core::{SchemeSpec, SimConfig};
///
/// let config = SimConfig::builder(5, SchemeSpec::Counter(2))
///     .broadcasts(50)
///     .seed(7)
///     .build();
/// assert_eq!(config.map_units, 5);
/// assert_eq!(config.effective_max_speed_kmh(), 50.0);
/// ```
#[derive(Debug, Clone)]
pub struct SimConfigBuilder {
    config: SimConfig,
}

impl SimConfigBuilder {
    /// Number of hosts (default 100, as in the paper).
    pub fn hosts(mut self, hosts: u32) -> Self {
        self.config.hosts = hosts;
        self
    }

    /// Maximum roaming speed in km/h (default: the paper's per-map value).
    pub fn max_speed_kmh(mut self, kmh: f64) -> Self {
        self.config.max_speed_kmh = Some(kmh);
        self
    }

    /// Number of broadcast requests (paper: 10 000; default here 100 for
    /// laptop-scale sweeps).
    pub fn broadcasts(mut self, broadcasts: u32) -> Self {
        self.config.broadcasts = broadcasts;
        self
    }

    /// Source of neighbor information (default: HELLO every 1 s).
    pub fn neighbor_info(mut self, info: NeighborInfo) -> Self {
        self.config.neighbor_info = info;
        self
    }

    /// Initial host placement (default: uniform, as in the paper).
    pub fn placement(mut self, placement: PlacementSpec) -> Self {
        self.config.placement = placement;
        self
    }

    /// Mobility model (default: the paper's random turns).
    pub fn mobility(mut self, mobility: MobilitySpec) -> Self {
        self.config.mobility = mobility;
        self
    }

    /// Root RNG seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.config.seed = seed;
        self
    }

    /// Broadcast interarrival upper bound (default 2 s).
    pub fn max_interarrival(mut self, d: SimDuration) -> Self {
        self.config.max_interarrival = d;
        self
    }

    /// Settle time after the last broadcast (default 5 s).
    pub fn grace(mut self, d: SimDuration) -> Self {
        self.config.grace = d;
        self
    }

    /// Warm-up time before the first broadcast (default 5 s).
    pub fn warmup(mut self, d: SimDuration) -> Self {
        self.config.warmup = d;
        self
    }

    /// Injected per-delivery loss probability (default 0).
    pub fn drop_probability(mut self, p: f64) -> Self {
        self.config.drop_probability = p;
        self
    }

    /// Coverage-grid resolution for the location schemes (default 48).
    pub fn coverage_resolution(mut self, resolution: usize) -> Self {
        self.config.coverage_resolution = resolution;
        self
    }

    /// Enables physical-layer capture (default: off, as in the paper).
    pub fn capture(mut self, capture: CaptureConfig) -> Self {
        self.config.capture = Some(capture);
        self
    }

    /// Enables per-event-kind wall-clock profiling of the event loop
    /// (default: off).
    pub fn profile_events(mut self, enabled: bool) -> Self {
        self.config.profile_events = enabled;
        self
    }

    /// Carrier-sense latency (default 15 µs; zero = instant sensing).
    pub fn cs_delay(mut self, delay: SimDuration) -> Self {
        self.config.cs_delay = delay;
        self
    }

    /// Attaches a scripted scenario (churn and fault windows); validated
    /// against the run's host count at [`build`](Self::build).
    pub fn scenario(mut self, scenario: Scenario) -> Self {
        self.config.scenario = Some(scenario);
        self
    }

    /// Number of spatial shards for the world executor (default 1;
    /// clamped at run time so every strip stays at least one radio radius
    /// wide). Any value produces bit-identical results.
    pub fn shards(mut self, shards: u32) -> Self {
        self.config.shards = shards;
        self
    }

    /// Enables the epoch-parallel executor (default off; requires more
    /// than one effective shard and a nonzero carrier-sense delay to take
    /// effect). See [`SimConfig::parallel_epochs`].
    pub fn parallel_epochs(mut self, enabled: bool) -> Self {
        self.config.parallel_epochs = enabled;
        self
    }

    /// Worker-thread override for the sharded executors' pool (default:
    /// auto-detect). See [`SimConfig::workers`].
    pub fn workers(mut self, workers: u32) -> Self {
        self.config.workers = Some(workers);
        self
    }

    /// Broadcast payload size in bytes (default 280).
    pub fn packet_bytes(mut self, bytes: usize) -> Self {
        self.config.packet_bytes = bytes;
        self
    }

    /// Radio radius in meters (default 500).
    pub fn radio_radius(mut self, meters: f64) -> Self {
        self.config.radio_radius = meters;
        self
    }

    /// Finalizes the configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration is inconsistent (see
    /// [`SimConfig::validate`]).
    pub fn build(self) -> SimConfig {
        if let Err(msg) = self.config.validate() {
            panic!("invalid simulation config: {msg}");
        }
        self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_constants() {
        let c = SimConfig::builder(3, SchemeSpec::Flooding).build();
        assert_eq!(c.hosts, 100);
        assert_eq!(c.packet_bytes, 280);
        assert_eq!(c.radio_radius, 500.0);
        assert_eq!(c.max_interarrival, SimDuration::from_secs(2));
        assert_eq!(c.effective_max_speed_kmh(), 30.0);
    }

    #[test]
    fn speed_override_wins() {
        let c = SimConfig::builder(3, SchemeSpec::Flooding)
            .max_speed_kmh(80.0)
            .build();
        assert_eq!(c.effective_max_speed_kmh(), 80.0);
    }

    #[test]
    fn validation_catches_bad_values() {
        let mut c = SimConfig::builder(3, SchemeSpec::Flooding).build();
        c.drop_probability = 1.5;
        assert!(c.validate().is_err());
        c.drop_probability = 0.0;
        c.hosts = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "invalid simulation config")]
    fn builder_panics_on_invalid() {
        let _ = SimConfig::builder(3, SchemeSpec::Flooding)
            .drop_probability(2.0)
            .build();
    }
}
