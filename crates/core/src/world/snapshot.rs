//! World snapshots: the `MSNP` binary checkpoint format.
//!
//! [`World::snapshot`] serializes a *paused* world — pause with
//! [`World::advance_until`](crate::World::advance_until) — into a
//! self-contained byte stream; [`World::resume`] rebuilds a world from
//! those bytes that continues **bit-identically** to the uninterrupted
//! run. Everything behaviorally relevant is captured: the event queue
//! (times, sequence numbers, cancellation tombstones already applied),
//! every RNG stream's position, per-host MAC and mobility state, the
//! radio medium, the pure protocol models, and the metrics.
//!
//! Deliberately *not* captured (rebuilt or irrelevant on resume):
//!
//! * config-derived structure — the map, spatial grid, coverage grid,
//!   scheme thresholds, the compiled scenario timeline — all re-derived
//!   from the [`SimConfig`] the caller passes to [`World::resume`];
//! * scratch buffers and recycling pools (capacity caches only);
//! * position/grid caches (`snap_at`/`grid_at` are invalidated);
//! * the action recorder and the event-loop profiler.
//!
//! The stream opens with a length-prefixed **config fingerprint**:
//! a canonical encoding of every behavior-affecting [`SimConfig`] field.
//! [`World::resume`] re-encodes the fingerprint of the config it is
//! given and rejects the snapshot on any mismatch, so a checkpoint can
//! never be resumed against a world built from different parameters.
//!
//! # Wire format
//!
//! All fields use the fixed-width little-endian primitives of
//! [`WireEncoder`]. Layout (in order): magic `MSNP` + version `u32`;
//! fingerprint bytes; event queue (counters, then `(time, seq, event)`
//! entries); workload and protocol RNG states; per-host MAC, outgoing
//! payload slab, pending-HELLO timer, and mobility state; the medium;
//! the pure models (ledgers, neighbor tables, variation trackers,
//! suppression tallies); the metrics collector; in-flight frames; the
//! delayed carrier-report batches; the workload scalars; and the
//! optional scenario state. Slab-backed state (MAC queues, active
//! packets, carrier batches, active transmissions) is exported *with
//! its slot layout* because handles and event payloads index into it.

use std::collections::BTreeSet;

use manet_geom::Vec2;
use manet_mac::{Dcf, FrameHandle, MacStats};
use manet_mobility::Mobility;
use manet_net::{HelloPayload, NeighborTable, VariationTracker};
use manet_phy::{FrameId, NodeId};
use manet_sim_engine::{
    EventKey, EventQueue, SimDuration, SimRng, SimTime, Slab, SlabSlot, WireDecoder, WireEncoder,
    WireError,
};

use crate::config::{MobilitySpec, PlacementSpec, SimConfig};
use crate::ids::PacketId;
use crate::ledger::{ActivePacket, PacketLedger};
use crate::metrics::{MetricsCollector, ScenarioCounts, SuppressionCounts};
use crate::record::encode_replay_config;
use crate::schemes::{PacketPolicy, SchemeSpec};

use super::{Event, HostMobility, InFlight, Payload, ScenarioState, World};

/// Magic bytes opening a snapshot.
pub const SNAPSHOT_MAGIC: &[u8; 4] = b"MSNP";
/// Current snapshot format version.
pub const SNAPSHOT_VERSION: u32 = 1;

impl World {
    /// Serializes this (paused or finished) world into a self-contained
    /// checkpoint. Resuming it with the same [`SimConfig`] continues the
    /// run bit-identically to never having paused.
    ///
    /// Pause at a clean boundary first:
    /// [`advance_until`](Self::advance_until) stops *between* events, so
    /// no transient scratch state is live. An armed action recorder is
    /// not captured — a trace must cover a whole run to replay.
    pub fn snapshot(&self) -> Vec<u8> {
        let mut enc = WireEncoder::with_magic(SNAPSHOT_MAGIC, SNAPSHOT_VERSION);

        let mut fingerprint = WireEncoder::new();
        encode_fingerprint(&mut fingerprint, &self.cfg);
        enc.bytes(fingerprint.as_slice());

        // Event queue: counters, then live entries in (time, seq) order.
        // On sharded runs the control and shard queues are merged back
        // into one global (time, seq) stream with summed counters — the
        // exact image a single-queue run would produce, which is what
        // makes snapshots shard-count-agnostic: a run snapshotted at 4
        // shards resumes at 1 (and vice versa), byte-identically.
        let (now, next_seq, delivered, scheduled) = self.queue_counters();
        enc.u64(now.as_nanos());
        enc.u64(next_seq);
        enc.u64(delivered);
        enc.u64(scheduled);
        let entries = self.queue_image();
        enc.len(entries.len());
        for (time, seq, event) in entries {
            enc.u64(time.as_nanos());
            enc.u64(seq);
            encode_event(&mut enc, event);
        }

        encode_rng(&mut enc, &self.workload_rng);
        encode_rng(&mut enc, &self.proto_rng);

        enc.len(self.nodes.len());
        for node in &self.nodes {
            node.mac.snapshot_into(&mut enc);
            encode_payload_slab(&mut enc, &node.outgoing);
            match node.hello_pending {
                None => enc.bool(false),
                Some((key, at)) => {
                    enc.bool(true);
                    enc.u64(key.as_raw());
                    enc.u64(at.as_nanos());
                }
            }
            encode_mobility(&mut enc, &node.mobility);
        }

        self.medium.snapshot_into(&mut enc);

        let (ledgers, tables, trackers, suppression) = self.pure.snapshot_parts();
        for ledger in ledgers {
            encode_ledger(&mut enc, ledger);
        }
        for table in tables {
            table.snapshot_into(&mut enc);
        }
        for tracker in trackers {
            tracker.snapshot_into(&mut enc);
        }
        encode_suppression(&mut enc, suppression);

        self.metrics.snapshot_into(&mut enc);

        enc.len(self.in_flight.len());
        for slot in &self.in_flight {
            match slot {
                None => enc.bool(false),
                Some(frame) => {
                    enc.bool(true);
                    enc.u32(frame.sender.index() as u32);
                    encode_payload(&mut enc, &frame.payload);
                    enc.f64(frame.sent_from.x);
                    enc.f64(frame.sent_from.y);
                    enc.u32(frame.sender_epoch);
                }
            }
        }

        encode_carrier_batches(&mut enc, &self.carrier_batches);

        enc.u32(self.next_seq);
        enc.u32(self.issued);
        enc.u64(self.stop_at.as_nanos());
        enc.u64(self.hello_frames);
        enc.u64(self.data_frames);
        enc.u64(self.hello_rx);
        enc.u64(self.last_event_at.as_nanos());
        enc.bool(self.finished);

        match &self.scenario {
            None => enc.bool(false),
            Some(st) => {
                enc.bool(true);
                encode_scenario_state(&mut enc, st);
            }
        }

        enc.into_bytes()
    }

    /// Rebuilds a world from a [`snapshot`](Self::snapshot), continuing
    /// the run bit-identically to the world the snapshot was taken from.
    ///
    /// `config` must describe the same run the snapshot was taken from;
    /// it is checked against the embedded fingerprint. Recording and
    /// profiling are not resumed.
    ///
    /// # Errors
    ///
    /// Returns a positioned [`WireError`] on malformed input, a version
    /// or fingerprint mismatch, or state inconsistent with `config`.
    pub fn resume(config: SimConfig, bytes: &[u8]) -> Result<World, WireError> {
        let mut dec = WireDecoder::new(bytes);
        let version = dec.expect_magic(SNAPSHOT_MAGIC)?;
        if version != SNAPSHOT_VERSION {
            return Err(WireError {
                at: 4,
                what: "unsupported snapshot version",
            });
        }
        let fingerprint_at = dec.position();
        let stored = dec.bytes()?;
        let mut fingerprint = WireEncoder::new();
        encode_fingerprint(&mut fingerprint, &config);
        if stored != fingerprint.as_slice() {
            return Err(WireError {
                at: fingerprint_at,
                what: "snapshot was taken under a different config",
            });
        }
        let scheme = config.scheme.clone();
        let mut world = World::new(config);
        let hosts = world.nodes.len();

        // Event queue: drop the fresh world's schedule entirely and
        // rebuild the snapshotted one (same times, same seqs, so stored
        // cancellation keys still address their events). All entries land
        // on the control queue regardless of this run's shard count —
        // queue placement is an execution detail with no bearing on the
        // merged pop order, and newly armed MAC timers re-shard naturally.
        let now = SimTime::from_nanos(dec.u64()?);
        let next_seq = dec.u64()?;
        let delivered = dec.u64()?;
        let scheduled = dec.u64()?;
        let count = dec.len()?;
        let mut entries = Vec::with_capacity(count.min(1 << 16));
        for _ in 0..count {
            let time = SimTime::from_nanos(dec.u64()?);
            let seq = dec.u64()?;
            let event = decode_event(&mut dec)?;
            entries.push((time, seq, event));
        }
        world.queue = EventQueue::restore(now, next_seq, delivered, scheduled, entries);
        world.event_seq = next_seq;

        world.workload_rng = decode_rng(&mut dec)?;
        world.proto_rng = decode_rng(&mut dec)?;

        let hosts_at = dec.position();
        if dec.len()? != hosts {
            return Err(WireError {
                at: hosts_at,
                what: "snapshot host count mismatch",
            });
        }
        for node in &mut world.nodes {
            node.mac = Dcf::restore_snapshot(&mut dec)?;
            node.outgoing = decode_payload_slab(&mut dec)?;
            node.hello_pending = if dec.bool()? {
                let key = EventKey::from_raw(dec.u64()?);
                let at = SimTime::from_nanos(dec.u64()?);
                Some((key, at))
            } else {
                None
            };
            decode_mobility(&mut dec, &mut node.mobility)?;
        }
        // Motion segments are a dense cache over the mobility models;
        // re-derive them and drop the position/grid caches.
        for (seg, node) in world.segments.iter_mut().zip(&world.nodes) {
            *seg = node.mobility.segment();
        }
        world.snap_at = None;
        world.grid_at = None;

        world.medium.restore_snapshot(&mut dec)?;

        let mut ledgers = Vec::with_capacity(hosts);
        for _ in 0..hosts {
            ledgers.push(decode_ledger(&mut dec, &scheme)?);
        }
        let mut tables = Vec::with_capacity(hosts);
        for _ in 0..hosts {
            tables.push(NeighborTable::restore_snapshot(&mut dec)?);
        }
        let mut trackers = Vec::with_capacity(hosts);
        for _ in 0..hosts {
            trackers.push(VariationTracker::restore_snapshot(&mut dec)?);
        }
        let suppression = decode_suppression(&mut dec)?;
        world
            .pure
            .restore_parts(ledgers, tables, trackers, suppression);

        world.metrics = MetricsCollector::restore_snapshot(&mut dec)?;

        let slots = dec.len()?;
        world.in_flight.clear();
        world.in_flight.reserve(slots.min(1 << 16));
        for _ in 0..slots {
            world.in_flight.push(if dec.bool()? {
                Some(InFlight {
                    sender: NodeId::new(dec.u32()?),
                    payload: decode_payload(&mut dec)?,
                    sent_from: Vec2::new(dec.f64()?, dec.f64()?),
                    sender_epoch: dec.u32()?,
                })
            } else {
                None
            });
        }

        world.carrier_batches = decode_carrier_batches(&mut dec)?;

        world.next_seq = dec.u32()?;
        world.issued = dec.u32()?;
        world.stop_at = SimTime::from_nanos(dec.u64()?);
        world.hello_frames = dec.u64()?;
        world.data_frames = dec.u64()?;
        world.hello_rx = dec.u64()?;
        world.last_event_at = SimTime::from_nanos(dec.u64()?);
        world.finished = dec.bool()?;

        let scenario_at = dec.position();
        match (dec.bool()?, world.scenario.as_mut()) {
            (false, None) => {}
            (true, Some(st)) => restore_scenario_state(&mut dec, st)?,
            _ => {
                return Err(WireError {
                    at: scenario_at,
                    what: "scenario presence mismatch",
                })
            }
        }

        dec.finish()?;
        Ok(world)
    }
}

/// Encodes every behavior-affecting configuration field, canonically.
/// Two configs with equal fingerprints drive identical runs.
fn encode_fingerprint(enc: &mut WireEncoder, cfg: &SimConfig) {
    // The replay slice (hosts, radius, coverage, scheme, neighbor info)…
    encode_replay_config(enc, cfg);
    // …plus everything the dispatcher reads.
    enc.u64(cfg.seed);
    enc.u32(cfg.map_units);
    enc.u32(cfg.broadcasts);
    enc.u64(cfg.max_interarrival.as_nanos());
    enc.usize(cfg.packet_bytes);
    enc.u64(cfg.grace.as_nanos());
    enc.u64(cfg.warmup.as_nanos());
    enc.f64(cfg.drop_probability);
    enc.u64(cfg.cs_delay.as_nanos());
    match cfg.capture {
        None => enc.bool(false),
        Some(capture) => {
            enc.bool(true);
            enc.f64(capture.sir_threshold);
            enc.f64(capture.path_loss_exponent);
        }
    }
    match cfg.placement {
        PlacementSpec::Uniform => enc.u8(0),
        PlacementSpec::Grid => enc.u8(1),
        PlacementSpec::Line { spacing_m } => {
            enc.u8(2);
            enc.u32(spacing_m);
        }
    }
    match cfg.mobility {
        MobilitySpec::RandomTurn => enc.u8(0),
        MobilitySpec::RandomWaypoint => enc.u8(1),
        MobilitySpec::Stationary => enc.u8(2),
    }
    match cfg.max_speed_kmh {
        None => enc.bool(false),
        Some(speed) => {
            enc.bool(true);
            enc.f64(speed);
        }
    }
    // The scenario script compiles deterministically; its debug form is
    // a canonical description of the timeline.
    match &cfg.scenario {
        None => enc.bool(false),
        Some(scenario) => {
            enc.bool(true);
            enc.str(&format!("{scenario:?}"));
        }
    }
}

fn encode_rng(enc: &mut WireEncoder, rng: &SimRng) {
    for word in rng.state() {
        enc.u64(word);
    }
}

fn decode_rng(dec: &mut WireDecoder<'_>) -> Result<SimRng, WireError> {
    let mut state = [0u64; 4];
    for word in &mut state {
        *word = dec.u64()?;
    }
    Ok(SimRng::from_state(state))
}

fn encode_packet(enc: &mut WireEncoder, packet: PacketId) {
    enc.u32(packet.source.index() as u32);
    enc.u32(packet.seq);
}

fn decode_packet(dec: &mut WireDecoder<'_>) -> Result<PacketId, WireError> {
    let source = NodeId::new(dec.u32()?);
    let seq = dec.u32()?;
    Ok(PacketId::new(source, seq))
}

fn encode_event(enc: &mut WireEncoder, event: &Event) {
    match *event {
        Event::MobilityTurn { node } => {
            enc.u8(0);
            enc.u32(node.index() as u32);
        }
        Event::HelloTimer { node } => {
            enc.u8(1);
            enc.u32(node.index() as u32);
        }
        Event::MacTimer {
            node,
            generation,
            epoch,
        } => {
            enc.u8(2);
            enc.u32(node.index() as u32);
            enc.u64(generation);
            enc.u32(epoch);
        }
        Event::TxEnd { frame } => {
            enc.u8(3);
            enc.u64(frame.as_u64());
        }
        Event::AssessmentDone { node, packet } => {
            enc.u8(4);
            enc.u32(node.index() as u32);
            encode_packet(enc, packet);
        }
        Event::IssueBroadcast => enc.u8(5),
        Event::CarrierBatch { slot, busy } => {
            enc.u8(6);
            enc.u32(slot);
            enc.bool(busy);
        }
        Event::Scenario { index } => {
            enc.u8(7);
            enc.u32(index);
        }
    }
}

fn decode_event(dec: &mut WireDecoder<'_>) -> Result<Event, WireError> {
    let at = dec.position();
    Ok(match dec.u8()? {
        0 => Event::MobilityTurn {
            node: NodeId::new(dec.u32()?),
        },
        1 => Event::HelloTimer {
            node: NodeId::new(dec.u32()?),
        },
        2 => Event::MacTimer {
            node: NodeId::new(dec.u32()?),
            generation: dec.u64()?,
            epoch: dec.u32()?,
        },
        3 => Event::TxEnd {
            frame: FrameId::from_raw(dec.u64()?),
        },
        4 => Event::AssessmentDone {
            node: NodeId::new(dec.u32()?),
            packet: decode_packet(dec)?,
        },
        5 => Event::IssueBroadcast,
        6 => Event::CarrierBatch {
            slot: dec.u32()?,
            busy: dec.bool()?,
        },
        7 => Event::Scenario { index: dec.u32()? },
        _ => {
            return Err(WireError {
                at,
                what: "invalid event tag",
            })
        }
    })
}

fn encode_payload(enc: &mut WireEncoder, payload: &Payload) {
    match payload {
        Payload::Broadcast(packet) => {
            enc.u8(0);
            encode_packet(enc, *packet);
        }
        Payload::Hello(hello) => {
            enc.u8(1);
            enc.u32(hello.sender.index() as u32);
            enc.u64(hello.interval.as_nanos());
            enc.len(hello.neighbors.len());
            for &n in &hello.neighbors {
                enc.u32(n.index() as u32);
            }
        }
    }
}

fn decode_payload(dec: &mut WireDecoder<'_>) -> Result<Payload, WireError> {
    let at = dec.position();
    Ok(match dec.u8()? {
        0 => Payload::Broadcast(decode_packet(dec)?),
        1 => {
            let sender = NodeId::new(dec.u32()?);
            let interval = SimDuration::from_nanos(dec.u64()?);
            let count = dec.len()?;
            let mut neighbors = Vec::with_capacity(count.min(1 << 16));
            for _ in 0..count {
                neighbors.push(NodeId::new(dec.u32()?));
            }
            Payload::Hello(HelloPayload {
                sender,
                interval,
                neighbors,
            })
        }
        _ => {
            return Err(WireError {
                at,
                what: "invalid payload tag",
            })
        }
    })
}

fn encode_payload_slab(enc: &mut WireEncoder, slab: &Slab<Payload>) {
    let (free_head, slots) = slab.export_slots();
    enc.u32(free_head);
    let slots: Vec<_> = slots.collect();
    enc.len(slots.len());
    for slot in slots {
        match slot {
            SlabSlot::Vacant { next_free } => {
                enc.u8(0);
                enc.u32(next_free);
            }
            SlabSlot::Occupied(payload) => {
                enc.u8(1);
                encode_payload(enc, payload);
            }
        }
    }
}

fn decode_payload_slab(dec: &mut WireDecoder<'_>) -> Result<Slab<Payload>, WireError> {
    let free_head = dec.u32()?;
    let count = dec.len()?;
    let mut slots = Vec::with_capacity(count.min(1 << 16));
    for _ in 0..count {
        let at = dec.position();
        slots.push(match dec.u8()? {
            0 => SlabSlot::Vacant {
                next_free: dec.u32()?,
            },
            1 => SlabSlot::Occupied(decode_payload(dec)?),
            _ => {
                return Err(WireError {
                    at,
                    what: "invalid payload slot tag",
                })
            }
        });
    }
    Ok(Slab::from_slots(free_head, slots))
}

fn encode_policy(enc: &mut WireEncoder, policy: &PacketPolicy) {
    match policy {
        PacketPolicy::Flooding(_) => enc.u8(0),
        PacketPolicy::Counter(p) => {
            enc.u8(1);
            enc.u32(p.count());
        }
        PacketPolicy::Distance(p) => {
            enc.u8(2);
            enc.f64(p.min_distance());
        }
        PacketPolicy::Location(p) => {
            enc.u8(3);
            let (uncovered, total) = p.coverage_parts();
            enc.len(uncovered.len());
            for point in uncovered {
                enc.f64(point.x);
                enc.f64(point.y);
            }
            enc.usize(total);
        }
        PacketPolicy::NeighborCoverage(p) => {
            enc.u8(4);
            let pending: Vec<NodeId> = p.pending().collect();
            enc.len(pending.len());
            for n in pending {
                enc.u32(n.index() as u32);
            }
        }
        PacketPolicy::Probabilistic(_) => enc.u8(5),
    }
}

/// Rebuilds a per-packet policy: thresholds and parameters come from the
/// configured scheme, mutable progress from the snapshot.
fn decode_policy(
    dec: &mut WireDecoder<'_>,
    scheme: &SchemeSpec,
) -> Result<PacketPolicy, WireError> {
    let at = dec.position();
    let tag = dec.u8()?;
    let mut policy = scheme.build();
    match (tag, &mut policy) {
        (0, PacketPolicy::Flooding(_)) | (5, PacketPolicy::Probabilistic(_)) => {}
        (1, PacketPolicy::Counter(p)) => p.restore_count(dec.u32()?),
        (2, PacketPolicy::Distance(p)) => p.restore_min_distance(dec.f64()?),
        (3, PacketPolicy::Location(p)) => {
            let count = dec.len()?;
            let mut uncovered = Vec::with_capacity(count.min(1 << 16));
            for _ in 0..count {
                uncovered.push(Vec2::new(dec.f64()?, dec.f64()?));
            }
            let total = dec.usize()?;
            p.restore_coverage(uncovered, total);
        }
        (4, PacketPolicy::NeighborCoverage(p)) => {
            let count = dec.len()?;
            let mut pending = BTreeSet::new();
            for _ in 0..count {
                pending.insert(NodeId::new(dec.u32()?));
            }
            p.restore_pending(pending);
        }
        _ => {
            return Err(WireError {
                at,
                what: "policy tag does not match the configured scheme",
            })
        }
    }
    Ok(policy)
}

fn encode_active(enc: &mut WireEncoder, active: &ActivePacket) {
    match active {
        ActivePacket::Assessing { key, policy } => {
            enc.u8(0);
            enc.u64(key.as_raw());
            encode_policy(enc, policy);
        }
        ActivePacket::Queued { handle, policy } => {
            enc.u8(1);
            enc.u64(handle.0);
            encode_policy(enc, policy);
        }
    }
}

fn decode_active(
    dec: &mut WireDecoder<'_>,
    scheme: &SchemeSpec,
) -> Result<ActivePacket, WireError> {
    let at = dec.position();
    Ok(match dec.u8()? {
        0 => ActivePacket::Assessing {
            key: EventKey::from_raw(dec.u64()?),
            policy: decode_policy(dec, scheme)?,
        },
        1 => ActivePacket::Queued {
            handle: FrameHandle(dec.u64()?),
            policy: decode_policy(dec, scheme)?,
        },
        _ => {
            return Err(WireError {
                at,
                what: "invalid active-packet tag",
            })
        }
    })
}

fn encode_ledger(enc: &mut WireEncoder, ledger: &PacketLedger) {
    let (tags, active) = ledger.snapshot_parts();
    enc.len(tags.len());
    for &tag in tags {
        enc.u32(tag);
    }
    let (free_head, slots) = active.export_slots();
    enc.u32(free_head);
    let slots: Vec<_> = slots.collect();
    enc.len(slots.len());
    for slot in slots {
        match slot {
            SlabSlot::Vacant { next_free } => {
                enc.u8(0);
                enc.u32(next_free);
            }
            SlabSlot::Occupied(state) => {
                enc.u8(1);
                encode_active(enc, state);
            }
        }
    }
}

fn decode_ledger(
    dec: &mut WireDecoder<'_>,
    scheme: &SchemeSpec,
) -> Result<PacketLedger, WireError> {
    let count = dec.len()?;
    let mut tags = Vec::with_capacity(count.min(1 << 16));
    for _ in 0..count {
        tags.push(dec.u32()?);
    }
    let free_head = dec.u32()?;
    let slot_count = dec.len()?;
    let mut slots = Vec::with_capacity(slot_count.min(1 << 16));
    for _ in 0..slot_count {
        let at = dec.position();
        slots.push(match dec.u8()? {
            0 => SlabSlot::Vacant {
                next_free: dec.u32()?,
            },
            1 => SlabSlot::Occupied(decode_active(dec, scheme)?),
            _ => {
                return Err(WireError {
                    at,
                    what: "invalid ledger slot tag",
                })
            }
        });
    }
    Ok(PacketLedger::from_parts(
        tags,
        Slab::from_slots(free_head, slots),
    ))
}

fn encode_mobility(enc: &mut WireEncoder, mobility: &HostMobility) {
    match mobility {
        HostMobility::Turn(m) => {
            enc.u8(0);
            m.snapshot_into(enc);
        }
        HostMobility::Waypoint(m) => {
            enc.u8(1);
            m.snapshot_into(enc);
        }
        // Stationary hosts have no mutable motion state.
        HostMobility::Fixed(_) => enc.u8(2),
    }
}

fn decode_mobility(
    dec: &mut WireDecoder<'_>,
    mobility: &mut HostMobility,
) -> Result<(), WireError> {
    let at = dec.position();
    match (dec.u8()?, mobility) {
        (0, HostMobility::Turn(m)) => m.restore_snapshot(dec),
        (1, HostMobility::Waypoint(m)) => m.restore_snapshot(dec),
        (2, HostMobility::Fixed(_)) => Ok(()),
        _ => Err(WireError {
            at,
            what: "mobility tag does not match the configured model",
        }),
    }
}

fn encode_carrier_batches(enc: &mut WireEncoder, batches: &Slab<Vec<NodeId>>) {
    let (free_head, slots) = batches.export_slots();
    enc.u32(free_head);
    let slots: Vec<_> = slots.collect();
    enc.len(slots.len());
    for slot in slots {
        match slot {
            SlabSlot::Vacant { next_free } => {
                enc.u8(0);
                enc.u32(next_free);
            }
            SlabSlot::Occupied(hearers) => {
                enc.u8(1);
                enc.len(hearers.len());
                for &n in hearers {
                    enc.u32(n.index() as u32);
                }
            }
        }
    }
}

fn decode_carrier_batches(dec: &mut WireDecoder<'_>) -> Result<Slab<Vec<NodeId>>, WireError> {
    let free_head = dec.u32()?;
    let count = dec.len()?;
    let mut slots = Vec::with_capacity(count.min(1 << 16));
    for _ in 0..count {
        let at = dec.position();
        slots.push(match dec.u8()? {
            0 => SlabSlot::Vacant {
                next_free: dec.u32()?,
            },
            1 => {
                let hearer_count = dec.len()?;
                let mut hearers = Vec::with_capacity(hearer_count.min(1 << 16));
                for _ in 0..hearer_count {
                    hearers.push(NodeId::new(dec.u32()?));
                }
                SlabSlot::Occupied(hearers)
            }
            _ => {
                return Err(WireError {
                    at,
                    what: "invalid carrier-batch slot tag",
                })
            }
        });
    }
    Ok(Slab::from_slots(free_head, slots))
}

fn encode_suppression(enc: &mut WireEncoder, counts: SuppressionCounts) {
    enc.u64(counts.scheduled);
    enc.u64(counts.inhibited_first_hear);
    enc.u64(counts.cancelled);
    enc.u64(counts.counter_threshold);
    enc.u64(counts.coverage_threshold);
    enc.u64(counts.neighbor_coverage);
    enc.u64(counts.probabilistic);
}

fn decode_suppression(dec: &mut WireDecoder<'_>) -> Result<SuppressionCounts, WireError> {
    Ok(SuppressionCounts {
        scheduled: dec.u64()?,
        inhibited_first_hear: dec.u64()?,
        cancelled: dec.u64()?,
        counter_threshold: dec.u64()?,
        coverage_threshold: dec.u64()?,
        neighbor_coverage: dec.u64()?,
        probabilistic: dec.u64()?,
    })
}

fn encode_scenario_state(enc: &mut WireEncoder, st: &ScenarioState) {
    enc.len(st.active.len());
    for &up in &st.active {
        enc.bool(up);
    }
    enc.u32(st.active_count);
    for &epoch in &st.node_epoch {
        enc.u32(epoch);
    }
    enc.len(st.blackouts.len());
    for &(a, b) in &st.blackouts {
        enc.u32(a);
        enc.u32(b);
    }
    enc.len(st.noise.len());
    for &p in &st.noise {
        enc.f64(p);
    }
    enc.len(st.partitions.len());
    for region in &st.partitions {
        enc.f64(region.x0);
        enc.f64(region.y0);
        enc.f64(region.x1);
        enc.f64(region.y1);
    }
    encode_rng(enc, &st.rng);
    encode_rng(enc, &st.respawn_rng);
    enc.u64(st.respawn_seq);
    enc.u64(st.counts.leaves);
    enc.u64(st.counts.joins);
    enc.u64(st.counts.crashes);
    enc.u64(st.counts.recoveries);
    enc.u64(st.counts.blackout_drops);
    enc.u64(st.counts.partition_drops);
    enc.u64(st.counts.noise_drops);
    st.retired_mac.snapshot_into(enc);
    enc.u64(st.retired_joins);
    enc.u64(st.retired_leaves);
}

/// Overwrites the mutable scenario state; the compiled timeline stays as
/// `World::new` built it from the config.
fn restore_scenario_state(
    dec: &mut WireDecoder<'_>,
    st: &mut ScenarioState,
) -> Result<(), WireError> {
    let hosts_at = dec.position();
    if dec.len()? != st.active.len() {
        return Err(WireError {
            at: hosts_at,
            what: "scenario host count mismatch",
        });
    }
    for up in &mut st.active {
        *up = dec.bool()?;
    }
    st.active_count = dec.u32()?;
    for epoch in &mut st.node_epoch {
        *epoch = dec.u32()?;
    }
    let blackout_count = dec.len()?;
    st.blackouts.clear();
    for _ in 0..blackout_count {
        let a = dec.u32()?;
        let b = dec.u32()?;
        st.blackouts.push((a, b));
    }
    let noise_count = dec.len()?;
    st.noise.clear();
    for _ in 0..noise_count {
        st.noise.push(dec.f64()?);
    }
    let partition_count = dec.len()?;
    st.partitions.clear();
    for _ in 0..partition_count {
        st.partitions.push(manet_scenario::Region {
            x0: dec.f64()?,
            y0: dec.f64()?,
            x1: dec.f64()?,
            y1: dec.f64()?,
        });
    }
    st.rng = decode_rng(dec)?;
    st.respawn_rng = decode_rng(dec)?;
    st.respawn_seq = dec.u64()?;
    st.counts = ScenarioCounts {
        leaves: dec.u64()?,
        joins: dec.u64()?,
        crashes: dec.u64()?,
        recoveries: dec.u64()?,
        blackout_drops: dec.u64()?,
        partition_drops: dec.u64()?,
        noise_drops: dec.u64()?,
    };
    st.retired_mac = MacStats::restore_snapshot(dec)?;
    st.retired_joins = dec.u64()?;
    st.retired_leaves = dec.u64()?;
    Ok(())
}
