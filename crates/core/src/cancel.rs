//! Cooperative cancellation for long-running simulations.
//!
//! A [`CancelToken`] is a cheap, cloneable flag shared between the thread
//! driving a [`World`](crate::World) and whoever may want to stop it — a
//! campaign scheduler draining a cancelled job, a service shutting down.
//! Cancellation is *cooperative*: the simulation only observes the token
//! at [`advance_until`](crate::World::advance_until) pause boundaries, so
//! a cancelled run always stops between events with the world in a
//! consistent (snapshot-able) state, never mid-dispatch.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// A shared cancellation flag; see the module docs.
///
/// Clones observe the same flag. The default token is never cancelled
/// until someone calls [`cancel`](Self::cancel).
///
/// # Examples
///
/// ```
/// use broadcast_core::CancelToken;
///
/// let token = CancelToken::new();
/// let observer = token.clone();
/// assert!(!observer.is_cancelled());
/// token.cancel();
/// assert!(observer.is_cancelled());
/// ```
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// Creates a fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Raises the flag. Idempotent; every clone observes it.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Release);
    }

    /// `true` once any clone has called [`cancel`](Self::cancel).
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_flag() {
        let a = CancelToken::new();
        let b = a.clone();
        assert!(!a.is_cancelled() && !b.is_cancelled());
        b.cancel();
        assert!(a.is_cancelled() && b.is_cancelled());
        // Idempotent.
        a.cancel();
        assert!(b.is_cancelled());
    }

    #[test]
    fn independent_tokens_are_independent() {
        let a = CancelToken::new();
        let b = CancelToken::new();
        a.cancel();
        assert!(!b.is_cancelled());
    }
}
