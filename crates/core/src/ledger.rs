//! Per-host packet bookkeeping for the simulation hot path.
//!
//! Every host must remember, for every broadcast packet, whether it has
//! heard it and what it decided — forever, because duplicate suppression
//! ("rebroadcast at most once") must hold for the whole run. The seed
//! implementation kept a `HashMap<PacketId, PacketState>` per host, which
//! costs a hash on every delivery and an allocation per state change.
//!
//! [`PacketLedger`] exploits that packet sequence numbers are issued from
//! one dense global counter: the long-lived part of the state (unheard /
//! source / done) is a plain tag indexed by `seq`, and only the
//! *transient* cancellable states — assessing and MAC-queued — carry data,
//! living in a [`Slab`] whose slots free up the moment a packet settles.
//! At any instant a host has at most a handful of packets in flight, so
//! the slab stays tiny and steady-state transitions touch no allocator.

use manet_mac::FrameHandle;
use manet_sim_engine::{EventKey, Slab};

use crate::schemes::PacketPolicy;

/// A packet that was never heard by this host.
const UNHEARD: u32 = u32::MAX;
/// Transmitted or inhibited; nothing more will happen (terminal).
const DONE: u32 = u32::MAX - 1;
/// This host issued the packet; its original transmission is queued.
const SOURCE: u32 = u32::MAX - 2;
/// Largest usable slab slot; anything above collides with the sentinels.
const MAX_SLOT: u32 = u32::MAX - 3;

/// The live, still-cancellable progress of one packet at one host.
#[derive(Debug)]
pub(crate) enum ActivePacket {
    /// In the S2 assessment delay; `key` cancels the wakeup.
    Assessing {
        /// Cancellation key of the pending `AssessmentDone` event.
        key: EventKey,
        /// The scheme state accumulated so far for this packet.
        policy: PacketPolicy,
    },
    /// Submitted to the MAC; cancellable until it hits the air.
    Queued {
        /// MAC queue handle for cancellation.
        handle: FrameHandle,
        /// The scheme state accumulated so far for this packet.
        policy: PacketPolicy,
    },
}

/// What a host currently knows about one packet.
#[derive(Debug)]
pub(crate) enum PacketView<'a> {
    /// First copy: no state exists yet.
    Unheard,
    /// This host is the packet's source (its original send is pending).
    Source,
    /// Terminal: transmitted or inhibited.
    Done,
    /// Assessing or MAC-queued; mutable so duplicate hears can update the
    /// policy in place.
    Active(&'a mut ActivePacket),
}

/// One host's packet states, keyed by the packet's dense sequence number.
#[derive(Debug, Default)]
pub(crate) struct PacketLedger {
    /// Per-seq tag: a sentinel, or the slab slot of the active state.
    tags: Vec<u32>,
    active: Slab<ActivePacket>,
}

impl PacketLedger {
    pub(crate) fn new() -> Self {
        Self::default()
    }

    fn tag(&self, seq: u32) -> u32 {
        self.tags.get(seq as usize).copied().unwrap_or(UNHEARD)
    }

    fn set_tag(&mut self, seq: u32, tag: u32) {
        let i = seq as usize;
        if i >= self.tags.len() {
            self.tags.resize(i + 1, UNHEARD);
        }
        self.tags[i] = tag;
    }

    /// Current state of packet `seq`, with mutable access to any active
    /// scheme state.
    pub(crate) fn view(&mut self, seq: u32) -> PacketView<'_> {
        match self.tag(seq) {
            UNHEARD => PacketView::Unheard,
            DONE => PacketView::Done,
            SOURCE => PacketView::Source,
            slot => PacketView::Active(&mut self.active[slot]),
        }
    }

    /// Records that this host issued packet `seq` itself.
    pub(crate) fn mark_source(&mut self, seq: u32) {
        debug_assert_eq!(self.tag(seq), UNHEARD, "source packet already known");
        self.set_tag(seq, SOURCE);
    }

    /// Moves packet `seq` to the terminal state, releasing any active
    /// slab entry (and dropping its policy).
    pub(crate) fn mark_done(&mut self, seq: u32) {
        let tag = self.tag(seq);
        if tag <= MAX_SLOT {
            self.active.remove(tag);
        }
        self.set_tag(seq, DONE);
    }

    /// Stores an active (assessing or queued) state for packet `seq`,
    /// replacing and releasing any previous active state.
    pub(crate) fn set_active(&mut self, seq: u32, state: ActivePacket) {
        let tag = self.tag(seq);
        if tag <= MAX_SLOT {
            self.active.remove(tag);
        }
        let slot = self.active.insert(state);
        assert!(slot <= MAX_SLOT, "packet slab exhausted the tag space");
        self.set_tag(seq, slot);
    }

    /// Removes and returns the active state of packet `seq`.
    ///
    /// # Panics
    ///
    /// Panics when the packet has no active state.
    pub(crate) fn take_active(&mut self, seq: u32) -> ActivePacket {
        let tag = self.tag(seq);
        assert!(tag <= MAX_SLOT, "packet {seq} has no active state");
        self.set_tag(seq, UNHEARD);
        self.active.remove(tag)
    }

    /// The per-seq tag array and active-state slab, for a world snapshot.
    /// Slot layout matters: assessment keys and MAC frame handles stored
    /// elsewhere refer into the slab, so a snapshot must preserve it
    /// verbatim.
    pub(crate) fn snapshot_parts(&self) -> (&[u32], &Slab<ActivePacket>) {
        (&self.tags, &self.active)
    }

    /// Rebuilds a ledger from the parts exposed by
    /// [`snapshot_parts`](Self::snapshot_parts).
    pub(crate) fn from_parts(tags: Vec<u32>, active: Slab<ActivePacket>) -> Self {
        PacketLedger { tags, active }
    }

    /// Abandons every active (assessing or MAC-queued) state, marking the
    /// affected packets done and appending the cancellation tokens —
    /// assessment event keys and MAC frame handles — to the caller's
    /// buffers (not cleared first). Used when a host leaves the network:
    /// the owner must cancel those events/frames itself.
    ///
    /// Cold path (host churn): walks the whole tag array, which is
    /// `O(packets issued so far)`.
    pub(crate) fn drain_active(
        &mut self,
        keys: &mut Vec<EventKey>,
        handles: &mut Vec<FrameHandle>,
    ) {
        if self.active.is_empty() {
            return;
        }
        for tag in &mut self.tags {
            if *tag <= MAX_SLOT {
                match self.active.remove(*tag) {
                    ActivePacket::Assessing { key, .. } => keys.push(key),
                    ActivePacket::Queued { handle, .. } => handles.push(handle),
                }
                *tag = DONE;
            }
        }
        debug_assert!(self.active.is_empty(), "tag walk missed a slab entry");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> PacketPolicy {
        crate::schemes::SchemeSpec::Flooding.build()
    }

    fn key() -> EventKey {
        let mut q = manet_sim_engine::EventQueue::new();
        q.schedule(manet_sim_engine::SimTime::ZERO, ())
    }

    #[test]
    fn lifecycle_first_hear_to_done() {
        let mut ledger = PacketLedger::new();
        assert!(matches!(ledger.view(0), PacketView::Unheard));
        ledger.set_active(
            0,
            ActivePacket::Assessing {
                key: key(),
                policy: policy(),
            },
        );
        assert!(matches!(
            ledger.view(0),
            PacketView::Active(ActivePacket::Assessing { .. })
        ));
        ledger.set_active(
            0,
            ActivePacket::Queued {
                handle: FrameHandle(4),
                policy: policy(),
            },
        );
        assert!(matches!(
            ledger.view(0),
            PacketView::Active(ActivePacket::Queued { .. })
        ));
        ledger.mark_done(0);
        assert!(matches!(ledger.view(0), PacketView::Done));
        assert!(ledger.active.is_empty(), "done releases the slab slot");
    }

    #[test]
    fn source_and_sparse_seqs() {
        let mut ledger = PacketLedger::new();
        ledger.mark_source(7);
        assert!(matches!(ledger.view(7), PacketView::Source));
        assert!(matches!(ledger.view(3), PacketView::Unheard));
        assert!(matches!(ledger.view(1_000), PacketView::Unheard));
        ledger.mark_done(7);
        assert!(matches!(ledger.view(7), PacketView::Done));
    }

    #[test]
    fn take_active_releases_slot() {
        let mut ledger = PacketLedger::new();
        ledger.set_active(
            2,
            ActivePacket::Assessing {
                key: key(),
                policy: policy(),
            },
        );
        let taken = ledger.take_active(2);
        assert!(matches!(taken, ActivePacket::Assessing { .. }));
        assert!(matches!(ledger.view(2), PacketView::Unheard));
        assert!(ledger.active.is_empty());
    }
}
