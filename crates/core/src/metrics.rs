//! Per-broadcast bookkeeping and the paper's performance metrics (§4):
//!
//! * **RE** (reachability) — `r / e`, where `r` is the number of hosts
//!   that received the packet and `e` the number of hosts reachable
//!   (directly or indirectly) from the source at the instant the
//!   broadcast was issued. Computing `e` from the connectivity snapshot
//!   makes partitions count against *topology*, not against the scheme.
//! * **SRB** (saved rebroadcasts) — `(r − t) / r`, with `t` the number of
//!   hosts that actually rebroadcast. Flooding has `SRB = 0`.
//! * **Average latency** — from broadcast initiation until the last host
//!   either finishes its rebroadcast or decides not to rebroadcast.

use manet_mac::MacStats;
use manet_phy::{LossCounters, NodeId};
use manet_sim_engine::{LoopProfile, SimDuration, SimTime, WireDecoder, WireEncoder, WireError};

use crate::ids::PacketId;
use crate::trace::SuppressReason;

/// Compact membership set over host indices.
#[derive(Debug, Clone)]
struct HostSet {
    words: Vec<u64>,
    count: u32,
}

impl HostSet {
    fn new(hosts: usize) -> Self {
        HostSet {
            words: vec![0; hosts.div_ceil(64)],
            count: 0,
        }
    }

    /// Inserts; returns `true` when newly added.
    fn insert(&mut self, id: NodeId) -> bool {
        let (w, b) = (id.index() / 64, id.index() % 64);
        let mask = 1u64 << b;
        if self.words[w] & mask == 0 {
            self.words[w] |= mask;
            self.count += 1;
            true
        } else {
            false
        }
    }

    fn contains(&self, id: NodeId) -> bool {
        self.words[id.index() / 64] & (1u64 << (id.index() % 64)) != 0
    }

    fn snapshot_into(&self, enc: &mut WireEncoder) {
        enc.len(self.words.len());
        for &word in &self.words {
            enc.u64(word);
        }
        enc.u32(self.count);
    }

    fn restore_snapshot(dec: &mut WireDecoder<'_>) -> Result<HostSet, WireError> {
        let word_count = dec.len()?;
        let mut words = Vec::with_capacity(word_count);
        for _ in 0..word_count {
            words.push(dec.u64()?);
        }
        Ok(HostSet {
            words,
            count: dec.u32()?,
        })
    }
}

/// Everything recorded about one broadcast.
#[derive(Debug, Clone)]
struct BroadcastRecord {
    source: NodeId,
    issued_at: SimTime,
    /// `e`: hosts reachable from the source when issued.
    reachable: u32,
    received: HostSet,
    rebroadcasters: HostSet,
    /// Time of the last rebroadcast completion or inhibit decision.
    last_decision: SimTime,
    /// Hosts eligible to count toward `r`/`t`: the reachable set at issue
    /// time. `None` (the non-scenario fast path) means every host counts,
    /// preserving the original accounting exactly. Under churn a host that
    /// was down (or partitioned off) when the broadcast was issued may
    /// still decode a late copy after rejoining; scoping keeps the
    /// invariant `received ⊆ reachable-at-issue-time` that RE depends on.
    eligible: Option<HostSet>,
}

impl BroadcastRecord {
    fn counts(&self, node: NodeId) -> bool {
        node != self.source && self.eligible.as_ref().is_none_or(|set| set.contains(node))
    }
}

/// The outcome of one broadcast, after the run settles.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BroadcastOutcome {
    /// The broadcast this outcome belongs to.
    pub packet: PacketId,
    /// Hosts reachable from the source at issue time (`e`).
    pub reachable: u32,
    /// Hosts that decoded at least one copy (`r`).
    pub received: u32,
    /// Hosts that actually rebroadcast (`t`, excludes the source).
    pub rebroadcast: u32,
    /// `r / e`; `None` when the source was isolated (`e = 0`).
    pub reachability: Option<f64>,
    /// `(r − t) / r`; `None` when nobody received (`r = 0`).
    pub saved_rebroadcasts: Option<f64>,
    /// Initiation to last rebroadcast/inhibit decision.
    pub latency: SimDuration,
}

/// Aggregated results of one simulation run.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Scheme label (e.g. `"AC"`, `"C=2"`, `"flooding"`).
    pub scheme: String,
    /// Map label (e.g. `"5x5"`).
    pub map: String,
    /// Broadcasts issued.
    pub broadcasts: u32,
    /// Mean reachability over broadcasts with a non-isolated source.
    pub reachability: f64,
    /// Mean saved-rebroadcast ratio over broadcasts with `r > 0`.
    pub saved_rebroadcasts: f64,
    /// Mean broadcast latency in seconds.
    pub avg_latency_s: f64,
    /// HELLO packets put on the air during the run.
    pub hello_packets: u64,
    /// Broadcast (data) frames put on the air, including sources.
    pub data_frames: u64,
    /// Frame deliveries lost to overlapping transmissions (overlap garbles
    /// plus capture losses) — the paper-comparable contention figure.
    /// Half-duplex misses and injected drops are in [`losses`](Self::losses)
    /// but not here.
    pub collisions: u64,
    /// All frame-delivery losses, split by cause.
    pub losses: LossCounters,
    /// MAC activity summed over all hosts (`max_queue_depth` is the
    /// network-wide maximum).
    pub mac: MacStats,
    /// HELLO traffic and neighbor-table churn summed over all hosts.
    pub net: NetActivity,
    /// Scheme decisions tallied by kind and suppression reason.
    pub suppression: SuppressionCounts,
    /// Event-loop wall-time profile; `Some` only when the run was
    /// configured with `profile_events(true)`.
    pub profile: Option<LoopProfile>,
    /// Simulated seconds the run covered.
    pub sim_seconds: f64,
    /// Per-broadcast detail, in issue order.
    pub per_broadcast: Vec<BroadcastOutcome>,
    /// Scenario-subsystem activity (churn applied, faults injected);
    /// `None` unless the run was configured with a scenario.
    pub scenario: Option<ScenarioCounts>,
}

/// What the scenario subsystem did to one run: churn events applied and
/// frame deliveries it destroyed, split by fault kind. The drop counters
/// tally *successful* injections — a delivery already garbled by a
/// collision stays attributed to the collision (first cause wins).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScenarioCounts {
    /// Graceful departures applied.
    pub leaves: u64,
    /// Returns from graceful departures.
    pub joins: u64,
    /// Crashes applied (protocol state lost).
    pub crashes: u64,
    /// Reboots after crashes.
    pub recoveries: u64,
    /// Deliveries destroyed by link blackout windows.
    pub blackout_drops: u64,
    /// Deliveries destroyed by crossing an active partition boundary.
    pub partition_drops: u64,
    /// Deliveries destroyed by ambient noise bursts.
    pub noise_drops: u64,
}

impl ScenarioCounts {
    /// Adds another run's totals into this one.
    pub fn merge(&mut self, other: &ScenarioCounts) {
        self.leaves += other.leaves;
        self.joins += other.joins;
        self.crashes += other.crashes;
        self.recoveries += other.recoveries;
        self.blackout_drops += other.blackout_drops;
        self.partition_drops += other.partition_drops;
        self.noise_drops += other.noise_drops;
    }

    /// Total deliveries destroyed by injected faults of any kind.
    pub fn injected_drops(&self) -> u64 {
        self.blackout_drops + self.partition_drops + self.noise_drops
    }
}

/// Network-layer activity totals for one run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NetActivity {
    /// HELLO beacons put on the air.
    pub hello_sent: u64,
    /// HELLO beacons decoded by some listener.
    pub hello_received: u64,
    /// Neighbor-table joins across all hosts.
    pub neighbor_joins: u64,
    /// Neighbor-table expiries across all hosts.
    pub neighbor_leaves: u64,
}

impl NetActivity {
    /// Adds another run's totals into this one.
    pub fn merge(&mut self, other: &NetActivity) {
        self.hello_sent += other.hello_sent;
        self.hello_received += other.hello_received;
        self.neighbor_joins += other.neighbor_joins;
        self.neighbor_leaves += other.neighbor_leaves;
    }
}

/// Scheme-decision totals for one run, split by the S1/S5 outcome and by
/// the suppression criterion that fired.
///
/// `scheduled + inhibited_first_hear` equals the number of first-hear
/// decisions; `counter_threshold + coverage_threshold + neighbor_coverage
/// + probabilistic` equals `inhibited_first_hear + cancelled`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SuppressionCounts {
    /// S1 scheduled a rebroadcast.
    pub scheduled: u64,
    /// S1 declined on first hear.
    pub inhibited_first_hear: u64,
    /// S5 cancelled a pending rebroadcast after a duplicate.
    pub cancelled: u64,
    /// Suppressions where the counter threshold `C(n)` fired.
    pub counter_threshold: u64,
    /// Suppressions where expected additional coverage (or its distance
    /// proxy) fell below threshold.
    pub coverage_threshold: u64,
    /// Suppressions where every known neighbor was already covered.
    pub neighbor_coverage: u64,
    /// Suppressions where the gossip draw declined.
    pub probabilistic: u64,
}

impl SuppressionCounts {
    /// Tallies one suppression under the criterion that fired. `None`
    /// (flooding) tallies nothing.
    pub fn record_reason(&mut self, reason: Option<SuppressReason>) {
        match reason {
            Some(SuppressReason::CounterThreshold) => self.counter_threshold += 1,
            Some(SuppressReason::CoverageThreshold) => self.coverage_threshold += 1,
            Some(SuppressReason::NeighborCoverage) => self.neighbor_coverage += 1,
            Some(SuppressReason::Probabilistic) => self.probabilistic += 1,
            None => {}
        }
    }

    /// Adds another run's totals into this one.
    pub fn merge(&mut self, other: &SuppressionCounts) {
        self.scheduled += other.scheduled;
        self.inhibited_first_hear += other.inhibited_first_hear;
        self.cancelled += other.cancelled;
        self.counter_threshold += other.counter_threshold;
        self.coverage_threshold += other.coverage_threshold;
        self.neighbor_coverage += other.neighbor_coverage;
        self.probabilistic += other.probabilistic;
    }
}

impl SimReport {
    /// The latency distribution of this run's broadcasts.
    pub fn latency_summary(&self) -> LatencySummary {
        latency_summary(&self.per_broadcast)
    }
}

/// Collects per-broadcast events during a run and aggregates them into a
/// [`SimReport`].
/// Records are indexed directly by the packet's sequence number: the
/// `World` issues packets from one dense global counter, so `seq` is the
/// position of the broadcast in `records` and every per-delivery lookup
/// is a plain array index instead of a hash.
#[derive(Debug)]
pub struct MetricsCollector {
    hosts: usize,
    records: Vec<(PacketId, BroadcastRecord)>,
}

impl MetricsCollector {
    /// Creates a collector for a run with `hosts` hosts.
    pub fn new(hosts: usize) -> Self {
        MetricsCollector {
            hosts,
            records: Vec::new(),
        }
    }

    /// A broadcast was issued by `source` with `reachable` hosts reachable.
    ///
    /// Broadcasts must be issued in sequence-number order starting from
    /// zero (the `World` issues them from one dense counter).
    pub fn broadcast_issued(
        &mut self,
        packet: PacketId,
        source: NodeId,
        reachable: u32,
        now: SimTime,
    ) {
        assert_eq!(
            packet.seq as usize,
            self.records.len(),
            "broadcasts must be issued in dense sequence order"
        );
        let record = BroadcastRecord {
            source,
            issued_at: now,
            reachable,
            received: HostSet::new(self.hosts),
            rebroadcasters: HostSet::new(self.hosts),
            last_decision: now,
            eligible: None,
        };
        self.records.push((packet, record));
    }

    /// Like [`broadcast_issued`](Self::broadcast_issued), but scopes the
    /// broadcast to an explicit reachable set: only the listed hosts count
    /// toward `r` and `t`, so late receptions by hosts that were down or
    /// partitioned off at issue time cannot inflate reachability. Used by
    /// scenario (churn) runs; `reachable` is the set's size.
    pub fn broadcast_issued_scoped(
        &mut self,
        packet: PacketId,
        source: NodeId,
        reachable_set: &[NodeId],
        now: SimTime,
    ) {
        self.broadcast_issued(packet, source, reachable_set.len() as u32, now);
        let mut eligible = HostSet::new(self.hosts);
        for &id in reachable_set {
            eligible.insert(id);
        }
        self.records
            .last_mut()
            .expect("record just pushed")
            .1
            .eligible = Some(eligible);
    }

    fn record_mut(&mut self, packet: PacketId) -> &mut BroadcastRecord {
        &mut self
            .records
            .get_mut(packet.seq as usize)
            .expect("event for an unknown broadcast")
            .1
    }

    /// Host `node` decoded a copy of `packet`.
    pub fn packet_received(&mut self, packet: PacketId, node: NodeId) {
        let record = self.record_mut(packet);
        if record.counts(node) {
            record.received.insert(node);
        }
    }

    /// Host `node` finished transmitting a copy of `packet` at `now`.
    /// The source's original transmission is recorded for latency but not
    /// counted in `t`.
    pub fn transmission_finished(&mut self, packet: PacketId, node: NodeId, now: SimTime) {
        let record = self.record_mut(packet);
        if record.counts(node) {
            record.rebroadcasters.insert(node);
        }
        record.last_decision = record.last_decision.max(now);
    }

    /// Host decided not to rebroadcast `packet` at `now` (inhibited or
    /// cancelled).
    pub fn rebroadcast_inhibited(&mut self, packet: PacketId, now: SimTime) {
        let record = self.record_mut(packet);
        record.last_decision = record.last_decision.max(now);
    }

    /// `true` when `node` already counted as a receiver of `packet`.
    pub fn has_received(&self, packet: PacketId, node: NodeId) -> bool {
        self.records
            .get(packet.seq as usize)
            .expect("unknown broadcast")
            .1
            .received
            .contains(node)
    }

    /// Serializes the collector — every per-broadcast record — for a
    /// world snapshot.
    pub fn snapshot_into(&self, enc: &mut WireEncoder) {
        enc.usize(self.hosts);
        enc.len(self.records.len());
        for (packet, record) in &self.records {
            enc.u32(packet.source.index() as u32);
            enc.u32(packet.seq);
            enc.u32(record.source.index() as u32);
            enc.u64(record.issued_at.as_nanos());
            enc.u32(record.reachable);
            record.received.snapshot_into(enc);
            record.rebroadcasters.snapshot_into(enc);
            enc.u64(record.last_decision.as_nanos());
            match &record.eligible {
                None => enc.bool(false),
                Some(set) => {
                    enc.bool(true);
                    set.snapshot_into(enc);
                }
            }
        }
    }

    /// Rebuilds a collector from [`snapshot_into`](Self::snapshot_into)
    /// output.
    pub fn restore_snapshot(dec: &mut WireDecoder<'_>) -> Result<MetricsCollector, WireError> {
        let hosts = dec.usize()?;
        let record_count = dec.len()?;
        let mut records = Vec::with_capacity(record_count);
        for _ in 0..record_count {
            let packet = PacketId::new(NodeId::new(dec.u32()?), dec.u32()?);
            let record = BroadcastRecord {
                source: NodeId::new(dec.u32()?),
                issued_at: SimTime::from_nanos(dec.u64()?),
                reachable: dec.u32()?,
                received: HostSet::restore_snapshot(dec)?,
                rebroadcasters: HostSet::restore_snapshot(dec)?,
                last_decision: SimTime::from_nanos(dec.u64()?),
                eligible: if dec.bool()? {
                    Some(HostSet::restore_snapshot(dec)?)
                } else {
                    None
                },
            };
            records.push((packet, record));
        }
        Ok(MetricsCollector { hosts, records })
    }

    /// Aggregates everything collected into per-broadcast outcomes.
    pub fn outcomes(&self) -> Vec<BroadcastOutcome> {
        self.records
            .iter()
            .map(|(packet, record)| {
                let r = record.received.count;
                let t = record.rebroadcasters.count;
                BroadcastOutcome {
                    packet: *packet,
                    reachable: record.reachable,
                    received: r,
                    rebroadcast: t,
                    reachability: (record.reachable > 0)
                        .then(|| f64::from(r) / f64::from(record.reachable)),
                    saved_rebroadcasts: (r > 0)
                        .then(|| f64::from(r.saturating_sub(t)) / f64::from(r)),
                    latency: record.last_decision - record.issued_at,
                }
            })
            .collect()
    }
}

/// Latency distribution over a run's broadcasts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySummary {
    /// Mean latency, seconds.
    pub mean_s: f64,
    /// Median latency, seconds.
    pub p50_s: f64,
    /// 95th-percentile latency, seconds.
    pub p95_s: f64,
    /// Worst broadcast, seconds.
    pub max_s: f64,
}

/// Summarizes the latency distribution of a set of outcomes.
///
/// Percentiles use the nearest-rank method. Returns all zeros for an
/// empty slice.
pub fn latency_summary(outcomes: &[BroadcastOutcome]) -> LatencySummary {
    if outcomes.is_empty() {
        return LatencySummary {
            mean_s: 0.0,
            p50_s: 0.0,
            p95_s: 0.0,
            max_s: 0.0,
        };
    }
    let mut latencies: Vec<f64> = outcomes.iter().map(|o| o.latency.as_secs_f64()).collect();
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
    let rank = |q: f64| {
        let idx = ((q * latencies.len() as f64).ceil() as usize).clamp(1, latencies.len());
        latencies[idx - 1]
    };
    LatencySummary {
        mean_s: latencies.iter().sum::<f64>() / latencies.len() as f64,
        p50_s: rank(0.50),
        p95_s: rank(0.95),
        max_s: *latencies.last().expect("non-empty"),
    }
}

/// Averages per-broadcast outcomes into the three headline numbers.
///
/// Returns `(mean RE, mean SRB, mean latency seconds)`; broadcasts without
/// a defined ratio (isolated source, zero receivers) are excluded from the
/// corresponding mean, matching the paper's definitions.
pub fn summarize(outcomes: &[BroadcastOutcome]) -> (f64, f64, f64) {
    fn mean(values: impl Iterator<Item = f64>) -> f64 {
        let (mut sum, mut n) = (0.0, 0u32);
        for v in values {
            sum += v;
            n += 1;
        }
        if n == 0 {
            0.0
        } else {
            sum / f64::from(n)
        }
    }
    let re = mean(outcomes.iter().filter_map(|o| o.reachability));
    let srb = mean(outcomes.iter().filter_map(|o| o.saved_rebroadcasts));
    let latency = mean(outcomes.iter().map(|o| o.latency.as_secs_f64()));
    (re, srb, latency)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn id(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn pid(seq: u32) -> PacketId {
        PacketId::new(id(0), seq)
    }

    #[test]
    fn re_counts_unique_receivers_against_reachable() {
        let mut m = MetricsCollector::new(8);
        m.broadcast_issued(pid(0), id(0), 4, SimTime::ZERO);
        m.packet_received(pid(0), id(1));
        m.packet_received(pid(0), id(1)); // duplicate decode: still one
        m.packet_received(pid(0), id(2));
        m.packet_received(pid(0), id(0)); // source does not count
        let o = &m.outcomes()[0];
        assert_eq!(o.received, 2);
        assert_eq!(o.reachability, Some(0.5));
    }

    #[test]
    fn srb_excludes_source_transmission() {
        let mut m = MetricsCollector::new(8);
        m.broadcast_issued(pid(0), id(0), 4, SimTime::ZERO);
        for i in 1..=4 {
            m.packet_received(pid(0), id(i));
        }
        // Source plus two rebroadcasters transmit.
        m.transmission_finished(pid(0), id(0), SimTime::from_millis(3));
        m.transmission_finished(pid(0), id(1), SimTime::from_millis(6));
        m.transmission_finished(pid(0), id(2), SimTime::from_millis(9));
        let o = &m.outcomes()[0];
        assert_eq!(o.rebroadcast, 2);
        assert_eq!(o.saved_rebroadcasts, Some(0.5)); // (4 - 2) / 4
    }

    #[test]
    fn flooding_like_record_has_zero_srb() {
        let mut m = MetricsCollector::new(4);
        m.broadcast_issued(pid(0), id(0), 3, SimTime::ZERO);
        for i in 1..=3 {
            m.packet_received(pid(0), id(i));
            m.transmission_finished(pid(0), id(i), SimTime::from_millis(i as u64));
        }
        let o = &m.outcomes()[0];
        assert_eq!(o.saved_rebroadcasts, Some(0.0));
        assert_eq!(o.reachability, Some(1.0));
    }

    #[test]
    fn latency_tracks_last_decision() {
        let mut m = MetricsCollector::new(4);
        m.broadcast_issued(pid(0), id(0), 3, SimTime::from_secs(10));
        m.transmission_finished(pid(0), id(0), SimTime::from_millis(10_003));
        m.packet_received(pid(0), id(1));
        m.rebroadcast_inhibited(pid(0), SimTime::from_millis(10_050));
        let o = &m.outcomes()[0];
        assert_eq!(o.latency, SimDuration::from_millis(50));
    }

    #[test]
    fn isolated_source_yields_no_re() {
        let mut m = MetricsCollector::new(4);
        m.broadcast_issued(pid(0), id(0), 0, SimTime::ZERO);
        let o = &m.outcomes()[0];
        assert_eq!(o.reachability, None);
        assert_eq!(o.saved_rebroadcasts, None);
    }

    #[test]
    fn summarize_skips_undefined_ratios() {
        let mut m = MetricsCollector::new(4);
        m.broadcast_issued(pid(0), id(0), 0, SimTime::ZERO); // isolated
        m.broadcast_issued(pid(1), id(0), 2, SimTime::ZERO);
        m.packet_received(pid(1), id(1));
        m.packet_received(pid(1), id(2));
        let (re, srb, _lat) = summarize(&m.outcomes());
        assert_eq!(re, 1.0, "only the defined broadcast counts");
        assert_eq!(srb, 1.0, "2 receivers, 0 rebroadcasts");
    }

    #[test]
    fn latency_summary_percentiles() {
        let mut m = MetricsCollector::new(4);
        // Latencies 10, 20, ..., 100 ms over ten broadcasts.
        for i in 0..10u32 {
            m.broadcast_issued(pid(i), id(0), 3, SimTime::ZERO);
            m.rebroadcast_inhibited(pid(i), SimTime::from_millis(u64::from(i + 1) * 10));
        }
        let summary = latency_summary(&m.outcomes());
        assert!((summary.mean_s - 0.055).abs() < 1e-9);
        assert!((summary.p50_s - 0.05).abs() < 1e-9);
        assert!((summary.p95_s - 0.10).abs() < 1e-9);
        assert!((summary.max_s - 0.10).abs() < 1e-9);
    }

    #[test]
    fn latency_summary_of_empty_is_zero() {
        let summary = latency_summary(&[]);
        assert_eq!(summary.mean_s, 0.0);
        assert_eq!(summary.max_s, 0.0);
    }

    #[test]
    fn scoped_broadcast_ignores_ineligible_hosts() {
        let mut m = MetricsCollector::new(8);
        // Hosts 1 and 2 were reachable at issue time; host 3 was down.
        m.broadcast_issued_scoped(pid(0), id(0), &[id(1), id(2)], SimTime::ZERO);
        m.packet_received(pid(0), id(1));
        m.packet_received(pid(0), id(3)); // rejoined later: must not count
        m.transmission_finished(pid(0), id(3), SimTime::from_millis(5));
        let o = &m.outcomes()[0];
        assert_eq!(o.reachable, 2);
        assert_eq!(o.received, 1, "ineligible reception ignored");
        assert_eq!(o.rebroadcast, 0, "ineligible rebroadcast ignored");
        assert_eq!(o.reachability, Some(0.5));
        assert!(
            o.received <= o.reachable,
            "delivered ⊆ reachable-at-send-time"
        );
    }

    #[test]
    fn scenario_counts_merge_and_total() {
        let mut a = ScenarioCounts {
            leaves: 1,
            blackout_drops: 2,
            noise_drops: 3,
            ..ScenarioCounts::default()
        };
        let b = ScenarioCounts {
            joins: 4,
            partition_drops: 5,
            ..ScenarioCounts::default()
        };
        a.merge(&b);
        assert_eq!(a.leaves, 1);
        assert_eq!(a.joins, 4);
        assert_eq!(a.injected_drops(), 10);
    }

    #[test]
    fn has_received_reflects_state() {
        let mut m = MetricsCollector::new(4);
        m.broadcast_issued(pid(0), id(0), 3, SimTime::ZERO);
        assert!(!m.has_received(pid(0), id(1)));
        m.packet_received(pid(0), id(1));
        assert!(m.has_received(pid(0), id(1)));
    }
}
