//! The pure protocol models: every piece of *decision-owning* state —
//! packet ledgers, neighbor tables, variation trackers, suppression
//! tallies — behind a single dispatchable state machine.
//!
//! The simulation is split openmina-style into a **pure** half and an
//! **effectful** half:
//!
//! * [`PureModels`] owns the protocol state and advances it exclusively
//!   through [`PureModels::step`]: one [`PureAction`] in, a list of
//!   [`Effect`]s out. A step never draws randomness, never touches the
//!   event queue, and never mutates the radio medium — randomness the
//!   protocol needs (the schemes' uniform sample) arrives *inside* the
//!   action, drawn by the dispatcher beforehand.
//! * The dispatcher ([`World`](crate::World)) owns the RNG streams, the
//!   event queue, the MACs and the medium. It translates simulation events
//!   into actions, feeds them through the pure models, and executes the
//!   returned effects (scheduling assessments, cancelling frames,
//!   re-arming beacons).
//!
//! Because every action is a plain value, the action stream can be
//! recorded ([`crate::record`]) and replayed through a fresh `PureModels`
//! with no queue, no medium and no RNG at all — the scheme logic re-derives
//! every decision from the actions alone.

use manet_geom::{CoverageGrid, Vec2};
use manet_mac::FrameHandle;
use manet_net::{HelloIntervalPolicy, MembershipChange, NeighborTable, VariationTracker};
use manet_phy::NodeId;
use manet_sim_engine::{EventKey, SimDuration, SimTime};

use crate::config::{NeighborInfo, SimConfig};
use crate::ids::PacketId;
use crate::ledger::{ActivePacket, PacketLedger, PacketView};
use crate::metrics::SuppressionCounts;
use crate::policy::{DuplicateDecision, FirstDecision, HearContext, RebroadcastPolicy};
use crate::schemes::SchemeSpec;
use crate::trace::SuppressReason;

/// Placeholder for the assessment event key while a packet transitions
/// through the pure models; the dispatcher patches in the real key via
/// [`PureModels::set_assessment_key`] when it executes
/// [`Effect::ScheduleAssessment`].
const PLACEHOLDER_KEY: u64 = u64::MAX;

/// Placeholder MAC frame handle, patched via
/// [`PureModels::set_queued_handle`] when the dispatcher executes
/// [`Effect::EnqueueRebroadcast`].
const PLACEHOLDER_HANDLE: FrameHandle = FrameHandle(u64::MAX);

/// Oracle-mode neighbor knowledge, computed by the dispatcher from the
/// spatial grid and handed to the pure models inside
/// [`PureAction::PacketHeard`].
///
/// In HELLO mode this is absent: the pure models derive the same view from
/// their own neighbor tables.
#[derive(Debug, Clone, Copy)]
pub struct OracleView<'a> {
    /// Hosts currently in radio range of the hearer.
    pub neighbor_count: usize,
    /// The hearer's one-hop set (empty unless the scheme needs two-hop
    /// knowledge).
    pub neighbors: &'a [NodeId],
    /// The sender's one-hop set (empty unless the scheme needs two-hop
    /// knowledge).
    pub sender_neighbors: &'a [NodeId],
}

/// One input to the pure protocol state machine.
///
/// Actions borrow bulk data (neighbor lists) from the dispatcher's
/// buffers; [`OwnedAction`] is the owning twin used by the trace codec.
#[derive(Debug, Clone, Copy)]
pub enum PureAction<'a> {
    /// The workload issued a broadcast at `node`.
    Originate {
        /// The issuing host.
        node: NodeId,
        /// The new packet.
        packet: PacketId,
    },
    /// `node`'s HELLO timer fired: expire stale neighbors and compute the
    /// beacon interval.
    HelloPrepare {
        /// The beaconing host.
        node: NodeId,
    },
    /// `node` decoded a HELLO beacon.
    HelloHeard {
        /// The hearing host.
        node: NodeId,
        /// The beaconing host.
        sender: NodeId,
        /// The interval advertised in the beacon.
        interval: SimDuration,
        /// The sender's advertised one-hop neighbor list.
        neighbors: &'a [NodeId],
    },
    /// `node` decoded a copy of a broadcast packet.
    PacketHeard {
        /// The hearing host.
        node: NodeId,
        /// The packet heard.
        packet: PacketId,
        /// The host the copy was heard from.
        sender: NodeId,
        /// The sender's position as carried in the packet.
        sender_position: Vec2,
        /// The hearer's own position (GPS assumption).
        own_position: Vec2,
        /// A uniform `[0, 1)` sample drawn by the dispatcher for this hear
        /// event (randomized schemes consume it; others ignore it).
        random_unit: f64,
        /// Oracle-mode neighbor view; `None` in HELLO mode (the models use
        /// their own tables) and when the scheme needs no neighbor info.
        oracle: Option<OracleView<'a>>,
    },
    /// `node`'s scheme-level assessment delay for `packet` elapsed.
    AssessmentFired {
        /// The assessing host.
        node: NodeId,
        /// The packet whose rebroadcast is due.
        packet: PacketId,
    },
    /// `node`'s MAC put its copy of `packet` on the air (terminal:
    /// "rebroadcast at most once").
    FrameSent {
        /// The transmitting host.
        node: NodeId,
        /// The packet that went on the air.
        packet: PacketId,
    },
    /// `node` left the network (gracefully, or by crashing when `crash`).
    Deactivate {
        /// The departing host.
        node: NodeId,
        /// `true` wipes the host's protocol memory (crash semantics).
        crash: bool,
    },
}

/// The owning twin of [`PureAction`], produced by the trace decoder.
#[derive(Debug, Clone, PartialEq)]
pub enum OwnedAction {
    /// See [`PureAction::Originate`].
    Originate {
        /// The issuing host.
        node: NodeId,
        /// The new packet.
        packet: PacketId,
    },
    /// See [`PureAction::HelloPrepare`].
    HelloPrepare {
        /// The beaconing host.
        node: NodeId,
    },
    /// See [`PureAction::HelloHeard`].
    HelloHeard {
        /// The hearing host.
        node: NodeId,
        /// The beaconing host.
        sender: NodeId,
        /// The interval advertised in the beacon.
        interval: SimDuration,
        /// The sender's advertised one-hop neighbor list.
        neighbors: Vec<NodeId>,
    },
    /// See [`PureAction::PacketHeard`]. Oracle-mode neighbor views are
    /// stored inline.
    PacketHeard {
        /// The hearing host.
        node: NodeId,
        /// The packet heard.
        packet: PacketId,
        /// The host the copy was heard from.
        sender: NodeId,
        /// The sender's position as carried in the packet.
        sender_position: Vec2,
        /// The hearer's own position.
        own_position: Vec2,
        /// The uniform sample drawn for this hear event.
        random_unit: f64,
        /// Oracle neighbor view as `(count, neighbors, sender_neighbors)`.
        oracle: Option<(usize, Vec<NodeId>, Vec<NodeId>)>,
    },
    /// See [`PureAction::AssessmentFired`].
    AssessmentFired {
        /// The assessing host.
        node: NodeId,
        /// The packet whose rebroadcast is due.
        packet: PacketId,
    },
    /// See [`PureAction::FrameSent`].
    FrameSent {
        /// The transmitting host.
        node: NodeId,
        /// The packet that went on the air.
        packet: PacketId,
    },
    /// See [`PureAction::Deactivate`].
    Deactivate {
        /// The departing host.
        node: NodeId,
        /// `true` wipes the host's protocol memory.
        crash: bool,
    },
}

impl OwnedAction {
    /// A borrowed view of this action, usable with [`PureModels::step`].
    pub fn as_action(&self) -> PureAction<'_> {
        match self {
            OwnedAction::Originate { node, packet } => PureAction::Originate {
                node: *node,
                packet: *packet,
            },
            OwnedAction::HelloPrepare { node } => PureAction::HelloPrepare { node: *node },
            OwnedAction::HelloHeard {
                node,
                sender,
                interval,
                neighbors,
            } => PureAction::HelloHeard {
                node: *node,
                sender: *sender,
                interval: *interval,
                neighbors,
            },
            OwnedAction::PacketHeard {
                node,
                packet,
                sender,
                sender_position,
                own_position,
                random_unit,
                oracle,
            } => PureAction::PacketHeard {
                node: *node,
                packet: *packet,
                sender: *sender,
                sender_position: *sender_position,
                own_position: *own_position,
                random_unit: *random_unit,
                oracle: oracle
                    .as_ref()
                    .map(|(count, neighbors, sender_neighbors)| OracleView {
                        neighbor_count: *count,
                        neighbors,
                        sender_neighbors,
                    }),
            },
            OwnedAction::AssessmentFired { node, packet } => PureAction::AssessmentFired {
                node: *node,
                packet: *packet,
            },
            OwnedAction::FrameSent { node, packet } => PureAction::FrameSent {
                node: *node,
                packet: *packet,
            },
            OwnedAction::Deactivate { node, crash } => PureAction::Deactivate {
                node: *node,
                crash: *crash,
            },
        }
    }
}

/// A side effect requested by a pure step, executed by the dispatcher.
#[derive(Debug, Clone, PartialEq)]
pub enum Effect {
    /// Dynamic-interval churn response: if the host's next beacon is
    /// currently scheduled later than `target`, pull it forward.
    AccelerateHello {
        /// The host whose beacon may move.
        node: NodeId,
        /// The earliest instant the recomputed interval calls for.
        target: SimTime,
    },
    /// Queue a HELLO beacon with the given interval to the host's MAC and
    /// re-arm the beacon timer (with the dispatcher's jitter draw).
    EmitHello {
        /// The beaconing host.
        node: NodeId,
        /// The interval to advertise (and re-arm from).
        interval: SimDuration,
    },
    /// The host heard this packet for the first time (observability).
    FirstHeard {
        /// The hearing host.
        node: NodeId,
        /// The packet.
        packet: PacketId,
    },
    /// S1 declined immediately: record the inhibit decision.
    InhibitFirstHear {
        /// The deciding host.
        node: NodeId,
        /// The packet.
        packet: PacketId,
        /// The criterion that suppressed.
        reason: Option<SuppressReason>,
    },
    /// S1 scheduled a rebroadcast: draw the 0–31 slot assessment delay,
    /// schedule the wakeup, and patch its key into the ledger via
    /// [`PureModels::set_assessment_key`].
    ScheduleAssessment {
        /// The deciding host.
        node: NodeId,
        /// The packet.
        packet: PacketId,
    },
    /// S5 cancelled a pending assessment: cancel the queued wakeup.
    CancelAssessment {
        /// The deciding host.
        node: NodeId,
        /// The packet.
        packet: PacketId,
        /// The assessment wakeup to cancel.
        key: EventKey,
        /// The criterion that suppressed.
        reason: Option<SuppressReason>,
    },
    /// S5 cancelled a MAC-queued rebroadcast: cancel the frame.
    CancelQueued {
        /// The deciding host.
        node: NodeId,
        /// The packet.
        packet: PacketId,
        /// The MAC queue handle to cancel.
        handle: FrameHandle,
        /// The criterion that suppressed.
        reason: Option<SuppressReason>,
    },
    /// S2 completed: hand the packet to the host's MAC and patch the frame
    /// handle back via [`PureModels::set_queued_handle`].
    EnqueueRebroadcast {
        /// The rebroadcasting host.
        node: NodeId,
        /// The packet.
        packet: PacketId,
    },
    /// A departing host abandoned these pending assessment wakeups; cancel
    /// them on the event queue. (Cold path: host churn only.)
    AbandonAssessments {
        /// The orphaned assessment keys.
        keys: Vec<EventKey>,
    },
    /// A crashed host's neighbor-table counters, to be folded into the
    /// run totals before the table was wiped.
    RetireCounters {
        /// Lifetime joins of the wiped table.
        joins: u64,
        /// Lifetime leaves of the wiped table.
        leaves: u64,
    },
}

/// All pure protocol state, advanced exclusively by [`step`](Self::step).
#[derive(Debug)]
pub struct PureModels {
    scheme: SchemeSpec,
    hello_policy: Option<HelloIntervalPolicy>,
    needs_count: bool,
    needs_two_hop: bool,
    radio_radius: f64,
    /// Shared additional-coverage estimator for the location schemes.
    coverage: CoverageGrid,
    /// Per-host packet progress, host-indexed.
    ledgers: Vec<PacketLedger>,
    /// Per-host HELLO-derived neighbor tables, host-indexed.
    tables: Vec<NeighborTable>,
    /// Per-host neighborhood-variation trackers, host-indexed.
    trackers: Vec<VariationTracker>,
    /// Scheme decisions tallied as the pure transitions make them.
    suppression: SuppressionCounts,
    // Scratch for the HELLO-mode neighbor view (reused across steps so the
    // hot path does not allocate).
    scratch_neighbors: Vec<NodeId>,
    scratch_sender_neighbors: Vec<NodeId>,
    /// Scratch for expiry sweeps and deactivation drains, same reuse idea.
    scratch_changes: Vec<MembershipChange>,
    scratch_handles: Vec<FrameHandle>,
}

impl PureModels {
    /// Fresh protocol state for every host in `cfg`.
    pub fn new(cfg: &SimConfig) -> Self {
        let hosts = cfg.hosts as usize;
        PureModels {
            scheme: cfg.scheme.clone(),
            hello_policy: match cfg.neighbor_info {
                NeighborInfo::Hello(policy) => Some(policy),
                NeighborInfo::Oracle => None,
            },
            // (HelloIntervalPolicy is Copy, so the match above copies out
            // of the borrowed config.)
            needs_count: cfg.scheme.needs_neighbor_count(),
            needs_two_hop: cfg.scheme.needs_two_hop_hellos(),
            radio_radius: cfg.radio_radius,
            coverage: CoverageGrid::new(cfg.coverage_resolution),
            ledgers: (0..hosts).map(|_| PacketLedger::new()).collect(),
            tables: (0..hosts).map(|_| NeighborTable::new()).collect(),
            trackers: (0..hosts).map(|_| VariationTracker::new()).collect(),
            suppression: SuppressionCounts::default(),
            scratch_neighbors: Vec::new(),
            scratch_sender_neighbors: Vec::new(),
            scratch_changes: Vec::new(),
            scratch_handles: Vec::new(),
        }
    }

    /// Advances the protocol state by one action, appending the requested
    /// side effects to `fx` in execution order.
    ///
    /// This is the *only* mutator of the pure state (besides the
    /// dispatcher's placeholder patches), and it is effect-free itself: no
    /// RNG, no event queue, no medium.
    #[cfg_attr(simlint, pure_model)]
    pub fn step(&mut self, now: SimTime, action: &PureAction<'_>, fx: &mut Vec<Effect>) {
        match *action {
            PureAction::Originate { node, packet } => {
                self.ledgers[node.index()].mark_source(packet.seq);
            }
            PureAction::HelloPrepare { node } => {
                self.expire_neighbors(node, now, fx);
                let policy = self.hello_policy.expect("hello timer fired in oracle mode");
                let i = node.index();
                let count = self.tables[i].neighbor_count();
                let interval = policy.current_interval(&mut self.trackers[i], count, now);
                fx.push(Effect::EmitHello { node, interval });
            }
            PureAction::HelloHeard {
                node,
                sender,
                interval,
                neighbors,
            } => {
                self.expire_neighbors(node, now, fx);
                let i = node.index();
                if self.tables[i]
                    .record_hello(sender, now, interval, neighbors)
                    .is_some()
                {
                    self.trackers[i].record_change(now);
                    self.push_accelerate(node, now, fx);
                }
            }
            PureAction::PacketHeard {
                node,
                packet,
                sender,
                sender_position,
                own_position,
                random_unit,
                oracle,
            } => {
                self.packet_heard(
                    node,
                    packet,
                    sender,
                    sender_position,
                    own_position,
                    random_unit,
                    oracle,
                    now,
                    fx,
                );
            }
            PureAction::AssessmentFired { node, packet } => {
                let i = node.index();
                match self.ledgers[i].take_active(packet.seq) {
                    ActivePacket::Assessing { policy, .. } => {
                        // S2 continued: the dispatcher submits to the MAC
                        // and patches the real frame handle back in.
                        self.ledgers[i].set_active(
                            packet.seq,
                            ActivePacket::Queued {
                                handle: PLACEHOLDER_HANDLE,
                                policy,
                            },
                        );
                        fx.push(Effect::EnqueueRebroadcast { node, packet });
                    }
                    other => unreachable!("assessment fired in state {other:?}"),
                }
            }
            PureAction::FrameSent { node, packet } => {
                // On the air: no longer cancellable.
                self.ledgers[node.index()].mark_done(packet.seq);
            }
            PureAction::Deactivate { node, crash } => {
                let i = node.index();
                // The key list moves into the AbandonAssessments effect
                // below, so it cannot reuse a scratch buffer; Deactivate
                // fires on churn, not per packet.
                // simlint: allow(hot-path-alloc) — churn-rate, moves into fx
                let mut keys = Vec::new();
                self.scratch_handles.clear();
                self.ledgers[i].drain_active(&mut keys, &mut self.scratch_handles);
                // MAC-queued rebroadcasts (`scratch_handles`) need no effect
                // of their own: the dispatcher's MAC-queue sweep covers every
                // queued frame, HELLOs included.
                if !keys.is_empty() {
                    fx.push(Effect::AbandonAssessments { keys });
                }
                if crash {
                    // A crash loses everything above the radio; a graceful
                    // leave keeps the host's memory for its return.
                    let joins = self.tables[i].join_count();
                    let leaves = self.tables[i].leave_count();
                    self.tables[i] = NeighborTable::new();
                    self.trackers[i] = VariationTracker::new();
                    self.ledgers[i] = PacketLedger::new();
                    fx.push(Effect::RetireCounters { joins, leaves });
                }
            }
        }
    }

    /// The S1/S4/S5 decision pipeline for one heard copy of a packet.
    #[cfg_attr(simlint, pure_model)]
    #[allow(clippy::too_many_arguments)]
    fn packet_heard(
        &mut self,
        node: NodeId,
        packet: PacketId,
        sender: NodeId,
        sender_position: Vec2,
        own_position: Vec2,
        random_unit: f64,
        oracle: Option<OracleView<'_>>,
        now: SimTime,
        fx: &mut Vec<Effect>,
    ) {
        let i = node.index();
        self.scratch_neighbors.clear();
        self.scratch_sender_neighbors.clear();
        let neighbor_count = if !self.needs_count && !self.needs_two_hop {
            0
        } else if let Some(view) = oracle {
            self.scratch_neighbors.extend_from_slice(view.neighbors);
            self.scratch_sender_neighbors
                .extend_from_slice(view.sender_neighbors);
            view.neighbor_count
        } else {
            // HELLO mode: the models' own tables are the source of truth.
            self.expire_neighbors(node, now, fx);
            let count = self.tables[i].neighbor_count();
            if self.needs_two_hop {
                self.tables[i].neighbor_ids_into(&mut self.scratch_neighbors);
                if let Some(known) = self.tables[i].neighbors_of(sender) {
                    self.scratch_sender_neighbors.extend_from_slice(known);
                }
            }
            count
        };

        let ctx = HearContext {
            neighbor_count,
            own_position,
            sender,
            sender_position,
            neighbors: &self.scratch_neighbors,
            sender_neighbors: &self.scratch_sender_neighbors,
            coverage: &self.coverage,
            radio_radius: self.radio_radius,
            random_unit,
        };

        /// What the duplicate-hear consultation decided, captured so the
        /// ledger borrow is released before the tallies are updated.
        enum Outcome {
            Ignore,
            FirstHear,
            CancelAssessment(EventKey, Option<SuppressReason>),
            CancelQueued(FrameHandle, Option<SuppressReason>),
        }
        let outcome = match self.ledgers[i].view(packet.seq) {
            PacketView::Unheard => Outcome::FirstHear,
            // The source never reacts to copies of its own broadcast, and
            // finished packets stay finished ("rebroadcast at most once").
            PacketView::Source | PacketView::Done => Outcome::Ignore,
            PacketView::Active(active) => match active {
                ActivePacket::Assessing { key, policy } => {
                    if policy.on_duplicate_hear(&ctx) == DuplicateDecision::Cancel {
                        Outcome::CancelAssessment(*key, policy.suppress_reason())
                    } else {
                        Outcome::Ignore
                    }
                }
                ActivePacket::Queued { handle, policy } => {
                    if policy.on_duplicate_hear(&ctx) == DuplicateDecision::Cancel {
                        Outcome::CancelQueued(*handle, policy.suppress_reason())
                    } else {
                        Outcome::Ignore
                    }
                }
            },
        };

        match outcome {
            Outcome::Ignore => {}
            Outcome::FirstHear => {
                // S1: first copy.
                fx.push(Effect::FirstHeard { node, packet });
                let mut policy = self.scheme.build();
                match policy.on_first_hear(&ctx) {
                    FirstDecision::Inhibit => {
                        let reason = policy.suppress_reason();
                        self.suppression.inhibited_first_hear += 1;
                        self.suppression.record_reason(reason);
                        self.ledgers[i].mark_done(packet.seq);
                        fx.push(Effect::InhibitFirstHear {
                            node,
                            packet,
                            reason,
                        });
                    }
                    FirstDecision::Schedule => {
                        // S2: the dispatcher draws the 0–31 slot delay,
                        // schedules the wakeup, and patches the key in.
                        self.suppression.scheduled += 1;
                        self.ledgers[i].set_active(
                            packet.seq,
                            ActivePacket::Assessing {
                                key: EventKey::from_raw(PLACEHOLDER_KEY),
                                policy,
                            },
                        );
                        fx.push(Effect::ScheduleAssessment { node, packet });
                    }
                }
            }
            Outcome::CancelAssessment(key, reason) => {
                self.suppression.cancelled += 1;
                self.suppression.record_reason(reason);
                self.ledgers[i].mark_done(packet.seq);
                fx.push(Effect::CancelAssessment {
                    node,
                    packet,
                    key,
                    reason,
                });
            }
            Outcome::CancelQueued(handle, reason) => {
                self.suppression.cancelled += 1;
                self.suppression.record_reason(reason);
                self.ledgers[i].mark_done(packet.seq);
                fx.push(Effect::CancelQueued {
                    node,
                    packet,
                    handle,
                    reason,
                });
            }
        }
    }

    /// Expires stale neighbors, feeding leave events to the variation
    /// tracker; churn under the dynamic hello policy may accelerate the
    /// host's beacon.
    #[cfg_attr(simlint, pure_model)]
    fn expire_neighbors(&mut self, node: NodeId, now: SimTime, fx: &mut Vec<Effect>) {
        let i = node.index();
        self.scratch_changes.clear();
        self.tables[i].expire_into(now, &mut self.scratch_changes);
        let leaves = self.scratch_changes.len();
        for _ in 0..leaves {
            self.trackers[i].record_change(now);
        }
        if leaves > 0 {
            self.push_accelerate(node, now, fx);
        }
    }

    /// Under the dynamic hello policy, recomputes the host's interval from
    /// the live variation and asks the dispatcher to pull the beacon
    /// forward if it now fires too late. (The paper notes "each host's
    /// hello interval may change dynamically".)
    #[cfg_attr(simlint, pure_model)]
    fn push_accelerate(&mut self, node: NodeId, now: SimTime, fx: &mut Vec<Effect>) {
        let Some(HelloIntervalPolicy::Dynamic(params)) = self.hello_policy else {
            return;
        };
        let i = node.index();
        let count = self.tables[i].neighbor_count();
        let interval = params.interval_for(self.trackers[i].variation(now, count));
        fx.push(Effect::AccelerateHello {
            node,
            target: now + interval,
        });
    }

    /// Patches the real assessment wakeup key into a freshly scheduled
    /// packet (the counterpart of [`Effect::ScheduleAssessment`]).
    pub fn set_assessment_key(&mut self, node: NodeId, seq: u32, key: EventKey) {
        match self.ledgers[node.index()].view(seq) {
            PacketView::Active(ActivePacket::Assessing { key: slot, .. }) => *slot = key,
            other => unreachable!("assessment key patch in state {other:?}"),
        }
    }

    /// Patches the real MAC frame handle into a freshly queued rebroadcast
    /// (the counterpart of [`Effect::EnqueueRebroadcast`]).
    pub fn set_queued_handle(&mut self, node: NodeId, seq: u32, handle: FrameHandle) {
        match self.ledgers[node.index()].view(seq) {
            PacketView::Active(ActivePacket::Queued { handle: slot, .. }) => *slot = handle,
            other => unreachable!("queued handle patch in state {other:?}"),
        }
    }

    /// The host's current one-hop neighbor ids, sorted, appended to `out`.
    pub fn neighbor_ids_into(&self, node: NodeId, out: &mut Vec<NodeId>) {
        self.tables[node.index()].neighbor_ids_into(out);
    }

    /// Scheme decisions tallied so far.
    pub fn suppression(&self) -> SuppressionCounts {
        self.suppression
    }

    /// Lifetime neighbor-table `(joins, leaves)` summed over all live
    /// tables (crashed tables are reported via [`Effect::RetireCounters`]).
    pub fn net_totals(&self) -> (u64, u64) {
        self.tables.iter().fold((0, 0), |(j, l), table| {
            (j + table.join_count(), l + table.leave_count())
        })
    }

    /// The mutable protocol state a world snapshot must carry: per-host
    /// ledgers, neighbor tables, variation trackers, and the suppression
    /// tally. Everything else in `PureModels` is config-derived or
    /// scratch.
    pub(crate) fn snapshot_parts(
        &self,
    ) -> (
        &[PacketLedger],
        &[NeighborTable],
        &[VariationTracker],
        SuppressionCounts,
    ) {
        (
            &self.ledgers,
            &self.tables,
            &self.trackers,
            self.suppression,
        )
    }

    /// Overwrites the mutable protocol state when restoring from a world
    /// snapshot. The receiver must have been built from the same config.
    pub(crate) fn restore_parts(
        &mut self,
        ledgers: Vec<PacketLedger>,
        tables: Vec<NeighborTable>,
        trackers: Vec<VariationTracker>,
        suppression: SuppressionCounts,
    ) {
        self.ledgers = ledgers;
        self.tables = tables;
        self.trackers = trackers;
        self.suppression = suppression;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SimConfig;

    fn cfg(scheme: SchemeSpec) -> SimConfig {
        SimConfig::builder(1, scheme).hosts(4).broadcasts(1).build()
    }

    #[test]
    fn first_hear_schedules_under_flooding() {
        let mut pure = PureModels::new(&cfg(SchemeSpec::Flooding));
        let mut fx = Vec::new();
        let packet = PacketId::new(NodeId::new(0), 0);
        pure.step(
            SimTime::from_millis(1),
            &PureAction::PacketHeard {
                node: NodeId::new(1),
                packet,
                sender: NodeId::new(0),
                sender_position: Vec2::ZERO,
                own_position: Vec2::new(100.0, 0.0),
                random_unit: 0.5,
                oracle: None,
            },
            &mut fx,
        );
        assert_eq!(
            fx,
            vec![
                Effect::FirstHeard {
                    node: NodeId::new(1),
                    packet
                },
                Effect::ScheduleAssessment {
                    node: NodeId::new(1),
                    packet
                },
            ]
        );
        assert_eq!(pure.suppression().scheduled, 1);
    }

    #[test]
    fn counter_threshold_cancels_on_duplicates() {
        let mut pure = PureModels::new(&cfg(SchemeSpec::Counter(2)));
        let mut fx = Vec::new();
        let packet = PacketId::new(NodeId::new(0), 0);
        let hear = |sender: u32| PureAction::PacketHeard {
            node: NodeId::new(1),
            packet,
            sender: NodeId::new(sender),
            sender_position: Vec2::ZERO,
            own_position: Vec2::new(100.0, 0.0),
            random_unit: 0.5,
            oracle: None,
        };
        pure.step(SimTime::from_millis(1), &hear(0), &mut fx);
        pure.set_assessment_key(NodeId::new(1), 0, EventKey::from_raw(7));
        fx.clear();
        pure.step(SimTime::from_millis(2), &hear(2), &mut fx);
        assert_eq!(
            fx,
            vec![Effect::CancelAssessment {
                node: NodeId::new(1),
                packet,
                key: EventKey::from_raw(7),
                reason: Some(SuppressReason::CounterThreshold),
            }]
        );
        // Terminal: a third copy is ignored.
        fx.clear();
        pure.step(SimTime::from_millis(3), &hear(3), &mut fx);
        assert!(fx.is_empty());
        assert_eq!(pure.suppression().cancelled, 1);
    }

    #[test]
    fn source_copies_are_ignored() {
        let mut pure = PureModels::new(&cfg(SchemeSpec::Flooding));
        let mut fx = Vec::new();
        let packet = PacketId::new(NodeId::new(0), 0);
        pure.step(
            SimTime::ZERO,
            &PureAction::Originate {
                node: NodeId::new(0),
                packet,
            },
            &mut fx,
        );
        pure.step(
            SimTime::from_millis(1),
            &PureAction::PacketHeard {
                node: NodeId::new(0),
                packet,
                sender: NodeId::new(2),
                sender_position: Vec2::ZERO,
                own_position: Vec2::ZERO,
                random_unit: 0.0,
                oracle: None,
            },
            &mut fx,
        );
        assert!(fx.is_empty());
    }

    #[test]
    fn crash_wipes_state_and_retires_counters() {
        let mut pure = PureModels::new(&cfg(SchemeSpec::Flooding));
        let mut fx = Vec::new();
        let packet = PacketId::new(NodeId::new(0), 0);
        pure.step(
            SimTime::from_millis(1),
            &PureAction::PacketHeard {
                node: NodeId::new(1),
                packet,
                sender: NodeId::new(0),
                sender_position: Vec2::ZERO,
                own_position: Vec2::new(100.0, 0.0),
                random_unit: 0.5,
                oracle: None,
            },
            &mut fx,
        );
        pure.set_assessment_key(NodeId::new(1), 0, EventKey::from_raw(3));
        fx.clear();
        pure.step(
            SimTime::from_millis(2),
            &PureAction::Deactivate {
                node: NodeId::new(1),
                crash: true,
            },
            &mut fx,
        );
        assert_eq!(
            fx,
            vec![
                Effect::AbandonAssessments {
                    keys: vec![EventKey::from_raw(3)]
                },
                Effect::RetireCounters {
                    joins: 0,
                    leaves: 0
                },
            ]
        );
        // The wiped ledger treats the packet as unheard again.
        fx.clear();
        pure.step(
            SimTime::from_millis(3),
            &PureAction::PacketHeard {
                node: NodeId::new(1),
                packet,
                sender: NodeId::new(0),
                sender_position: Vec2::ZERO,
                own_position: Vec2::new(100.0, 0.0),
                random_unit: 0.5,
                oracle: None,
            },
            &mut fx,
        );
        assert!(matches!(fx[0], Effect::FirstHeard { .. }));
    }
}
