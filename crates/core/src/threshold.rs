//! Threshold functions for the adaptive schemes (paper §3.1–3.2, Figs 3,
//! 4, 6, 8).
//!
//! * [`CounterThreshold`] — the counter threshold `C(n)` as a function of
//!   the host's neighbor count `n`. The paper derives its recommended
//!   shape in four tuning steps (Fig. 5): ramp `C(n) = n + 1` with slope 1
//!   up to `n₁ = 4`, then descend to the minimum threshold 2 at
//!   `n₂ = 12`, constant 2 beyond.
//! * [`AreaThreshold`] — the additional-coverage threshold `A(n)`:
//!   0 for `n ≤ n₁` (forcing a rebroadcast), rising linearly to
//!   `EAC(2)/πr² = 0.187` at `n₂`, constant beyond. The paper recommends
//!   `(n₁, n₂) = (6, 12)` after the Fig. 9 sweep.
//!
//! Every candidate shape the paper sweeps is constructible here so the
//! tuning experiments (Figs 5 and 9) can be reproduced, not just their
//! conclusions.

use std::fmt;

/// The minimum useful counter threshold; `C(n) = 2` can still suppress but
/// never forbids rebroadcasting outright (paper §3.1: "it is unreasonable
/// to completely prohibit rebroadcasting").
pub const MIN_COUNTER_THRESHOLD: u32 = 2;

/// The asymptotic location threshold `EAC(2)/πr² ≈ 0.187`: the expected
/// additional coverage after hearing the same packet twice (paper §3.2).
pub const EAC2_FRACTION: f64 = 0.187;

/// Shape of `C(n)`'s descent between `n₁` and `n₂` (paper Fig. 6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DescentShape {
    /// Drop quickly right after `n₁`, then level out.
    Convex,
    /// Straight line from `C(n₁)` down to 2 at `n₂` — the recommended
    /// ("solid line") choice.
    Linear,
    /// Stay high after `n₁`, then drop quickly near `n₂`.
    Concave,
}

impl fmt::Display for DescentShape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            DescentShape::Convex => "convex",
            DescentShape::Linear => "linear",
            DescentShape::Concave => "concave",
        };
        f.write_str(name)
    }
}

/// A counter threshold function `C(n)`.
///
/// Internally a lookup sequence `C(1), C(2), …`; queries beyond the end of
/// the sequence return its last value, matching the paper's
/// `x₁x₂x₃…` notation where the final digit repeats.
///
/// # Examples
///
/// ```
/// use broadcast_core::CounterThreshold;
///
/// let c = CounterThreshold::paper_recommended();
/// assert_eq!(c.threshold(1), 2);  // sparse: insist on rebroadcasting
/// assert_eq!(c.threshold(4), 5);  // peak at n1 = 4
/// assert_eq!(c.threshold(12), 2); // dense: suppress aggressively
/// assert_eq!(c.threshold(50), 2); // constant beyond n2
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterThreshold {
    sequence: Vec<u32>,
    label: String,
}

impl CounterThreshold {
    /// A fixed threshold `C(n) = c` — the non-adaptive baseline of \[15\].
    ///
    /// # Panics
    ///
    /// Panics if `c < 2`.
    pub fn fixed(c: u32) -> Self {
        assert!(
            c >= MIN_COUNTER_THRESHOLD,
            "a threshold below 2 suppresses everything"
        );
        // Reached via per-packet policy construction on first hear; the
        // one-element sequence and its label are the packet's scheme state.
        CounterThreshold {
            // simlint: allow(hot-path-alloc) — per-packet policy state
            sequence: vec![c],
            // simlint: allow(hot-path-alloc) — per-packet policy state
            label: format!("C={c}"),
        }
    }

    /// Builds `C(n)` from an explicit sequence `C(1), C(2), …`; values
    /// past the end repeat the last element (the paper's `…` notation).
    ///
    /// # Panics
    ///
    /// Panics if the sequence is empty or contains a value below 2.
    pub fn from_sequence(sequence: Vec<u32>, label: impl Into<String>) -> Self {
        assert!(!sequence.is_empty(), "threshold sequence cannot be empty");
        assert!(
            sequence.iter().all(|&c| c >= MIN_COUNTER_THRESHOLD),
            "threshold values below 2 suppress everything"
        );
        CounterThreshold {
            sequence,
            label: label.into(),
        }
    }

    /// The Fig. 5a ramp candidates: thresholds climb from 2 with the given
    /// reciprocal `slope_denominator` (1 → slope 1, 2 → slope 1/2,
    /// 3 → slope 1/3) and saturate at 5.
    ///
    /// `ramp(1)` = `23455…`, `ramp(2)` = `2233445555…`*, `ramp(3)` =
    /// `22233344455555…` (*the paper prints `22334455555`, i.e. each value
    /// held `denominator` times).
    ///
    /// # Panics
    ///
    /// Panics if `slope_denominator == 0`.
    pub fn ramp(slope_denominator: u32) -> Self {
        assert!(slope_denominator > 0, "slope denominator must be positive");
        let mut seq = Vec::new();
        for value in 2..=5u32 {
            for _ in 0..slope_denominator {
                seq.push(value);
                if value == 5 {
                    break; // the plateau repeats implicitly
                }
            }
        }
        CounterThreshold::from_sequence(seq, format!("slope 1/{slope_denominator}"))
    }

    /// The Fig. 5b candidates: `C(n) = n + 1` for `n ≤ n₁`, constant
    /// `n₁ + 1` beyond — `233…`, `2344…`, `23455…`, `234566…`.
    ///
    /// # Panics
    ///
    /// Panics if `n1 == 0`.
    pub fn ramp_to(n1: u32) -> Self {
        assert!(n1 > 0, "n1 must be positive");
        let mut seq: Vec<u32> = (1..=n1).map(|n| n + 1).collect();
        seq.push(n1 + 1); // constant beyond n1
        CounterThreshold::from_sequence(seq, format!("n1={n1}"))
    }

    /// The Fig. 5c/5d family: ramp `C(n) = n + 1` to `n₁`, descend with
    /// `shape` to the minimum threshold 2 at `n₂`, constant 2 beyond.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < n1 < n2`.
    pub fn with_descent(n1: u32, n2: u32, shape: DescentShape) -> Self {
        assert!(n1 > 0 && n2 > n1, "need 0 < n1 < n2, got n1={n1}, n2={n2}");
        let peak = (n1 + 1) as f64;
        let floor = MIN_COUNTER_THRESHOLD as f64;
        let mut seq: Vec<u32> = (1..=n1).map(|n| n + 1).collect();
        for n in (n1 + 1)..n2 {
            let t = f64::from(n - n1) / f64::from(n2 - n1); // 0 → 1 across the descent
            let fraction_remaining = match shape {
                DescentShape::Linear => 1.0 - t,
                // Convex: lose most of the height early.
                DescentShape::Convex => (1.0 - t) * (1.0 - t),
                // Concave: hold the height, drop late.
                DescentShape::Concave => 1.0 - t * t,
            };
            let value = floor + (peak - floor) * fraction_remaining;
            seq.push((value.round() as u32).max(MIN_COUNTER_THRESHOLD));
        }
        seq.push(MIN_COUNTER_THRESHOLD);
        CounterThreshold::from_sequence(seq, format!("n1={n1},n2={n2},{shape}"))
    }

    /// The paper's recommended function (the solid line of Fig. 6):
    /// slope-1 ramp to `n₁ = 4`, linear descent to 2 at `n₂ = 12`.
    pub fn paper_recommended() -> Self {
        let mut c = CounterThreshold::with_descent(4, 12, DescentShape::Linear);
        c.label = "AC".to_string();
        c
    }

    /// `C(n)` for a host with `n` neighbors.
    ///
    /// `n = 0` is treated as `n = 1`: a host that knows of no neighbors
    /// has no reason to suppress.
    pub fn threshold(&self, n: usize) -> u32 {
        let idx = n.max(1) - 1;
        *self
            .sequence
            .get(idx)
            .unwrap_or_else(|| self.sequence.last().expect("sequence is non-empty"))
    }

    /// Human-readable label for tables and plots.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The underlying sequence (for tabulating Fig. 6).
    pub fn sequence(&self) -> &[u32] {
        &self.sequence
    }
}

/// An additional-coverage threshold function `A(n)`, as a fraction of
/// `πr²` (paper Figs 4 and 8).
///
/// # Examples
///
/// ```
/// use broadcast_core::AreaThreshold;
///
/// let a = AreaThreshold::paper_recommended(); // (n1, n2) = (6, 12)
/// assert_eq!(a.threshold(3), 0.0);            // sparse: always rebroadcast
/// assert!((a.threshold(9) - 0.0935).abs() < 1e-4); // halfway up
/// assert!((a.threshold(20) - 0.187).abs() < 1e-12); // dense: EAC(2)
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AreaThreshold {
    kind: AreaThresholdKind,
    label: String,
}

/// The internal shape of an [`AreaThreshold`], exposed crate-internally so
/// the snapshot/trace codecs can serialize thresholds exactly.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum AreaThresholdKind {
    /// A constant fraction of `πr²`.
    Fixed(f64),
    /// The Fig. 8 family: 0 to `n₁`, linear to `ceiling` at `n₂`.
    Adaptive { n1: u32, n2: u32, ceiling: f64 },
}

impl AreaThreshold {
    /// A fixed threshold `A(n) = a` — the non-adaptive baseline of \[15\]
    /// (the paper compares against `a ∈ {0.1871, 0.0469, 0.0134}`).
    ///
    /// # Panics
    ///
    /// Panics if `a` is not in `[0, 1]`.
    pub fn fixed(a: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&a),
            "coverage fraction out of range: {a}"
        );
        AreaThreshold {
            kind: AreaThresholdKind::Fixed(a),
            // simlint: allow(hot-path-alloc) — per-packet policy state
            label: format!("A={a}"),
        }
    }

    /// The adaptive family of Fig. 8: `A(n) = 0` for `n ≤ n₁`, linear up
    /// to [`EAC2_FRACTION`] at `n₂`, constant beyond.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < n1 < n2`.
    pub fn adaptive(n1: u32, n2: u32) -> Self {
        assert!(n1 > 0 && n2 > n1, "need 0 < n1 < n2, got n1={n1}, n2={n2}");
        AreaThreshold {
            kind: AreaThresholdKind::Adaptive {
                n1,
                n2,
                ceiling: EAC2_FRACTION,
            },
            label: format!("AL({n1},{n2})"),
        }
    }

    /// The paper's recommendation after the Fig. 9 sweep: `(6, 12)`.
    pub fn paper_recommended() -> Self {
        let mut a = AreaThreshold::adaptive(6, 12);
        a.label = "AL".to_string();
        a
    }

    /// `A(n)` for a host with `n` neighbors.
    pub fn threshold(&self, n: usize) -> f64 {
        match self.kind {
            AreaThresholdKind::Fixed(a) => a,
            AreaThresholdKind::Adaptive { n1, n2, ceiling } => {
                let n = n as f64;
                let (n1, n2) = (f64::from(n1), f64::from(n2));
                if n <= n1 {
                    0.0
                } else if n >= n2 {
                    ceiling
                } else {
                    ceiling * (n - n1) / (n2 - n1)
                }
            }
        }
    }

    /// Human-readable label for tables and plots.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The raw shape, for the snapshot/trace codecs.
    pub(crate) fn kind(&self) -> AreaThresholdKind {
        self.kind
    }

    /// Rebuilds a threshold from codec parts, bypassing the public
    /// constructors so decoded values round-trip exactly.
    pub(crate) fn from_parts(kind: AreaThresholdKind, label: String) -> Self {
        AreaThreshold { kind, label }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_counter_is_constant() {
        let c = CounterThreshold::fixed(4);
        for n in 0..50 {
            assert_eq!(c.threshold(n), 4);
        }
        assert_eq!(c.label(), "C=4");
    }

    #[test]
    fn ramp_sequences_match_paper_notation() {
        assert_eq!(CounterThreshold::ramp(1).sequence(), &[2, 3, 4, 5]);
        assert_eq!(CounterThreshold::ramp(2).sequence(), &[2, 2, 3, 3, 4, 4, 5]);
        assert_eq!(
            CounterThreshold::ramp(3).sequence(),
            &[2, 2, 2, 3, 3, 3, 4, 4, 4, 5]
        );
    }

    #[test]
    fn ramp_to_matches_fig5b() {
        assert_eq!(CounterThreshold::ramp_to(2).sequence(), &[2, 3, 3]);
        assert_eq!(CounterThreshold::ramp_to(3).sequence(), &[2, 3, 4, 4]);
        assert_eq!(CounterThreshold::ramp_to(4).sequence(), &[2, 3, 4, 5, 5]);
        assert_eq!(CounterThreshold::ramp_to(5).sequence(), &[2, 3, 4, 5, 6, 6]);
    }

    #[test]
    fn descent_sequences_are_pinned_exactly() {
        // `with_descent` rounds with `value.round()`, which breaks .5 ties
        // away from zero; the n=8 Linear point computes exactly 3.5 and
        // must stay 4. All descent inputs are eighths (exact in binary),
        // so these tables can only drift if the arithmetic or the rounding
        // mode changes — pin every value for the paper's (n1, n2) = (4, 12).
        assert_eq!(
            CounterThreshold::with_descent(4, 12, DescentShape::Linear).sequence(),
            &[2, 3, 4, 5, 5, 4, 4, 4, 3, 3, 2, 2],
        );
        assert_eq!(
            CounterThreshold::with_descent(4, 12, DescentShape::Convex).sequence(),
            &[2, 3, 4, 5, 4, 4, 3, 3, 2, 2, 2, 2],
        );
        assert_eq!(
            CounterThreshold::with_descent(4, 12, DescentShape::Concave).sequence(),
            &[2, 3, 4, 5, 5, 5, 5, 4, 4, 3, 3, 2],
        );
        // The paper's AC function is the Linear table under its own label,
        // and saturates at the floor past n2.
        let ac = CounterThreshold::paper_recommended();
        assert_eq!(ac.label(), "AC");
        assert_eq!(
            ac.sequence(),
            CounterThreshold::with_descent(4, 12, DescentShape::Linear).sequence()
        );
        assert_eq!(ac.threshold(12), 2);
        assert_eq!(ac.threshold(100), 2);
    }

    #[test]
    fn recommended_counter_shape() {
        let c = CounterThreshold::paper_recommended();
        // Ramp with slope 1…
        assert_eq!(c.threshold(1), 2);
        assert_eq!(c.threshold(2), 3);
        assert_eq!(c.threshold(3), 4);
        assert_eq!(c.threshold(4), 5);
        // …monotone descent…
        for n in 4..12 {
            assert!(c.threshold(n + 1) <= c.threshold(n));
        }
        // …to the floor at n2 = 12.
        assert_eq!(c.threshold(12), 2);
        assert_eq!(c.threshold(100), 2);
    }

    #[test]
    fn descent_shapes_order_correctly() {
        // Midway through the descent: convex <= linear <= concave.
        let convex = CounterThreshold::with_descent(4, 12, DescentShape::Convex);
        let linear = CounterThreshold::with_descent(4, 12, DescentShape::Linear);
        let concave = CounterThreshold::with_descent(4, 12, DescentShape::Concave);
        for n in 5..12 {
            assert!(
                convex.threshold(n) <= linear.threshold(n),
                "n={n}: convex above linear"
            );
            assert!(
                linear.threshold(n) <= concave.threshold(n),
                "n={n}: linear above concave"
            );
        }
        // All agree at the endpoints.
        for c in [&convex, &linear, &concave] {
            assert_eq!(c.threshold(4), 5);
            assert_eq!(c.threshold(12), 2);
        }
    }

    #[test]
    fn zero_neighbors_acts_like_one() {
        let c = CounterThreshold::paper_recommended();
        assert_eq!(c.threshold(0), c.threshold(1));
    }

    #[test]
    fn fixed_area_is_constant() {
        let a = AreaThreshold::fixed(0.0469);
        assert_eq!(a.threshold(1), 0.0469);
        assert_eq!(a.threshold(40), 0.0469);
    }

    #[test]
    fn adaptive_area_matches_fig4() {
        let a = AreaThreshold::adaptive(6, 12);
        assert_eq!(a.threshold(1), 0.0);
        assert_eq!(a.threshold(6), 0.0);
        assert!((a.threshold(12) - EAC2_FRACTION).abs() < 1e-12);
        assert!((a.threshold(30) - EAC2_FRACTION).abs() < 1e-12);
        // Strictly increasing in between.
        let mut prev = 0.0;
        for n in 7..12 {
            let v = a.threshold(n);
            assert!(v > prev);
            prev = v;
        }
    }

    #[test]
    #[should_panic(expected = "suppresses everything")]
    fn counter_below_two_panics() {
        let _ = CounterThreshold::fixed(1);
    }

    #[test]
    #[should_panic(expected = "n1 < n2")]
    fn bad_descent_bounds_panic() {
        let _ = CounterThreshold::with_descent(6, 6, DescentShape::Linear);
    }
}
