//! The distance-based scheme from \[15\] — an extra baseline.
//!
//! The closer a receiver is to the nearest transmitter it has heard the
//! packet from, the smaller the extra area its own rebroadcast could
//! cover. The scheme tracks the minimum such distance `d_min` and cancels
//! once `d_min` falls below a distance threshold `D`.

use crate::policy::{DuplicateDecision, FirstDecision, HearContext, RebroadcastPolicy};

/// Distance-based suppression with threshold `D` in meters.
#[derive(Debug, Clone)]
pub struct DistanceScheme {
    threshold_m: f64,
    min_distance: f64,
}

impl DistanceScheme {
    /// Creates the per-packet state with threshold `D` meters.
    ///
    /// # Panics
    ///
    /// Panics if `threshold_m` is negative or not finite.
    pub fn new(threshold_m: f64) -> Self {
        assert!(
            threshold_m.is_finite() && threshold_m >= 0.0,
            "distance threshold must be finite and non-negative, got {threshold_m}"
        );
        DistanceScheme {
            threshold_m,
            min_distance: f64::INFINITY,
        }
    }

    /// The smallest distance to any heard transmitter so far.
    pub fn min_distance(&self) -> f64 {
        self.min_distance
    }

    /// Overwrites `d_min` when restoring from a world snapshot.
    pub(crate) fn restore_min_distance(&mut self, min_distance: f64) {
        self.min_distance = min_distance;
    }
}

impl RebroadcastPolicy for DistanceScheme {
    fn on_first_hear(&mut self, ctx: &HearContext<'_>) -> FirstDecision {
        self.min_distance = ctx.own_position.distance_to(ctx.sender_position);
        if self.min_distance < self.threshold_m {
            FirstDecision::Inhibit
        } else {
            FirstDecision::Schedule
        }
    }

    fn on_duplicate_hear(&mut self, ctx: &HearContext<'_>) -> DuplicateDecision {
        let d = ctx.own_position.distance_to(ctx.sender_position);
        self.min_distance = self.min_distance.min(d);
        if self.min_distance < self.threshold_m {
            DuplicateDecision::Cancel
        } else {
            DuplicateDecision::Keep
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::test_support::CtxFixture;
    use manet_geom::Vec2;

    #[test]
    fn close_first_sender_inhibits() {
        let fx = CtxFixture {
            sender_position: Vec2::new(50.0, 0.0),
            ..CtxFixture::default()
        };
        let mut p = DistanceScheme::new(100.0);
        assert_eq!(p.on_first_hear(&fx.ctx()), FirstDecision::Inhibit);
    }

    #[test]
    fn far_sender_schedules_then_close_duplicate_cancels() {
        let mut fx = CtxFixture {
            sender_position: Vec2::new(450.0, 0.0),
            ..CtxFixture::default()
        };
        let mut p = DistanceScheme::new(100.0);
        assert_eq!(p.on_first_hear(&fx.ctx()), FirstDecision::Schedule);
        assert!((p.min_distance() - 450.0).abs() < 1e-9);
        // A duplicate from far away keeps the rebroadcast alive…
        fx.sender_position = Vec2::new(0.0, 400.0);
        assert_eq!(p.on_duplicate_hear(&fx.ctx()), DuplicateDecision::Keep);
        // …but one from next door kills it.
        fx.sender_position = Vec2::new(30.0, 0.0);
        assert_eq!(p.on_duplicate_hear(&fx.ctx()), DuplicateDecision::Cancel);
        assert!((p.min_distance() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn zero_threshold_never_suppresses() {
        let fx = CtxFixture {
            sender_position: Vec2::ZERO, // co-located sender, d = 0
            ..CtxFixture::default()
        };
        let mut p = DistanceScheme::new(0.0);
        assert_eq!(p.on_first_hear(&fx.ctx()), FirstDecision::Schedule);
        assert_eq!(p.on_duplicate_hear(&fx.ctx()), DuplicateDecision::Keep);
    }
}
