//! The location-based scheme — fixed (from \[15\]) and adaptive (§3.2).
//!
//! Assumes each host knows its position (GPS) and that packets carry the
//! transmitter's position. The receiver computes the *additional coverage*
//! `ac` its own rebroadcast would provide — the part of its disk no heard
//! transmitter has covered — and suppresses once `ac` drops below the
//! threshold `A(n)`.
//!
//! The coverage estimate is maintained **incrementally**: on the first
//! copy the host materializes the grid sample points of its own disk and
//! deletes those the sender covers; every duplicate deletes more. The
//! surviving fraction is exactly the grid estimate of
//! [`CoverageGrid::additional_fraction`] but costs `O(points)` per
//! duplicate instead of `O(points × transmitters)`.

use manet_geom::Vec2;

use crate::policy::{DuplicateDecision, FirstDecision, HearContext, RebroadcastPolicy};
use crate::threshold::AreaThreshold;

/// Location-based suppression with threshold function `A(n)`.
///
/// With [`AreaThreshold::fixed`] this is the scheme of \[15\]; with
/// [`AreaThreshold::adaptive`] it is the paper's **adaptive location-based
/// scheme (AL)**.
#[derive(Debug, Clone)]
pub struct LocationScheme {
    threshold: AreaThreshold,
    /// Sample points of the host's own disk not yet covered by any heard
    /// transmitter. Empty until the first copy arrives.
    uncovered: Vec<Vec2>,
    /// Sample-point count of the full disk (the `πr²` denominator).
    total: usize,
}

impl LocationScheme {
    /// Creates the per-packet state for one host.
    pub fn new(threshold: AreaThreshold) -> Self {
        LocationScheme {
            threshold,
            // `Vec::new` reserves no heap; the set fills on first hear.
            // simlint: allow(hot-path-alloc) — per-packet policy state
            uncovered: Vec::new(),
            total: 0,
        }
    }

    /// The current additional-coverage estimate `ac` as a fraction of
    /// `πr²`. Defined once the first copy has been processed.
    pub fn additional_coverage(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            self.uncovered.len() as f64 / self.total as f64
        }
    }

    /// The surviving sample points and the full-disk denominator, for a
    /// world snapshot.
    pub(crate) fn coverage_parts(&self) -> (&[Vec2], usize) {
        (&self.uncovered, self.total)
    }

    /// Overwrites the coverage estimate when restoring from a world
    /// snapshot.
    pub(crate) fn restore_coverage(&mut self, uncovered: Vec<Vec2>, total: usize) {
        self.uncovered = uncovered;
        self.total = total;
    }

    /// Deletes the sample points covered by a transmitter at `pos`.
    fn subtract(&mut self, pos: Vec2, radius: f64) {
        let r2 = radius * radius;
        self.uncovered.retain(|p| p.distance_squared_to(pos) > r2);
    }
}

impl RebroadcastPolicy for LocationScheme {
    fn on_first_hear(&mut self, ctx: &HearContext<'_>) -> FirstDecision {
        // S1: materialize the disk, subtract the first sender, test ac.
        self.uncovered = ctx
            .coverage
            .sample_points(ctx.own_position, ctx.radio_radius);
        self.total = self.uncovered.len();
        self.subtract(ctx.sender_position, ctx.radio_radius);
        if self.additional_coverage() < self.threshold.threshold(ctx.neighbor_count) {
            FirstDecision::Inhibit
        } else {
            FirstDecision::Schedule
        }
    }

    fn on_duplicate_hear(&mut self, ctx: &HearContext<'_>) -> DuplicateDecision {
        // S4: update ac with the new sender, test against A(n) at the
        // *current* neighbor count.
        self.subtract(ctx.sender_position, ctx.radio_radius);
        if self.additional_coverage() < self.threshold.threshold(ctx.neighbor_count) {
            DuplicateDecision::Cancel
        } else {
            DuplicateDecision::Keep
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::test_support::CtxFixture;
    use manet_geom::additional_coverage_two;
    use std::f64::consts::PI;

    #[test]
    fn first_hear_matches_two_circle_form() {
        let fx = CtxFixture {
            sender_position: Vec2::new(400.0, 0.0),
            ..CtxFixture::default()
        };
        let mut p = LocationScheme::new(AreaThreshold::fixed(0.0134));
        assert_eq!(p.on_first_hear(&fx.ctx()), FirstDecision::Schedule);
        let exact = additional_coverage_two(400.0, 500.0) / (PI * 500.0 * 500.0);
        assert!(
            (p.additional_coverage() - exact).abs() < 0.01,
            "ac {} vs exact {exact}",
            p.additional_coverage()
        );
    }

    #[test]
    fn colocated_sender_inhibits_immediately() {
        let fx = CtxFixture {
            sender_position: Vec2::ZERO,
            ..CtxFixture::default()
        };
        let mut p = LocationScheme::new(AreaThreshold::fixed(0.0134));
        assert_eq!(p.on_first_hear(&fx.ctx()), FirstDecision::Inhibit);
        assert_eq!(p.additional_coverage(), 0.0);
    }

    #[test]
    fn duplicates_erode_coverage_until_cancel() {
        // Senders at distance 450 in three directions leave less and less.
        let mut fx = CtxFixture {
            sender_position: Vec2::new(450.0, 0.0),
            ..CtxFixture::default()
        };
        let mut p = LocationScheme::new(AreaThreshold::fixed(0.3));
        assert_eq!(p.on_first_hear(&fx.ctx()), FirstDecision::Schedule);
        let after_one = p.additional_coverage();
        fx.sender_position = Vec2::new(-450.0, 0.0);
        let d1 = p.on_duplicate_hear(&fx.ctx());
        let after_two = p.additional_coverage();
        assert!(after_two < after_one);
        if d1 == DuplicateDecision::Keep {
            fx.sender_position = Vec2::new(0.0, 450.0);
            let _ = p.on_duplicate_hear(&fx.ctx());
            fx.sender_position = Vec2::new(0.0, -450.0);
            assert_eq!(p.on_duplicate_hear(&fx.ctx()), DuplicateDecision::Cancel);
        }
    }

    #[test]
    fn adaptive_threshold_forces_rebroadcast_when_sparse() {
        // n <= n1 = 6: A(n) = 0, so even a nearly covered host schedules.
        let fx = CtxFixture {
            neighbor_count: 3,
            sender_position: Vec2::new(20.0, 0.0), // tiny ac
            ..CtxFixture::default()
        };
        let mut p = LocationScheme::new(AreaThreshold::paper_recommended());
        assert_eq!(p.on_first_hear(&fx.ctx()), FirstDecision::Schedule);
        // Only exactly-zero coverage can inhibit at A(n) = 0.
        assert!(p.additional_coverage() > 0.0);
    }

    #[test]
    fn adaptive_threshold_suppresses_when_dense() {
        // n >= n2 = 12: A(n) = 0.187; a sender at 250 m leaves ~39% > 0.187
        // (keep), but a second opposite sender drops it below.
        let mut fx = CtxFixture {
            neighbor_count: 15,
            sender_position: Vec2::new(250.0, 0.0),
            ..CtxFixture::default()
        };
        let mut p = LocationScheme::new(AreaThreshold::paper_recommended());
        assert_eq!(p.on_first_hear(&fx.ctx()), FirstDecision::Schedule);
        fx.sender_position = Vec2::new(-250.0, 0.0);
        assert_eq!(p.on_duplicate_hear(&fx.ctx()), DuplicateDecision::Cancel);
    }
}
