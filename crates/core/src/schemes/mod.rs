//! The broadcast schemes, and the [`SchemeSpec`] configuration type that
//! names them.

mod counter;
mod distance;
mod flooding;
mod location;
mod neighbor_coverage;
mod probabilistic;

pub use counter::CounterScheme;
pub use distance::DistanceScheme;
pub use flooding::Flooding;
pub use location::LocationScheme;
pub use neighbor_coverage::NeighborCoverageScheme;
pub use probabilistic::ProbabilisticScheme;

use crate::policy::{DuplicateDecision, FirstDecision, HearContext, RebroadcastPolicy};
use crate::threshold::{AreaThreshold, CounterThreshold};
use crate::trace::SuppressReason;

/// Which broadcast scheme a simulation runs, with its parameters.
///
/// `SchemeSpec` is the *configuration*; calling [`build`](Self::build)
/// creates the per-`(host, packet)` decision state.
///
/// # Examples
///
/// ```
/// use broadcast_core::{CounterThreshold, SchemeSpec};
///
/// let spec = SchemeSpec::AdaptiveCounter(CounterThreshold::paper_recommended());
/// assert_eq!(spec.label(), "AC");
/// assert!(!spec.needs_two_hop_hellos());
/// ```
#[derive(Debug, Clone)]
pub enum SchemeSpec {
    /// Blind flooding.
    Flooding,
    /// Counter-based with a fixed threshold `C` (from \[15\]).
    Counter(u32),
    /// The paper's adaptive counter-based scheme with threshold function
    /// `C(n)`.
    AdaptiveCounter(CounterThreshold),
    /// Distance-based with threshold `D` meters (from \[15\]).
    Distance(f64),
    /// Location-based with a fixed coverage threshold `A` (fraction of
    /// `πr²`, from \[15\]).
    Location(f64),
    /// The paper's adaptive location-based scheme with threshold function
    /// `A(n)`.
    AdaptiveLocation(AreaThreshold),
    /// The paper's neighbor-coverage scheme (two-hop HELLO knowledge).
    NeighborCoverage,
    /// Probabilistic (gossip) rebroadcasting with probability `P`
    /// (from \[15\]).
    Probabilistic(f64),
}

impl SchemeSpec {
    /// Creates the decision state for one packet at one host.
    pub fn build(&self) -> PacketPolicy {
        match self {
            SchemeSpec::Flooding => PacketPolicy::Flooding(Flooding),
            SchemeSpec::Counter(c) => {
                PacketPolicy::Counter(CounterScheme::new(CounterThreshold::fixed(*c)))
            }
            SchemeSpec::AdaptiveCounter(f) => PacketPolicy::Counter(CounterScheme::new(f.clone())),
            SchemeSpec::Distance(d) => PacketPolicy::Distance(DistanceScheme::new(*d)),
            SchemeSpec::Location(a) => {
                PacketPolicy::Location(LocationScheme::new(AreaThreshold::fixed(*a)))
            }
            SchemeSpec::AdaptiveLocation(f) => {
                PacketPolicy::Location(LocationScheme::new(f.clone()))
            }
            SchemeSpec::NeighborCoverage => {
                PacketPolicy::NeighborCoverage(NeighborCoverageScheme::new())
            }
            SchemeSpec::Probabilistic(p) => {
                PacketPolicy::Probabilistic(ProbabilisticScheme::new(*p))
            }
        }
    }

    /// Short label for tables and plots (`flooding`, `C=2`, `AC`,
    /// `A=0.0134`, `AL`, `NC`, …).
    pub fn label(&self) -> String {
        match self {
            SchemeSpec::Flooding => "flooding".to_string(),
            SchemeSpec::Counter(c) => format!("C={c}"),
            SchemeSpec::AdaptiveCounter(f) => f.label().to_string(),
            SchemeSpec::Distance(d) => format!("D={d}"),
            SchemeSpec::Location(a) => format!("A={a}"),
            SchemeSpec::AdaptiveLocation(f) => f.label().to_string(),
            SchemeSpec::NeighborCoverage => "NC".to_string(),
            SchemeSpec::Probabilistic(p) => format!("P={p}"),
        }
    }

    /// `true` when the scheme's decisions read the neighbor count `n`,
    /// i.e. neighbor discovery must run.
    pub fn needs_neighbor_count(&self) -> bool {
        matches!(
            self,
            SchemeSpec::AdaptiveCounter(_) | SchemeSpec::AdaptiveLocation(_)
        )
    }

    /// `true` when HELLOs must carry the sender's neighbor list (two-hop
    /// knowledge) — only the neighbor-coverage scheme needs this.
    pub fn needs_two_hop_hellos(&self) -> bool {
        matches!(self, SchemeSpec::NeighborCoverage)
    }

    /// Parses the CLI/campaign scheme syntax: `flooding`, `ac`, `al`,
    /// `nc`, `counter:C`, `distance:D`, `location:A`, or `prob:P`.
    ///
    /// This is the one shared grammar for every front end that names a
    /// scheme as a string — `manet-sim`, campaign job envelopes, service
    /// clients — so a job submitted over the wire selects exactly the
    /// scheme the CLI would.
    ///
    /// # Errors
    ///
    /// Returns a human-readable description of the first problem.
    ///
    /// # Examples
    ///
    /// ```
    /// use broadcast_core::SchemeSpec;
    ///
    /// assert_eq!(SchemeSpec::parse("counter:3").unwrap().label(), "C=3");
    /// assert_eq!(SchemeSpec::parse("ac").unwrap().label(), "AC");
    /// assert!(SchemeSpec::parse("bogus").is_err());
    /// ```
    pub fn parse(s: &str) -> Result<SchemeSpec, String> {
        if let Some((kind, arg)) = s.split_once(':') {
            return match kind {
                "counter" => arg
                    .parse::<u32>()
                    .map(SchemeSpec::Counter)
                    .map_err(|e| format!("bad counter threshold '{arg}': {e}")),
                "distance" => arg
                    .parse::<f64>()
                    .map(SchemeSpec::Distance)
                    .map_err(|e| format!("bad distance threshold '{arg}': {e}")),
                "location" => arg
                    .parse::<f64>()
                    .map(SchemeSpec::Location)
                    .map_err(|e| format!("bad coverage threshold '{arg}': {e}")),
                "prob" => arg
                    .parse::<f64>()
                    .ok()
                    .filter(|p| (0.0..=1.0).contains(p))
                    .map(SchemeSpec::Probabilistic)
                    .ok_or_else(|| format!("bad rebroadcast probability '{arg}' (want 0..=1)")),
                other => Err(format!("unknown parameterized scheme '{other}'")),
            };
        }
        match s {
            "flooding" => Ok(SchemeSpec::Flooding),
            "ac" => Ok(SchemeSpec::AdaptiveCounter(
                CounterThreshold::paper_recommended(),
            )),
            "al" => Ok(SchemeSpec::AdaptiveLocation(
                AreaThreshold::paper_recommended(),
            )),
            "nc" => Ok(SchemeSpec::NeighborCoverage),
            other => Err(format!(
                "unknown scheme '{other}' (try flooding, counter:2, ac, al, nc, prob:0.7)"
            )),
        }
    }

    /// `true` when the scheme relies on positions (GPS assumption).
    pub fn needs_positions(&self) -> bool {
        matches!(
            self,
            SchemeSpec::Distance(_) | SchemeSpec::Location(_) | SchemeSpec::AdaptiveLocation(_)
        )
    }
}

/// Per-packet decision state for whichever scheme is configured.
///
/// An enum rather than a boxed trait object: packets are created by the
/// hundreds of thousands in a full run, and static dispatch keeps the hot
/// path allocation-light.
#[derive(Debug)]
pub enum PacketPolicy {
    /// State for [`SchemeSpec::Flooding`].
    Flooding(Flooding),
    /// State for the fixed and adaptive counter-based schemes.
    Counter(CounterScheme),
    /// State for [`SchemeSpec::Distance`].
    Distance(DistanceScheme),
    /// State for the fixed and adaptive location-based schemes.
    Location(LocationScheme),
    /// State for [`SchemeSpec::NeighborCoverage`].
    NeighborCoverage(NeighborCoverageScheme),
    /// State for [`SchemeSpec::Probabilistic`].
    Probabilistic(ProbabilisticScheme),
}

impl PacketPolicy {
    /// The reason this policy gives when it suppresses a rebroadcast
    /// (S1 inhibit or S5 cancel). `None` for flooding, which never
    /// suppresses.
    ///
    /// Distance-based suppression reports
    /// [`SuppressReason::CoverageThreshold`]: the distance threshold is
    /// the paper's computation-cheap proxy for expected additional
    /// coverage.
    pub fn suppress_reason(&self) -> Option<SuppressReason> {
        match self {
            PacketPolicy::Flooding(_) => None,
            PacketPolicy::Counter(_) => Some(SuppressReason::CounterThreshold),
            PacketPolicy::Distance(_) | PacketPolicy::Location(_) => {
                Some(SuppressReason::CoverageThreshold)
            }
            PacketPolicy::NeighborCoverage(_) => Some(SuppressReason::NeighborCoverage),
            PacketPolicy::Probabilistic(_) => Some(SuppressReason::Probabilistic),
        }
    }
}

impl RebroadcastPolicy for PacketPolicy {
    fn on_first_hear(&mut self, ctx: &HearContext<'_>) -> FirstDecision {
        match self {
            PacketPolicy::Flooding(p) => p.on_first_hear(ctx),
            PacketPolicy::Counter(p) => p.on_first_hear(ctx),
            PacketPolicy::Distance(p) => p.on_first_hear(ctx),
            PacketPolicy::Location(p) => p.on_first_hear(ctx),
            PacketPolicy::NeighborCoverage(p) => p.on_first_hear(ctx),
            PacketPolicy::Probabilistic(p) => p.on_first_hear(ctx),
        }
    }

    fn on_duplicate_hear(&mut self, ctx: &HearContext<'_>) -> DuplicateDecision {
        match self {
            PacketPolicy::Flooding(p) => p.on_duplicate_hear(ctx),
            PacketPolicy::Counter(p) => p.on_duplicate_hear(ctx),
            PacketPolicy::Distance(p) => p.on_duplicate_hear(ctx),
            PacketPolicy::Location(p) => p.on_duplicate_hear(ctx),
            PacketPolicy::NeighborCoverage(p) => p.on_duplicate_hear(ctx),
            PacketPolicy::Probabilistic(p) => p.on_duplicate_hear(ctx),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::test_support::CtxFixture;

    #[test]
    fn labels_are_stable() {
        assert_eq!(SchemeSpec::Flooding.label(), "flooding");
        assert_eq!(SchemeSpec::Counter(2).label(), "C=2");
        assert_eq!(SchemeSpec::Location(0.0134).label(), "A=0.0134");
        assert_eq!(SchemeSpec::NeighborCoverage.label(), "NC");
        assert_eq!(
            SchemeSpec::AdaptiveLocation(AreaThreshold::adaptive(6, 12)).label(),
            "AL(6,12)"
        );
    }

    #[test]
    fn parse_covers_every_scheme_family() {
        assert_eq!(SchemeSpec::parse("flooding").unwrap().label(), "flooding");
        assert_eq!(SchemeSpec::parse("counter:4").unwrap().label(), "C=4");
        assert_eq!(SchemeSpec::parse("ac").unwrap().label(), "AC");
        assert_eq!(SchemeSpec::parse("distance:250").unwrap().label(), "D=250");
        assert_eq!(
            SchemeSpec::parse("location:0.0134").unwrap().label(),
            "A=0.0134"
        );
        assert_eq!(SchemeSpec::parse("al").unwrap().label(), "AL");
        assert_eq!(SchemeSpec::parse("nc").unwrap().label(), "NC");
        assert_eq!(SchemeSpec::parse("prob:0.7").unwrap().label(), "P=0.7");
        assert!(SchemeSpec::parse("bogus").is_err());
        assert!(SchemeSpec::parse("counter:x").is_err());
        assert!(SchemeSpec::parse("prob:1.5").is_err(), "probability range");
        assert!(SchemeSpec::parse("frob:1").is_err());
    }

    #[test]
    fn capability_flags() {
        assert!(
            SchemeSpec::AdaptiveCounter(CounterThreshold::paper_recommended())
                .needs_neighbor_count()
        );
        assert!(!SchemeSpec::Counter(2).needs_neighbor_count());
        assert!(SchemeSpec::NeighborCoverage.needs_two_hop_hellos());
        assert!(SchemeSpec::Location(0.1).needs_positions());
        assert!(!SchemeSpec::Flooding.needs_positions());
    }

    #[test]
    fn suppress_reasons_follow_the_scheme_family() {
        assert_eq!(SchemeSpec::Flooding.build().suppress_reason(), None);
        assert_eq!(
            SchemeSpec::Counter(2).build().suppress_reason(),
            Some(SuppressReason::CounterThreshold)
        );
        assert_eq!(
            SchemeSpec::Distance(40.0).build().suppress_reason(),
            Some(SuppressReason::CoverageThreshold)
        );
        assert_eq!(
            SchemeSpec::Location(0.0134).build().suppress_reason(),
            Some(SuppressReason::CoverageThreshold)
        );
        assert_eq!(
            SchemeSpec::NeighborCoverage.build().suppress_reason(),
            Some(SuppressReason::NeighborCoverage)
        );
        assert_eq!(
            SchemeSpec::Probabilistic(0.7).build().suppress_reason(),
            Some(SuppressReason::Probabilistic)
        );
    }

    #[test]
    fn build_produces_matching_state() {
        let fx = CtxFixture::default();
        for spec in [
            SchemeSpec::Flooding,
            SchemeSpec::Counter(3),
            SchemeSpec::AdaptiveCounter(CounterThreshold::paper_recommended()),
            SchemeSpec::Distance(40.0),
            SchemeSpec::Location(0.0134),
            SchemeSpec::AdaptiveLocation(AreaThreshold::paper_recommended()),
            SchemeSpec::NeighborCoverage,
            SchemeSpec::Probabilistic(0.7),
        ] {
            let mut policy = spec.build();
            // Every scheme yields *some* decision without panicking.
            let first = policy.on_first_hear(&fx.ctx());
            if first == FirstDecision::Schedule {
                let _ = policy.on_duplicate_hear(&fx.ctx());
            }
        }
    }
}
