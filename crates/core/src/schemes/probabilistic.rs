//! The probabilistic scheme from \[15\] — another fixed baseline.
//!
//! On first hearing a packet, rebroadcast with probability `P` (and stay
//! silent with probability `1 − P`); duplicates change nothing. `P = 1`
//! degenerates to flooding. Like the other fixed schemes it cannot adapt:
//! a `P` that saves well in dense networks strands hosts in sparse ones.
//!
//! Randomness is supplied by the simulation through
//! [`HearContext::random_unit`], keeping the policy itself a pure,
//! deterministic function of its inputs.

use crate::policy::{DuplicateDecision, FirstDecision, HearContext, RebroadcastPolicy};

/// Probabilistic (gossip) rebroadcasting with probability `p`.
#[derive(Debug, Clone)]
pub struct ProbabilisticScheme {
    p: f64,
}

impl ProbabilisticScheme {
    /// Creates the per-packet state with rebroadcast probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `p` is in `[0, 1]`.
    pub fn new(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        ProbabilisticScheme { p }
    }

    /// The configured rebroadcast probability.
    pub fn probability(&self) -> f64 {
        self.p
    }
}

impl RebroadcastPolicy for ProbabilisticScheme {
    fn on_first_hear(&mut self, ctx: &HearContext<'_>) -> FirstDecision {
        if ctx.random_unit < self.p {
            FirstDecision::Schedule
        } else {
            FirstDecision::Inhibit
        }
    }

    fn on_duplicate_hear(&mut self, _ctx: &HearContext<'_>) -> DuplicateDecision {
        DuplicateDecision::Keep
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::test_support::CtxFixture;

    #[test]
    #[allow(clippy::field_reassign_with_default)]
    fn decision_follows_the_supplied_sample() {
        let mut fx = CtxFixture::default();
        let mut p = ProbabilisticScheme::new(0.6);
        fx.random_unit = 0.59;
        assert_eq!(p.on_first_hear(&fx.ctx()), FirstDecision::Schedule);
        fx.random_unit = 0.61;
        assert_eq!(p.on_first_hear(&fx.ctx()), FirstDecision::Inhibit);
    }

    #[test]
    fn extremes_behave_like_flooding_and_silence() {
        let fx = CtxFixture {
            random_unit: 0.999_999,
            ..CtxFixture::default()
        };
        let mut always = ProbabilisticScheme::new(1.0);
        assert_eq!(always.on_first_hear(&fx.ctx()), FirstDecision::Schedule);
        let fx = CtxFixture {
            random_unit: 0.0,
            ..CtxFixture::default()
        };
        let mut never = ProbabilisticScheme::new(0.0);
        assert_eq!(never.on_first_hear(&fx.ctx()), FirstDecision::Inhibit);
    }

    #[test]
    fn duplicates_never_cancel() {
        let fx = CtxFixture {
            random_unit: 0.0,
            ..CtxFixture::default()
        };
        let mut p = ProbabilisticScheme::new(0.9);
        assert_eq!(p.on_first_hear(&fx.ctx()), FirstDecision::Schedule);
        for _ in 0..5 {
            assert_eq!(p.on_duplicate_hear(&fx.ctx()), DuplicateDecision::Keep);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_probability_panics() {
        let _ = ProbabilisticScheme::new(1.5);
    }
}
