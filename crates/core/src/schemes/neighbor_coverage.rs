//! The neighbor-coverage scheme (§3.3) — adaptivity without GPS.
//!
//! Host `x` keeps a set `T` of *pending* neighbors that, to its knowledge,
//! have not yet received the packet. On the first copy from `h`:
//! `T = N_x − N_{x,h} − {h}` (everything `h` covered is done). Every
//! further copy from some `h'` subtracts `N_{x,h'} ∪ {h'}`. The pending
//! rebroadcast survives only while `T` is non-empty.
//!
//! Accuracy depends on how fresh the HELLO-derived `N_x` / `N_{x,h}` sets
//! are — which is exactly the trade-off the paper's dynamic hello interval
//! addresses (§4.3).

use std::collections::BTreeSet;

use manet_phy::NodeId;

use crate::policy::{DuplicateDecision, FirstDecision, HearContext, RebroadcastPolicy};

/// Neighbor-coverage suppression.
#[derive(Debug, Clone, Default)]
pub struct NeighborCoverageScheme {
    /// The pending set `T`.
    pending: BTreeSet<NodeId>,
}

impl NeighborCoverageScheme {
    /// Creates the per-packet state for one host.
    pub fn new() -> Self {
        NeighborCoverageScheme::default()
    }

    /// The hosts still believed uncovered.
    pub fn pending(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.pending.iter().copied()
    }

    /// Overwrites the pending set `T` when restoring from a world
    /// snapshot.
    pub(crate) fn restore_pending(&mut self, pending: BTreeSet<NodeId>) {
        self.pending = pending;
    }

    fn subtract_sender(&mut self, ctx: &HearContext<'_>) {
        self.pending.remove(&ctx.sender);
        for covered in ctx.sender_neighbors {
            self.pending.remove(covered);
        }
    }
}

impl RebroadcastPolicy for NeighborCoverageScheme {
    fn on_first_hear(&mut self, ctx: &HearContext<'_>) -> FirstDecision {
        // S1: T = N_x − N_{x,h} − {h}. Building T is the scheme's own
        // bookkeeping, once per (host, packet) first hear.
        // simlint: allow(hot-path-alloc) — per-packet policy state
        self.pending = ctx.neighbors.iter().copied().collect();
        self.subtract_sender(ctx);
        if self.pending.is_empty() {
            FirstDecision::Inhibit
        } else {
            FirstDecision::Schedule
        }
    }

    fn on_duplicate_hear(&mut self, ctx: &HearContext<'_>) -> DuplicateDecision {
        // S4: T = T − N_{x,h'} − {h'}.
        self.subtract_sender(ctx);
        if self.pending.is_empty() {
            DuplicateDecision::Cancel
        } else {
            DuplicateDecision::Keep
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::test_support::CtxFixture;

    fn id(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn sender_covering_everyone_inhibits() {
        // x's neighbors {1, 2, h}; h claims neighbors {1, 2, x}: T empty.
        let fx = CtxFixture {
            sender: id(9),
            neighbors: vec![id(1), id(2), id(9)],
            sender_neighbors: vec![id(1), id(2), id(0)],
            ..CtxFixture::default()
        };
        let mut p = NeighborCoverageScheme::new();
        assert_eq!(p.on_first_hear(&fx.ctx()), FirstDecision::Inhibit);
    }

    #[test]
    fn uncovered_neighbor_keeps_rebroadcast_alive() {
        // Host 3 is x's neighbor but not h's: T = {3}.
        let fx = CtxFixture {
            sender: id(9),
            neighbors: vec![id(1), id(3), id(9)],
            sender_neighbors: vec![id(1)],
            ..CtxFixture::default()
        };
        let mut p = NeighborCoverageScheme::new();
        assert_eq!(p.on_first_hear(&fx.ctx()), FirstDecision::Schedule);
        assert_eq!(p.pending().collect::<Vec<_>>(), vec![id(3)]);
    }

    #[test]
    fn duplicates_whittle_down_pending_set() {
        let mut fx = CtxFixture {
            sender: id(9),
            neighbors: vec![id(1), id(2), id(3), id(9)],
            sender_neighbors: vec![id(1)],
            ..CtxFixture::default()
        };
        let mut p = NeighborCoverageScheme::new();
        assert_eq!(p.on_first_hear(&fx.ctx()), FirstDecision::Schedule); // T = {2, 3}
                                                                         // A duplicate from host 2 (whose neighbors include nobody new):
        fx.sender = id(2);
        fx.sender_neighbors = vec![];
        assert_eq!(p.on_duplicate_hear(&fx.ctx()), DuplicateDecision::Keep); // T = {3}
                                                                             // A duplicate whose sender covers host 3:
        fx.sender = id(7);
        fx.sender_neighbors = vec![id(3)];
        assert_eq!(p.on_duplicate_hear(&fx.ctx()), DuplicateDecision::Cancel);
    }

    #[test]
    fn isolated_host_inhibits() {
        // No neighbors at all: nothing to cover.
        let fx = CtxFixture {
            sender: id(9),
            neighbors: vec![id(9)],
            sender_neighbors: vec![],
            ..CtxFixture::default()
        };
        let mut p = NeighborCoverageScheme::new();
        assert_eq!(p.on_first_hear(&fx.ctx()), FirstDecision::Inhibit);
    }

    #[test]
    fn stale_knowledge_errs_toward_rebroadcasting() {
        // h actually covers host 2, but x's record of N_{x,h} is stale and
        // omits it: x rebroadcasts anyway (redundant but safe).
        let fx = CtxFixture {
            sender: id(9),
            neighbors: vec![id(2), id(9)],
            sender_neighbors: vec![], // stale: h's real neighbors unknown
            ..CtxFixture::default()
        };
        let mut p = NeighborCoverageScheme::new();
        assert_eq!(p.on_first_hear(&fx.ctx()), FirstDecision::Schedule);
    }
}
