//! Blind flooding — the baseline that *causes* the broadcast storm.

use crate::policy::{DuplicateDecision, FirstDecision, HearContext, RebroadcastPolicy};

/// Flooding: every host rebroadcasts every packet exactly once,
/// unconditionally (§2.2: "A host, on receiving a broadcast packet for the
/// first time, has the obligation to rebroadcast the packet").
///
/// Its `SRB` is 0 by construction; in dense networks its reachability
/// *drops* because of contention and collision — the storm.
#[derive(Debug, Clone, Copy, Default)]
pub struct Flooding;

impl RebroadcastPolicy for Flooding {
    fn on_first_hear(&mut self, _ctx: &HearContext<'_>) -> FirstDecision {
        FirstDecision::Schedule
    }

    fn on_duplicate_hear(&mut self, _ctx: &HearContext<'_>) -> DuplicateDecision {
        DuplicateDecision::Keep
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::test_support::CtxFixture;

    #[test]
    fn never_suppresses() {
        let fx = CtxFixture::default();
        let mut p = Flooding;
        assert_eq!(p.on_first_hear(&fx.ctx()), FirstDecision::Schedule);
        for _ in 0..20 {
            assert_eq!(p.on_duplicate_hear(&fx.ctx()), DuplicateDecision::Keep);
        }
    }
}
