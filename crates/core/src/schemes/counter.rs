//! The counter-based scheme — fixed (from \[15\]) and adaptive (§3.1).

use crate::policy::{DuplicateDecision, FirstDecision, HearContext, RebroadcastPolicy};
use crate::threshold::CounterThreshold;

/// Counter-based suppression: count how many times the same packet has
/// been heard; cancel the pending rebroadcast once the counter reaches the
/// threshold `C(n)`.
///
/// With a [`CounterThreshold::fixed`] threshold this is the scheme of
/// \[15\]; with an adaptive threshold function it is the paper's
/// **adaptive counter-based scheme (AC)** — the threshold is re-evaluated
/// against the host's *current* neighbor count at every duplicate, so a
/// host whose neighborhood changes mid-wait adapts on the fly.
#[derive(Debug, Clone)]
pub struct CounterScheme {
    threshold: CounterThreshold,
    /// Copies of the packet heard so far (the paper's `c`).
    count: u32,
}

impl CounterScheme {
    /// Creates the per-packet state for one host.
    pub fn new(threshold: CounterThreshold) -> Self {
        CounterScheme {
            threshold,
            count: 0,
        }
    }

    /// The current counter value `c`.
    pub fn count(&self) -> u32 {
        self.count
    }

    /// Overwrites the counter when restoring from a world snapshot.
    pub(crate) fn restore_count(&mut self, count: u32) {
        self.count = count;
    }
}

impl RebroadcastPolicy for CounterScheme {
    fn on_first_hear(&mut self, ctx: &HearContext<'_>) -> FirstDecision {
        // S1: c = 1. Thresholds are at least 2, so the first hearing never
        // inhibits by itself.
        self.count = 1;
        debug_assert!(self.threshold.threshold(ctx.neighbor_count) >= 2);
        FirstDecision::Schedule
    }

    fn on_duplicate_hear(&mut self, ctx: &HearContext<'_>) -> DuplicateDecision {
        // S4: c += 1; cancel unless c < C(n).
        self.count += 1;
        if self.count < self.threshold.threshold(ctx.neighbor_count) {
            DuplicateDecision::Keep
        } else {
            DuplicateDecision::Cancel
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::test_support::CtxFixture;

    #[test]
    fn fixed_threshold_cancels_at_c() {
        let fx = CtxFixture::default();
        let mut p = CounterScheme::new(CounterThreshold::fixed(3));
        assert_eq!(p.on_first_hear(&fx.ctx()), FirstDecision::Schedule);
        assert_eq!(p.count(), 1);
        // c = 2 < 3: keep. c = 3: cancel.
        assert_eq!(p.on_duplicate_hear(&fx.ctx()), DuplicateDecision::Keep);
        assert_eq!(p.on_duplicate_hear(&fx.ctx()), DuplicateDecision::Cancel);
        assert_eq!(p.count(), 3);
    }

    #[test]
    fn lowest_threshold_cancels_on_first_duplicate() {
        let fx = CtxFixture::default();
        let mut p = CounterScheme::new(CounterThreshold::fixed(2));
        p.on_first_hear(&fx.ctx());
        assert_eq!(p.on_duplicate_hear(&fx.ctx()), DuplicateDecision::Cancel);
    }

    #[test]
    fn adaptive_threshold_tracks_neighbor_count() {
        // With few neighbors AC tolerates many duplicates; with many it
        // cancels fast.
        let mut sparse = CtxFixture {
            neighbor_count: 2, // C(2) = 3
            ..CtxFixture::default()
        };
        let mut p = CounterScheme::new(CounterThreshold::paper_recommended());
        p.on_first_hear(&sparse.ctx());
        assert_eq!(p.on_duplicate_hear(&sparse.ctx()), DuplicateDecision::Keep);
        // The neighborhood becomes crowded mid-wait: C(20) = 2 <= c = 3.
        sparse.neighbor_count = 20;
        assert_eq!(
            p.on_duplicate_hear(&sparse.ctx()),
            DuplicateDecision::Cancel
        );
    }

    #[test]
    fn sparse_host_with_adaptive_threshold_persists() {
        // n = 1 -> C = 2? paper_recommended: C(1) = 2. n = 3 -> C(3) = 4:
        // survives two duplicates.
        let fx = CtxFixture {
            neighbor_count: 3,
            ..CtxFixture::default()
        };
        let mut p = CounterScheme::new(CounterThreshold::paper_recommended());
        p.on_first_hear(&fx.ctx());
        assert_eq!(p.on_duplicate_hear(&fx.ctx()), DuplicateDecision::Keep);
        assert_eq!(p.on_duplicate_hear(&fx.ctx()), DuplicateDecision::Keep);
        assert_eq!(p.on_duplicate_hear(&fx.ctx()), DuplicateDecision::Cancel);
    }
}
