//! Run observability: a hook interface the simulation calls at every
//! protocol-level event, with ready-made observers for counting and
//! recording.
//!
//! Attach an observer with [`World::run_observed`](crate::World::run_observed)
//! to see *why* a run produced its numbers — which hosts rebroadcast,
//! which decisions suppressed, where frames were lost — without changing
//! the simulation itself. Observers receive events strictly in simulation
//! order.
//!
//! # Examples
//!
//! ```
//! use broadcast_core::trace::TraceRecorder;
//! use broadcast_core::{SchemeSpec, SimConfig, World};
//!
//! let config = SimConfig::builder(3, SchemeSpec::Counter(2))
//!     .hosts(15)
//!     .broadcasts(2)
//!     .seed(9)
//!     .build();
//! let mut recorder = TraceRecorder::unbounded();
//! let report = World::new(config).run_observed(&mut recorder);
//! assert_eq!(recorder.events().len() > 0, report.data_frames > 0);
//! ```

use std::fmt;

use manet_phy::NodeId;
use manet_sim_engine::SimTime;

use crate::ids::PacketId;

/// What a transmitted frame carried.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// A copy of a broadcast packet.
    Broadcast(PacketId),
    /// A HELLO beacon.
    Hello,
}

/// A scheme-level decision about a pending rebroadcast.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecisionKind {
    /// S1 scheduled a rebroadcast (assessment delay started).
    Scheduled,
    /// S1 declined immediately.
    InhibitedOnFirstHear,
    /// S4/S5 cancelled the pending rebroadcast after a duplicate.
    Cancelled,
}

/// Why a scheme suppressed a rebroadcast (the S1-inhibit or S5-cancel
/// criterion that fired).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SuppressReason {
    /// Counter-based: the packet was heard `C(n)` or more times.
    CounterThreshold,
    /// Distance/location-based: expected additional coverage (or the
    /// distance proxy for it) fell below the threshold.
    CoverageThreshold,
    /// Neighbor-coverage: every known neighbor is already covered.
    NeighborCoverage,
    /// Gossip: the probabilistic draw declined.
    Probabilistic,
}

impl SuppressReason {
    /// A short machine-readable label (used as a metrics key suffix).
    pub fn label(&self) -> &'static str {
        match self {
            SuppressReason::CounterThreshold => "counter_threshold",
            SuppressReason::CoverageThreshold => "coverage_threshold",
            SuppressReason::NeighborCoverage => "neighbor_coverage",
            SuppressReason::Probabilistic => "probabilistic",
        }
    }
}

/// One protocol-level event.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceEvent {
    /// A broadcast request entered the network.
    BroadcastIssued {
        /// The new packet.
        packet: PacketId,
        /// The issuing host.
        source: NodeId,
        /// Hosts reachable from the source at this instant (`e`).
        reachable: u32,
        /// Simulation time.
        at: SimTime,
    },
    /// A frame went on the air.
    FrameStarted {
        /// The transmitting host.
        node: NodeId,
        /// What the frame carried.
        kind: FrameKind,
        /// Hosts in range at transmission start.
        listeners: u32,
        /// Simulation time.
        at: SimTime,
    },
    /// A frame left the air.
    FrameFinished {
        /// The transmitting host.
        node: NodeId,
        /// What the frame carried.
        kind: FrameKind,
        /// Listeners that decoded the frame.
        decoded: u32,
        /// Listeners that lost it to collisions/half-duplex/injected loss.
        lost: u32,
        /// Simulation time.
        at: SimTime,
    },
    /// A host heard a broadcast packet for the first time.
    FirstHeard {
        /// The hearing host.
        node: NodeId,
        /// The packet.
        packet: PacketId,
        /// Simulation time.
        at: SimTime,
    },
    /// A scheme decision was taken.
    Decision {
        /// The deciding host.
        node: NodeId,
        /// The packet the decision concerns.
        packet: PacketId,
        /// What was decided.
        kind: DecisionKind,
        /// Why a suppressing decision suppressed; `None` for
        /// [`DecisionKind::Scheduled`].
        reason: Option<SuppressReason>,
        /// Simulation time.
        at: SimTime,
    },
}

impl TraceEvent {
    /// The simulation time of the event.
    pub fn at(&self) -> SimTime {
        match self {
            TraceEvent::BroadcastIssued { at, .. }
            | TraceEvent::FrameStarted { at, .. }
            | TraceEvent::FrameFinished { at, .. }
            | TraceEvent::FirstHeard { at, .. }
            | TraceEvent::Decision { at, .. } => *at,
        }
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEvent::BroadcastIssued {
                packet,
                source,
                reachable,
                at,
            } => write!(f, "{at} {source} issues {packet} (e={reachable})"),
            TraceEvent::FrameStarted {
                node,
                kind,
                listeners,
                at,
            } => match kind {
                FrameKind::Broadcast(packet) => {
                    write!(f, "{at} {node} tx {packet} -> {listeners} listeners")
                }
                FrameKind::Hello => write!(f, "{at} {node} tx HELLO -> {listeners} listeners"),
            },
            TraceEvent::FrameFinished {
                node,
                kind,
                decoded,
                lost,
                at,
            } => match kind {
                FrameKind::Broadcast(packet) => write!(
                    f,
                    "{at} {node} done {packet}: {decoded} decoded, {lost} lost"
                ),
                FrameKind::Hello => {
                    write!(f, "{at} {node} done HELLO: {decoded} decoded, {lost} lost")
                }
            },
            TraceEvent::FirstHeard { node, packet, at } => {
                write!(f, "{at} {node} first hears {packet}")
            }
            TraceEvent::Decision {
                node,
                packet,
                kind,
                reason,
                at,
            } => {
                let verb = match kind {
                    DecisionKind::Scheduled => "schedules rebroadcast of",
                    DecisionKind::InhibitedOnFirstHear => "declines to rebroadcast",
                    DecisionKind::Cancelled => "cancels rebroadcast of",
                };
                write!(f, "{at} {node} {verb} {packet}")?;
                if let Some(reason) = reason {
                    write!(f, " ({})", reason.label())?;
                }
                Ok(())
            }
        }
    }
}

/// Receives every [`TraceEvent`] of a run, in simulation order.
///
/// All methods have empty defaults: implement only what you need.
pub trait SimObserver {
    /// Called for every event.
    fn event(&mut self, event: &TraceEvent) {
        let _ = event;
    }
}

/// The do-nothing observer used by [`World::run`](crate::World::run).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopObserver;

impl SimObserver for NoopObserver {}

/// Records events into memory, optionally bounded.
#[derive(Debug, Default)]
pub struct TraceRecorder {
    events: Vec<TraceEvent>,
    limit: Option<usize>,
    dropped: u64,
}

impl TraceRecorder {
    /// Records every event (memory grows with the run).
    pub fn unbounded() -> Self {
        TraceRecorder::default()
    }

    /// Records at most `limit` events; later events are counted but
    /// dropped.
    pub fn bounded(limit: usize) -> Self {
        TraceRecorder {
            events: Vec::new(),
            limit: Some(limit),
            dropped: 0,
        }
    }

    /// The recorded events.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Events that arrived after the bound was hit.
    pub fn dropped_count(&self) -> u64 {
        self.dropped
    }

    /// The recorded events for one broadcast, in order.
    pub fn packet_timeline(&self, packet: PacketId) -> Vec<TraceEvent> {
        self.events
            .iter()
            .filter(|e| match e {
                TraceEvent::BroadcastIssued { packet: p, .. }
                | TraceEvent::FirstHeard { packet: p, .. }
                | TraceEvent::Decision { packet: p, .. } => *p == packet,
                TraceEvent::FrameStarted {
                    kind: FrameKind::Broadcast(p),
                    ..
                }
                | TraceEvent::FrameFinished {
                    kind: FrameKind::Broadcast(p),
                    ..
                } => *p == packet,
                _ => false,
            })
            .copied()
            .collect()
    }

    /// Renders the whole trace as one line per event.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for event in &self.events {
            out.push_str(&event.to_string());
            out.push('\n');
        }
        out
    }
}

impl SimObserver for TraceRecorder {
    fn event(&mut self, event: &TraceEvent) {
        if self.limit.is_some_and(|l| self.events.len() >= l) {
            self.dropped += 1;
        } else {
            self.events.push(*event);
        }
    }
}

/// Tallies events by kind — cheap enough to attach to any run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EventCounters {
    /// Broadcasts issued.
    pub broadcasts: u64,
    /// Data frames transmitted.
    pub data_frames: u64,
    /// HELLO frames transmitted.
    pub hello_frames: u64,
    /// Successful frame deliveries.
    pub deliveries: u64,
    /// Lost frame deliveries.
    pub losses: u64,
    /// First-hear events.
    pub first_hears: u64,
    /// Rebroadcasts scheduled.
    pub scheduled: u64,
    /// Rebroadcasts never scheduled (S1 inhibit).
    pub inhibited: u64,
    /// Rebroadcasts cancelled after duplicates (S5).
    pub cancelled: u64,
    /// Suppressions (inhibits + cancels) by counter threshold.
    pub suppressed_counter: u64,
    /// Suppressions by coverage/distance threshold.
    pub suppressed_coverage: u64,
    /// Suppressions by neighbor-coverage early exit.
    pub suppressed_neighbor: u64,
    /// Suppressions by a declined gossip draw.
    pub suppressed_probabilistic: u64,
}

impl SimObserver for EventCounters {
    fn event(&mut self, event: &TraceEvent) {
        match event {
            TraceEvent::BroadcastIssued { .. } => self.broadcasts += 1,
            TraceEvent::FrameStarted { kind, .. } => match kind {
                FrameKind::Broadcast(_) => self.data_frames += 1,
                FrameKind::Hello => self.hello_frames += 1,
            },
            TraceEvent::FrameFinished { decoded, lost, .. } => {
                self.deliveries += u64::from(*decoded);
                self.losses += u64::from(*lost);
            }
            TraceEvent::FirstHeard { .. } => self.first_hears += 1,
            TraceEvent::Decision { kind, reason, .. } => {
                match kind {
                    DecisionKind::Scheduled => self.scheduled += 1,
                    DecisionKind::InhibitedOnFirstHear => self.inhibited += 1,
                    DecisionKind::Cancelled => self.cancelled += 1,
                }
                match reason {
                    Some(SuppressReason::CounterThreshold) => self.suppressed_counter += 1,
                    Some(SuppressReason::CoverageThreshold) => self.suppressed_coverage += 1,
                    Some(SuppressReason::NeighborCoverage) => self.suppressed_neighbor += 1,
                    Some(SuppressReason::Probabilistic) => self.suppressed_probabilistic += 1,
                    None => {}
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<TraceEvent> {
        let packet = PacketId::new(NodeId::new(0), 1);
        vec![
            TraceEvent::BroadcastIssued {
                packet,
                source: NodeId::new(0),
                reachable: 5,
                at: SimTime::from_millis(1),
            },
            TraceEvent::FrameStarted {
                node: NodeId::new(0),
                kind: FrameKind::Broadcast(packet),
                listeners: 3,
                at: SimTime::from_millis(2),
            },
            TraceEvent::FrameFinished {
                node: NodeId::new(0),
                kind: FrameKind::Broadcast(packet),
                decoded: 2,
                lost: 1,
                at: SimTime::from_millis(4),
            },
            TraceEvent::FirstHeard {
                node: NodeId::new(1),
                packet,
                at: SimTime::from_millis(4),
            },
            TraceEvent::Decision {
                node: NodeId::new(1),
                packet,
                kind: DecisionKind::Scheduled,
                reason: None,
                at: SimTime::from_millis(4),
            },
            TraceEvent::Decision {
                node: NodeId::new(2),
                packet,
                kind: DecisionKind::Cancelled,
                reason: Some(SuppressReason::CounterThreshold),
                at: SimTime::from_millis(5),
            },
            TraceEvent::FrameStarted {
                node: NodeId::new(2),
                kind: FrameKind::Hello,
                listeners: 4,
                at: SimTime::from_millis(5),
            },
        ]
    }

    #[test]
    fn recorder_keeps_order_and_timeline() {
        let mut recorder = TraceRecorder::unbounded();
        for event in sample_events() {
            recorder.event(&event);
        }
        assert_eq!(recorder.events().len(), 7);
        let timeline = recorder.packet_timeline(PacketId::new(NodeId::new(0), 1));
        assert_eq!(timeline.len(), 6, "hello not part of the packet timeline");
        assert!(timeline.windows(2).all(|w| w[0].at() <= w[1].at()));
    }

    #[test]
    fn bounded_recorder_drops_overflow() {
        let mut recorder = TraceRecorder::bounded(2);
        for event in sample_events() {
            recorder.event(&event);
        }
        assert_eq!(recorder.events().len(), 2);
        assert_eq!(recorder.dropped_count(), 5);
    }

    #[test]
    fn counters_tally_by_kind() {
        let mut counters = EventCounters::default();
        for event in sample_events() {
            counters.event(&event);
        }
        assert_eq!(counters.broadcasts, 1);
        assert_eq!(counters.data_frames, 1);
        assert_eq!(counters.hello_frames, 1);
        assert_eq!(counters.deliveries, 2);
        assert_eq!(counters.losses, 1);
        assert_eq!(counters.first_hears, 1);
        assert_eq!(counters.scheduled, 1);
        assert_eq!(counters.cancelled, 1);
        assert_eq!(counters.suppressed_counter, 1);
        assert_eq!(counters.suppressed_coverage, 0);
    }

    #[test]
    fn events_render_readably() {
        let rendered = sample_events()
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n");
        assert!(rendered.contains("h0 issues h0#1 (e=5)"));
        assert!(rendered.contains("h1 schedules rebroadcast of h0#1"));
        assert!(rendered.contains("h2 cancels rebroadcast of h0#1 (counter_threshold)"));
        assert!(rendered.contains("tx HELLO"));
    }
}
