//! Property test for the epoch-parallel safety horizon: across random
//! radio radii, strip counts, carrier-sense delays, and mobility speeds,
//! the horizon [`World::epoch_horizon`] reports must be a **strict lower
//! bound** on the earliest possible cross-strip influence — every event
//! strictly inside an epoch window `[t0, t0 + h)` happens before any
//! transmission begun at or after `t0` can touch another strip's MAC
//! state, and the strip geometry it relies on (one-hop reach confined to
//! adjacent strips) must hold for every sampled transmitter position.

use broadcast_core::{SchemeSpec, SimConfig, World};
use manet_phy::ShardMap;
use manet_sim_engine::{SimDuration, SimRng};

fn random_config(rng: &mut SimRng) -> SimConfig {
    let map_units = rng.gen_range_u32(1..13);
    let radius = rng.gen_range_f64(100.0..800.0);
    let shards = rng.gen_range_u32(1..17);
    let speed_kmh = rng.gen_range_f64(0.0..100.0);
    let cs_delay = SimDuration::from_nanos(rng.gen_u64_inclusive(0, 50_000));
    SimConfig::builder(map_units, SchemeSpec::Flooding)
        .hosts(4)
        .broadcasts(1)
        .radio_radius(radius)
        .shards(shards)
        .max_speed_kmh(speed_kmh)
        .cs_delay(cs_delay)
        .seed(1)
        .build()
}

#[test]
fn horizon_is_a_strict_lower_bound_on_cross_strip_influence() {
    let mut rng = SimRng::seed_from(0xE90C);
    let mut parallel_capable = 0u32;
    for _ in 0..500 {
        let config = random_config(&mut rng);
        let map = ShardMap::new(
            config.map().bounds().width(),
            config.radio_radius,
            config.shards,
        );
        let horizon = World::epoch_horizon(&config);

        // Degenerate partitions and instant carrier sensing admit no
        // epoch at all — the executor must refuse, not guess.
        if map.shards() == 1 || config.cs_delay.is_zero() {
            assert_eq!(horizon, None, "degenerate config got a horizon");
            continue;
        }
        let h = horizon.expect("parallel-capable config must have a horizon");
        parallel_capable += 1;
        assert!(!h.is_zero(), "zero-length epochs make no progress");

        // Physics: cross-strip influence needs a transmission, and a
        // transmission begun at `t` first touches any other MAC at
        // `t + cs_delay`. The epoch window is half-open, so every event
        // strictly inside `[t0, t0 + h)` precedes the earliest possible
        // influence `t0 + earliest` — the bound is strict.
        let earliest_influence = config.cs_delay;
        assert!(
            h <= earliest_influence,
            "horizon {h:?} overruns the earliest cross-strip influence {earliest_influence:?}"
        );

        // Geometry: the lockstep-window invariant. Every strip is at
        // least one radio radius wide, so any receiver within one hop of
        // a transmitter sits in the same or an adjacent strip.
        assert!(
            map.strip_width() >= config.radio_radius,
            "strip narrower than the radio radius"
        );
        let width = config.map().bounds().width();
        for _ in 0..32 {
            let tx = rng.gen_range_f64(0.0..width);
            let offset = rng.gen_range_f64(-config.radio_radius..config.radio_radius);
            let rx = (tx + offset).clamp(0.0, width);
            assert!(
                map.adjacent(map.shard_of_x(tx), map.shard_of_x(rx)),
                "one-hop receiver at {rx} escaped the adjacency of {tx}"
            );
        }

        // Mobility: hosts move microns per horizon, so motion during an
        // epoch cannot carry a host across the strip slack and invalidate
        // the adjacency argument above.
        let max_speed_mps = config.effective_max_speed_kmh() / 3.6;
        let drift = max_speed_mps * h.as_secs_f64();
        assert!(
            drift < config.radio_radius * 1e-3,
            "epoch-time drift {drift} m is not negligible vs radius"
        );
    }
    assert!(
        parallel_capable >= 100,
        "too few parallel-capable samples ({parallel_capable}) to mean anything"
    );
}
