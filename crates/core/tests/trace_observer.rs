//! End-to-end tests of the trace observer: counters must agree with the
//! run report, and packet timelines must be causally ordered.

use broadcast_core::trace::{DecisionKind, EventCounters, FrameKind, TraceEvent, TraceRecorder};
use broadcast_core::{CounterThreshold, SchemeSpec, SimConfig, World};
use manet_sim_engine::SimTime;

fn config(scheme: SchemeSpec) -> SimConfig {
    SimConfig::builder(3, scheme)
        .hosts(25)
        .broadcasts(8)
        .seed(77)
        .build()
}

#[test]
fn counters_agree_with_the_report() {
    let mut counters = EventCounters::default();
    let report = World::new(config(SchemeSpec::AdaptiveCounter(
        CounterThreshold::paper_recommended(),
    )))
    .run_observed(&mut counters);

    assert_eq!(counters.broadcasts, u64::from(report.broadcasts));
    assert_eq!(counters.data_frames, report.data_frames);
    assert_eq!(counters.hello_frames, report.hello_packets);
    assert_eq!(counters.losses, report.losses.total());
    assert_eq!(
        report.collisions,
        report.losses.overlap + report.losses.capture,
        "the paper-comparable collision figure is the contention share"
    );
    // Every scheduled rebroadcast either transmits or is cancelled; the
    // source frames are extra.
    assert!(counters.scheduled >= counters.cancelled);
    assert!(
        counters.data_frames <= counters.scheduled + counters.broadcasts,
        "every data frame is a source frame or a scheduled rebroadcast"
    );
}

#[test]
fn flooding_never_inhibits_or_cancels() {
    let mut counters = EventCounters::default();
    let _ = World::new(config(SchemeSpec::Flooding)).run_observed(&mut counters);
    assert_eq!(counters.inhibited, 0);
    assert_eq!(counters.cancelled, 0);
    assert_eq!(counters.scheduled, counters.first_hears);
}

#[test]
fn counter_scheme_cancels_in_dense_networks() {
    let mut counters = EventCounters::default();
    let _ = World::new(config(SchemeSpec::Counter(2))).run_observed(&mut counters);
    assert!(counters.cancelled > 0, "C=2 must cancel on a 3x3 map");
    assert_eq!(
        counters.inhibited, 0,
        "the counter scheme never inhibits on first hear"
    );
}

#[test]
fn report_suppression_and_profile_agree_with_the_observer() {
    let cfg = SimConfig::builder(3, SchemeSpec::Counter(2))
        .hosts(25)
        .broadcasts(8)
        .seed(77)
        .profile_events(true)
        .build();
    let mut counters = EventCounters::default();
    let report = World::new(cfg).run_observed(&mut counters);

    assert_eq!(report.suppression.scheduled, counters.scheduled);
    assert_eq!(report.suppression.inhibited_first_hear, counters.inhibited);
    assert_eq!(report.suppression.cancelled, counters.cancelled);
    assert_eq!(
        report.suppression.counter_threshold,
        counters.suppressed_counter
    );
    assert_eq!(
        report.suppression.counter_threshold
            + report.suppression.coverage_threshold
            + report.suppression.neighbor_coverage
            + report.suppression.probabilistic,
        report.suppression.inhibited_first_hear + report.suppression.cancelled,
        "every suppression carries its reason"
    );
    assert!(report.mac.backoff_draws > 0, "the run transmitted frames");
    assert!(report.mac.enqueued >= report.data_frames);

    let profile = report.profile.expect("profiling was enabled");
    assert!(profile.events > 0);
    assert!(
        profile.kinds.iter().any(|k| k.kind == "tx_end"),
        "wall time is attributed to event kinds"
    );
}

#[test]
fn profile_is_absent_by_default() {
    let report = World::new(config(SchemeSpec::Flooding)).run();
    assert!(report.profile.is_none());
}

#[test]
fn packet_timelines_are_causal() {
    let mut recorder = TraceRecorder::unbounded();
    let report = World::new(config(SchemeSpec::Counter(3))).run_observed(&mut recorder);

    for outcome in &report.per_broadcast {
        let timeline = recorder.packet_timeline(outcome.packet);
        assert!(!timeline.is_empty());
        // Issue comes first; times never decrease.
        assert!(matches!(timeline[0], TraceEvent::BroadcastIssued { .. }));
        let mut last = SimTime::ZERO;
        let mut first_heard = std::collections::BTreeSet::new();
        for event in &timeline {
            assert!(event.at() >= last);
            last = event.at();
            match event {
                TraceEvent::FirstHeard { node, .. } => {
                    assert!(first_heard.insert(*node), "{node} first-heard twice");
                }
                TraceEvent::Decision { node, kind, .. } => {
                    // A decision requires a prior first-hear at that host.
                    assert!(
                        first_heard.contains(node),
                        "decision {kind:?} at {node} before first hear"
                    );
                }
                _ => {}
            }
        }
        // The number of hosts that first-heard equals the receiver count.
        assert_eq!(first_heard.len() as u32, outcome.received);
    }
}

#[test]
fn bounded_recorder_survives_large_runs() {
    let mut recorder = TraceRecorder::bounded(100);
    let _ = World::new(config(SchemeSpec::Flooding)).run_observed(&mut recorder);
    assert_eq!(recorder.events().len(), 100);
    assert!(recorder.dropped_count() > 0);
}

#[test]
fn rendered_trace_mentions_every_broadcast() {
    let mut recorder = TraceRecorder::unbounded();
    let report = World::new(config(SchemeSpec::Counter(3))).run_observed(&mut recorder);
    let text = recorder.render();
    for outcome in &report.per_broadcast {
        assert!(
            text.contains(&outcome.packet.to_string()),
            "trace misses {}",
            outcome.packet
        );
    }
}

#[test]
fn hello_frames_appear_for_adaptive_schemes_only() {
    let mut counters = EventCounters::default();
    let _ = World::new(config(SchemeSpec::Counter(3))).run_observed(&mut counters);
    assert_eq!(counters.hello_frames, 0);

    let mut counters = EventCounters::default();
    let _ = World::new(config(SchemeSpec::NeighborCoverage)).run_observed(&mut counters);
    assert!(counters.hello_frames > 0);
}

#[test]
fn frame_kinds_partition_the_frames() {
    let mut recorder = TraceRecorder::unbounded();
    let report = World::new(config(SchemeSpec::AdaptiveCounter(
        CounterThreshold::paper_recommended(),
    )))
    .run_observed(&mut recorder);
    let (mut data, mut hello) = (0u64, 0u64);
    for event in recorder.events() {
        if let TraceEvent::FrameStarted { kind, .. } = event {
            match kind {
                FrameKind::Broadcast(_) => data += 1,
                FrameKind::Hello => hello += 1,
            }
        }
    }
    assert_eq!(data, report.data_frames);
    assert_eq!(hello, report.hello_packets);
}

#[test]
fn decision_kinds_match_scheme_semantics() {
    // Neighbor coverage inhibits on first hear (empty pending set) but the
    // counter scheme never does; both can cancel.
    let mut nc = EventCounters::default();
    let _ = World::new(config(SchemeSpec::NeighborCoverage)).run_observed(&mut nc);
    assert!(
        nc.inhibited > 0,
        "NC on a dense map should inhibit some hosts outright"
    );
    let _ = DecisionKind::Scheduled; // referenced for the doc story
}
