//! Property-based tests of the scheme decision state machines, driven as
//! pure functions over arbitrary duplicate sequences.

use broadcast_core::policy::{DuplicateDecision, FirstDecision, HearContext, RebroadcastPolicy};
use broadcast_core::{
    AreaThreshold, CounterScheme, CounterThreshold, DistanceScheme, LocationScheme,
    NeighborCoverageScheme, SchemeSpec,
};
use manet_geom::{CoverageGrid, Vec2};
use manet_phy::NodeId;
use manet_testkit::{prop_check, Gen};

/// Builds a context for a sender at polar position (rho, theta) with a
/// given neighbor count.
struct Fixture {
    coverage: CoverageGrid,
    neighbors: Vec<NodeId>,
    sender_neighbors: Vec<NodeId>,
}

impl Fixture {
    fn new() -> Self {
        Fixture {
            coverage: CoverageGrid::new(32),
            neighbors: Vec::new(),
            sender_neighbors: Vec::new(),
        }
    }

    fn ctx(&self, n: usize, sender: u32, rho: f64, theta: f64) -> HearContext<'_> {
        HearContext {
            neighbor_count: n,
            own_position: Vec2::ZERO,
            sender: NodeId::new(sender),
            sender_position: Vec2::from_angle(theta) * rho,
            neighbors: &self.neighbors,
            sender_neighbors: &self.sender_neighbors,
            coverage: &self.coverage,
            radio_radius: 500.0,
            random_unit: 0.5,
        }
    }
}

/// A random stream of duplicate arrivals: (sender id, rho, theta, n).
fn arrivals(g: &mut Gen) -> Vec<(u32, f64, f64, usize)> {
    g.vec(1..12, |g| {
        (
            g.u32_in(0..20),
            g.f64_in(0.0..500.0),
            g.f64_in(0.0..std::f64::consts::TAU),
            g.usize_in(0..20),
        )
    })
}

prop_check! {
    /// The counter scheme cancels exactly when the running count reaches
    /// the threshold evaluated at that moment.
    fn counter_cancels_exactly_at_threshold(g, cases = 64) {
        let seq = arrivals(g);
        let fx = Fixture::new();
        let threshold = CounterThreshold::paper_recommended();
        let mut policy = CounterScheme::new(threshold.clone());
        let first = &seq[0];
        assert_eq!(
            policy.on_first_hear(&fx.ctx(first.3, first.0, first.1, first.2)),
            FirstDecision::Schedule
        );
        let mut count = 1u32;
        for dup in &seq[1..] {
            let decision = policy.on_duplicate_hear(&fx.ctx(dup.3, dup.0, dup.1, dup.2));
            count += 1;
            let expected = if count < threshold.threshold(dup.3) {
                DuplicateDecision::Keep
            } else {
                DuplicateDecision::Cancel
            };
            assert_eq!(decision, expected);
            if decision == DuplicateDecision::Cancel {
                break;
            }
        }
    }

    /// The location scheme's coverage estimate never increases, and a
    /// Cancel decision implies it is below the threshold.
    fn location_coverage_is_monotone(g, cases = 64) {
        let seq = arrivals(g);
        let fx = Fixture::new();
        let threshold = AreaThreshold::fixed(0.05);
        let mut policy = LocationScheme::new(threshold);
        let first = &seq[0];
        let decision = policy.on_first_hear(&fx.ctx(first.3, first.0, first.1, first.2));
        if decision == FirstDecision::Inhibit {
            assert!(policy.additional_coverage() < 0.05);
            return;
        }
        let mut prev = policy.additional_coverage();
        for dup in &seq[1..] {
            let decision = policy.on_duplicate_hear(&fx.ctx(dup.3, dup.0, dup.1, dup.2));
            let ac = policy.additional_coverage();
            assert!(ac <= prev + 1e-12, "coverage grew: {prev} -> {ac}");
            prev = ac;
            match decision {
                DuplicateDecision::Cancel => {
                    assert!(ac < 0.05);
                    return;
                }
                DuplicateDecision::Keep => assert!(ac >= 0.05),
            }
        }
    }

    /// The distance scheme's minimum distance never increases and the
    /// decision matches the threshold test.
    fn distance_minimum_is_monotone(g, cases = 64) {
        let seq = arrivals(g);
        let threshold = g.f64_in(0.0..400.0);
        let fx = Fixture::new();
        let mut policy = DistanceScheme::new(threshold);
        let first = &seq[0];
        let decision = policy.on_first_hear(&fx.ctx(first.3, first.0, first.1, first.2));
        assert_eq!(
            decision == FirstDecision::Inhibit,
            policy.min_distance() < threshold
        );
        if decision == FirstDecision::Inhibit {
            return;
        }
        let mut prev = policy.min_distance();
        for dup in &seq[1..] {
            let decision = policy.on_duplicate_hear(&fx.ctx(dup.3, dup.0, dup.1, dup.2));
            let d = policy.min_distance();
            assert!(d <= prev + 1e-12);
            prev = d;
            assert_eq!(decision == DuplicateDecision::Cancel, d < threshold);
            if decision == DuplicateDecision::Cancel {
                return;
            }
        }
    }

    /// The neighbor-coverage pending set only shrinks, and cancellation
    /// happens exactly when it empties.
    fn neighbor_coverage_pending_shrinks(g, cases = 64) {
        let neighbors = g.u32_set(0..30, 1..10);
        let senders = g.vec(1..8, |g| (g.u32_in(0..30), g.u32_set(0..30, 0..6)));
        let mut fx = Fixture::new();
        fx.neighbors = neighbors.iter().map(|&i| NodeId::new(i)).collect();
        let mut policy = NeighborCoverageScheme::new();

        let (first_sender, first_known) = &senders[0];
        fx.sender_neighbors = first_known.iter().map(|&i| NodeId::new(i)).collect();
        let ctx = HearContext {
            neighbor_count: fx.neighbors.len(),
            own_position: Vec2::ZERO,
            sender: NodeId::new(*first_sender),
            sender_position: Vec2::new(100.0, 0.0),
            neighbors: &fx.neighbors,
            sender_neighbors: &fx.sender_neighbors,
            coverage: &fx.coverage,
            radio_radius: 500.0,
            random_unit: 0.5,
        };
        let decision = policy.on_first_hear(&ctx);
        let mut pending: Vec<NodeId> = policy.pending().collect();
        assert_eq!(decision == FirstDecision::Inhibit, pending.is_empty());
        if pending.is_empty() {
            return;
        }
        // Pending is a subset of the announced neighborhood minus covered.
        for p in &pending {
            assert!(fx.neighbors.contains(p));
            assert!(*p != NodeId::new(*first_sender));
            assert!(!fx.sender_neighbors.contains(p));
        }
        for (sender, known) in &senders[1..] {
            fx.sender_neighbors = known.iter().map(|&i| NodeId::new(i)).collect();
            let ctx = HearContext {
                neighbor_count: fx.neighbors.len(),
                own_position: Vec2::ZERO,
                sender: NodeId::new(*sender),
                sender_position: Vec2::new(100.0, 0.0),
                neighbors: &fx.neighbors,
                sender_neighbors: &fx.sender_neighbors,
                coverage: &fx.coverage,
                radio_radius: 500.0,
                random_unit: 0.5,
            };
            let decision = policy.on_duplicate_hear(&ctx);
            let next: Vec<NodeId> = policy.pending().collect();
            assert!(next.len() <= pending.len(), "pending set grew");
            assert!(next.iter().all(|p| pending.contains(p)));
            assert_eq!(decision == DuplicateDecision::Cancel, next.is_empty());
            pending = next;
            if pending.is_empty() {
                return;
            }
        }
    }

    /// Every scheme, built through SchemeSpec, survives an arbitrary
    /// arrival sequence without panicking and never un-cancels.
    fn all_schemes_are_total(g, cases = 64) {
        let seq = arrivals(g);
        let which = g.usize_in(0..7);
        let spec = match which {
            0 => SchemeSpec::Flooding,
            1 => SchemeSpec::Counter(3),
            2 => SchemeSpec::AdaptiveCounter(CounterThreshold::paper_recommended()),
            3 => SchemeSpec::Distance(80.0),
            4 => SchemeSpec::Location(0.0469),
            5 => SchemeSpec::AdaptiveLocation(AreaThreshold::paper_recommended()),
            _ => SchemeSpec::NeighborCoverage,
        };
        let mut fx = Fixture::new();
        fx.neighbors = (0..5).map(NodeId::new).collect();
        let mut policy = spec.build();
        let first = &seq[0];
        let decision = policy.on_first_hear(&fx.ctx(first.3, first.0, first.1, first.2));
        if decision == FirstDecision::Inhibit {
            return;
        }
        for dup in &seq[1..] {
            if policy.on_duplicate_hear(&fx.ctx(dup.3, dup.0, dup.1, dup.2))
                == DuplicateDecision::Cancel
            {
                break;
            }
        }
    }
}
