//! Property-based tests of the scheme decision state machines, driven as
//! pure functions over arbitrary duplicate sequences.

use broadcast_core::policy::{
    DuplicateDecision, FirstDecision, HearContext, RebroadcastPolicy,
};
use broadcast_core::{
    AreaThreshold, CounterScheme, CounterThreshold, DistanceScheme, LocationScheme,
    NeighborCoverageScheme, SchemeSpec,
};
use manet_geom::{CoverageGrid, Vec2};
use manet_phy::NodeId;
use proptest::prelude::*;

/// Builds a context for a sender at polar position (rho, theta) with a
/// given neighbor count.
struct Fixture {
    coverage: CoverageGrid,
    neighbors: Vec<NodeId>,
    sender_neighbors: Vec<NodeId>,
}

impl Fixture {
    fn new() -> Self {
        Fixture {
            coverage: CoverageGrid::new(32),
            neighbors: Vec::new(),
            sender_neighbors: Vec::new(),
        }
    }

    fn ctx(&self, n: usize, sender: u32, rho: f64, theta: f64) -> HearContext<'_> {
        HearContext {
            neighbor_count: n,
            own_position: Vec2::ZERO,
            sender: NodeId::new(sender),
            sender_position: Vec2::from_angle(theta) * rho,
            neighbors: &self.neighbors,
            sender_neighbors: &self.sender_neighbors,
            coverage: &self.coverage,
            radio_radius: 500.0,
            random_unit: 0.5,
        }
    }
}

/// A random stream of duplicate arrivals: (sender id, rho, theta, n).
fn arrivals() -> impl Strategy<Value = Vec<(u32, f64, f64, usize)>> {
    prop::collection::vec(
        (
            0u32..20,
            0.0f64..500.0,
            0.0f64..std::f64::consts::TAU,
            0usize..20,
        ),
        1..12,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The counter scheme cancels exactly when the running count reaches
    /// the threshold evaluated at that moment.
    #[test]
    fn counter_cancels_exactly_at_threshold(seq in arrivals()) {
        let fx = Fixture::new();
        let threshold = CounterThreshold::paper_recommended();
        let mut policy = CounterScheme::new(threshold.clone());
        let first = &seq[0];
        prop_assert_eq!(
            policy.on_first_hear(&fx.ctx(first.3, first.0, first.1, first.2)),
            FirstDecision::Schedule
        );
        let mut count = 1u32;
        for dup in &seq[1..] {
            let decision = policy.on_duplicate_hear(&fx.ctx(dup.3, dup.0, dup.1, dup.2));
            count += 1;
            let expected = if count < threshold.threshold(dup.3) {
                DuplicateDecision::Keep
            } else {
                DuplicateDecision::Cancel
            };
            prop_assert_eq!(decision, expected);
            if decision == DuplicateDecision::Cancel {
                break;
            }
        }
    }

    /// The location scheme's coverage estimate never increases, and a
    /// Cancel decision implies it is below the threshold.
    #[test]
    fn location_coverage_is_monotone(seq in arrivals()) {
        let fx = Fixture::new();
        let threshold = AreaThreshold::fixed(0.05);
        let mut policy = LocationScheme::new(threshold);
        let first = &seq[0];
        let decision = policy.on_first_hear(&fx.ctx(first.3, first.0, first.1, first.2));
        if decision == FirstDecision::Inhibit {
            prop_assert!(policy.additional_coverage() < 0.05);
            return Ok(());
        }
        let mut prev = policy.additional_coverage();
        for dup in &seq[1..] {
            let decision = policy.on_duplicate_hear(&fx.ctx(dup.3, dup.0, dup.1, dup.2));
            let ac = policy.additional_coverage();
            prop_assert!(ac <= prev + 1e-12, "coverage grew: {prev} -> {ac}");
            prev = ac;
            match decision {
                DuplicateDecision::Cancel => {
                    prop_assert!(ac < 0.05);
                    return Ok(());
                }
                DuplicateDecision::Keep => prop_assert!(ac >= 0.05),
            }
        }
    }

    /// The distance scheme's minimum distance never increases and the
    /// decision matches the threshold test.
    #[test]
    fn distance_minimum_is_monotone(seq in arrivals(), threshold in 0.0f64..400.0) {
        let fx = Fixture::new();
        let mut policy = DistanceScheme::new(threshold);
        let first = &seq[0];
        let decision = policy.on_first_hear(&fx.ctx(first.3, first.0, first.1, first.2));
        prop_assert_eq!(
            decision == FirstDecision::Inhibit,
            policy.min_distance() < threshold
        );
        if decision == FirstDecision::Inhibit {
            return Ok(());
        }
        let mut prev = policy.min_distance();
        for dup in &seq[1..] {
            let decision = policy.on_duplicate_hear(&fx.ctx(dup.3, dup.0, dup.1, dup.2));
            let d = policy.min_distance();
            prop_assert!(d <= prev + 1e-12);
            prev = d;
            prop_assert_eq!(decision == DuplicateDecision::Cancel, d < threshold);
            if decision == DuplicateDecision::Cancel {
                return Ok(());
            }
        }
    }

    /// The neighbor-coverage pending set only shrinks, and cancellation
    /// happens exactly when it empties.
    #[test]
    fn neighbor_coverage_pending_shrinks(
        neighbors in prop::collection::btree_set(0u32..30, 1..10),
        senders in prop::collection::vec(
            (0u32..30, prop::collection::btree_set(0u32..30, 0..6)),
            1..8,
        ),
    ) {
        let mut fx = Fixture::new();
        fx.neighbors = neighbors.iter().map(|&i| NodeId::new(i)).collect();
        let mut policy = NeighborCoverageScheme::new();

        let (first_sender, first_known) = &senders[0];
        fx.sender_neighbors = first_known.iter().map(|&i| NodeId::new(i)).collect();
        let ctx = HearContext {
            neighbor_count: fx.neighbors.len(),
            own_position: Vec2::ZERO,
            sender: NodeId::new(*first_sender),
            sender_position: Vec2::new(100.0, 0.0),
            neighbors: &fx.neighbors,
            sender_neighbors: &fx.sender_neighbors,
            coverage: &fx.coverage,
            radio_radius: 500.0,
            random_unit: 0.5,
        };
        let decision = policy.on_first_hear(&ctx);
        let mut pending: Vec<NodeId> = policy.pending().collect();
        prop_assert_eq!(decision == FirstDecision::Inhibit, pending.is_empty());
        if pending.is_empty() {
            return Ok(());
        }
        // Pending is a subset of the announced neighborhood minus covered.
        for p in &pending {
            prop_assert!(fx.neighbors.contains(p));
            prop_assert!(*p != NodeId::new(*first_sender));
            prop_assert!(!fx.sender_neighbors.contains(p));
        }
        for (sender, known) in &senders[1..] {
            fx.sender_neighbors = known.iter().map(|&i| NodeId::new(i)).collect();
            let ctx = HearContext {
                neighbor_count: fx.neighbors.len(),
                own_position: Vec2::ZERO,
                sender: NodeId::new(*sender),
                sender_position: Vec2::new(100.0, 0.0),
                neighbors: &fx.neighbors,
                sender_neighbors: &fx.sender_neighbors,
                coverage: &fx.coverage,
                radio_radius: 500.0,
                random_unit: 0.5,
            };
            let decision = policy.on_duplicate_hear(&ctx);
            let next: Vec<NodeId> = policy.pending().collect();
            prop_assert!(next.len() <= pending.len(), "pending set grew");
            prop_assert!(next.iter().all(|p| pending.contains(p)));
            prop_assert_eq!(decision == DuplicateDecision::Cancel, next.is_empty());
            pending = next;
            if pending.is_empty() {
                return Ok(());
            }
        }
    }

    /// Every scheme, built through SchemeSpec, survives an arbitrary
    /// arrival sequence without panicking and never un-cancels.
    #[test]
    fn all_schemes_are_total(seq in arrivals(), which in 0usize..7) {
        let spec = match which {
            0 => SchemeSpec::Flooding,
            1 => SchemeSpec::Counter(3),
            2 => SchemeSpec::AdaptiveCounter(CounterThreshold::paper_recommended()),
            3 => SchemeSpec::Distance(80.0),
            4 => SchemeSpec::Location(0.0469),
            5 => SchemeSpec::AdaptiveLocation(AreaThreshold::paper_recommended()),
            _ => SchemeSpec::NeighborCoverage,
        };
        let mut fx = Fixture::new();
        fx.neighbors = (0..5).map(NodeId::new).collect();
        let mut policy = spec.build();
        let first = &seq[0];
        let decision = policy.on_first_hear(&fx.ctx(first.3, first.0, first.1, first.2));
        if decision == FirstDecision::Inhibit {
            return Ok(());
        }
        for dup in &seq[1..] {
            if policy.on_duplicate_hear(&fx.ctx(dup.3, dup.0, dup.1, dup.2))
                == DuplicateDecision::Cancel
            {
                break;
            }
        }
    }
}
