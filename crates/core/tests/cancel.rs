//! Cooperative cancellation: a cancelled token abandons the run at a
//! pause boundary; an untouched token changes nothing about the result.

use broadcast_core::trace::NoopObserver;
use broadcast_core::{CancelToken, SchemeSpec, SimConfig, World};
use manet_sim_engine::SimDuration;

fn config(seed: u64) -> SimConfig {
    SimConfig::builder(3, SchemeSpec::Counter(3))
        .hosts(30)
        .broadcasts(10)
        .seed(seed)
        .build()
}

#[test]
fn uncancelled_run_matches_plain_run() {
    let plain = World::new(config(7)).run();
    let token = CancelToken::new();
    let report = World::new(config(7))
        .run_cancellable(&token, SimDuration::from_millis(100), &mut NoopObserver)
        .expect("token was never cancelled");
    assert_eq!(report.reachability, plain.reachability);
    assert_eq!(report.data_frames, plain.data_frames);
    assert_eq!(report.collisions, plain.collisions);
}

#[test]
fn pre_cancelled_token_abandons_immediately() {
    let token = CancelToken::new();
    token.cancel();
    let outcome = World::new(config(7)).run_cancellable(
        &token,
        SimDuration::from_millis(100),
        &mut NoopObserver,
    );
    assert!(outcome.is_none(), "cancelled before the first slice");
}

#[test]
fn zero_slice_falls_back_to_a_sane_default() {
    let token = CancelToken::new();
    let report = World::new(config(9))
        .run_cancellable(&token, SimDuration::ZERO, &mut NoopObserver)
        .expect("not cancelled");
    assert!(report.sim_seconds > 0.0);
}
