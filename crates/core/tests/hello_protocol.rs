//! Integration tests of HELLO beaconing as observed through whole-run
//! statistics: beacon rates for fixed and dynamic intervals, and when
//! beaconing runs at all.

use broadcast_core::{CounterThreshold, NeighborInfo, PlacementSpec, SchemeSpec, SimConfig, World};
use manet_net::{DynamicHelloParams, HelloIntervalPolicy};
use manet_sim_engine::SimDuration;

fn ac() -> SchemeSpec {
    SchemeSpec::AdaptiveCounter(CounterThreshold::paper_recommended())
}

#[test]
fn fixed_interval_beacons_at_the_configured_rate() {
    // 30 hosts beaconing every second for a ~40 s run: expect roughly
    // hosts × seconds hellos (±15% for jitter and edge effects).
    let config = SimConfig::builder(3, ac())
        .hosts(30)
        .broadcasts(30)
        .max_interarrival(SimDuration::from_secs(1))
        .neighbor_info(NeighborInfo::Hello(HelloIntervalPolicy::Fixed(
            SimDuration::from_secs(1),
        )))
        .seed(5)
        .build();
    let report = World::new(config).run();
    let expected = 30.0 * report.sim_seconds;
    let actual = report.hello_packets as f64;
    assert!(
        (actual - expected).abs() / expected < 0.15,
        "expected ~{expected:.0} hellos, saw {actual}"
    );
}

#[test]
fn slower_interval_means_proportionally_fewer_hellos() {
    let run = |secs: u64| {
        let config = SimConfig::builder(3, ac())
            .hosts(30)
            .broadcasts(30)
            .neighbor_info(NeighborInfo::Hello(HelloIntervalPolicy::Fixed(
                SimDuration::from_secs(secs),
            )))
            .seed(5)
            .build();
        let report = World::new(config).run();
        report.hello_packets as f64 / report.sim_seconds
    };
    let fast = run(1);
    let slow = run(5);
    let ratio = fast / slow;
    assert!(
        (3.5..=6.5).contains(&ratio),
        "1 s vs 5 s beacon rate ratio should be ~5, got {ratio:.2}"
    );
}

#[test]
fn schemes_without_neighbor_needs_send_no_hellos() {
    // Fixed-threshold schemes take no neighborhood input, so the hello
    // machinery must stay off even when a hello policy is configured.
    for scheme in [
        SchemeSpec::Flooding,
        SchemeSpec::Counter(3),
        SchemeSpec::Location(0.0469),
        SchemeSpec::Distance(100.0),
    ] {
        let config = SimConfig::builder(3, scheme)
            .hosts(20)
            .broadcasts(5)
            .seed(5)
            .build();
        let report = World::new(config).run();
        assert_eq!(
            report.hello_packets, 0,
            "{} should not beacon",
            report.scheme
        );
    }
}

#[test]
fn dynamic_interval_beacons_slowly_in_a_static_network() {
    // A stationary grid never churns, so every host should settle at
    // hi_max = 10 s: rate well below the 1 Hz of the fixed-1s policy.
    let config = SimConfig::builder(3, SchemeSpec::NeighborCoverage)
        .hosts(30)
        .broadcasts(20)
        .placement(PlacementSpec::Grid)
        .max_speed_kmh(0.0)
        .neighbor_info(NeighborInfo::Hello(HelloIntervalPolicy::Dynamic(
            DynamicHelloParams::paper(),
        )))
        .warmup(SimDuration::from_secs(20))
        .seed(5)
        .build();
    let report = World::new(config).run();
    let rate = report.hello_packets as f64 / (30.0 * report.sim_seconds);
    assert!(
        rate < 0.4,
        "static network should settle near hi_max (0.1 Hz), got {rate:.3} Hz"
    );
}

#[test]
fn dynamic_interval_beacons_fast_under_churn() {
    // A sparse fast map churns constantly: hosts should beacon several
    // times faster than the static case.
    let config = SimConfig::builder(9, SchemeSpec::NeighborCoverage)
        .broadcasts(20)
        .max_speed_kmh(80.0)
        .neighbor_info(NeighborInfo::Hello(HelloIntervalPolicy::Dynamic(
            DynamicHelloParams::paper(),
        )))
        .warmup(SimDuration::from_secs(20))
        .seed(5)
        .build();
    let report = World::new(config).run();
    let rate = report.hello_packets as f64 / (100.0 * report.sim_seconds);
    assert!(
        rate > 0.3,
        "churning network should beacon much faster than hi_max, got {rate:.3} Hz"
    );
}

#[test]
fn hello_traffic_does_not_change_data_frame_accounting() {
    // HELLO frames and broadcast frames are counted separately.
    let config = SimConfig::builder(3, ac())
        .hosts(25)
        .broadcasts(10)
        .seed(6)
        .build();
    let report = World::new(config).run();
    assert!(report.hello_packets > 0);
    assert!(report.data_frames >= 10);
    // Every data frame belongs to one of the ten broadcasts; with 25
    // hosts, at most 10 × 25 transmissions are possible.
    assert!(report.data_frames <= 250);
}
