//! Epoch-parallel equivalence: `--parallel-epochs` trades the sharded
//! substrate's byte-identity for a verified weaker contract — the same
//! *decisions* and the same *counts*, reached through a differently
//! interleaved event stream. This suite pins that contract for every
//! scheme and under churn, at genuinely different strip counts:
//!
//! * zero tolerance on every count: suppression tallies, data frames,
//!   HELLO traffic, per-broadcast received/rebroadcast/reachable sets,
//!   and the RE/SRB ratios derived from them;
//! * bounded tolerance on latency percentiles (tie reordering across
//!   strips may shift individual decisions within a contention window);
//! * the run's own `MTRC` action trace must replay through the pure
//!   models and re-derive its decision stream exactly.

use broadcast_core::trace::NoopObserver;
use broadcast_core::{
    replay_decisions, AreaThreshold, ChurnKind, CounterThreshold, Scenario, SchemeSpec, SimConfig,
    SimReport, World,
};
use manet_sim_engine::SimTime;

/// Latency percentiles may shift by tie reordering, but never by more
/// than a couple of contention windows.
const LATENCY_TOLERANCE_S: f64 = 0.002;

fn all_schemes() -> Vec<SchemeSpec> {
    vec![
        SchemeSpec::Flooding,
        SchemeSpec::Counter(3),
        SchemeSpec::AdaptiveCounter(CounterThreshold::paper_recommended()),
        SchemeSpec::Distance(250.0),
        SchemeSpec::Location(0.0134),
        SchemeSpec::AdaptiveLocation(AreaThreshold::paper_recommended()),
        SchemeSpec::NeighborCoverage,
    ]
}

/// A 10×10 map supports ten one-radius strips, so 4 and 8 requested
/// shards are both genuinely parallel partitions (no clamping).
fn config(scheme: SchemeSpec, shards: u32, parallel: bool) -> SimConfig {
    SimConfig::builder(10, scheme)
        .hosts(80)
        .broadcasts(10)
        .seed(7)
        .shards(shards)
        .parallel_epochs(parallel)
        .build()
}

/// Runs to completion, asserting that parallel configs actually executed
/// epochs (and sequential ones did not).
fn run(config: SimConfig) -> SimReport {
    let parallel = config.parallel_epochs;
    let mut world = World::new(config);
    assert!(world.advance_until(SimTime::MAX, &mut NoopObserver));
    if parallel {
        assert!(world.epochs_run() > 0, "parallel run executed no epochs");
    } else {
        assert_eq!(world.epochs_run(), 0, "sequential run executed epochs");
    }
    world.into_report()
}

fn assert_equivalent(sequential: &SimReport, parallel: &SimReport, label: &str) {
    assert_eq!(
        sequential.suppression, parallel.suppression,
        "{label}: suppression tallies diverged"
    );
    assert_eq!(
        sequential.data_frames, parallel.data_frames,
        "{label}: data frame counts diverged"
    );
    assert_eq!(
        sequential.hello_packets, parallel.hello_packets,
        "{label}: HELLO counts diverged"
    );
    assert_eq!(
        sequential.net, parallel.net,
        "{label}: net activity diverged"
    );
    assert_eq!(
        sequential.scenario, parallel.scenario,
        "{label}: scenario counts diverged"
    );
    assert_eq!(
        sequential.per_broadcast.len(),
        parallel.per_broadcast.len(),
        "{label}: broadcast counts diverged"
    );
    for (s, p) in sequential.per_broadcast.iter().zip(&parallel.per_broadcast) {
        assert_eq!(s.packet, p.packet, "{label}: broadcast order diverged");
        assert_eq!(
            (s.reachable, s.received, s.rebroadcast),
            (p.reachable, p.received, p.rebroadcast),
            "{label}: delivery counts diverged for {:?}",
            s.packet
        );
        // Ratios are derived from the integer counts just checked, so
        // they must be exactly equal — not merely close.
        assert_eq!(s.reachability, p.reachability, "{label}: RE diverged");
        assert_eq!(
            s.saved_rebroadcasts, p.saved_rebroadcasts,
            "{label}: SRB diverged"
        );
    }
    let (seq_lat, par_lat) = (sequential.latency_summary(), parallel.latency_summary());
    for (name, s, p) in [
        ("p50", seq_lat.p50_s, par_lat.p50_s),
        ("p95", seq_lat.p95_s, par_lat.p95_s),
        ("max", seq_lat.max_s, par_lat.max_s),
    ] {
        assert!(
            (s - p).abs() <= LATENCY_TOLERANCE_S,
            "{label}: latency {name} diverged beyond tolerance: {s} vs {p}"
        );
    }
}

#[test]
fn every_scheme_is_equivalent_at_4_and_8_shards() {
    for scheme in all_schemes() {
        let sequential = run(config(scheme.clone(), 1, false));
        for shards in [4u32, 8] {
            let parallel = run(config(scheme.clone(), shards, true));
            assert_equivalent(
                &sequential,
                &parallel,
                &format!("{} @ {shards} shards", scheme.label()),
            );
        }
    }
}

/// Counter scheme under the full fault script: churn, blackout, noise,
/// and a partition, all crossing epoch boundaries.
fn churn_config(shards: u32, parallel: bool) -> SimConfig {
    let scenario = Scenario::new("epoch-churn")
        .with_hosts(80)
        .churn(SimTime::from_secs(1), ChurnKind::Leave, 3)
        .churn(SimTime::from_secs(2), ChurnKind::Crash, 11)
        .churn(SimTime::from_secs(4), ChurnKind::Join, 3)
        .churn(SimTime::from_secs(6), ChurnKind::Recover, 11)
        .blackout(SimTime::from_secs(2), SimTime::from_secs(8), 5, 9)
        .noise(SimTime::from_secs(3), SimTime::from_secs(9), 0.2)
        .partition(
            SimTime::from_secs(4),
            SimTime::from_secs(10),
            broadcast_core::Region {
                x0: 0.0,
                y0: 0.0,
                x1: 2_500.0,
                y1: 2_500.0,
            },
        );
    SimConfig::builder(10, SchemeSpec::Counter(3))
        .hosts(80)
        .broadcasts(15)
        .scenario(scenario)
        .seed(9)
        .shards(shards)
        .parallel_epochs(parallel)
        .build()
}

#[test]
fn churn_scenario_is_equivalent_at_4_and_8_shards() {
    let sequential = run(churn_config(1, false));
    for shards in [4u32, 8] {
        let parallel = run(churn_config(shards, true));
        assert_equivalent(&sequential, &parallel, &format!("churn @ {shards} shards"));
    }
}

/// A parallel-epochs churn run's action trace must replay through the
/// pure models and re-derive exactly the decision stream the live run
/// tallied — the equivalence contract's strongest check.
#[test]
fn parallel_churn_trace_replays_exactly() {
    let mut world = World::new(churn_config(8, true));
    world.enable_recording();
    assert!(world.advance_until(SimTime::MAX, &mut NoopObserver));
    assert!(world.epochs_run() > 0);
    let trace = world.take_trace().expect("recording was armed");
    let report = world.into_report();
    let summary = replay_decisions(&trace).expect("parallel trace replays");
    assert!(summary.actions > 0);
    assert_eq!(
        summary.decisions,
        report.suppression.scheduled
            + report.suppression.inhibited_first_hear
            + report.suppression.cancelled,
        "replayed decision count != live decision count"
    );
}

/// `--parallel-epochs` quietly falls back to the sequential executor
/// when the partition degenerates to one strip or carrier sensing is
/// instantaneous — and the fallback is byte-identical, not merely
/// equivalent.
#[test]
fn degenerate_configs_fall_back_to_sequential() {
    let baseline = format!("{:?}", run(config(SchemeSpec::Counter(3), 1, false)));

    // One strip: nothing to parallelize.
    let mut single = World::new(config(SchemeSpec::Counter(3), 1, true));
    assert!(single.advance_until(SimTime::MAX, &mut NoopObserver));
    assert_eq!(single.epochs_run(), 0);
    assert_eq!(baseline, format!("{:?}", single.into_report()));

    // Zero cs_delay: the safety horizon collapses, so the flag is
    // ignored (compare against the sequential run of the same config).
    let zero_cs = |parallel: bool| {
        SimConfig::builder(10, SchemeSpec::Counter(3))
            .hosts(80)
            .broadcasts(10)
            .seed(7)
            .shards(8)
            .cs_delay(manet_sim_engine::SimDuration::ZERO)
            .parallel_epochs(parallel)
            .build()
    };
    assert!(World::epoch_horizon(&zero_cs(true)).is_none());
    let mut world = World::new(zero_cs(true));
    assert!(world.advance_until(SimTime::MAX, &mut NoopObserver));
    assert_eq!(world.epochs_run(), 0);
    assert_eq!(
        format!("{:?}", World::new(zero_cs(false)).run()),
        format!("{:?}", world.into_report())
    );
}
