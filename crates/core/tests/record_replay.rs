//! Action-level record/replay: a live run's `MTRC` trace must replay
//! through the pure models alone (no queue, no medium, no RNG) and
//! re-derive the identical decision stream; recording must not perturb
//! the run; and the trace's decision tallies must equal the live
//! suppression counters.

use broadcast_core::trace::{DecisionKind, NoopObserver, SuppressReason};
use broadcast_core::{
    replay_decisions, ChurnKind, CounterThreshold, Scenario, SchemeSpec, SimConfig, SimReport,
    SuppressionCounts, TraceFile, TraceRecord, World,
};
use manet_sim_engine::SimTime;

fn config(scheme: SchemeSpec, seed: u64) -> SimConfig {
    SimConfig::builder(3, scheme)
        .hosts(40)
        .broadcasts(15)
        .seed(seed)
        .build()
}

fn all_schemes() -> Vec<SchemeSpec> {
    vec![
        SchemeSpec::Flooding,
        SchemeSpec::Counter(3),
        SchemeSpec::AdaptiveCounter(CounterThreshold::paper_recommended()),
        SchemeSpec::Distance(40.0),
        SchemeSpec::Location(0.4),
        SchemeSpec::AdaptiveLocation(broadcast_core::AreaThreshold::paper_recommended()),
        SchemeSpec::NeighborCoverage,
        SchemeSpec::Probabilistic(0.6),
    ]
}

/// Runs `config` with recording armed; returns the trace and the report.
fn record_run(config: SimConfig) -> (Vec<u8>, SimReport) {
    let mut world = World::new(config);
    world.enable_recording();
    world.advance_until(SimTime::MAX, &mut NoopObserver);
    let trace = world.take_trace().expect("recording was armed");
    (trace, world.into_report())
}

#[test]
fn every_scheme_replays_through_pure_models() {
    for scheme in all_schemes() {
        let (trace, report) = record_run(config(scheme.clone(), 11));
        let summary = replay_decisions(&trace)
            .unwrap_or_else(|e| panic!("replay failed for {scheme:?}: {e}"));
        assert!(summary.actions > 0, "{scheme:?} recorded no actions");
        assert_eq!(
            summary.decisions,
            report.suppression.scheduled
                + report.suppression.inhibited_first_hear
                + report.suppression.cancelled,
            "{scheme:?}: replayed decision count != live decision count",
        );
    }
}

#[test]
fn recording_does_not_perturb_the_run() {
    for scheme in [
        SchemeSpec::AdaptiveCounter(CounterThreshold::paper_recommended()),
        SchemeSpec::NeighborCoverage,
    ] {
        let silent = World::new(config(scheme.clone(), 5)).run();
        let (_, recorded) = record_run(config(scheme.clone(), 5));
        assert_eq!(
            format!("{silent:?}"),
            format!("{recorded:?}"),
            "{scheme:?}: recording changed the run",
        );
    }
}

#[test]
fn traces_are_byte_deterministic() {
    let (a, _) = record_run(config(SchemeSpec::Counter(3), 17));
    let (b, _) = record_run(config(SchemeSpec::Counter(3), 17));
    assert_eq!(a, b);
}

/// The decision stream in the trace, tallied the same way the live
/// metrics tally effects, must reproduce the report's suppression
/// counters exactly — live accounting and the recording channel cannot
/// drift apart.
#[test]
fn trace_decision_tallies_match_live_suppression_counts() {
    for scheme in all_schemes() {
        let (trace, report) = record_run(config(scheme.clone(), 23));
        let file = TraceFile::decode(&trace).expect("trace decodes");
        let mut replayed = SuppressionCounts::default();
        for record in &file.records {
            let TraceRecord::Decision(d) = record else {
                continue;
            };
            match d.kind {
                DecisionKind::Scheduled => replayed.scheduled += 1,
                DecisionKind::InhibitedOnFirstHear => replayed.inhibited_first_hear += 1,
                DecisionKind::Cancelled => replayed.cancelled += 1,
            }
            match d.reason {
                None => {}
                Some(SuppressReason::CounterThreshold) => replayed.counter_threshold += 1,
                Some(SuppressReason::CoverageThreshold) => replayed.coverage_threshold += 1,
                Some(SuppressReason::NeighborCoverage) => replayed.neighbor_coverage += 1,
                Some(SuppressReason::Probabilistic) => replayed.probabilistic += 1,
            }
        }
        assert_eq!(
            replayed, report.suppression,
            "{scheme:?}: trace tallies diverge from live counters",
        );
    }
}

/// Churn exercises the remaining action kinds (neighbor expiry on leave,
/// counter retirement on crash); the trace must still replay cleanly.
#[test]
fn churn_scenario_trace_replays() {
    let scenario = Scenario::new("record-churn")
        .with_hosts(40)
        .churn(SimTime::from_secs(1), ChurnKind::Leave, 3)
        .churn(SimTime::from_secs(2), ChurnKind::Crash, 11)
        .churn(SimTime::from_secs(4), ChurnKind::Join, 3)
        .churn(SimTime::from_secs(6), ChurnKind::Recover, 11)
        .noise(SimTime::from_secs(3), SimTime::from_secs(8), 0.2);
    let config = SimConfig::builder(3, SchemeSpec::NeighborCoverage)
        .hosts(40)
        .broadcasts(15)
        .scenario(scenario)
        .seed(29)
        .build();
    let (trace, report) = record_run(config);
    let summary = replay_decisions(&trace).expect("churn trace replays");
    assert!(summary.actions > 0);
    assert_eq!(
        summary.decisions,
        report.suppression.scheduled
            + report.suppression.inhibited_first_hear
            + report.suppression.cancelled,
    );
}

/// A tampered trace must be rejected, not replay quietly: truncation is
/// a wire error, and a forged trailing decision (one the pure models
/// never derived) is a replay mismatch.
#[test]
fn corrupted_traces_are_rejected() {
    let (trace, _) = record_run(config(SchemeSpec::Counter(3), 31));

    let truncated = &trace[..trace.len() - 3];
    assert!(
        replay_decisions(truncated).is_err(),
        "truncated trace replayed cleanly",
    );

    // Forge a Cancelled decision for a packet nobody decided about:
    // tag=1, time u64, node u32, packet (source u32, seq u32), kind u8,
    // reason u8 — all little-endian, matching the writer.
    let mut forged = trace.clone();
    forged.push(1);
    forged.extend_from_slice(&1_000_000u64.to_le_bytes());
    forged.extend_from_slice(&0u32.to_le_bytes());
    forged.extend_from_slice(&0u32.to_le_bytes());
    forged.extend_from_slice(&9_999u32.to_le_bytes());
    forged.push(2);
    forged.push(0);
    assert!(
        replay_decisions(&forged).is_err(),
        "forged decision replayed cleanly",
    );
}
