//! Checkpoint/resume correctness: a world paused mid-run, snapshotted to
//! bytes, and resumed in a fresh process image must finish **bit-identically**
//! to the same world never having paused. The Debug rendering of
//! [`SimReport`] covers every field (per-broadcast outcomes, MAC and loss
//! counters, suppression tallies, scenario counts), so string equality is
//! full-report equality.

use broadcast_core::trace::NoopObserver;
use broadcast_core::{
    ChurnKind, CounterThreshold, NeighborInfo, Scenario, SchemeSpec, SimConfig, SimReport, World,
};
use manet_sim_engine::SimTime;

/// Adaptive counter: exercises HELLOs, neighbor tables, and variation
/// trackers alongside the per-packet counter state.
fn adaptive_config(seed: u64) -> SimConfig {
    SimConfig::builder(
        3,
        SchemeSpec::AdaptiveCounter(CounterThreshold::paper_recommended()),
    )
    .hosts(40)
    .broadcasts(15)
    .seed(seed)
    .build()
}

/// Neighbor coverage: exercises two-hop HELLO payloads and pending sets.
fn coverage_config(seed: u64) -> SimConfig {
    SimConfig::builder(3, SchemeSpec::NeighborCoverage)
        .hosts(40)
        .broadcasts(15)
        .seed(seed)
        .build()
}

/// Counter scheme under a fault script covering every scenario feature:
/// leave/join, crash/recover, a blackout, a noise window, a partition.
fn churn_config(seed: u64) -> SimConfig {
    let scenario = Scenario::new("snapshot-churn")
        .with_hosts(40)
        .churn(SimTime::from_secs(1), ChurnKind::Leave, 3)
        .churn(SimTime::from_secs(2), ChurnKind::Crash, 11)
        .churn(SimTime::from_secs(4), ChurnKind::Join, 3)
        .churn(SimTime::from_secs(6), ChurnKind::Recover, 11)
        .blackout(SimTime::from_secs(2), SimTime::from_secs(8), 5, 9)
        .noise(SimTime::from_secs(3), SimTime::from_secs(9), 0.2)
        .partition(
            SimTime::from_secs(4),
            SimTime::from_secs(10),
            broadcast_core::Region {
                x0: 0.0,
                y0: 0.0,
                x1: 700.0,
                y1: 700.0,
            },
        );
    SimConfig::builder(3, SchemeSpec::Counter(3))
        .hosts(40)
        .broadcasts(15)
        .scenario(scenario)
        .seed(seed)
        .build()
}

/// Runs `config` uninterrupted, then again with a pause + snapshot +
/// resume at `pause`, asserting identical reports.
fn assert_roundtrip(make: impl Fn() -> SimConfig, pause: SimTime) {
    let baseline: SimReport = World::new(make()).run();

    let mut world = World::new(make());
    world.advance_until(pause, &mut NoopObserver);
    let bytes = world.snapshot();
    drop(world); // the resumed world must not share anything with it

    let resumed = World::resume(make(), &bytes).expect("snapshot resumes");
    let report = resumed.run();
    assert_eq!(
        format!("{baseline:?}"),
        format!("{report:?}"),
        "resume at {pause} diverged from the uninterrupted run",
    );
}

#[test]
fn adaptive_counter_roundtrip_is_bit_identical() {
    for secs in [1, 5, 20] {
        assert_roundtrip(|| adaptive_config(7), SimTime::from_secs(secs));
    }
}

#[test]
fn neighbor_coverage_roundtrip_is_bit_identical() {
    for secs in [2, 9] {
        assert_roundtrip(|| coverage_config(21), SimTime::from_secs(secs));
    }
}

#[test]
fn churn_scenario_roundtrip_is_bit_identical() {
    // Pause times straddle the scripted faults: mid-blackout, mid-noise,
    // and after everything healed.
    for secs in [3, 7, 12] {
        assert_roundtrip(|| churn_config(9), SimTime::from_secs(secs));
    }
}

#[test]
fn oracle_mode_roundtrip_is_bit_identical() {
    let make = || {
        SimConfig::builder(
            3,
            SchemeSpec::AdaptiveCounter(CounterThreshold::paper_recommended()),
        )
        .hosts(30)
        .broadcasts(10)
        .neighbor_info(NeighborInfo::Oracle)
        .seed(4)
        .build()
    };
    assert_roundtrip(make, SimTime::from_secs(4));
}

/// Snapshotting is a pure function of world state: re-snapshotting a
/// just-resumed world reproduces the byte stream exactly.
#[test]
fn snapshot_of_resumed_world_is_byte_identical() {
    let mut world = World::new(churn_config(9));
    world.advance_until(SimTime::from_secs(5), &mut NoopObserver);
    let bytes = world.snapshot();
    let resumed = World::resume(churn_config(9), &bytes).expect("snapshot resumes");
    assert_eq!(bytes, resumed.snapshot());
}

#[test]
fn resume_rejects_a_different_config() {
    let mut world = World::new(adaptive_config(7));
    world.advance_until(SimTime::from_secs(2), &mut NoopObserver);
    let bytes = world.snapshot();
    let err = World::resume(adaptive_config(8), &bytes).expect_err("seed differs");
    assert!(err.to_string().contains("different config"), "{err}");
}

#[test]
fn resume_rejects_truncated_bytes() {
    let mut world = World::new(adaptive_config(7));
    world.advance_until(SimTime::from_secs(2), &mut NoopObserver);
    let bytes = world.snapshot();
    for cut in [0, 4, bytes.len() / 2, bytes.len() - 1] {
        assert!(
            World::resume(adaptive_config(7), &bytes[..cut]).is_err(),
            "accepted a snapshot truncated to {cut} bytes",
        );
    }
}

/// A finished world snapshots and resumes too (the trivial fixpoint).
#[test]
fn finished_world_roundtrips() {
    let mut world = World::new(adaptive_config(7));
    world.advance_until(SimTime::MAX, &mut NoopObserver);
    let bytes = world.snapshot();
    let baseline = world.into_report();
    let resumed = World::resume(adaptive_config(7), &bytes).expect("snapshot resumes");
    let report = resumed.run();
    assert_eq!(format!("{baseline:?}"), format!("{report:?}"));
}
