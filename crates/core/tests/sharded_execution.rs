//! Sharded-execution equivalence: running a world with `--shards N` must
//! be **bit-identical** to the sequential run — same reports, same
//! snapshot bytes — for every scheme, under churn, and across
//! checkpoint/resume at *different* shard counts. The Debug rendering of
//! [`SimReport`] covers every field, so string equality is full-report
//! equality.
//!
//! Also pins the `advance_until` pause boundary: a pause time equal to a
//! queued event's timestamp stops **strictly before** that event fires.

use broadcast_core::trace::NoopObserver;
use broadcast_core::{
    AreaThreshold, ChurnKind, CounterThreshold, NeighborInfo, Scenario, SchemeSpec, SimConfig,
    World,
};
use manet_sim_engine::{SimDuration, SimTime};

/// Every scheme the paper evaluates, with its usual parameters.
fn all_schemes() -> Vec<SchemeSpec> {
    vec![
        SchemeSpec::Flooding,
        SchemeSpec::Counter(3),
        SchemeSpec::AdaptiveCounter(CounterThreshold::paper_recommended()),
        SchemeSpec::Distance(250.0),
        SchemeSpec::Location(0.0134),
        SchemeSpec::AdaptiveLocation(AreaThreshold::paper_recommended()),
        SchemeSpec::NeighborCoverage,
    ]
}

fn config(scheme: SchemeSpec, shards: u32) -> SimConfig {
    SimConfig::builder(3, scheme)
        .hosts(40)
        .broadcasts(10)
        .seed(7)
        .shards(shards)
        .build()
}

fn report_string(config: SimConfig) -> String {
    format!("{:?}", World::new(config).run())
}

#[test]
fn every_scheme_is_bit_identical_across_shard_counts() {
    for scheme in all_schemes() {
        let sequential = report_string(config(scheme.clone(), 1));
        // 4 requested on the 3x3 map clamps to 3 strips (one radio radius
        // each) — still a genuinely sharded run.
        let sharded = report_string(config(scheme.clone(), 4));
        assert_eq!(
            sequential,
            sharded,
            "scheme {} diverged at 4 shards",
            scheme.label()
        );
    }
}

#[test]
fn oracle_neighbor_info_is_bit_identical_across_shard_counts() {
    // The oracle path answers neighbor queries from live geometry, so it
    // exercises the strip-lazy range scan on both the transmit and the
    // assessment side.
    let make = |shards: u32| {
        SimConfig::builder(
            3,
            SchemeSpec::AdaptiveCounter(CounterThreshold::paper_recommended()),
        )
        .hosts(40)
        .broadcasts(12)
        .neighbor_info(NeighborInfo::Oracle)
        .seed(11)
        .shards(shards)
        .build()
    };
    assert_eq!(report_string(make(1)), report_string(make(4)));
}

/// Counter scheme under a fault script covering every scenario feature.
fn churn_config(shards: u32) -> SimConfig {
    let scenario = Scenario::new("sharded-churn")
        .with_hosts(40)
        .churn(SimTime::from_secs(1), ChurnKind::Leave, 3)
        .churn(SimTime::from_secs(2), ChurnKind::Crash, 11)
        .churn(SimTime::from_secs(4), ChurnKind::Join, 3)
        .churn(SimTime::from_secs(6), ChurnKind::Recover, 11)
        .blackout(SimTime::from_secs(2), SimTime::from_secs(8), 5, 9)
        .noise(SimTime::from_secs(3), SimTime::from_secs(9), 0.2)
        .partition(
            SimTime::from_secs(4),
            SimTime::from_secs(10),
            broadcast_core::Region {
                x0: 0.0,
                y0: 0.0,
                x1: 700.0,
                y1: 700.0,
            },
        );
    SimConfig::builder(3, SchemeSpec::Counter(3))
        .hosts(40)
        .broadcasts(15)
        .scenario(scenario)
        .seed(9)
        .shards(shards)
        .build()
}

#[test]
fn churn_scenario_is_bit_identical_across_shard_counts() {
    assert_eq!(
        report_string(churn_config(1)),
        report_string(churn_config(4))
    );
}

#[test]
fn snapshot_bytes_are_shard_count_agnostic() {
    // The snapshot merges the shard queues back into one global stream,
    // so the byte image must not depend on the shard count at all.
    let mut sequential = World::new(churn_config(1));
    let mut sharded = World::new(churn_config(4));
    sequential.advance_until(SimTime::from_secs(5), &mut NoopObserver);
    sharded.advance_until(SimTime::from_secs(5), &mut NoopObserver);
    assert_eq!(sequential.snapshot(), sharded.snapshot());
}

#[test]
fn snapshot_resumes_across_shard_counts() {
    let baseline = report_string(churn_config(1));
    for (snap_shards, resume_shards) in [(4u32, 1u32), (1, 4)] {
        let mut world = World::new(churn_config(snap_shards));
        world.advance_until(SimTime::from_secs(5), &mut NoopObserver);
        let bytes = world.snapshot();
        drop(world);
        let resumed = World::resume(churn_config(resume_shards), &bytes).expect("snapshot resumes");
        assert_eq!(
            baseline,
            format!("{:?}", resumed.run()),
            "snapshot at {snap_shards} shards diverged resuming at {resume_shards}"
        );
    }
}

/// `advance_until(t)` pauses **strictly before** any event queued at
/// exactly `t`. The scenario schedules a churn action at exactly 1 s, so
/// pausing at 1 s and pausing one nanosecond earlier must leave the world
/// in the same state — and resuming from either checkpoint must finish
/// bit-identically to the uninterrupted run.
#[test]
fn pause_exactly_at_event_time_excludes_the_event() {
    let exactly = SimTime::from_secs(1);
    let just_before = exactly - SimDuration::from_nanos(1);

    let mut at_event = World::new(churn_config(1));
    assert!(
        !at_event.advance_until(exactly, &mut NoopObserver),
        "run must pause, not finish"
    );
    let mut before_event = World::new(churn_config(1));
    assert!(!before_event.advance_until(just_before, &mut NoopObserver));
    assert_eq!(
        at_event.snapshot(),
        before_event.snapshot(),
        "the 1 s churn action leaked into a pause at exactly 1 s"
    );

    let baseline = report_string(churn_config(1));
    let resumed = World::resume(churn_config(1), &at_event.snapshot()).expect("snapshot resumes");
    assert_eq!(baseline, format!("{:?}", resumed.run()));
}
