//! Property-based invariants of whole simulation runs: for arbitrary
//! small configurations, the reported metrics must be internally
//! consistent and runs must be reproducible.

use broadcast_core::{
    AreaThreshold, CounterThreshold, NeighborInfo, SchemeSpec, SimConfig, World,
};
use manet_net::HelloIntervalPolicy;
use manet_sim_engine::SimDuration;
use proptest::prelude::*;

fn scheme_strategy() -> impl Strategy<Value = SchemeSpec> {
    prop_oneof![
        Just(SchemeSpec::Flooding),
        (2u32..8).prop_map(SchemeSpec::Counter),
        Just(SchemeSpec::AdaptiveCounter(
            CounterThreshold::paper_recommended()
        )),
        (0.0f64..0.3).prop_map(SchemeSpec::Location),
        Just(SchemeSpec::AdaptiveLocation(
            AreaThreshold::paper_recommended()
        )),
        Just(SchemeSpec::NeighborCoverage),
        (0.0f64..200.0).prop_map(SchemeSpec::Distance),
    ]
}

proptest! {
    // Whole-simulation cases are costly; a couple dozen random configs
    // per run is plenty on top of the deterministic integration tests.
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Metrics are well-formed for arbitrary configurations.
    #[test]
    fn reports_are_internally_consistent(
        scheme in scheme_strategy(),
        map_units in 1u32..8,
        hosts in 8u32..35,
        seed in any::<u64>(),
        oracle in any::<bool>(),
    ) {
        let info = if oracle {
            NeighborInfo::Oracle
        } else {
            NeighborInfo::Hello(HelloIntervalPolicy::fixed_1s())
        };
        let config = SimConfig::builder(map_units, scheme)
            .hosts(hosts)
            .broadcasts(4)
            .neighbor_info(info)
            .warmup(SimDuration::from_secs(2))
            .seed(seed)
            .build();
        let report = World::new(config).run();

        prop_assert_eq!(report.broadcasts, 4);
        prop_assert_eq!(report.per_broadcast.len(), 4);
        prop_assert!(report.reachability >= 0.0);
        prop_assert!((0.0..=1.0).contains(&report.saved_rebroadcasts));
        prop_assert!(report.avg_latency_s >= 0.0);
        prop_assert!(report.data_frames >= u64::from(report.broadcasts),
            "every broadcast puts at least the source frame on the air");
        for outcome in &report.per_broadcast {
            // r and t never exceed the host population.
            prop_assert!(outcome.received < hosts);
            prop_assert!(outcome.rebroadcast <= outcome.received);
            if let Some(srb) = outcome.saved_rebroadcasts {
                prop_assert!((0.0..=1.0).contains(&srb));
            }
            // Latency cannot exceed the whole simulated span.
            prop_assert!(outcome.latency.as_secs_f64() <= report.sim_seconds + 1e-9);
        }
    }

    /// Same seed, same report — across every scheme.
    #[test]
    fn runs_are_reproducible(scheme in scheme_strategy(), seed in any::<u64>()) {
        let build = || {
            SimConfig::builder(4, scheme.clone())
                .hosts(20)
                .broadcasts(3)
                .warmup(SimDuration::from_secs(2))
                .seed(seed)
                .build()
        };
        let a = World::new(build()).run();
        let b = World::new(build()).run();
        prop_assert_eq!(a.reachability, b.reachability);
        prop_assert_eq!(a.saved_rebroadcasts, b.saved_rebroadcasts);
        prop_assert_eq!(a.avg_latency_s, b.avg_latency_s);
        prop_assert_eq!(a.data_frames, b.data_frames);
        prop_assert_eq!(a.hello_packets, b.hello_packets);
        prop_assert_eq!(a.collisions, b.collisions);
    }

    /// Flooding never saves a rebroadcast, whatever the configuration.
    #[test]
    fn flooding_srb_is_always_zero(
        map_units in 1u32..8,
        hosts in 8u32..30,
        seed in any::<u64>(),
    ) {
        let config = SimConfig::builder(map_units, SchemeSpec::Flooding)
            .hosts(hosts)
            .broadcasts(3)
            .warmup(SimDuration::from_secs(1))
            .seed(seed)
            .build();
        let report = World::new(config).run();
        for outcome in &report.per_broadcast {
            if let Some(srb) = outcome.saved_rebroadcasts {
                // A host may still be "saved" if the run ends while its
                // frame sits in the MAC queue; with a generous grace
                // period that should never happen.
                prop_assert!(srb <= 1e-9, "flooding saved {srb}");
            }
        }
    }
}
