//! Property-based invariants of whole simulation runs: for arbitrary
//! small configurations, the reported metrics must be internally
//! consistent and runs must be reproducible.

use broadcast_core::{AreaThreshold, CounterThreshold, NeighborInfo, SchemeSpec, SimConfig, World};
use manet_net::HelloIntervalPolicy;
use manet_sim_engine::SimDuration;
use manet_testkit::{prop_check, Gen};

fn scheme(g: &mut Gen) -> SchemeSpec {
    match g.usize_in(0..7) {
        0 => SchemeSpec::Flooding,
        1 => SchemeSpec::Counter(g.u32_in(2..8)),
        2 => SchemeSpec::AdaptiveCounter(CounterThreshold::paper_recommended()),
        3 => SchemeSpec::Location(g.f64_in(0.0..0.3)),
        4 => SchemeSpec::AdaptiveLocation(AreaThreshold::paper_recommended()),
        5 => SchemeSpec::NeighborCoverage,
        _ => SchemeSpec::Distance(g.f64_in(0.0..200.0)),
    }
}

prop_check! {
    // Whole-simulation cases are costly; a couple dozen random configs
    // per run is plenty on top of the deterministic integration tests.

    /// Metrics are well-formed for arbitrary configurations.
    fn reports_are_internally_consistent(g, cases = 24) {
        let scheme = scheme(g);
        let map_units = g.u32_in(1..8);
        let hosts = g.u32_in(8..35);
        let seed = g.u64();
        let oracle = g.bool();
        let info = if oracle {
            NeighborInfo::Oracle
        } else {
            NeighborInfo::Hello(HelloIntervalPolicy::fixed_1s())
        };
        let config = SimConfig::builder(map_units, scheme)
            .hosts(hosts)
            .broadcasts(4)
            .neighbor_info(info)
            .warmup(SimDuration::from_secs(2))
            .seed(seed)
            .build();
        let report = World::new(config).run();

        assert_eq!(report.broadcasts, 4);
        assert_eq!(report.per_broadcast.len(), 4);
        assert!(report.reachability >= 0.0);
        assert!((0.0..=1.0).contains(&report.saved_rebroadcasts));
        assert!(report.avg_latency_s >= 0.0);
        assert!(
            report.data_frames >= u64::from(report.broadcasts),
            "every broadcast puts at least the source frame on the air"
        );
        for outcome in &report.per_broadcast {
            // r and t never exceed the host population.
            assert!(outcome.received < hosts);
            assert!(outcome.rebroadcast <= outcome.received);
            if let Some(srb) = outcome.saved_rebroadcasts {
                assert!((0.0..=1.0).contains(&srb));
            }
            // Latency cannot exceed the whole simulated span.
            assert!(outcome.latency.as_secs_f64() <= report.sim_seconds + 1e-9);
        }
    }

    /// Same seed, same report — across every scheme.
    fn runs_are_reproducible(g, cases = 24) {
        let scheme = scheme(g);
        let seed = g.u64();
        let build = || {
            SimConfig::builder(4, scheme.clone())
                .hosts(20)
                .broadcasts(3)
                .warmup(SimDuration::from_secs(2))
                .seed(seed)
                .build()
        };
        let a = World::new(build()).run();
        let b = World::new(build()).run();
        assert_eq!(a.reachability, b.reachability);
        assert_eq!(a.saved_rebroadcasts, b.saved_rebroadcasts);
        assert_eq!(a.avg_latency_s, b.avg_latency_s);
        assert_eq!(a.data_frames, b.data_frames);
        assert_eq!(a.hello_packets, b.hello_packets);
        assert_eq!(a.collisions, b.collisions);
    }

    /// Flooding never saves a rebroadcast, whatever the configuration.
    fn flooding_srb_is_always_zero(g, cases = 24) {
        let map_units = g.u32_in(1..8);
        let hosts = g.u32_in(8..30);
        let seed = g.u64();
        let config = SimConfig::builder(map_units, SchemeSpec::Flooding)
            .hosts(hosts)
            .broadcasts(3)
            .warmup(SimDuration::from_secs(1))
            .seed(seed)
            .build();
        let report = World::new(config).run();
        for outcome in &report.per_broadcast {
            if let Some(srb) = outcome.saved_rebroadcasts {
                // A host may still be "saved" if the run ends while its
                // frame sits in the MAC queue; with a generous grace
                // period that should never happen.
                assert!(srb <= 1e-9, "flooding saved {srb}");
            }
        }
    }
}
