//! Property-based invariants of whole simulation runs: for arbitrary
//! small configurations, the reported metrics must be internally
//! consistent and runs must be reproducible.

use broadcast_core::{
    AreaThreshold, ChurnKind, CounterThreshold, NeighborInfo, Region, Scenario, SchemeSpec,
    SimConfig, World,
};
use manet_net::HelloIntervalPolicy;
use manet_sim_engine::{SimDuration, SimTime};
use manet_testkit::{prop_check, Gen};

/// A random but always-valid churn-plus-faults scenario for `hosts` hosts
/// (hosts must be at least 8 so the churners stay a strict minority).
fn churn_scenario(g: &mut Gen, hosts: u32) -> Scenario {
    let mut s = Scenario::new("prop").with_hosts(hosts);
    for i in 0..g.u32_in(1..4) {
        // Distinct hosts so per-host down/up alternation always holds.
        let host = i * 2;
        let down = g.u64_in(1..8);
        let up = down + g.u64_in(1..6);
        let (down_kind, up_kind) = if g.bool() {
            (ChurnKind::Crash, ChurnKind::Recover)
        } else {
            (ChurnKind::Leave, ChurnKind::Join)
        };
        s = s.churn(SimTime::from_secs(down), down_kind, host).churn(
            SimTime::from_secs(up),
            up_kind,
            host,
        );
    }
    if g.bool() {
        let from = g.u64_in(1..6);
        s = s.blackout(
            SimTime::from_secs(from),
            SimTime::from_secs(from + g.u64_in(1..8)),
            hosts - 1,
            hosts - 2,
        );
    }
    if g.bool() {
        let from = g.u64_in(1..6);
        s = s.noise(
            SimTime::from_secs(from),
            SimTime::from_secs(from + g.u64_in(1..8)),
            g.f64_in(0.05..0.6),
        );
    }
    if g.bool() {
        let from = g.u64_in(1..6);
        s = s.partition(
            SimTime::from_secs(from),
            SimTime::from_secs(from + g.u64_in(1..8)),
            Region {
                x0: 0.0,
                y0: 0.0,
                x1: g.f64_in(100.0..600.0),
                y1: g.f64_in(100.0..600.0),
            },
        );
    }
    s
}

/// A blacked-out link drops deliveries and tallies them under its own
/// cause. Dense map (everyone in everyone's range) so the pair is in
/// contact for the whole window.
#[test]
fn blackout_drops_are_attributed() {
    let scenario = Scenario::new("blackout").with_hosts(10).blackout(
        SimTime::from_secs(0),
        SimTime::from_secs(3_600),
        0,
        1,
    );
    let config = SimConfig::builder(1, SchemeSpec::Flooding)
        .hosts(10)
        .broadcasts(8)
        .warmup(SimDuration::from_secs(1))
        .scenario(scenario)
        .seed(7)
        .build();
    let report = World::new(config).run();
    let counts = report.scenario.expect("scenario runs report their counts");
    assert!(
        counts.blackout_drops > 0,
        "hosts 0 and 1 exchanged frames on a 500 m map for the whole run: {counts:?}"
    );
    assert_eq!(report.losses.injected, counts.injected_drops());
}

fn scheme(g: &mut Gen) -> SchemeSpec {
    match g.usize_in(0..7) {
        0 => SchemeSpec::Flooding,
        1 => SchemeSpec::Counter(g.u32_in(2..8)),
        2 => SchemeSpec::AdaptiveCounter(CounterThreshold::paper_recommended()),
        3 => SchemeSpec::Location(g.f64_in(0.0..0.3)),
        4 => SchemeSpec::AdaptiveLocation(AreaThreshold::paper_recommended()),
        5 => SchemeSpec::NeighborCoverage,
        _ => SchemeSpec::Distance(g.f64_in(0.0..200.0)),
    }
}

prop_check! {
    // Whole-simulation cases are costly; a couple dozen random configs
    // per run is plenty on top of the deterministic integration tests.

    /// Metrics are well-formed for arbitrary configurations.
    fn reports_are_internally_consistent(g, cases = 24) {
        let scheme = scheme(g);
        let map_units = g.u32_in(1..8);
        let hosts = g.u32_in(8..35);
        let seed = g.u64();
        let oracle = g.bool();
        let info = if oracle {
            NeighborInfo::Oracle
        } else {
            NeighborInfo::Hello(HelloIntervalPolicy::fixed_1s())
        };
        let config = SimConfig::builder(map_units, scheme)
            .hosts(hosts)
            .broadcasts(4)
            .neighbor_info(info)
            .warmup(SimDuration::from_secs(2))
            .seed(seed)
            .build();
        let report = World::new(config).run();

        assert_eq!(report.broadcasts, 4);
        assert_eq!(report.per_broadcast.len(), 4);
        assert!(report.reachability >= 0.0);
        assert!((0.0..=1.0).contains(&report.saved_rebroadcasts));
        assert!(report.avg_latency_s >= 0.0);
        assert!(
            report.data_frames >= u64::from(report.broadcasts),
            "every broadcast puts at least the source frame on the air"
        );
        for outcome in &report.per_broadcast {
            // r and t never exceed the host population.
            assert!(outcome.received < hosts);
            assert!(outcome.rebroadcast <= outcome.received);
            if let Some(srb) = outcome.saved_rebroadcasts {
                assert!((0.0..=1.0).contains(&srb));
            }
            // Latency cannot exceed the whole simulated span.
            assert!(outcome.latency.as_secs_f64() <= report.sim_seconds + 1e-9);
        }
    }

    /// Same seed, same report — across every scheme.
    fn runs_are_reproducible(g, cases = 24) {
        let scheme = scheme(g);
        let seed = g.u64();
        let build = || {
            SimConfig::builder(4, scheme.clone())
                .hosts(20)
                .broadcasts(3)
                .warmup(SimDuration::from_secs(2))
                .seed(seed)
                .build()
        };
        let a = World::new(build()).run();
        let b = World::new(build()).run();
        assert_eq!(a.reachability, b.reachability);
        assert_eq!(a.saved_rebroadcasts, b.saved_rebroadcasts);
        assert_eq!(a.avg_latency_s, b.avg_latency_s);
        assert_eq!(a.data_frames, b.data_frames);
        assert_eq!(a.hello_packets, b.hello_packets);
        assert_eq!(a.collisions, b.collisions);
    }

    /// Under arbitrary churn and fault injection, the reachability
    /// accounting stays sound (`delivered ⊆ reachable-at-send-time`),
    /// injected faults are attributed to their own loss cause, and runs
    /// remain reproducible.
    fn churn_preserves_invariants(g, cases = 16) {
        let scheme = scheme(g);
        let hosts = g.u32_in(10..24);
        let seed = g.u64();
        let scenario = churn_scenario(g, hosts);
        let build = || {
            SimConfig::builder(4, scheme.clone())
                .hosts(hosts)
                .broadcasts(4)
                .warmup(SimDuration::from_secs(2))
                .scenario(scenario.clone())
                .seed(seed)
                .build()
        };
        let report = World::new(build()).run();

        let counts = report.scenario.expect("scenario runs report their counts");
        // Every applied reactivation pairs with an earlier deactivation
        // (the tail of the timeline may fall past the end of the run).
        assert!(counts.joins + counts.recoveries <= counts.leaves + counts.crashes);
        // No drop_probability is configured, so every injected loss in the
        // medium's ledger came from the scenario, attributed by kind.
        assert_eq!(report.losses.injected, counts.injected_drops());
        assert!(report.collisions >= report.losses.overlap);
        for outcome in &report.per_broadcast {
            assert!(
                outcome.received <= outcome.reachable,
                "delivered ({}) must be within reach at send time ({})",
                outcome.received,
                outcome.reachable,
            );
            assert!(outcome.rebroadcast <= outcome.received);
        }

        let again = World::new(build()).run();
        assert_eq!(report.reachability, again.reachability);
        assert_eq!(report.saved_rebroadcasts, again.saved_rebroadcasts);
        assert_eq!(report.data_frames, again.data_frames);
        assert_eq!(report.losses, again.losses);
        assert_eq!(report.scenario, again.scenario);
    }

    /// Flooding never saves a rebroadcast, whatever the configuration.
    fn flooding_srb_is_always_zero(g, cases = 24) {
        let map_units = g.u32_in(1..8);
        let hosts = g.u32_in(8..30);
        let seed = g.u64();
        let config = SimConfig::builder(map_units, SchemeSpec::Flooding)
            .hosts(hosts)
            .broadcasts(3)
            .warmup(SimDuration::from_secs(1))
            .seed(seed)
            .build();
        let report = World::new(config).run();
        for outcome in &report.per_broadcast {
            if let Some(srb) = outcome.saved_rebroadcasts {
                // A host may still be "saved" if the run ends while its
                // frame sits in the MAC queue; with a generous grace
                // period that should never happen.
                assert!(srb <= 1e-9, "flooding saved {srb}");
            }
        }
    }
}
