//! Counting-allocator proof that the medium's hot path is allocation-free
//! in steady state: once the listener pool and the caller's reusable
//! buffers have grown to their peak size, `begin_transmission_into` /
//! `end_transmission_into` must not touch the allocator at all.
//!
//! Lives in its own integration-test binary because the `#[global_allocator]`
//! wrapper counts every allocation in the process.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use manet_phy::{Medium, NodeId};
use manet_sim_engine::SimTime;

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

const AIRTIME_US: u64 = 2_432;

#[test]
fn medium_hot_path_settles_to_zero_allocations() {
    let hosts = 12usize;
    let mut medium = Medium::new(hosts);
    let listeners: Vec<NodeId> = (1..hosts as u32).map(NodeId::new).collect();
    let mut begin_carrier = Vec::new();
    let mut deliveries = Vec::new();
    let mut end_carrier = Vec::new();

    // Two sources with overlapping frames so the garbling/collision code
    // paths run too, not just the clean-delivery path.
    let cycle = |round: u64,
                 medium: &mut Medium,
                 begin_carrier: &mut Vec<_>,
                 deliveries: &mut Vec<_>,
                 end_carrier: &mut Vec<_>| {
        let t0 = SimTime::from_micros(round * 10 * AIRTIME_US);
        let t1 = SimTime::from_micros(round * 10 * AIRTIME_US + AIRTIME_US / 2);
        let a = medium.begin_transmission_into(
            NodeId::new(0),
            t0,
            t0 + manet_sim_engine::SimDuration::from_micros(AIRTIME_US),
            &listeners,
            begin_carrier,
        );
        let b = medium.begin_transmission_into(
            NodeId::new(1),
            t1,
            t1 + manet_sim_engine::SimDuration::from_micros(AIRTIME_US),
            &listeners[1..],
            begin_carrier,
        );
        medium.end_transmission_into(
            a,
            t0 + manet_sim_engine::SimDuration::from_micros(AIRTIME_US),
            deliveries,
            end_carrier,
        );
        medium.end_transmission_into(
            b,
            t1 + manet_sim_engine::SimDuration::from_micros(AIRTIME_US),
            deliveries,
            end_carrier,
        );
    };

    // Warm-up: pools and caller buffers grow to their peak capacity.
    for round in 0..32 {
        cycle(
            round,
            &mut medium,
            &mut begin_carrier,
            &mut deliveries,
            &mut end_carrier,
        );
    }

    let before = ALLOCS.load(Ordering::Relaxed);
    for round in 32..160 {
        cycle(
            round,
            &mut medium,
            &mut begin_carrier,
            &mut deliveries,
            &mut end_carrier,
        );
    }
    let after = ALLOCS.load(Ordering::Relaxed);
    assert_eq!(
        after - before,
        0,
        "steady-state begin/end_transmission must not allocate"
    );
}
