//! Property tests pinning the spatial [`NeighborGrid`] to the brute-force
//! topology oracle: for any placement, any radius not exceeding the cell
//! edge, and any sequence of incremental moves, the grid's range queries
//! and flood-reachability must agree with `in_range_of`/`reachable_from`
//! element for element (both return ascending `NodeId` lists).

use manet_geom::Vec2;
use manet_phy::{in_range_of, reachable_from, NeighborGrid, NodeId};
use manet_testkit::{prop_check, Gen};

const WIDTH: f64 = 1500.0;
const HEIGHT: f64 = 1500.0;

/// Random placement; some positions intentionally coincide and some sit
/// outside the map rectangle (roaming hosts can momentarily overshoot —
/// the grid must clamp them, not lose them).
fn placement(g: &mut Gen, n: usize) -> Vec<Vec2> {
    (0..n)
        .map(|_| {
            if g.u32_in(0..8) == 0 {
                // Off-map or exactly-on-corner positions.
                Vec2::new(
                    g.f64_in(-200.0..WIDTH + 200.0),
                    g.f64_in(-200.0..HEIGHT + 200.0),
                )
            } else {
                Vec2::new(g.f64_in(0.0..WIDTH), g.f64_in(0.0..HEIGHT))
            }
        })
        .collect()
}

prop_check! {
    /// `in_range_into` matches the O(n) oracle for every node.
    fn grid_in_range_matches_oracle(g, cases = 128) {
        let n = g.usize_in(1..40);
        let cell = g.f64_in(100.0..800.0);
        let radius = cell * g.f64_in_incl(0.05, 1.0);
        let mut positions = placement(g, n);
        // Duplicate a position to cover the coincident-hosts edge case.
        if n >= 2 {
            positions[n - 1] = positions[0];
        }
        let mut grid = NeighborGrid::new(WIDTH, HEIGHT, cell);
        grid.update(&positions);
        let mut got = Vec::new();
        for i in 0..n {
            let of = NodeId::new(i as u32);
            grid.in_range_into(&positions, of, radius, &mut got);
            assert_eq!(got, in_range_of(&positions, of, radius), "node {i}");
        }
    }

    /// `reachable_into` matches the flood oracle from every source.
    fn grid_reachable_matches_oracle(g, cases = 96) {
        let n = g.usize_in(1..32);
        let cell = g.f64_in(150.0..700.0);
        let radius = cell * g.f64_in_incl(0.1, 1.0);
        let positions = placement(g, n);
        let mut grid = NeighborGrid::new(WIDTH, HEIGHT, cell);
        grid.update(&positions);
        let mut got = Vec::new();
        for i in 0..n {
            let source = NodeId::new(i as u32);
            grid.reachable_into(&positions, source, radius, &mut got);
            assert_eq!(got, reachable_from(&positions, source, radius), "source {i}");
        }
    }

    /// Incremental updates (a few hosts move, possibly across cell
    /// boundaries) leave the grid exactly as consistent as a rebuild.
    fn grid_incremental_updates_match_oracle(g, cases = 96) {
        let n = g.usize_in(2..24);
        let cell = g.f64_in(200.0..600.0);
        let radius = cell * g.f64_in_incl(0.2, 1.0);
        let mut positions = placement(g, n);
        let mut grid = NeighborGrid::new(WIDTH, HEIGHT, cell);
        grid.update(&positions);
        let rounds = g.usize_in(1..5);
        let mut got = Vec::new();
        for _ in 0..rounds {
            let movers = g.usize_in(1..n.max(2));
            for _ in 0..movers {
                let who = g.usize_in(0..n);
                positions[who] = Vec2::new(
                    g.f64_in(-100.0..WIDTH + 100.0),
                    g.f64_in(-100.0..HEIGHT + 100.0),
                );
            }
            grid.update(&positions);
            for i in 0..n {
                let of = NodeId::new(i as u32);
                grid.in_range_into(&positions, of, radius, &mut got);
                assert_eq!(got, in_range_of(&positions, of, radius), "node {i}");
            }
        }
    }

    /// Map extents that are exact multiples of the cell edge, with hosts
    /// snapped onto cell boundaries, corners, and the exact right/top map
    /// edges. `width / cell` is then a whole number, so a host clamped to
    /// exactly `width` computes an axis index of `cols` and must be
    /// clamped into the last column — the map-edge case that would read
    /// one cell row/column out of bounds (or drop border hosts) if
    /// `axis_cell` ever lost its `.min(count - 1)`.
    fn grid_exact_extent_boundary_matches_oracle(g, cases = 128) {
        let cell = g.f64_in(100.0..800.0);
        let cols = g.usize_in(1..6);
        let rows = g.usize_in(1..6);
        let (w, h) = (cell * cols as f64, cell * rows as f64);
        let n = g.usize_in(2..32);
        let positions: Vec<Vec2> = (0..n)
            .map(|_| {
                // Snap each axis to an exact cell boundary (including 0 and
                // the full extent) half the time, else roam freely past the
                // map edges.
                let snap = |g: &mut Gen, extent: f64, count: usize| {
                    if g.u32_in(0..2) == 0 {
                        cell * g.usize_in(0..count + 1) as f64
                    } else {
                        g.f64_in(-cell..extent + cell)
                    }
                };
                let x = snap(g, w, cols);
                let y = snap(g, h, rows);
                Vec2::new(x, y)
            })
            .collect();
        let radius = cell * g.f64_in_incl(0.1, 1.0);
        let mut grid = NeighborGrid::new(w, h, cell);
        grid.update(&positions);
        let mut got = Vec::new();
        for i in 0..n {
            let of = NodeId::new(i as u32);
            grid.in_range_into(&positions, of, radius, &mut got);
            assert_eq!(got, in_range_of(&positions, of, radius), "node {i}");
        }
    }

    /// Radii that land exactly on a cell edge (the boundary the 3x3 scan
    /// proof depends on) stay exact.
    fn grid_exact_cell_edge_radius(g, cases = 64) {
        let n = g.usize_in(1..30);
        let cell = g.f64_in(100.0..800.0);
        let positions = placement(g, n);
        let mut grid = NeighborGrid::new(WIDTH, HEIGHT, cell);
        grid.update(&positions);
        let mut got = Vec::new();
        for i in 0..n {
            let of = NodeId::new(i as u32);
            grid.in_range_into(&positions, of, cell, &mut got);
            assert_eq!(got, in_range_of(&positions, of, cell), "node {i}");
        }
    }
}
