//! Property-based tests of the shared medium under random overlap
//! schedules: conservation of deliveries, collision symmetry, and
//! carrier-sense consistency.

use manet_phy::{Medium, NodeId};
use manet_sim_engine::{SimDuration, SimTime};
use manet_testkit::{prop_check, Gen};

const AIRTIME_US: u64 = 2_432;

/// A random schedule: per transmission (source index, start offset µs).
fn schedule(g: &mut Gen) -> Vec<(u32, u64)> {
    g.vec(1..12, |g| (g.u32_in(0..6), g.u64_in(0..20_000)))
}

/// Core of `deliveries_are_conserved`, shared with the pinned regression.
fn check_deliveries_conserved(raw: Vec<(u32, u64)>) {
    let hosts = 10usize;
    let mut medium = Medium::new(hosts);
    // Sources 0..6 transmit to listeners 6..10; dedupe sources whose
    // frames would overlap their own earlier frame.
    let mut events: Vec<(u64, bool, usize)> = Vec::new(); // (time, is_start, idx)
    let mut txs: Vec<(NodeId, SimTime, SimTime)> = Vec::new();
    let mut busy_until = vec![0u64; hosts];
    for (src, offset) in raw {
        let start = offset;
        if start < busy_until[src as usize] {
            continue; // a host cannot start while already transmitting
        }
        busy_until[src as usize] = start + AIRTIME_US;
        let idx = txs.len();
        txs.push((
            NodeId::new(src),
            SimTime::from_micros(start),
            SimTime::from_micros(start + AIRTIME_US),
        ));
        events.push((start, true, idx));
        events.push((start + AIRTIME_US, false, idx));
    }
    events.sort_by_key(|&(t, is_start, _)| (t, is_start));
    let listeners: Vec<NodeId> = (6..10).map(NodeId::new).collect();

    let mut frames = vec![None; txs.len()];
    let mut total_verdicts = 0usize;
    for (_, is_start, idx) in events {
        let (source, start, end) = txs[idx];
        if is_start {
            let tx = medium.begin_transmission(source, start, end, &listeners);
            frames[idx] = Some(tx.frame);
        } else {
            let frame = frames[idx].take().expect("frame started");
            let done = medium.end_transmission(frame, end);
            assert_eq!(done.deliveries.len(), listeners.len());
            total_verdicts += done.deliveries.len();
            assert_eq!(done.source, source);
        }
    }
    assert_eq!(total_verdicts, txs.len() * listeners.len());
    assert_eq!(medium.frames_sent(), txs.len() as u64);
}

/// A shrunk failure proptest once found (kept from its regression file):
/// one source whose second frame starts inside its first.
#[test]
fn regression_same_source_overlapping_frames() {
    check_deliveries_conserved(vec![(3, 9_865), (3, 12_297)]);
}

prop_check! {
    /// Every listener of every frame gets exactly one delivery verdict,
    /// regardless of how transmissions overlap.
    fn deliveries_are_conserved(g, cases = 128) {
        check_deliveries_conserved(schedule(g));
    }

    /// With the no-capture model, any two frames that overlap in time are
    /// both garbled at a common listener.
    fn overlap_garbles_both(g, cases = 128) {
        let gap_us = g.u64_in(0..5_000);
        let mut medium = Medium::new(3);
        let listener = [NodeId::new(2)];
        let a_start = SimTime::from_micros(0);
        let a_end = SimTime::from_micros(AIRTIME_US);
        let b_start = SimTime::from_micros(gap_us);
        let b_end = SimTime::from_micros(gap_us + AIRTIME_US);
        let fa = medium.begin_transmission(NodeId::new(0), a_start, a_end, &listener);
        let overlaps = gap_us < AIRTIME_US;
        // End frame A before starting B when they do not overlap.
        if overlaps {
            let fb = medium.begin_transmission(NodeId::new(1), b_start, b_end, &listener);
            let da = medium.end_transmission(fa.frame, a_end);
            let db = medium.end_transmission(fb.frame, b_end);
            assert!(!da.deliveries[0].decoded);
            assert!(!db.deliveries[0].decoded);
        } else {
            let da = medium.end_transmission(fa.frame, a_end);
            let fb = medium.begin_transmission(NodeId::new(1), b_start, b_end, &listener);
            let db = medium.end_transmission(fb.frame, b_end);
            assert!(da.deliveries[0].decoded);
            assert!(db.deliveries[0].decoded);
        }
    }

    /// Carrier-sense busy/idle transitions alternate at every host.
    fn carrier_transitions_alternate(g, cases = 128) {
        let raw = schedule(g);
        let hosts = 8usize;
        let mut medium = Medium::new(hosts);
        let listeners: Vec<NodeId> = (6..8).map(NodeId::new).collect();
        let mut busy_until = vec![0u64; hosts];
        let mut timeline: Vec<(u64, bool, usize)> = Vec::new();
        let mut txs = Vec::new();
        for (src, offset) in raw {
            let src = src % 6;
            if offset < busy_until[src as usize] {
                continue;
            }
            busy_until[src as usize] = offset + AIRTIME_US;
            let idx = txs.len();
            txs.push((NodeId::new(src), offset));
            timeline.push((offset, true, idx));
            timeline.push((offset + AIRTIME_US, false, idx));
        }
        timeline.sort_by_key(|&(t, is_start, _)| (t, is_start));
        let mut frames = vec![None; txs.len()];
        // Track each listener's believed state from reported transitions.
        let mut busy_state = vec![false; hosts];
        for (_, is_start, idx) in timeline {
            let (source, offset) = txs[idx];
            let start = SimTime::from_micros(offset);
            let end = start + SimDuration::from_micros(AIRTIME_US);
            let changes = if is_start {
                let tx = medium.begin_transmission(source, start, end, &listeners);
                frames[idx] = Some(tx.frame);
                tx.carrier_changes
            } else {
                medium
                    .end_transmission(frames[idx].take().expect("started"), end)
                    .carrier_changes
            };
            for change in changes {
                assert_ne!(
                    busy_state[change.node.index()],
                    change.busy,
                    "non-alternating carrier transition at {}",
                    change.node
                );
                busy_state[change.node.index()] = change.busy;
                assert_eq!(medium.is_carrier_busy(change.node), change.busy);
            }
        }
        // After everything ends, the medium must be idle everywhere.
        for host in 0..hosts {
            assert!(!medium.is_carrier_busy(NodeId::new(host as u32)));
        }
    }
}
