//! Uniform-cell spatial index over host positions.
//!
//! The brute-force queries in [`topology`](crate::in_range_of) scan every
//! host per call — O(n) for `in_range_of`, O(n²) for `reachable_from` —
//! and the `World` hot path issues one such scan per transmission start
//! and end. [`NeighborGrid`] replaces those scans with a hash-free bucket
//! grid: hosts are binned into square cells whose edge equals the radio
//! radius, so every host within range of a query point lives in the 3×3
//! block of cells around it.
//!
//! Exactness, not approximation: the cell scan only *pre-filters*
//! candidates; membership is still decided by the exact squared-distance
//! test on the true positions. The 3×3 block is sufficient because the
//! query radius never exceeds the cell edge ([`NeighborGrid::in_range_into`]
//! asserts this) and cell assignment clamps positions into the map
//! rectangle — clamping is non-expansive, so two hosts within one radius
//! of each other land in cells at most one apart on each axis. Results
//! are sorted ascending by [`NodeId`], matching the brute-force functions
//! byte for byte; the property tests in `crates/phy/tests` hold the two
//! implementations equal under random placements.
//!
//! [`NeighborGrid::update`] is incremental: only hosts whose cell changed
//! since the last call are re-binned, and each cell's member vector keeps
//! its capacity, so steady-state updates and queries perform no heap
//! allocation.

use manet_geom::Vec2;

use crate::id::NodeId;

/// Marks a host not yet placed in any cell.
const NO_CELL: u32 = u32::MAX;

/// A uniform-cell spatial index answering unit-disk neighborhood and
/// reachability queries without scanning every host.
///
/// # Examples
///
/// ```
/// use manet_geom::Vec2;
/// use manet_phy::{in_range_of, NeighborGrid, NodeId};
///
/// let positions = [Vec2::ZERO, Vec2::new(450.0, 0.0), Vec2::new(900.0, 0.0)];
/// let mut grid = NeighborGrid::new(2_500.0, 2_500.0, 500.0);
/// grid.update(&positions);
///
/// let mut heard = Vec::new();
/// grid.in_range_into(&positions, NodeId::new(0), 500.0, &mut heard);
/// assert_eq!(heard, in_range_of(&positions, NodeId::new(0), 500.0));
/// ```
#[derive(Debug, Clone)]
pub struct NeighborGrid {
    /// Cell edge length; also the maximum supported query radius.
    cell: f64,
    cols: usize,
    rows: usize,
    /// Members of each cell, in arbitrary order (queries sort output).
    cells: Vec<Vec<u32>>,
    /// Flat cell index of each host, `NO_CELL` before first placement.
    cell_of: Vec<u32>,
    /// Index of each host inside its cell's member vector.
    slot_of: Vec<u32>,
    /// BFS visited stamps; a host is visited when `mark[i] == epoch`.
    mark: Vec<u32>,
    epoch: u32,
    /// BFS work stack, reused across queries.
    stack: Vec<u32>,
}

impl NeighborGrid {
    /// Creates a grid covering a `width` × `height` map with square cells
    /// of edge `cell` (normally the radio radius). Positions outside the
    /// rectangle are clamped into it for cell assignment only — queries
    /// always test true positions.
    ///
    /// # Panics
    ///
    /// Panics unless `cell`, `width`, and `height` are finite and
    /// positive.
    pub fn new(width: f64, height: f64, cell: f64) -> Self {
        assert!(
            cell.is_finite() && cell > 0.0,
            "cell edge must be positive and finite"
        );
        assert!(
            width.is_finite() && width > 0.0 && height.is_finite() && height > 0.0,
            "map extent must be positive and finite"
        );
        let cols = (width / cell).ceil().max(1.0) as usize;
        let rows = (height / cell).ceil().max(1.0) as usize;
        NeighborGrid {
            cell,
            cols,
            rows,
            cells: vec![Vec::new(); cols * rows],
            cell_of: Vec::new(),
            slot_of: Vec::new(),
            mark: Vec::new(),
            epoch: 0,
            stack: Vec::new(),
        }
    }

    /// Flat index of the cell containing `p`, clamped into the grid.
    fn cell_index(&self, p: Vec2) -> u32 {
        let cx = axis_cell(p.x, self.cell, self.cols);
        let cy = axis_cell(p.y, self.cell, self.rows);
        (cy * self.cols + cx) as u32
    }

    /// Re-bins hosts whose position moved to a different cell since the
    /// previous call. The first call (or a call with a different host
    /// count) places every host.
    pub fn update(&mut self, positions: &[Vec2]) {
        if self.cell_of.len() != positions.len() {
            for members in &mut self.cells {
                members.clear();
            }
            self.cell_of.clear();
            self.cell_of.resize(positions.len(), NO_CELL);
            self.slot_of.clear();
            self.slot_of.resize(positions.len(), 0);
            self.mark.clear();
            self.mark.resize(positions.len(), 0);
            self.epoch = 0;
        }
        for (i, &p) in positions.iter().enumerate() {
            let new_cell = self.cell_index(p);
            let old_cell = self.cell_of[i];
            if new_cell == old_cell {
                continue;
            }
            if old_cell != NO_CELL {
                self.evict(i as u32, old_cell);
            }
            let members = &mut self.cells[new_cell as usize];
            self.slot_of[i] = members.len() as u32;
            members.push(i as u32);
            self.cell_of[i] = new_cell;
        }
    }

    /// Removes `host` from `cell` by swap-remove, fixing the slot of the
    /// member that took its place.
    fn evict(&mut self, host: u32, cell: u32) {
        let members = &mut self.cells[cell as usize];
        let slot = self.slot_of[host as usize] as usize;
        members.swap_remove(slot);
        if let Some(&moved) = members.get(slot) {
            self.slot_of[moved as usize] = slot as u32;
        }
    }

    /// All hosts within `radius` of `positions[of]`, excluding `of`
    /// itself, written into `out` in ascending [`NodeId`] order — exactly
    /// the result of [`in_range_of`](crate::in_range_of). `out` is
    /// cleared first and never shrunk, so a reused buffer settles at its
    /// peak capacity.
    ///
    /// # Panics
    ///
    /// Panics when `radius` exceeds the cell edge (the 3×3 scan would
    /// miss hosts) or when `positions` disagrees with the last
    /// [`update`](Self::update).
    pub fn in_range_into(
        &self,
        positions: &[Vec2],
        of: NodeId,
        radius: f64,
        out: &mut Vec<NodeId>,
    ) {
        self.check_query(positions, radius);
        out.clear();
        let center = positions[of.index()];
        let r2 = radius * radius;
        let me = of.index() as u32;
        self.for_each_candidate(self.cell_of[of.index()], |host| {
            if host != me && positions[host as usize].distance_squared_to(center) <= r2 {
                out.push(NodeId::new(host));
            }
        });
        out.sort_unstable();
    }

    /// All hosts reachable from `source` over one or more unit-disk hops,
    /// excluding `source`, written into `out` in ascending [`NodeId`]
    /// order — exactly the result of
    /// [`reachable_from`](crate::reachable_from). BFS scratch (visited
    /// stamps and work stack) lives inside the grid, so repeated queries
    /// allocate nothing once warm.
    ///
    /// # Panics
    ///
    /// As for [`in_range_into`](Self::in_range_into).
    pub fn reachable_into(
        &mut self,
        positions: &[Vec2],
        source: NodeId,
        radius: f64,
        out: &mut Vec<NodeId>,
    ) {
        self.reachable_inner(positions, source, radius, None, out);
    }

    /// As [`reachable_into`](Self::reachable_into), restricted to active
    /// hosts: a host with `active[i] == false` neither relays nor appears
    /// in `out`. Used under scenario churn, where departed hosts still
    /// occupy position slots but cannot forward or receive.
    ///
    /// # Panics
    ///
    /// As for [`in_range_into`](Self::in_range_into), plus when `active`
    /// disagrees in length with `positions`.
    pub fn reachable_masked_into(
        &mut self,
        positions: &[Vec2],
        source: NodeId,
        radius: f64,
        active: &[bool],
        out: &mut Vec<NodeId>,
    ) {
        assert_eq!(
            active.len(),
            positions.len(),
            "active mask disagrees with positions"
        );
        self.reachable_inner(positions, source, radius, Some(active), out);
    }

    fn reachable_inner(
        &mut self,
        positions: &[Vec2],
        source: NodeId,
        radius: f64,
        active: Option<&[bool]>,
        out: &mut Vec<NodeId>,
    ) {
        self.check_query(positions, radius);
        out.clear();
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.mark.fill(0);
            self.epoch = 1;
        }
        let epoch = self.epoch;
        let r2 = radius * radius;
        self.mark[source.index()] = epoch;
        let mut stack = std::mem::take(&mut self.stack);
        stack.clear();
        stack.push(source.index() as u32);
        while let Some(u) = stack.pop() {
            let pu = positions[u as usize];
            // Split borrows: `mark` is mutated inside the candidate walk,
            // which only reads `cells`.
            let mut mark = std::mem::take(&mut self.mark);
            self.for_each_candidate(self.cell_of[u as usize], |v| {
                if mark[v as usize] != epoch
                    && active.is_none_or(|m| m[v as usize])
                    && positions[v as usize].distance_squared_to(pu) <= r2
                {
                    mark[v as usize] = epoch;
                    stack.push(v);
                    out.push(NodeId::new(v));
                }
            });
            self.mark = mark;
        }
        self.stack = stack;
        out.sort_unstable();
    }

    /// Runs `visit` over every member of the 3×3 cell block around the
    /// flat cell index `center`.
    fn for_each_candidate(&self, center: u32, mut visit: impl FnMut(u32)) {
        let cx = center as usize % self.cols;
        let cy = center as usize / self.cols;
        let x0 = cx.saturating_sub(1);
        let x1 = (cx + 1).min(self.cols - 1);
        let y0 = cy.saturating_sub(1);
        let y1 = (cy + 1).min(self.rows - 1);
        for y in y0..=y1 {
            let row = y * self.cols;
            for members in &self.cells[row + x0..=row + x1] {
                for &host in members {
                    visit(host);
                }
            }
        }
    }

    fn check_query(&self, positions: &[Vec2], radius: f64) {
        assert!(
            radius <= self.cell,
            "query radius {radius} exceeds cell edge {} — the 3×3 scan would miss hosts",
            self.cell
        );
        assert_eq!(
            positions.len(),
            self.cell_of.len(),
            "positions slice disagrees with the last update()"
        );
    }
}

/// Cell coordinate of `coord` along one axis, clamped into `0..count`.
fn axis_cell(coord: f64, cell: f64, count: usize) -> usize {
    let idx = (coord / cell).floor();
    if idx <= 0.0 {
        0
    } else {
        (idx as usize).min(count - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{in_range_of, reachable_from};

    const R: f64 = 500.0;

    fn query_both(grid: &mut NeighborGrid, positions: &[Vec2], of: u32) {
        let mut near = Vec::new();
        grid.in_range_into(positions, NodeId::new(of), R, &mut near);
        assert_eq!(near, in_range_of(positions, NodeId::new(of), R));
        let mut reach = Vec::new();
        grid.reachable_into(positions, NodeId::new(of), R, &mut reach);
        assert_eq!(reach, reachable_from(positions, NodeId::new(of), R));
    }

    #[test]
    fn matches_brute_force_on_a_line() {
        let positions: Vec<Vec2> = (0..12).map(|i| Vec2::new(i as f64 * 450.0, 0.0)).collect();
        let mut grid = NeighborGrid::new(5_500.0, 500.0, R);
        grid.update(&positions);
        for i in 0..positions.len() as u32 {
            query_both(&mut grid, &positions, i);
        }
    }

    #[test]
    fn exact_on_cell_boundaries_and_radius_edge() {
        // Hosts sitting exactly on cell edges and exactly at distance R.
        let positions = [
            Vec2::new(500.0, 500.0),
            Vec2::new(1_000.0, 500.0),
            Vec2::new(500.0, 1_000.0),
            Vec2::new(1_000.1, 500.0),
            Vec2::ZERO,
        ];
        let mut grid = NeighborGrid::new(1_500.0, 1_500.0, R);
        grid.update(&positions);
        for i in 0..positions.len() as u32 {
            query_both(&mut grid, &positions, i);
        }
    }

    #[test]
    fn coincident_and_out_of_bounds_positions() {
        let positions = [
            Vec2::new(250.0, 250.0),
            Vec2::new(250.0, 250.0),
            Vec2::new(-40.0, 990.0),
            Vec2::new(1_600.0, 1_600.0), // outside the 1500×1500 map
            Vec2::new(1_400.0, 1_400.0),
        ];
        let mut grid = NeighborGrid::new(1_500.0, 1_500.0, R);
        grid.update(&positions);
        for i in 0..positions.len() as u32 {
            query_both(&mut grid, &positions, i);
        }
    }

    #[test]
    fn incremental_update_tracks_moves() {
        let mut positions = vec![
            Vec2::new(100.0, 100.0),
            Vec2::new(600.0, 100.0),
            Vec2::new(1_100.0, 100.0),
        ];
        let mut grid = NeighborGrid::new(1_500.0, 1_500.0, R);
        grid.update(&positions);
        query_both(&mut grid, &positions, 0);
        // Walk host 0 across two cell boundaries.
        for step in 0..8 {
            positions[0] = Vec2::new(100.0 + step as f64 * 180.0, 100.0);
            grid.update(&positions);
            for i in 0..positions.len() as u32 {
                query_both(&mut grid, &positions, i);
            }
        }
    }

    #[test]
    fn masked_reachability_removes_relays_and_targets() {
        // A chain 0-1-2-3: masking out host 1 severs everything past it.
        let positions: Vec<Vec2> = (0..4).map(|i| Vec2::new(i as f64 * 450.0, 0.0)).collect();
        let mut grid = NeighborGrid::new(2_000.0, 500.0, R);
        grid.update(&positions);
        let mut out = Vec::new();
        grid.reachable_masked_into(&positions, NodeId::new(0), R, &[true; 4], &mut out);
        assert_eq!(out, [NodeId::new(1), NodeId::new(2), NodeId::new(3)]);
        grid.reachable_masked_into(
            &positions,
            NodeId::new(0),
            R,
            &[true, false, true, true],
            &mut out,
        );
        assert_eq!(out, [], "host 1 was the only relay");
        grid.reachable_masked_into(
            &positions,
            NodeId::new(0),
            R,
            &[true, true, true, false],
            &mut out,
        );
        assert_eq!(
            out,
            [NodeId::new(1), NodeId::new(2)],
            "a masked leaf just disappears"
        );
    }

    #[test]
    fn exact_map_edge_bins_into_last_cell() {
        // The map extent is an exact multiple of the cell edge, so
        // `width / cell` is a whole number and a host clamped to exactly
        // `width` (or `height`) must bin into the last column (row), not
        // one past it. `axis_cell` clamps with `.min(count - 1)`; this
        // test locks that behavior against the brute-force oracle for
        // every corner and edge midpoint of the map.
        const W: f64 = 2_000.0; // 4 cells of R exactly
        const H: f64 = 1_500.0; // 3 cells of R exactly
        let positions = [
            Vec2::new(W, H),                 // far corner, both axes exact
            Vec2::new(W, 0.0),               // bottom-right corner
            Vec2::new(0.0, H),               // top-left corner
            Vec2::ZERO,                      // origin corner
            Vec2::new(W, H / 2.0),           // right edge midpoint
            Vec2::new(W / 2.0, H),           // top edge midpoint
            Vec2::new(W - 10.0, H - 10.0),   // in range of the far corner
            Vec2::new(W + 300.0, H + 300.0), // overshoot past the corner
            Vec2::new(1_500.0, 1_000.0),     // interior exact cell boundary
        ];
        let mut grid = NeighborGrid::new(W, H, R);
        grid.update(&positions);
        for i in 0..positions.len() as u32 {
            query_both(&mut grid, &positions, i);
        }
    }

    #[test]
    fn axis_cell_clamps_exact_extent_into_last_bin() {
        // Direct pin of the boundary arithmetic: 4 columns of 500.0, a
        // coordinate of exactly 2000.0 computes floor(4.0) = 4 and must
        // be clamped to column 3.
        assert_eq!(axis_cell(2_000.0, 500.0, 4), 3);
        assert_eq!(axis_cell(1_999.999, 500.0, 4), 3);
        assert_eq!(axis_cell(2_400.0, 500.0, 4), 3);
        assert_eq!(axis_cell(0.0, 500.0, 4), 0);
        assert_eq!(axis_cell(-1.0, 500.0, 4), 0);
        assert_eq!(axis_cell(500.0, 500.0, 4), 1);
    }

    #[test]
    #[should_panic(expected = "exceeds cell edge")]
    fn oversized_radius_is_rejected() {
        let positions = [Vec2::ZERO];
        let mut grid = NeighborGrid::new(1_000.0, 1_000.0, R);
        grid.update(&positions);
        let mut out = Vec::new();
        grid.in_range_into(&positions, NodeId::new(0), R * 1.5, &mut out);
    }
}
