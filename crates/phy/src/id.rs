//! Identifiers shared by the radio stack.

use std::fmt;

/// Identifies a mobile host. Hosts are numbered densely from zero, so the
/// id doubles as an index into per-host arrays.
///
/// # Examples
///
/// ```
/// use manet_phy::NodeId;
///
/// let n = NodeId::new(3);
/// assert_eq!(n.index(), 3);
/// assert_eq!(n.to_string(), "h3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates the id of host number `index`.
    pub const fn new(index: u32) -> Self {
        NodeId(index)
    }

    /// The host number, usable as an array index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for NodeId {
    fn from(index: u32) -> Self {
        NodeId(index)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "h{}", self.0)
    }
}

/// Identifies one transmission (one frame on the air). Unique among the
/// frames currently on a [`Medium`](crate::Medium); ids are recycled once
/// a frame ends, so they must not be used as long-lived keys across a
/// frame's end.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FrameId(u64);

impl FrameId {
    pub(crate) const fn new(seq: u64) -> Self {
        FrameId(seq)
    }

    /// The underlying sequence number.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Rebuilds an id from [`as_u64`](Self::as_u64), for restoring a
    /// serialized world snapshot. The raw value must have come from a
    /// frame live on the [`Medium`](crate::Medium) the snapshot captured.
    pub const fn from_raw(raw: u64) -> Self {
        FrameId(raw)
    }
}

impl fmt::Display for FrameId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_round_trip() {
        let n = NodeId::from(7u32);
        assert_eq!(n.index(), 7);
        assert_eq!(n, NodeId::new(7));
    }

    #[test]
    fn ids_are_ordered() {
        assert!(NodeId::new(1) < NodeId::new(2));
        assert!(FrameId::new(1) < FrameId::new(2));
    }
}
