//! The shared radio medium.
//!
//! [`Medium`] tracks every frame currently on the air and each host's
//! transceiver state. It is deliberately ignorant of *positions*: the
//! caller decides who is in range of a transmission (unit-disk or
//! otherwise) and passes the listener set to
//! [`begin_transmission`](Medium::begin_transmission). That keeps this
//! crate a pure, exhaustively testable state machine and confines geometry
//! to one place in the simulator.
//!
//! ## Reception model (paper §2.2.3)
//!
//! A frame is decoded by a listener iff, for its **entire airtime**:
//!
//! * no other in-range frame overlaps it at that listener (no capture
//!   effect — overlapping frames garble each other), and
//! * the listener itself never transmits (half-duplex).
//!
//! There is no collision detection: a garbled frame still occupies the
//! medium until its scheduled end, exactly as in the paper ("a host will
//! keep transmitting the packet even if some of its foregoing bits have
//! been garbled").
//!
//! Carrier sense reports whether any *foreign* signal is in the air at a
//! host; a host's own transmission is not carrier (the MAC knows about its
//! own frames).

use manet_sim_engine::{SimRng, SimTime, Slab, SlabSlot, WireDecoder, WireEncoder, WireError};

use crate::id::{FrameId, NodeId};

/// Why a frame delivery failed at one listener.
///
/// The first cause to strike a frame wins and is never overwritten: a
/// half-duplex miss stays a half-duplex miss even if another frame later
/// overlaps it, so the per-cause counters partition the losses exactly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LossCause {
    /// Garbled by an overlapping in-range frame under the paper's
    /// no-capture assumption (§2.2.3) — a true collision.
    Overlap,
    /// The listener was itself transmitting during (part of) the frame's
    /// airtime, so its half-duplex transceiver never saw it.
    HalfDuplex,
    /// Injected random channel loss ([`Medium::with_drop_probability`]) —
    /// failure injection, not contention.
    Injected,
    /// Lost the capture arbitration: the frame's signal failed the SIR
    /// test against summed interference under a [`CaptureModel`].
    Capture,
}

/// Running totals of frame-delivery losses, split by [`LossCause`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LossCounters {
    /// Losses to overlapping frames without capture (true collisions).
    pub overlap: u64,
    /// Losses because the listener was transmitting (half-duplex misses).
    pub half_duplex: u64,
    /// Losses injected by [`Medium::with_drop_probability`].
    pub injected: u64,
    /// Losses to capture arbitration (SIR below threshold under overlap).
    pub capture: u64,
}

impl LossCounters {
    /// Sum over all causes: every delivery with `decoded == false`.
    pub fn total(&self) -> u64 {
        self.overlap + self.half_duplex + self.injected + self.capture
    }

    /// Adds another set of counters into this one.
    pub fn merge(&mut self, other: &LossCounters) {
        self.overlap += other.overlap;
        self.half_duplex += other.half_duplex;
        self.injected += other.injected;
        self.capture += other.capture;
    }

    fn tally(&mut self, cause: LossCause) {
        match cause {
            LossCause::Overlap => self.overlap += 1,
            LossCause::HalfDuplex => self.half_duplex += 1,
            LossCause::Injected => self.injected += 1,
            LossCause::Capture => self.capture += 1,
        }
    }
}

/// A frame currently being received (or jammed) at one listener.
#[derive(Debug, Clone)]
struct IncomingFrame {
    frame: FrameId,
    /// Received signal strength at this listener (arbitrary linear units;
    /// only ratios matter). 1.0 when the wiring does not model power.
    signal: f64,
    /// Why this frame is already lost at this listener; `None` while it is
    /// still decodable. First cause wins (see [`LossCause`]).
    cause: Option<LossCause>,
}

impl IncomingFrame {
    /// Marks the frame lost for `cause` unless an earlier cause already
    /// struck it.
    fn garble(&mut self, cause: LossCause) {
        self.cause.get_or_insert(cause);
    }
}

/// A listener of a transmission, with the signal strength it receives.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Listener {
    /// The receiving host.
    pub node: NodeId,
    /// Received signal strength, linear units (e.g. `1 / d^alpha`).
    pub signal: f64,
}

/// Physical-layer capture: a frame survives overlap when its signal
/// exceeds the sum of all interfering signals by `threshold` (a linear
/// SIR requirement). Without a capture model any overlap garbles all
/// involved frames — the paper's §2.2.3 assumption.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CaptureModel {
    /// Required signal-to-interference ratio, linear (e.g. 4.0 ≈ 6 dB).
    pub threshold: f64,
}

impl CaptureModel {
    /// Creates a capture model.
    ///
    /// # Panics
    ///
    /// Panics unless `threshold > 0` and finite.
    pub fn new(threshold: f64) -> Self {
        assert!(
            threshold.is_finite() && threshold > 0.0,
            "capture threshold must be positive and finite, got {threshold}"
        );
        CaptureModel { threshold }
    }
}

/// Per-host transceiver state.
#[derive(Debug, Clone, Default)]
struct Radio {
    /// End of this host's own transmission, if it is transmitting.
    tx_end: Option<SimTime>,
    /// Foreign frames currently on the air at this host.
    incoming: Vec<IncomingFrame>,
}

impl Radio {
    fn carrier_busy(&self) -> bool {
        !self.incoming.is_empty()
    }
}

/// Record of one active transmission.
#[derive(Debug, Clone)]
struct ActiveTx {
    source: NodeId,
    listeners: Vec<NodeId>,
    end: SimTime,
}

/// Carrier-sense transition at one host caused by a transmission starting
/// or ending.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CarrierChange {
    /// The host whose carrier-sense state flipped.
    pub node: NodeId,
    /// `true`: medium went busy; `false`: medium went idle.
    pub busy: bool,
}

/// Result of starting a transmission.
#[derive(Debug, Clone)]
pub struct TxStart {
    /// Identifier of the new frame.
    pub frame: FrameId,
    /// Hosts whose carrier sense flipped from idle to busy.
    pub carrier_changes: Vec<CarrierChange>,
}

/// One listener's outcome for a finished frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delivery {
    /// The listener.
    pub to: NodeId,
    /// `true` when the frame was decoded; `false` when it was lost (see
    /// [`cause`](Self::cause) for why).
    pub decoded: bool,
    /// Why the frame was lost; `None` exactly when `decoded` is `true`.
    pub cause: Option<LossCause>,
}

/// Result of a transmission ending.
#[derive(Debug, Clone)]
pub struct TxEnd {
    /// The transmitting host (now free to transmit again).
    pub source: NodeId,
    /// Per-listener outcomes, in listener order.
    pub deliveries: Vec<Delivery>,
    /// Hosts whose carrier sense flipped from busy to idle.
    pub carrier_changes: Vec<CarrierChange>,
}

/// The shared medium: all transceivers plus every frame on the air.
///
/// # Examples
///
/// ```
/// use manet_phy::{Medium, NodeId};
/// use manet_sim_engine::{SimDuration, SimTime};
///
/// let mut medium = Medium::new(3);
/// let a = NodeId::new(0);
/// let b = NodeId::new(1);
/// let t0 = SimTime::ZERO;
/// let start = medium.begin_transmission(a, t0, t0 + SimDuration::from_micros(2432), &[b]);
/// let end = medium.end_transmission(start.frame, t0 + SimDuration::from_micros(2432));
/// assert!(end.deliveries[0].decoded);
/// ```
#[derive(Debug)]
pub struct Medium {
    radios: Vec<Radio>,
    /// Frames on the air, keyed by slot: a [`FrameId`] *is* its slab slot,
    /// so ids are recycled once a frame ends. Uniqueness holds among live
    /// frames — all any caller may key on — while lookup and removal stay
    /// hash-free.
    active: Slab<ActiveTx>,
    /// Listener vectors recycled between frames: ended frames return
    /// theirs here and starting frames take one back, so steady-state
    /// frame turnover performs no allocation.
    listener_pool: Vec<Vec<NodeId>>,
    /// Independent per-delivery loss probability (failure injection).
    drop_probability: f64,
    drop_rng: Option<SimRng>,
    capture: Option<CaptureModel>,
    losses: LossCounters,
    frames_sent: u64,
}

impl Medium {
    /// Creates a medium for `hosts` transceivers, all idle.
    pub fn new(hosts: usize) -> Self {
        Medium {
            radios: vec![Radio::default(); hosts],
            active: Slab::new(),
            listener_pool: Vec::new(),
            drop_probability: 0.0,
            drop_rng: None,
            capture: None,
            losses: LossCounters::default(),
            frames_sent: 0,
        }
    }

    /// Adds independent random frame loss with probability `p` per
    /// delivery — a failure-injection hook for robustness experiments.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn with_drop_probability(mut self, p: f64, rng: SimRng) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        self.drop_probability = p;
        self.drop_rng = Some(rng);
        self
    }

    /// Enables physical-layer capture with the given linear SIR
    /// threshold. Off by default (the paper's no-capture assumption).
    pub fn with_capture(mut self, model: CaptureModel) -> Self {
        self.capture = Some(model);
        self
    }

    /// Number of hosts.
    pub fn host_count(&self) -> usize {
        self.radios.len()
    }

    /// `true` when a foreign signal is in the air at `node`.
    pub fn is_carrier_busy(&self, node: NodeId) -> bool {
        self.radios[node.index()].carrier_busy()
    }

    /// `true` when `node` is currently transmitting.
    pub fn is_transmitting(&self, node: NodeId) -> bool {
        self.radios[node.index()].tx_end.is_some()
    }

    /// Total frames put on the air so far.
    pub fn frames_sent(&self) -> u64 {
        self.frames_sent
    }

    /// Total frame deliveries lost to *overlapping transmissions* so far:
    /// no-capture overlap garbles plus capture-arbitration losses. This is
    /// the paper-comparable contention figure; half-duplex misses and
    /// injected drops are counted separately (see
    /// [`loss_counters`](Self::loss_counters)).
    pub fn collision_count(&self) -> u64 {
        self.losses.overlap + self.losses.capture
    }

    /// Per-cause loss totals across all deliveries so far.
    pub fn loss_counters(&self) -> LossCounters {
        self.losses
    }

    /// Scripted fault injection: marks `frame` as lost at `listener` with
    /// [`LossCause::Injected`] unless an earlier cause already struck it.
    ///
    /// This is the hook the scenario subsystem drives for link blackouts,
    /// region partitions, and noise bursts. The frame stays on the air —
    /// carrier sense and overlap accounting are unaffected (deep-fade
    /// semantics) — it just arrives undecodable. Returns whether the
    /// injection applied: `false` means an earlier cause (overlap,
    /// half-duplex miss, channel drop) already claimed the frame, and the
    /// usual first-cause-wins accounting stands.
    ///
    /// # Panics
    ///
    /// Panics when `frame` is not on the air at `listener`.
    pub fn inject_loss(&mut self, frame: FrameId, listener: NodeId) -> bool {
        let incoming = self.radios[listener.index()]
            .incoming
            .iter_mut()
            .find(|inc| inc.frame == frame)
            .expect("inject_loss: frame is not on the air at listener");
        if incoming.cause.is_none() {
            incoming.cause = Some(LossCause::Injected);
            true
        } else {
            false
        }
    }

    /// Puts a frame on the air from `source`, heard by `listeners`,
    /// lasting until `end`.
    ///
    /// The listener set is captured now (receivers moving in or out of
    /// range mid-frame are not re-evaluated; at the paper's speeds a host
    /// moves millimeters per frame). The source must not appear in
    /// `listeners`.
    ///
    /// # Panics
    ///
    /// Panics if the source is already transmitting, if `end <= now`, or
    /// if `listeners` contains `source`.
    pub fn begin_transmission(
        &mut self,
        source: NodeId,
        now: SimTime,
        end: SimTime,
        listeners: &[NodeId],
    ) -> TxStart {
        let mut carrier_changes = Vec::new();
        let frame = self.begin_transmission_into(source, now, end, listeners, &mut carrier_changes);
        TxStart {
            frame,
            carrier_changes,
        }
    }

    /// Allocation-free variant of
    /// [`begin_transmission`](Self::begin_transmission): carrier-sense
    /// transitions are appended to the caller's reusable `carrier_changes`
    /// buffer (cleared first) and only the new [`FrameId`] is returned.
    #[cfg_attr(simlint, hot_path)]
    pub fn begin_transmission_into(
        &mut self,
        source: NodeId,
        now: SimTime,
        end: SimTime,
        listeners: &[NodeId],
        carrier_changes: &mut Vec<CarrierChange>,
    ) -> FrameId {
        self.begin_tx_inner(
            source,
            now,
            end,
            listeners.iter().map(|&node| Listener { node, signal: 1.0 }),
            carrier_changes,
        )
    }

    /// Like [`begin_transmission`](Self::begin_transmission), but with a
    /// per-listener received signal strength so a [`CaptureModel`] can
    /// arbitrate overlaps.
    ///
    /// # Panics
    ///
    /// Same conditions as `begin_transmission`, plus non-positive signal
    /// strengths.
    pub fn begin_transmission_with_signals(
        &mut self,
        source: NodeId,
        now: SimTime,
        end: SimTime,
        listeners: &[Listener],
    ) -> TxStart {
        let mut carrier_changes = Vec::new();
        let frame = self.begin_transmission_with_signals_into(
            source,
            now,
            end,
            listeners,
            &mut carrier_changes,
        );
        TxStart {
            frame,
            carrier_changes,
        }
    }

    /// Allocation-free variant of
    /// [`begin_transmission_with_signals`](Self::begin_transmission_with_signals);
    /// see [`begin_transmission_into`](Self::begin_transmission_into).
    #[cfg_attr(simlint, hot_path)]
    pub fn begin_transmission_with_signals_into(
        &mut self,
        source: NodeId,
        now: SimTime,
        end: SimTime,
        listeners: &[Listener],
        carrier_changes: &mut Vec<CarrierChange>,
    ) -> FrameId {
        self.begin_tx_inner(source, now, end, listeners.iter().copied(), carrier_changes)
    }

    /// Shared transmission-start path. Generic over the listener iterator
    /// so the plain-`NodeId` entry point can adapt on the fly instead of
    /// materializing a `Vec<Listener>`. Single pass: per-listener
    /// validation happens inline, in listener order, before any state for
    /// that listener is touched — and crucially before any drop-RNG draw,
    /// keeping the injected-loss stream identical to the old two-pass
    /// implementation.
    #[cfg_attr(simlint, hot_path)]
    fn begin_tx_inner(
        &mut self,
        source: NodeId,
        now: SimTime,
        end: SimTime,
        listeners: impl Iterator<Item = Listener>,
        carrier_changes: &mut Vec<CarrierChange>,
    ) -> FrameId {
        assert!(end > now, "transmission must have positive duration");
        assert!(
            !self.is_transmitting(source),
            "{source} is already transmitting"
        );
        self.frames_sent += 1;

        // Reserve the frame's slot up front so listeners can be tagged
        // with it as they are processed; the listener list is filled in
        // below, reusing a pooled vector.
        let mut tx_listeners = self.listener_pool.pop().unwrap_or_default();
        tx_listeners.clear();
        let slot = self.active.insert(ActiveTx {
            source,
            listeners: tx_listeners,
            end,
        });
        let frame = FrameId::new(u64::from(slot));

        // Half-duplex: starting to transmit garbles everything the source
        // was in the middle of receiving.
        let src_radio = &mut self.radios[source.index()];
        src_radio.tx_end = Some(end);
        for inc in &mut src_radio.incoming {
            inc.garble(LossCause::HalfDuplex);
        }

        carrier_changes.clear();
        for listener in listeners {
            assert!(
                listener.node != source,
                "source {source} cannot listen to itself"
            );
            assert!(
                listener.signal.is_finite() && listener.signal > 0.0,
                "signal strengths must be positive and finite"
            );
            let radio = &mut self.radios[listener.node.index()];
            let was_busy = radio.carrier_busy();

            // A listener that is itself transmitting misses the frame
            // outright (half-duplex). This takes precedence over any
            // overlap: the transceiver could not have received the frame
            // even on a clear channel.
            let mut cause = radio.tx_end.is_some().then_some(LossCause::HalfDuplex);
            if !radio.incoming.is_empty() {
                match self.capture {
                    None => {
                        // No capture: any overlap garbles everything
                        // involved (paper §2.2.3).
                        for other in &mut radio.incoming {
                            other.garble(LossCause::Overlap);
                        }
                        cause.get_or_insert(LossCause::Overlap);
                    }
                    Some(model) => {
                        // SIR test: each frame survives only if its signal
                        // beats the sum of all others by the threshold.
                        let total: f64 =
                            radio.incoming.iter().map(|f| f.signal).sum::<f64>() + listener.signal;
                        for other in &mut radio.incoming {
                            if other.signal < model.threshold * (total - other.signal) {
                                other.garble(LossCause::Capture);
                            }
                        }
                        if listener.signal < model.threshold * (total - listener.signal) {
                            cause.get_or_insert(LossCause::Capture);
                        }
                    }
                }
            }
            // Injected channel loss (failure injection, not a collision).
            // The RNG is consulted only for frames still decodable, so the
            // injected-loss stream is independent of how much garbling the
            // contention model produced.
            if cause.is_none() && self.drop_probability > 0.0 {
                let rng = self
                    .drop_rng
                    .as_mut()
                    .expect("drop probability set without rng");
                if rng.gen_bool(self.drop_probability) {
                    cause = Some(LossCause::Injected);
                }
            }
            radio.incoming.push(IncomingFrame {
                frame,
                signal: listener.signal,
                cause,
            });
            if !was_busy {
                carrier_changes.push(CarrierChange {
                    node: listener.node,
                    busy: true,
                });
            }
            self.active[slot].listeners.push(listener.node);
        }
        frame
    }

    /// Takes a frame off the air at its scheduled end time, reporting
    /// which listeners decoded it and whose carrier sense went idle.
    ///
    /// # Panics
    ///
    /// Panics if `frame` is unknown (already ended or never started) or if
    /// `now` differs from the end passed to `begin_transmission`.
    pub fn end_transmission(&mut self, frame: FrameId, now: SimTime) -> TxEnd {
        let mut deliveries = Vec::new();
        let mut carrier_changes = Vec::new();
        let source = self.end_transmission_into(frame, now, &mut deliveries, &mut carrier_changes);
        TxEnd {
            source,
            deliveries,
            carrier_changes,
        }
    }

    /// Allocation-free variant of
    /// [`end_transmission`](Self::end_transmission): per-listener outcomes
    /// and idle carrier-sense transitions are appended to the caller's
    /// reusable buffers (cleared first) and the transmitting host is
    /// returned. The frame's listener vector goes back into the internal
    /// pool for the next transmission.
    #[cfg_attr(simlint, hot_path)]
    pub fn end_transmission_into(
        &mut self,
        frame: FrameId,
        now: SimTime,
        deliveries: &mut Vec<Delivery>,
        carrier_changes: &mut Vec<CarrierChange>,
    ) -> NodeId {
        let slot = u32::try_from(frame.as_u64()).expect("frame slot out of range");
        assert!(
            self.active.contains(slot),
            "ending a frame that is not on the air"
        );
        let tx = self.active.remove(slot);
        assert_eq!(tx.end, now, "frame ended at the wrong time");

        let src_radio = &mut self.radios[tx.source.index()];
        debug_assert_eq!(src_radio.tx_end, Some(now), "source lost its tx state");
        src_radio.tx_end = None;

        deliveries.clear();
        carrier_changes.clear();
        for &listener in &tx.listeners {
            let radio = &mut self.radios[listener.index()];
            let idx = radio
                .incoming
                .iter()
                .position(|inc| inc.frame == frame)
                .expect("listener lost an incoming frame");
            let inc = radio.incoming.swap_remove(idx);
            if let Some(cause) = inc.cause {
                self.losses.tally(cause);
            }
            deliveries.push(Delivery {
                to: listener,
                decoded: inc.cause.is_none(),
                cause: inc.cause,
            });
            if !radio.carrier_busy() {
                carrier_changes.push(CarrierChange {
                    node: listener,
                    busy: false,
                });
            }
        }
        let source = tx.source;
        self.listener_pool.push(tx.listeners);
        source
    }

    /// Serializes the medium's mutable state — transceivers, frames on
    /// the air, injected-drop RNG position, and loss counters — for a
    /// world snapshot. Configuration (host count, drop probability,
    /// capture model) is *not* written:
    /// [`restore_snapshot`](Self::restore_snapshot) targets a medium
    /// already built with the same configuration.
    pub fn snapshot_into(&self, enc: &mut WireEncoder) {
        enc.len(self.radios.len());
        for radio in &self.radios {
            match radio.tx_end {
                None => enc.bool(false),
                Some(end) => {
                    enc.bool(true);
                    enc.u64(end.as_nanos());
                }
            }
            enc.len(radio.incoming.len());
            for inc in &radio.incoming {
                enc.u64(inc.frame.as_u64());
                enc.f64(inc.signal);
                match inc.cause {
                    None => enc.u8(0),
                    Some(LossCause::Overlap) => enc.u8(1),
                    Some(LossCause::HalfDuplex) => enc.u8(2),
                    Some(LossCause::Injected) => enc.u8(3),
                    Some(LossCause::Capture) => enc.u8(4),
                }
            }
        }
        let (free_head, slots) = self.active.export_slots();
        let slots: Vec<SlabSlot<&ActiveTx>> = slots.collect();
        enc.u32(free_head);
        enc.len(slots.len());
        for slot in slots {
            match slot {
                SlabSlot::Vacant { next_free } => {
                    enc.u8(0);
                    enc.u32(next_free);
                }
                SlabSlot::Occupied(tx) => {
                    enc.u8(1);
                    enc.u32(tx.source.index() as u32);
                    enc.len(tx.listeners.len());
                    for &listener in &tx.listeners {
                        enc.u32(listener.index() as u32);
                    }
                    enc.u64(tx.end.as_nanos());
                }
            }
        }
        match &self.drop_rng {
            None => enc.bool(false),
            Some(rng) => {
                enc.bool(true);
                for word in rng.state() {
                    enc.u64(word);
                }
            }
        }
        enc.u64(self.losses.overlap);
        enc.u64(self.losses.half_duplex);
        enc.u64(self.losses.injected);
        enc.u64(self.losses.capture);
        enc.u64(self.frames_sent);
    }

    /// Overwrites this medium's mutable state from
    /// [`snapshot_into`](Self::snapshot_into) output. The medium must
    /// have been built with the same configuration (host count, drop
    /// probability, capture model) as the snapshotted one; mismatches in
    /// the parts the snapshot can see are reported as errors.
    pub fn restore_snapshot(&mut self, dec: &mut WireDecoder<'_>) -> Result<(), WireError> {
        let count_at = dec.position();
        if dec.len()? != self.radios.len() {
            return Err(WireError {
                at: count_at,
                what: "medium host count mismatch",
            });
        }
        for radio in &mut self.radios {
            radio.tx_end = if dec.bool()? {
                Some(SimTime::from_nanos(dec.u64()?))
            } else {
                None
            };
            let incoming_len = dec.len()?;
            radio.incoming.clear();
            radio.incoming.reserve(incoming_len);
            for _ in 0..incoming_len {
                let frame = FrameId::new(dec.u64()?);
                let signal = dec.f64()?;
                let tag_at = dec.position();
                let cause = match dec.u8()? {
                    0 => None,
                    1 => Some(LossCause::Overlap),
                    2 => Some(LossCause::HalfDuplex),
                    3 => Some(LossCause::Injected),
                    4 => Some(LossCause::Capture),
                    _ => {
                        return Err(WireError {
                            at: tag_at,
                            what: "loss cause tag",
                        })
                    }
                };
                radio.incoming.push(IncomingFrame {
                    frame,
                    signal,
                    cause,
                });
            }
        }
        let free_head = dec.u32()?;
        let slot_count = dec.len()?;
        let mut slots = Vec::with_capacity(slot_count);
        for _ in 0..slot_count {
            let tag_at = dec.position();
            match dec.u8()? {
                0 => slots.push(SlabSlot::Vacant {
                    next_free: dec.u32()?,
                }),
                1 => {
                    let source = NodeId::new(dec.u32()?);
                    let listener_count = dec.len()?;
                    let mut listeners = Vec::with_capacity(listener_count);
                    for _ in 0..listener_count {
                        listeners.push(NodeId::new(dec.u32()?));
                    }
                    let end = SimTime::from_nanos(dec.u64()?);
                    slots.push(SlabSlot::Occupied(ActiveTx {
                        source,
                        listeners,
                        end,
                    }));
                }
                _ => {
                    return Err(WireError {
                        at: tag_at,
                        what: "active-tx slot tag",
                    })
                }
            }
        }
        self.active = Slab::from_slots(free_head, slots);
        let rng_at = dec.position();
        match (dec.bool()?, self.drop_rng.as_mut()) {
            (false, None) => {}
            (true, Some(rng)) => {
                let mut state = [0u64; 4];
                for word in &mut state {
                    *word = dec.u64()?;
                }
                *rng = SimRng::from_state(state);
            }
            _ => {
                return Err(WireError {
                    at: rng_at,
                    what: "drop RNG presence mismatch",
                })
            }
        }
        self.losses = LossCounters {
            overlap: dec.u64()?,
            half_duplex: dec.u64()?,
            injected: dec.u64()?,
            capture: dec.u64()?,
        };
        self.frames_sent = dec.u64()?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use manet_sim_engine::SimDuration;

    const AIRTIME: SimDuration = SimDuration::from_micros(2_432);

    fn ids(range: std::ops::Range<u32>) -> Vec<NodeId> {
        range.map(NodeId::new).collect()
    }

    #[test]
    fn clean_frame_is_decoded_by_all_listeners() {
        let mut m = Medium::new(4);
        let t0 = SimTime::ZERO;
        let start = m.begin_transmission(NodeId::new(0), t0, t0 + AIRTIME, &ids(1..4));
        let end = m.end_transmission(start.frame, t0 + AIRTIME);
        assert_eq!(end.deliveries.len(), 3);
        assert!(end.deliveries.iter().all(|d| d.decoded));
        assert_eq!(m.collision_count(), 0);
    }

    #[test]
    fn injected_loss_garbles_one_listener_without_touching_carrier() {
        let mut m = Medium::new(4);
        let t0 = SimTime::ZERO;
        let start = m.begin_transmission(NodeId::new(0), t0, t0 + AIRTIME, &ids(1..4));
        assert!(
            m.inject_loss(start.frame, NodeId::new(2)),
            "first cause wins"
        );
        assert!(
            !m.inject_loss(start.frame, NodeId::new(2)),
            "already garbled: injection must report not-applied"
        );
        assert!(
            m.is_carrier_busy(NodeId::new(2)),
            "fault is a deep fade, not silence"
        );
        let end = m.end_transmission(start.frame, t0 + AIRTIME);
        let outcomes: Vec<(bool, Option<LossCause>)> = end
            .deliveries
            .iter()
            .map(|d| (d.decoded, d.cause))
            .collect();
        assert_eq!(
            outcomes,
            vec![
                (true, None),
                (false, Some(LossCause::Injected)),
                (true, None)
            ]
        );
        assert_eq!(m.loss_counters().injected, 1);
        assert_eq!(m.collision_count(), 0, "injected loss is not a collision");
    }

    #[test]
    fn overlapping_frames_garble_each_other() {
        // a and c both reach b; their frames overlap -> b decodes neither.
        let mut m = Medium::new(3);
        let (a, b, c) = (NodeId::new(0), NodeId::new(1), NodeId::new(2));
        let t0 = SimTime::ZERO;
        let f1 = m.begin_transmission(a, t0, t0 + AIRTIME, &[b]);
        let mid = t0 + AIRTIME / 2;
        let f2 = m.begin_transmission(c, mid, mid + AIRTIME, &[b]);
        let e1 = m.end_transmission(f1.frame, t0 + AIRTIME);
        assert!(!e1.deliveries[0].decoded, "first frame garbled");
        let e2 = m.end_transmission(f2.frame, mid + AIRTIME);
        assert!(!e2.deliveries[0].decoded, "second frame garbled");
        assert!(m.collision_count() >= 2);
    }

    #[test]
    fn hidden_terminal_collision() {
        // a -- b -- c: a and c cannot hear each other, both reach b.
        // Simultaneous transmissions collide at b only.
        let mut m = Medium::new(3);
        let (a, b, c) = (NodeId::new(0), NodeId::new(1), NodeId::new(2));
        let t0 = SimTime::ZERO;
        let f1 = m.begin_transmission(a, t0, t0 + AIRTIME, &[b]);
        let f2 = m.begin_transmission(c, t0, t0 + AIRTIME, &[b]);
        assert!(!m.end_transmission(f1.frame, t0 + AIRTIME).deliveries[0].decoded);
        assert!(!m.end_transmission(f2.frame, t0 + AIRTIME).deliveries[0].decoded);
    }

    #[test]
    fn half_duplex_listener_misses_frame() {
        // b is transmitting (to nobody in range) while a transmits to b.
        let mut m = Medium::new(2);
        let (a, b) = (NodeId::new(0), NodeId::new(1));
        let t0 = SimTime::ZERO;
        let fb = m.begin_transmission(b, t0, t0 + AIRTIME, &[]);
        let fa = m.begin_transmission(a, t0, t0 + AIRTIME, &[b]);
        let delivery = m.end_transmission(fa.frame, t0 + AIRTIME).deliveries[0];
        assert!(!delivery.decoded);
        assert_eq!(delivery.cause, Some(LossCause::HalfDuplex));
        m.end_transmission(fb.frame, t0 + AIRTIME);
        // A half-duplex miss is not a collision: it is counted separately.
        assert_eq!(m.collision_count(), 0);
        assert_eq!(m.loss_counters().half_duplex, 1);
    }

    #[test]
    fn loss_causes_partition_total_losses() {
        // One half-duplex miss (b transmitting) and one overlap pair at d.
        let mut m = Medium::new(5);
        let (a, b, c, d, e) = (
            NodeId::new(0),
            NodeId::new(1),
            NodeId::new(2),
            NodeId::new(3),
            NodeId::new(4),
        );
        let t0 = SimTime::ZERO;
        let fb = m.begin_transmission(b, t0, t0 + AIRTIME, &[]);
        let fa = m.begin_transmission(a, t0, t0 + AIRTIME, &[b]);
        let fc = m.begin_transmission(c, t0, t0 + AIRTIME, &[d]);
        let fe = m.begin_transmission(e, t0, t0 + AIRTIME, &[d]);
        for f in [fb.frame, fa.frame, fc.frame, fe.frame] {
            m.end_transmission(f, t0 + AIRTIME);
        }
        let losses = m.loss_counters();
        assert_eq!(losses.half_duplex, 1);
        assert_eq!(losses.overlap, 2);
        assert_eq!(losses.injected, 0);
        assert_eq!(losses.capture, 0);
        assert_eq!(losses.total(), 3);
        assert_eq!(m.collision_count(), 2, "collisions are overlap-only");
    }

    #[test]
    fn first_loss_cause_wins() {
        // b starts receiving from a, then starts its own transmission
        // (half-duplex), and a third frame later overlaps. The recorded
        // cause stays HalfDuplex.
        let mut m = Medium::new(3);
        let (a, b, c) = (NodeId::new(0), NodeId::new(1), NodeId::new(2));
        let t0 = SimTime::ZERO;
        let fa = m.begin_transmission(a, t0, t0 + AIRTIME, &[b]);
        let quarter = t0 + AIRTIME / 4;
        let fb = m.begin_transmission(b, quarter, quarter + AIRTIME, &[]);
        let mid = t0 + AIRTIME / 2;
        let fc = m.begin_transmission(c, mid, mid + AIRTIME, &[b]);
        let delivery = m.end_transmission(fa.frame, t0 + AIRTIME).deliveries[0];
        assert_eq!(delivery.cause, Some(LossCause::HalfDuplex));
        m.end_transmission(fb.frame, quarter + AIRTIME);
        let late = m.end_transmission(fc.frame, mid + AIRTIME).deliveries[0];
        // The late frame arrived while b was transmitting: half-duplex too.
        assert_eq!(late.cause, Some(LossCause::HalfDuplex));
        assert_eq!(m.loss_counters().half_duplex, 2);
        assert_eq!(m.collision_count(), 0);
    }

    #[test]
    fn injected_drop_rng_not_consumed_for_garbled_frames() {
        // Two media share drop seed and probability. Medium `noisy` first
        // suffers a capture episode in which BOTH overlapping frames are
        // garbled (comparable signals), medium `clean` does not. The
        // injected-loss RNG must not be consumed for the garbled frames,
        // so the decode pattern of the subsequent clean frames is
        // identical on both media.
        let drop_p = 0.4;
        let run = |with_weak_frame: bool| -> Vec<bool> {
            let mut m = Medium::new(3)
                .with_capture(CaptureModel::new(4.0))
                .with_drop_probability(drop_p, SimRng::seed_from(77));
            let (a, b, c) = (NodeId::new(0), NodeId::new(1), NodeId::new(2));
            let mut t = SimTime::ZERO;
            // The strong frame arrives on a clear channel, so it consumes
            // one drop-RNG draw in BOTH runs.
            let f1 = m.begin_transmission_with_signals(
                a,
                t,
                t + AIRTIME,
                &[Listener {
                    node: b,
                    signal: 100.0,
                }],
            );
            let f2 = with_weak_frame.then(|| {
                // The weak frame fails the SIR test the moment it arrives:
                // already garbled, so it must NOT consume a draw.
                m.begin_transmission_with_signals(
                    c,
                    t,
                    t + AIRTIME,
                    &[Listener {
                        node: b,
                        signal: 1.0,
                    }],
                )
            });
            m.end_transmission(f1.frame, t + AIRTIME);
            if let Some(f2) = f2 {
                let d2 = m.end_transmission(f2.frame, t + AIRTIME).deliveries[0];
                assert_eq!(d2.cause, Some(LossCause::Capture));
            }
            t += AIRTIME;
            (0..64)
                .map(|_| {
                    let s = m.begin_transmission(a, t, t + AIRTIME, &[b]);
                    let d = m.end_transmission(s.frame, t + AIRTIME).deliveries[0];
                    t += AIRTIME;
                    d.decoded
                })
                .collect()
        };
        let with_weak_frame = run(true);
        let without_weak_frame = run(false);
        assert_eq!(
            with_weak_frame, without_weak_frame,
            "garbled frames must not consume the injected-drop RNG"
        );
        assert!(
            with_weak_frame.iter().any(|&d| !d),
            "some injected drops expected at p = {drop_p}"
        );
    }

    #[test]
    fn injected_loss_is_reported_as_injected() {
        // p = 1: every otherwise-clean delivery is an injected drop.
        let mut m = Medium::new(2).with_drop_probability(1.0, SimRng::seed_from(3));
        let (a, b) = (NodeId::new(0), NodeId::new(1));
        let t0 = SimTime::ZERO;
        let s = m.begin_transmission(a, t0, t0 + AIRTIME, &[b]);
        let d = m.end_transmission(s.frame, t0 + AIRTIME).deliveries[0];
        assert_eq!(d.cause, Some(LossCause::Injected));
        assert_eq!(m.loss_counters().injected, 1);
        assert_eq!(m.collision_count(), 0);
    }

    #[test]
    fn starting_tx_garbles_reception_in_progress() {
        let mut m = Medium::new(2);
        let (a, b) = (NodeId::new(0), NodeId::new(1));
        let t0 = SimTime::ZERO;
        let fa = m.begin_transmission(a, t0, t0 + AIRTIME, &[b]);
        // b starts transmitting mid-reception.
        let mid = t0 + AIRTIME / 2;
        let fb = m.begin_transmission(b, mid, mid + AIRTIME, &[]);
        assert!(!m.end_transmission(fa.frame, t0 + AIRTIME).deliveries[0].decoded);
        m.end_transmission(fb.frame, mid + AIRTIME);
    }

    #[test]
    fn carrier_sense_transitions() {
        let mut m = Medium::new(3);
        let (a, b) = (NodeId::new(0), NodeId::new(1));
        let t0 = SimTime::ZERO;
        assert!(!m.is_carrier_busy(b));
        let start = m.begin_transmission(a, t0, t0 + AIRTIME, &[b]);
        assert_eq!(
            start.carrier_changes,
            vec![CarrierChange {
                node: b,
                busy: true
            }]
        );
        assert!(m.is_carrier_busy(b));
        let end = m.end_transmission(start.frame, t0 + AIRTIME);
        assert_eq!(
            end.carrier_changes,
            vec![CarrierChange {
                node: b,
                busy: false
            }]
        );
        assert!(!m.is_carrier_busy(b));
    }

    #[test]
    fn carrier_stays_busy_under_overlap() {
        let mut m = Medium::new(3);
        let (a, b, c) = (NodeId::new(0), NodeId::new(1), NodeId::new(2));
        let t0 = SimTime::ZERO;
        let f1 = m.begin_transmission(a, t0, t0 + AIRTIME, &[b]);
        let mid = t0 + AIRTIME / 2;
        let f2 = m.begin_transmission(c, mid, mid + AIRTIME, &[b]);
        // No new busy transition for b on the second frame.
        assert!(f2.carrier_changes.is_empty());
        // First frame ends: b still hears the second -> no idle transition.
        let e1 = m.end_transmission(f1.frame, t0 + AIRTIME);
        assert!(e1.carrier_changes.is_empty());
        assert!(m.is_carrier_busy(b));
        let e2 = m.end_transmission(f2.frame, mid + AIRTIME);
        assert_eq!(e2.carrier_changes.len(), 1);
        assert!(!m.is_carrier_busy(b));
    }

    #[test]
    fn injected_loss_drops_roughly_p() {
        let mut m = Medium::new(2).with_drop_probability(0.3, SimRng::seed_from(9));
        let (a, b) = (NodeId::new(0), NodeId::new(1));
        let mut t = SimTime::ZERO;
        let mut decoded = 0;
        let trials = 2_000;
        for _ in 0..trials {
            let s = m.begin_transmission(a, t, t + AIRTIME, &[b]);
            let e = m.end_transmission(s.frame, t + AIRTIME);
            if e.deliveries[0].decoded {
                decoded += 1;
            }
            t += AIRTIME;
        }
        let rate = decoded as f64 / trials as f64;
        assert!((rate - 0.7).abs() < 0.05, "decode rate {rate}");
    }

    #[test]
    fn frame_counters() {
        let mut m = Medium::new(2);
        let t0 = SimTime::ZERO;
        let s = m.begin_transmission(NodeId::new(0), t0, t0 + AIRTIME, &[NodeId::new(1)]);
        m.end_transmission(s.frame, t0 + AIRTIME);
        assert_eq!(m.frames_sent(), 1);
        assert_eq!(m.host_count(), 2);
    }

    #[test]
    fn capture_lets_strong_frame_survive() {
        // b hears a strong frame from a and a weak one from c; with a
        // 4x SIR capture threshold the strong frame decodes.
        let mut m = Medium::new(3).with_capture(CaptureModel::new(4.0));
        let (a, b, c) = (NodeId::new(0), NodeId::new(1), NodeId::new(2));
        let t0 = SimTime::ZERO;
        let strong = m.begin_transmission_with_signals(
            a,
            t0,
            t0 + AIRTIME,
            &[Listener {
                node: b,
                signal: 100.0,
            }],
        );
        let weak = m.begin_transmission_with_signals(
            c,
            t0,
            t0 + AIRTIME,
            &[Listener {
                node: b,
                signal: 1.0,
            }],
        );
        assert!(
            m.end_transmission(strong.frame, t0 + AIRTIME).deliveries[0].decoded,
            "strong frame captures the receiver"
        );
        assert!(
            !m.end_transmission(weak.frame, t0 + AIRTIME).deliveries[0].decoded,
            "weak frame is lost"
        );
    }

    #[test]
    fn capture_garbles_comparable_frames() {
        let mut m = Medium::new(3).with_capture(CaptureModel::new(4.0));
        let (a, b, c) = (NodeId::new(0), NodeId::new(1), NodeId::new(2));
        let t0 = SimTime::ZERO;
        let f1 = m.begin_transmission_with_signals(
            a,
            t0,
            t0 + AIRTIME,
            &[Listener {
                node: b,
                signal: 2.0,
            }],
        );
        let f2 = m.begin_transmission_with_signals(
            c,
            t0,
            t0 + AIRTIME,
            &[Listener {
                node: b,
                signal: 1.5,
            }],
        );
        assert!(!m.end_transmission(f1.frame, t0 + AIRTIME).deliveries[0].decoded);
        assert!(!m.end_transmission(f2.frame, t0 + AIRTIME).deliveries[0].decoded);
    }

    #[test]
    fn capture_sums_interference() {
        // One 10x frame against three 3x interferers: 10 < 4 * 9, so even
        // the strongest frame is garbled under summed interference.
        let mut m = Medium::new(5).with_capture(CaptureModel::new(4.0));
        let b = NodeId::new(0);
        let t0 = SimTime::ZERO;
        let strong = m.begin_transmission_with_signals(
            NodeId::new(1),
            t0,
            t0 + AIRTIME,
            &[Listener {
                node: b,
                signal: 10.0,
            }],
        );
        let mut others = Vec::new();
        for i in 2..5u32 {
            others.push(m.begin_transmission_with_signals(
                NodeId::new(i),
                t0,
                t0 + AIRTIME,
                &[Listener {
                    node: b,
                    signal: 3.0,
                }],
            ));
        }
        assert!(!m.end_transmission(strong.frame, t0 + AIRTIME).deliveries[0].decoded);
        for tx in others {
            assert!(!m.end_transmission(tx.frame, t0 + AIRTIME).deliveries[0].decoded);
        }
    }

    #[test]
    fn capture_does_not_help_half_duplex() {
        let mut m = Medium::new(2).with_capture(CaptureModel::new(1.0));
        let (a, b) = (NodeId::new(0), NodeId::new(1));
        let t0 = SimTime::ZERO;
        let fb = m.begin_transmission(b, t0, t0 + AIRTIME, &[]);
        let fa = m.begin_transmission_with_signals(
            a,
            t0,
            t0 + AIRTIME,
            &[Listener {
                node: b,
                signal: 1_000.0,
            }],
        );
        assert!(!m.end_transmission(fa.frame, t0 + AIRTIME).deliveries[0].decoded);
        m.end_transmission(fb.frame, t0 + AIRTIME);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn zero_signal_panics() {
        let mut m = Medium::new(2);
        let t0 = SimTime::ZERO;
        m.begin_transmission_with_signals(
            NodeId::new(0),
            t0,
            t0 + AIRTIME,
            &[Listener {
                node: NodeId::new(1),
                signal: 0.0,
            }],
        );
    }

    #[test]
    #[should_panic(expected = "already transmitting")]
    fn double_tx_panics() {
        let mut m = Medium::new(1);
        let t0 = SimTime::ZERO;
        m.begin_transmission(NodeId::new(0), t0, t0 + AIRTIME, &[]);
        m.begin_transmission(NodeId::new(0), t0, t0 + AIRTIME, &[]);
    }

    #[test]
    #[should_panic(expected = "cannot listen to itself")]
    fn self_listener_panics() {
        let mut m = Medium::new(1);
        let t0 = SimTime::ZERO;
        m.begin_transmission(NodeId::new(0), t0, t0 + AIRTIME, &[NodeId::new(0)]);
    }
}
