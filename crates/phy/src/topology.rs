//! Unit-disk topology queries over a position snapshot.
//!
//! The simulator evaluates host positions at an event's timestamp and asks
//! this module who can hear whom: a host hears another iff their distance
//! is at most the transmission radius (the paper's unit-disk model,
//! r = 500 m).

use manet_geom::Vec2;

use crate::id::NodeId;

/// All hosts within `radius` of `positions[of]`, excluding `of` itself.
///
/// # Examples
///
/// ```
/// use manet_geom::Vec2;
/// use manet_phy::{in_range_of, NodeId};
///
/// let positions = [Vec2::new(0.0, 0.0), Vec2::new(400.0, 0.0), Vec2::new(900.0, 0.0)];
/// let heard = in_range_of(&positions, NodeId::new(0), 500.0);
/// assert_eq!(heard, vec![NodeId::new(1)]);
/// ```
pub fn in_range_of(positions: &[Vec2], of: NodeId, radius: f64) -> Vec<NodeId> {
    let center = positions[of.index()];
    let r2 = radius * radius;
    positions
        .iter()
        .enumerate()
        .filter(|&(i, p)| i != of.index() && p.distance_squared_to(center) <= r2)
        .map(|(i, _)| NodeId::new(i as u32))
        .collect()
}

/// Writes the hosts within `radius` of `of` (excluding `of` itself) into
/// `out` in ascending [`NodeId`] order, clearing it first — the
/// allocation-free variant of [`in_range_of`] for callers that issue a
/// single range query per position snapshot (where a linear scan beats
/// maintaining a spatial index).
pub fn in_range_into(positions: &[Vec2], of: NodeId, radius: f64, out: &mut Vec<NodeId>) {
    out.clear();
    let center = positions[of.index()];
    let r2 = radius * radius;
    for (i, p) in positions.iter().enumerate() {
        if i != of.index() && p.distance_squared_to(center) <= r2 {
            out.push(NodeId::new(i as u32));
        }
    }
}

/// `true` when hosts `a` and `b` are within `radius` of each other.
pub fn in_range(positions: &[Vec2], a: NodeId, b: NodeId, radius: f64) -> bool {
    positions[a.index()].distance_squared_to(positions[b.index()]) <= radius * radius
}

/// The set of hosts reachable from `source` (directly or over multiple
/// hops) in the unit-disk graph, **excluding** `source` itself.
///
/// This is the paper's `e` in `RE = r / e`: the hosts that *could* receive
/// a broadcast issued by `source` at this instant, accounting for network
/// partitions.
pub fn reachable_from(positions: &[Vec2], source: NodeId, radius: f64) -> Vec<NodeId> {
    let n = positions.len();
    let r2 = radius * radius;
    let mut visited = vec![false; n];
    visited[source.index()] = true;
    let mut stack = vec![source.index()];
    let mut out = Vec::new();
    while let Some(u) = stack.pop() {
        let pu = positions[u];
        for (v, pv) in positions.iter().enumerate() {
            if !visited[v] && pv.distance_squared_to(pu) <= r2 {
                visited[v] = true;
                stack.push(v);
                out.push(NodeId::new(v as u32));
            }
        }
    }
    out.sort();
    out
}

/// The connected components of the unit-disk graph, each sorted, largest
/// first.
pub fn components(positions: &[Vec2], radius: f64) -> Vec<Vec<NodeId>> {
    let n = positions.len();
    let mut seen = vec![false; n];
    let mut comps = Vec::new();
    for start in 0..n {
        if seen[start] {
            continue;
        }
        seen[start] = true;
        let mut comp = vec![NodeId::new(start as u32)];
        let mut rest = reachable_from(positions, NodeId::new(start as u32), radius);
        for &node in &rest {
            seen[node.index()] = true;
        }
        comp.append(&mut rest);
        comp.sort();
        comps.push(comp);
    }
    comps.sort_by_key(|c| std::cmp::Reverse(c.len()));
    comps
}

#[cfg(test)]
mod tests {
    use super::*;

    const R: f64 = 500.0;

    fn line(n: usize, spacing: f64) -> Vec<Vec2> {
        (0..n).map(|i| Vec2::new(i as f64 * spacing, 0.0)).collect()
    }

    #[test]
    fn in_range_respects_radius_boundary() {
        let pos = [Vec2::ZERO, Vec2::new(500.0, 0.0), Vec2::new(500.1, 0.0)];
        assert_eq!(
            in_range_of(&pos, NodeId::new(0), R),
            vec![NodeId::new(1)],
            "exactly at radius counts, just over does not"
        );
        assert!(in_range(&pos, NodeId::new(0), NodeId::new(1), R));
        assert!(!in_range(&pos, NodeId::new(0), NodeId::new(2), R));
    }

    #[test]
    fn chain_is_fully_reachable() {
        let pos = line(10, 450.0);
        let reach = reachable_from(&pos, NodeId::new(0), R);
        assert_eq!(reach.len(), 9);
    }

    #[test]
    fn gap_partitions_chain() {
        // Hosts 0-4 spaced 450 apart, then a 1000 m gap, then 5-9.
        let mut pos = line(5, 450.0);
        let offset = pos.last().unwrap().x + 1_000.0;
        pos.extend((0..5).map(|i| Vec2::new(offset + i as f64 * 450.0, 0.0)));
        let reach = reachable_from(&pos, NodeId::new(0), R);
        assert_eq!(reach.len(), 4, "only the first segment is reachable");
        let comps = components(&pos, R);
        assert_eq!(comps.len(), 2);
        assert_eq!(comps[0].len(), 5);
        assert_eq!(comps[1].len(), 5);
    }

    #[test]
    fn isolated_host_reaches_nobody() {
        let pos = [Vec2::ZERO, Vec2::new(10_000.0, 0.0)];
        assert!(reachable_from(&pos, NodeId::new(0), R).is_empty());
    }

    #[test]
    fn reachability_is_symmetric_set() {
        let pos = line(6, 400.0);
        for i in 0..6u32 {
            let reach = reachable_from(&pos, NodeId::new(i), R);
            assert_eq!(reach.len(), 5, "all hosts mutually reachable");
            assert!(!reach.contains(&NodeId::new(i)), "excludes self");
        }
    }

    #[test]
    fn components_cover_all_nodes_once() {
        let pos = [
            Vec2::ZERO,
            Vec2::new(400.0, 0.0),
            Vec2::new(5_000.0, 0.0),
            Vec2::new(5_400.0, 0.0),
            Vec2::new(20_000.0, 0.0),
        ];
        let comps = components(&pos, R);
        let total: usize = comps.iter().map(|c| c.len()).sum();
        assert_eq!(total, 5);
        assert_eq!(comps.len(), 3);
        assert_eq!(comps.last().unwrap().len(), 1);
    }
}
