//! Spatial strip partition for sharded world execution.
//!
//! A [`ShardMap`] splits the map into `shards` vertical strips of equal
//! width. Each strip must be at least one radio radius wide — that is the
//! lockstep-window invariant: a frame transmitted from inside strip `s`
//! can only reach hosts in strips `s-1..=s+1`, so the minimum cross-shard
//! propagation "delay" (in space) is one whole strip and a 3-strip scan
//! around any transmitter is provably sufficient. Requested shard counts
//! that would violate the invariant are clamped, never rejected: a 5×R
//! map asked for 16 shards silently runs 5.
//!
//! Strip assignment mirrors [`NeighborGrid`](crate::NeighborGrid) cell
//! clamping exactly: coordinates at or past the right map edge (including
//! `x == width` when `width` is an exact multiple of the strip width)
//! bin into the **last** strip, and coordinates at or below zero into
//! strip 0. Hosts that momentarily overshoot the map are therefore owned
//! by the border strips, not lost.

/// An immutable partition of the map's x-axis into equal-width strips.
///
/// # Examples
///
/// ```
/// use manet_phy::ShardMap;
///
/// // A 2500 m map with 500 m radios supports at most 5 strips.
/// let map = ShardMap::new(2_500.0, 500.0, 4);
/// assert_eq!(map.shards(), 4);
/// assert_eq!(map.shard_of_x(0.0), 0);
/// assert_eq!(map.shard_of_x(2_500.0), 3); // right edge bins into the last strip
/// assert_eq!(map.strips_overlapping(600.0, 700.0), (0, 1));
///
/// // Requests past the feasible maximum are clamped.
/// assert_eq!(ShardMap::new(2_500.0, 500.0, 64).shards(), 5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ShardMap {
    width: f64,
    strip: f64,
    shards: usize,
}

impl ShardMap {
    /// Builds a partition of a `width`-wide map into `requested` strips,
    /// clamped so every strip is at least `radius` wide (and to at least
    /// one strip).
    ///
    /// # Panics
    ///
    /// Panics unless `width` and `radius` are finite and positive.
    pub fn new(width: f64, radius: f64, requested: u32) -> Self {
        assert!(
            width.is_finite() && width > 0.0,
            "map width must be positive and finite"
        );
        assert!(
            radius.is_finite() && radius > 0.0,
            "radio radius must be positive and finite"
        );
        let feasible = (width / radius).floor().max(1.0) as usize;
        let shards = (requested.max(1) as usize).min(feasible);
        ShardMap {
            width,
            strip: width / shards as f64,
            shards,
        }
    }

    /// Number of strips after clamping.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// Width of one strip.
    pub fn strip_width(&self) -> f64 {
        self.strip
    }

    /// The strip owning x-coordinate `x`, clamped into `0..shards`.
    ///
    /// `x <= 0` maps to strip 0 and `x >= width` (including exactly
    /// `width`) to the last strip, matching the grid's cell clamping.
    pub fn shard_of_x(&self, x: f64) -> usize {
        let idx = (x / self.strip).floor();
        if idx <= 0.0 {
            0
        } else {
            (idx as usize).min(self.shards - 1)
        }
    }

    /// Inclusive range `(first, last)` of strips whose x-extent intersects
    /// the closed interval `[lo, hi]`. The interval may extend past the
    /// map; it is clamped into the border strips.
    pub fn strips_overlapping(&self, lo: f64, hi: f64) -> (usize, usize) {
        debug_assert!(lo <= hi, "inverted interval");
        (self.shard_of_x(lo), self.shard_of_x(hi))
    }

    /// Whether strips `a` and `b` can interact within one radio hop.
    ///
    /// Because every strip is at least one radio radius wide, a frame
    /// transmitted from inside strip `s` reaches only strips `s-1..=s+1`
    /// — so two strips interact iff they are the same or neighbors. This
    /// is the adjacency relation the epoch-parallel executor's safety
    /// horizon rests on.
    pub fn adjacent(&self, a: usize, b: usize) -> bool {
        debug_assert!(a < self.shards && b < self.shards, "strip out of range");
        a.abs_diff(b) <= 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clamps_to_feasible_strip_count() {
        assert_eq!(ShardMap::new(2_500.0, 500.0, 1).shards(), 1);
        assert_eq!(ShardMap::new(2_500.0, 500.0, 5).shards(), 5);
        assert_eq!(ShardMap::new(2_500.0, 500.0, 6).shards(), 5);
        assert_eq!(ShardMap::new(400.0, 500.0, 8).shards(), 1);
        assert_eq!(ShardMap::new(2_500.0, 500.0, 0).shards(), 1);
    }

    #[test]
    fn every_strip_is_at_least_one_radius_wide() {
        for &(w, r, k) in &[
            (2_500.0, 500.0, 7u32),
            (5_000.0, 500.0, 64),
            (1_234.5, 300.0, 3),
        ] {
            let map = ShardMap::new(w, r, k);
            assert!(
                map.strip_width() >= r,
                "{w}x{r}@{k}: strip {}",
                map.strip_width()
            );
        }
    }

    #[test]
    fn exact_boundaries_bin_like_the_grid() {
        let map = ShardMap::new(2_000.0, 500.0, 4);
        assert_eq!(map.shard_of_x(-50.0), 0);
        assert_eq!(map.shard_of_x(0.0), 0);
        assert_eq!(map.shard_of_x(499.999), 0);
        assert_eq!(map.shard_of_x(500.0), 1, "interior boundary goes right");
        assert_eq!(map.shard_of_x(1_999.999), 3);
        assert_eq!(map.shard_of_x(2_000.0), 3, "exact right edge stays in-map");
        assert_eq!(map.shard_of_x(2_400.0), 3);
    }

    #[test]
    fn overlap_ranges_cover_the_query_window() {
        let map = ShardMap::new(2_000.0, 500.0, 4);
        assert_eq!(map.strips_overlapping(-100.0, 2_100.0), (0, 3));
        assert_eq!(map.strips_overlapping(750.0, 750.0), (1, 1));
        assert_eq!(map.strips_overlapping(499.0, 501.0), (0, 1));
    }

    #[test]
    fn adjacency_is_reflexive_symmetric_and_one_wide() {
        let map = ShardMap::new(2_500.0, 500.0, 5);
        for a in 0..map.shards() {
            for b in 0..map.shards() {
                assert_eq!(map.adjacent(a, b), map.adjacent(b, a));
                assert_eq!(map.adjacent(a, b), a.abs_diff(b) <= 1);
            }
        }
        // Any transmitter's one-hop window overlaps only adjacent strips.
        let radius = 500.0;
        for x in [0.0, 250.0, 999.9, 1_000.0, 1_700.0, 2_500.0] {
            let home = map.shard_of_x(x);
            let (lo, hi) = map.strips_overlapping(x - radius, x + radius);
            for s in lo..=hi {
                assert!(map.adjacent(home, s), "x={x}: strip {s} not adjacent");
            }
        }
    }
}
