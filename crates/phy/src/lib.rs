//! # manet-phy
//!
//! The radio layer of the MANET broadcast-storm reproduction: host and
//! frame [identifiers](NodeId), the shared [`Medium`] with receiver-side
//! collision tracking and carrier sense, and unit-disk
//! [topology queries](reachable_from).
//!
//! The medium is a pure state machine — it never looks at positions. The
//! simulation wiring evaluates host positions at each event, derives the
//! listener set with [`in_range_of`], and drives
//! [`Medium::begin_transmission`] / [`Medium::end_transmission`]. This
//! split keeps the collision model independently testable (including the
//! hidden-terminal and half-duplex cases of paper §2.2.3).
//!
//! # Examples
//!
//! ```
//! use manet_geom::Vec2;
//! use manet_phy::{in_range_of, Medium, NodeId};
//! use manet_sim_engine::{SimDuration, SimTime};
//!
//! // Three hosts on a line; only the middle one hears the first.
//! let positions = [Vec2::ZERO, Vec2::new(450.0, 0.0), Vec2::new(900.0, 0.0)];
//! let src = NodeId::new(0);
//! let listeners = in_range_of(&positions, src, 500.0);
//!
//! let mut medium = Medium::new(3);
//! let t0 = SimTime::ZERO;
//! let airtime = SimDuration::from_micros(2_432); // 280 B at 1 Mb/s + PLCP
//! let start = medium.begin_transmission(src, t0, t0 + airtime, &listeners);
//! let end = medium.end_transmission(start.frame, t0 + airtime);
//! assert_eq!(end.deliveries.len(), 1);
//! assert!(end.deliveries[0].decoded);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod grid;
mod id;
mod medium;
mod shard;
mod topology;

pub use grid::NeighborGrid;
pub use id::{FrameId, NodeId};
pub use medium::{
    CaptureModel, CarrierChange, Delivery, Listener, LossCause, LossCounters, Medium, TxEnd,
    TxStart,
};
pub use shard::ShardMap;
pub use topology::{components, in_range, in_range_into, in_range_of, reachable_from};
