//! Property-based tests for the geometry layer.

use manet_geom::{additional_coverage_two, intc, sample_in_disk, CoverageGrid, Rect, Vec2};
use manet_sim_engine::SimRng;
use manet_testkit::prop_check;
use std::f64::consts::PI;

prop_check! {
    /// 0 <= INTC(d) <= πr² for all valid inputs.
    fn intc_is_bounded(g) {
        let d = g.f64_in(0.0..5_000.0);
        let r = g.f64_in(1.0..2_000.0);
        let v = intc(d, r);
        assert!(v >= 0.0);
        assert!(v <= PI * r * r + 1e-6);
    }

    /// INTC scales with r²: INTC(s·d, s·r) = s²·INTC(d, r).
    fn intc_scales_quadratically(g) {
        let d = g.f64_in(0.0..1_000.0);
        let s = g.f64_in(0.5..4.0);
        let r = 500.0;
        let base = intc(d, r);
        let scaled = intc(s * d, s * r);
        assert!((scaled - s * s * base).abs() < 1e-6 * s * s * PI * r * r);
    }

    /// Additional coverage of two circles is within [0, πr²] and
    /// complementary to INTC.
    fn additional_coverage_complements_intc(g) {
        let d = g.f64_in(0.0..2_500.0);
        let r = 500.0;
        let extra = additional_coverage_two(d, r);
        assert!(extra >= -1e-9);
        assert!(extra <= PI * r * r + 1e-9);
        assert!((extra + intc(d.min(2.0 * r), r) - PI * r * r).abs() < 1e-6);
    }

    /// The grid coverage estimator stays in [0, 1] and agrees with the
    /// closed form for a single hearer.
    fn grid_estimator_bounded_and_accurate(g) {
        let d = g.f64_in(0.0..1_200.0);
        let r = 500.0;
        let grid = CoverageGrid::new(96);
        let frac = grid.additional_fraction(Vec2::ZERO, r, &[Vec2::new(d, 0.0)]);
        assert!((0.0..=1.0).contains(&frac));
        let exact = additional_coverage_two(d, r) / (PI * r * r);
        assert!((frac - exact).abs() < 0.015, "d={}: {} vs {}", d, frac, exact);
    }

    /// Adding one more heard transmitter can only shrink the uncovered area.
    fn coverage_is_monotone_in_hearers(g) {
        let seeds = g.vec(1..6, |g| {
            (g.f64_in(0.0..1_000.0), g.f64_in(0.0..std::f64::consts::TAU))
        });
        let r = 500.0;
        let grid = CoverageGrid::new(48);
        let mut heard: Vec<Vec2> = Vec::new();
        let mut prev = 1.0;
        for (rho, theta) in seeds {
            heard.push(Vec2::from_angle(theta) * rho);
            let frac = grid.additional_fraction(Vec2::ZERO, r, &heard);
            assert!(frac <= prev + 1e-12);
            prev = frac;
        }
    }

    /// Disk samples land in the disk.
    fn disk_samples_in_disk(g) {
        let seed = g.u64();
        let mut rng = SimRng::seed_from(seed);
        let c = Vec2::new(100.0, -50.0);
        for _ in 0..100 {
            let p = sample_in_disk(c, 500.0, &mut rng);
            assert!(c.distance_to(p) <= 500.0 + 1e-9);
        }
    }

    /// Reflection always lands inside the rectangle.
    fn reflect_lands_inside(g) {
        let x = g.f64_in(-10_000.0..10_000.0);
        let y = g.f64_in(-10_000.0..10_000.0);
        let w = g.f64_in(1.0..6_000.0);
        let h = g.f64_in(1.0..6_000.0);
        let rect = Rect::new(w, h);
        let p = rect.reflect(Vec2::new(x, y));
        assert!(rect.contains(p), "({x}, {y}) reflected to {p} outside {w}x{h}");
    }

    /// Reflection is the identity for interior points.
    fn reflect_fixes_interior(g) {
        let fx = g.f64_in_incl(0.0, 1.0);
        let fy = g.f64_in_incl(0.0, 1.0);
        let w = g.f64_in(1.0..6_000.0);
        let h = g.f64_in(1.0..6_000.0);
        let rect = Rect::new(w, h);
        let p = Vec2::new(fx * w, fy * h);
        let q = rect.reflect(p);
        assert!((p - q).length() < 1e-9);
    }
}
