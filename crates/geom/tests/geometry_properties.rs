//! Property-based tests for the geometry layer.

use manet_geom::{
    additional_coverage_two, intc, sample_in_disk, CoverageGrid, Rect, Vec2,
};
use manet_sim_engine::SimRng;
use proptest::prelude::*;
use std::f64::consts::PI;

proptest! {
    /// 0 <= INTC(d) <= πr² for all valid inputs.
    #[test]
    fn intc_is_bounded(d in 0.0f64..5_000.0, r in 1.0f64..2_000.0) {
        let v = intc(d, r);
        prop_assert!(v >= 0.0);
        prop_assert!(v <= PI * r * r + 1e-6);
    }

    /// INTC scales with r²: INTC(s·d, s·r) = s²·INTC(d, r).
    #[test]
    fn intc_scales_quadratically(d in 0.0f64..1_000.0, s in 0.5f64..4.0) {
        let r = 500.0;
        let base = intc(d, r);
        let scaled = intc(s * d, s * r);
        prop_assert!((scaled - s * s * base).abs() < 1e-6 * s * s * PI * r * r);
    }

    /// Additional coverage of two circles is within [0, πr²] and
    /// complementary to INTC.
    #[test]
    fn additional_coverage_complements_intc(d in 0.0f64..2_500.0) {
        let r = 500.0;
        let extra = additional_coverage_two(d, r);
        prop_assert!(extra >= -1e-9);
        prop_assert!(extra <= PI * r * r + 1e-9);
        prop_assert!((extra + intc(d.min(2.0 * r), r) - PI * r * r).abs() < 1e-6);
    }

    /// The grid coverage estimator stays in [0, 1] and agrees with the
    /// closed form for a single hearer.
    #[test]
    fn grid_estimator_bounded_and_accurate(d in 0.0f64..1_200.0) {
        let r = 500.0;
        let grid = CoverageGrid::new(96);
        let frac = grid.additional_fraction(Vec2::ZERO, r, &[Vec2::new(d, 0.0)]);
        prop_assert!((0.0..=1.0).contains(&frac));
        let exact = additional_coverage_two(d, r) / (PI * r * r);
        prop_assert!((frac - exact).abs() < 0.015, "d={}: {} vs {}", d, frac, exact);
    }

    /// Adding one more heard transmitter can only shrink the uncovered area.
    #[test]
    fn coverage_is_monotone_in_hearers(
        seeds in prop::collection::vec((0.0f64..1_000.0, 0.0f64..std::f64::consts::TAU), 1..6)
    ) {
        let r = 500.0;
        let grid = CoverageGrid::new(48);
        let mut heard: Vec<Vec2> = Vec::new();
        let mut prev = 1.0;
        for (rho, theta) in seeds {
            heard.push(Vec2::from_angle(theta) * rho);
            let frac = grid.additional_fraction(Vec2::ZERO, r, &heard);
            prop_assert!(frac <= prev + 1e-12);
            prev = frac;
        }
    }

    /// Disk samples land in the disk.
    #[test]
    fn disk_samples_in_disk(seed in any::<u64>()) {
        let mut rng = SimRng::seed_from(seed);
        let c = Vec2::new(100.0, -50.0);
        for _ in 0..100 {
            let p = sample_in_disk(c, 500.0, &mut rng);
            prop_assert!(c.distance_to(p) <= 500.0 + 1e-9);
        }
    }

    /// Reflection always lands inside the rectangle.
    #[test]
    fn reflect_lands_inside(
        x in -10_000.0f64..10_000.0,
        y in -10_000.0f64..10_000.0,
        w in 1.0f64..6_000.0,
        h in 1.0f64..6_000.0,
    ) {
        let rect = Rect::new(w, h);
        let p = rect.reflect(Vec2::new(x, y));
        prop_assert!(rect.contains(p), "({x}, {y}) reflected to {p} outside {w}x{h}");
    }

    /// Reflection is the identity for interior points.
    #[test]
    fn reflect_fixes_interior(
        fx in 0.0f64..=1.0,
        fy in 0.0f64..=1.0,
        w in 1.0f64..6_000.0,
        h in 1.0f64..6_000.0,
    ) {
        let rect = Rect::new(w, h);
        let p = Vec2::new(fx * w, fy * h);
        let q = rect.reflect(p);
        prop_assert!((p - q).length() < 1e-9);
    }
}
