//! The broadcast-storm analyses of paper §2.2 (Figs. 1 and 2).
//!
//! * [`expected_additional_coverage`] — `EAC(k)`, the expected additional
//!   coverage of a rebroadcast after hearing the same packet `k` times
//!   (Fig. 1). `EAC(1) ≈ 0.41`, and `EAC(k) < 0.05` for `k ≥ 4`, which is
//!   what motivates small counter thresholds.
//! * [`contention_free_distribution`] — `cf(n, k)`, the probability that
//!   exactly `k` of `n` receivers experience no contention when they all
//!   rebroadcast (Fig. 2). `cf(n, 0)` exceeds 0.8 for `n ≥ 6`.

use manet_sim_engine::SimRng;

use crate::coverage::{monte_carlo_additional_fraction, sample_in_disk};
use crate::vec2::Vec2;

/// Monte-Carlo estimate of the paper's `EAC(k)` for `k = 1..=max_k`,
/// as fractions of `πr²`.
///
/// For each trial, `k` prior transmitters are placed uniformly at random in
/// the receiving host's transmission disk (it heard all of them, so they
/// are in range) and the uncovered fraction of the host's own disk is
/// measured with `samples` points.
///
/// Returns a vector `v` with `v[k-1] = EAC(k)`.
///
/// # Panics
///
/// Panics if `max_k == 0` or `trials == 0`.
///
/// # Examples
///
/// ```
/// use manet_sim_engine::SimRng;
/// use manet_geom::expected_additional_coverage;
///
/// let mut rng = SimRng::seed_from(1);
/// let eac = expected_additional_coverage(4, 200, 400, &mut rng);
/// assert!(eac[0] > eac[3], "EAC decreases with k");
/// ```
pub fn expected_additional_coverage(
    max_k: usize,
    trials: usize,
    samples: usize,
    rng: &mut SimRng,
) -> Vec<f64> {
    assert!(max_k > 0, "need at least k = 1");
    assert!(trials > 0, "need at least one trial");
    let r = 1.0;
    let own = Vec2::ZERO;
    (1..=max_k)
        .map(|k| {
            let mut total = 0.0;
            for _ in 0..trials {
                let heard: Vec<Vec2> = (0..k).map(|_| sample_in_disk(own, r, rng)).collect();
                total += monte_carlo_additional_fraction(own, r, &heard, samples, rng);
            }
            total / trials as f64
        })
        .collect()
}

/// Monte-Carlo estimate of the paper's `cf(n, k)` contention analysis.
///
/// For each trial, `n` receivers are placed uniformly at random in a
/// transmitter's disk. A receiver is *contention-free* when no other
/// receiver lies within its own transmission range (same radius). The
/// returned row `v` for a given `n` satisfies `v[k] = cf(n, k)`,
/// `k = 0..=n`.
///
/// # Panics
///
/// Panics if `n == 0` or `trials == 0`.
pub fn contention_free_distribution(n: usize, trials: usize, rng: &mut SimRng) -> Vec<f64> {
    assert!(n > 0, "need at least one receiver");
    assert!(trials > 0, "need at least one trial");
    let r = 1.0;
    let r2 = r * r;
    let mut counts = vec![0u64; n + 1];
    let mut hosts = vec![Vec2::ZERO; n];
    for _ in 0..trials {
        for h in hosts.iter_mut() {
            *h = sample_in_disk(Vec2::ZERO, r, rng);
        }
        let free = hosts
            .iter()
            .enumerate()
            .filter(|(i, a)| {
                hosts
                    .iter()
                    .enumerate()
                    .all(|(j, b)| *i == j || a.distance_squared_to(*b) > r2)
            })
            .count();
        counts[free] += 1;
    }
    counts
        .into_iter()
        .map(|c| c as f64 / trials as f64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eac_one_matches_41_percent() {
        let mut rng = SimRng::seed_from(42);
        let eac = expected_additional_coverage(1, 2_000, 800, &mut rng);
        assert!((eac[0] - 0.41).abs() < 0.02, "EAC(1) = {}", eac[0]);
    }

    #[test]
    fn eac_is_decreasing_and_small_beyond_four() {
        let mut rng = SimRng::seed_from(42);
        let eac = expected_additional_coverage(6, 800, 500, &mut rng);
        for w in eac.windows(2) {
            assert!(w[1] <= w[0] + 0.02, "EAC should trend down: {eac:?}");
        }
        // Paper: "when k >= 4, the expected additional coverage is below 5%."
        assert!(eac[3] < 0.06, "EAC(4) = {}", eac[3]);
        assert!(eac[5] < 0.04, "EAC(6) = {}", eac[5]);
    }

    #[test]
    fn cf_distribution_sums_to_one() {
        let mut rng = SimRng::seed_from(7);
        for n in [1, 2, 5, 8] {
            let dist = contention_free_distribution(n, 2_000, &mut rng);
            let total: f64 = dist.iter().sum();
            assert!((total - 1.0).abs() < 1e-9, "n={n}: sums to {total}");
            assert_eq!(dist.len(), n + 1);
        }
    }

    #[test]
    fn single_receiver_is_always_contention_free() {
        let mut rng = SimRng::seed_from(7);
        let dist = contention_free_distribution(1, 500, &mut rng);
        assert_eq!(dist[0], 0.0);
        assert_eq!(dist[1], 1.0);
    }

    #[test]
    fn exactly_n_minus_one_free_is_impossible() {
        // If n-1 hosts are contention-free the n-th must be too, so
        // cf(n, n-1) = 0 (paper §2.2.2).
        let mut rng = SimRng::seed_from(7);
        for n in [2, 3, 5] {
            let dist = contention_free_distribution(n, 3_000, &mut rng);
            assert_eq!(dist[n - 1], 0.0, "cf({n}, {}) must be 0", n - 1);
        }
    }

    #[test]
    fn two_receivers_contend_with_59_percent() {
        // P(contention between two random receivers) ≈ 0.59, so
        // cf(2, 0) ≈ 0.59 and cf(2, 2) ≈ 0.41.
        let mut rng = SimRng::seed_from(21);
        let dist = contention_free_distribution(2, 50_000, &mut rng);
        assert!((dist[0] - 0.59).abs() < 0.02, "cf(2,0) = {}", dist[0]);
        assert!((dist[2] - 0.41).abs() < 0.02, "cf(2,2) = {}", dist[2]);
    }

    #[test]
    fn crowded_area_is_mostly_all_contending() {
        // Paper: cf(n, 0) rises above 0.8 once n >= 6.
        let mut rng = SimRng::seed_from(3);
        let dist = contention_free_distribution(6, 5_000, &mut rng);
        assert!(dist[0] > 0.75, "cf(6,0) = {}", dist[0]);
    }
}
