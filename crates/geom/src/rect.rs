//! Axis-aligned rectangles, used as simulation map bounds.

use crate::vec2::Vec2;

/// An axis-aligned rectangle `[0, width] × [0, height]` anchored at the
/// origin, in meters.
///
/// # Examples
///
/// ```
/// use manet_geom::{Rect, Vec2};
///
/// let map = Rect::new(1500.0, 1500.0);
/// assert!(map.contains(Vec2::new(100.0, 1400.0)));
/// assert!(!map.contains(Vec2::new(-1.0, 0.0)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Rect {
    width: f64,
    height: f64,
}

impl Rect {
    /// Creates a rectangle with the given dimensions.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is not positive and finite.
    pub fn new(width: f64, height: f64) -> Self {
        assert!(
            width.is_finite() && width > 0.0 && height.is_finite() && height > 0.0,
            "rectangle dimensions must be positive and finite: {width} x {height}"
        );
        Rect { width, height }
    }

    /// Width in meters.
    pub fn width(&self) -> f64 {
        self.width
    }

    /// Height in meters.
    pub fn height(&self) -> f64 {
        self.height
    }

    /// Area in square meters.
    pub fn area(&self) -> f64 {
        self.width * self.height
    }

    /// `true` when `p` lies inside or on the boundary.
    pub fn contains(&self, p: Vec2) -> bool {
        (0.0..=self.width).contains(&p.x) && (0.0..=self.height).contains(&p.y)
    }

    /// The center point.
    pub fn center(&self) -> Vec2 {
        Vec2::new(self.width / 2.0, self.height / 2.0)
    }

    /// Clamps `p` onto the rectangle (component-wise).
    pub fn clamp(&self, p: Vec2) -> Vec2 {
        p.clamp(Vec2::ZERO, Vec2::new(self.width, self.height))
    }

    /// Reflects `p` back into the rectangle, mirror-style.
    ///
    /// A point that left through an edge re-enters as if the edge were a
    /// mirror; used by the mobility model's bouncing boundary. Points
    /// further out than one full width/height are folded repeatedly.
    pub fn reflect(&self, p: Vec2) -> Vec2 {
        Vec2::new(fold(p.x, self.width), fold(p.y, self.height))
    }
}

/// Folds `x` into `[0, len]` by repeated mirror reflection.
fn fold(x: f64, len: f64) -> f64 {
    let period = 2.0 * len;
    let mut m = x % period;
    if m < 0.0 {
        m += period;
    }
    if m > len {
        period - m
    } else {
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contains_boundary() {
        let r = Rect::new(10.0, 20.0);
        assert!(r.contains(Vec2::ZERO));
        assert!(r.contains(Vec2::new(10.0, 20.0)));
        assert!(!r.contains(Vec2::new(10.1, 0.0)));
        assert!(!r.contains(Vec2::new(0.0, -0.1)));
    }

    #[test]
    fn geometry_accessors() {
        let r = Rect::new(10.0, 20.0);
        assert_eq!(r.area(), 200.0);
        assert_eq!(r.center(), Vec2::new(5.0, 10.0));
    }

    #[test]
    fn clamp_pins_to_edges() {
        let r = Rect::new(10.0, 10.0);
        assert_eq!(r.clamp(Vec2::new(-5.0, 15.0)), Vec2::new(0.0, 10.0));
    }

    #[test]
    fn reflect_mirrors_once() {
        let r = Rect::new(10.0, 10.0);
        assert_eq!(r.reflect(Vec2::new(12.0, 5.0)), Vec2::new(8.0, 5.0));
        assert_eq!(r.reflect(Vec2::new(-3.0, 5.0)), Vec2::new(3.0, 5.0));
    }

    #[test]
    fn reflect_folds_repeatedly() {
        let r = Rect::new(10.0, 10.0);
        // 25 -> mirrors at 10 (to -5 relative motion) -> 2*10 - (25 % 20 = 5)
        // folding: 25 % 20 = 5, within [0,10] -> 5
        assert_eq!(r.reflect(Vec2::new(25.0, 0.0)), Vec2::new(5.0, 0.0));
        // 38 % 20 = 18 > 10 -> 20 - 18 = 2
        assert_eq!(r.reflect(Vec2::new(38.0, 0.0)), Vec2::new(2.0, 0.0));
    }

    #[test]
    fn reflect_is_idempotent_inside() {
        let r = Rect::new(10.0, 10.0);
        let p = Vec2::new(4.0, 9.0);
        assert_eq!(r.reflect(p), p);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_width_panics() {
        let _ = Rect::new(0.0, 5.0);
    }
}
