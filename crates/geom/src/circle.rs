//! Circles and the closed-form intersection area `INTC(d)`.
//!
//! The broadcast-storm analysis (paper §2.2.1) leans on the area of the
//! lens formed by two transmission disks of equal radius `r` whose centers
//! are `d` apart:
//!
//! ```text
//! INTC(d) = 4 * ∫_{d/2}^{r} sqrt(r² − x²) dx
//!         = 2 r² acos(d / 2r) − (d/2) sqrt(4r² − d²)
//! ```
//!
//! The *additional coverage* a rebroadcast at distance `d` provides over the
//! original transmission is `πr² − INTC(d)`, maximized at `d = r` where it
//! equals ≈ `0.61 πr²`.

use crate::vec2::Vec2;

/// A disk in the plane: all points within `radius` of `center`.
///
/// # Examples
///
/// ```
/// use manet_geom::{Circle, Vec2};
///
/// let c = Circle::new(Vec2::ZERO, 500.0);
/// assert!(c.contains(Vec2::new(300.0, 400.0)));
/// assert!(!c.contains(Vec2::new(300.1, 400.0)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Circle {
    /// Center of the disk.
    pub center: Vec2,
    /// Radius, meters. Must be non-negative.
    pub radius: f64,
}

impl Circle {
    /// Creates a disk.
    ///
    /// # Panics
    ///
    /// Panics if `radius` is negative or not finite.
    pub fn new(center: Vec2, radius: f64) -> Self {
        assert!(
            radius.is_finite() && radius >= 0.0,
            "circle radius must be finite and non-negative, got {radius}"
        );
        Circle { center, radius }
    }

    /// Area of the disk, `πr²`.
    pub fn area(&self) -> f64 {
        std::f64::consts::PI * self.radius * self.radius
    }

    /// `true` when `point` lies inside or on the boundary.
    pub fn contains(&self, point: Vec2) -> bool {
        self.center.distance_squared_to(point) <= self.radius * self.radius
    }

    /// Area of the intersection with another circle of the **same** radius
    /// whose center is at distance `d` — the paper's `INTC(d)`.
    pub fn intersection_area_equal(&self, other_center: Vec2) -> f64 {
        intc(self.center.distance_to(other_center), self.radius)
    }
}

/// The paper's `INTC(d)`: intersection area of two circles of radius `r`
/// with centers `d` apart.
///
/// Returns `πr²` for `d = 0` (coincident disks) and `0` for `d ≥ 2r`
/// (disjoint disks).
///
/// # Panics
///
/// Panics if `d` is negative or either argument is not finite.
///
/// # Examples
///
/// ```
/// use manet_geom::intc;
/// use std::f64::consts::PI;
///
/// let r = 500.0;
/// assert!((intc(0.0, r) - PI * r * r).abs() < 1e-6);
/// assert_eq!(intc(2.0 * r, r), 0.0);
/// ```
pub fn intc(d: f64, r: f64) -> f64 {
    assert!(
        d.is_finite() && d >= 0.0 && r.is_finite() && r >= 0.0,
        "intc arguments must be finite and non-negative: d={d}, r={r}"
    );
    if d >= 2.0 * r || r == 0.0 {
        return 0.0;
    }
    let half_d = d / 2.0;
    2.0 * r * r * (half_d / r).acos() - half_d * (4.0 * r * r - d * d).sqrt()
}

/// Additional coverage `πr² − INTC(d)` of a rebroadcast at distance `d`
/// from the original transmitter (both with radius `r`).
pub fn additional_coverage_two(d: f64, r: f64) -> f64 {
    std::f64::consts::PI * r * r - intc(d.min(2.0 * r), r)
}

/// The maximum additional coverage fraction of a single rebroadcast,
/// `1 − INTC(r)/πr² ≈ 0.6090`, attained at `d = r` (paper §2.2.1, "61%").
pub fn max_additional_coverage_fraction() -> f64 {
    additional_coverage_two(1.0, 1.0) / std::f64::consts::PI
}

/// The expected additional coverage fraction of a rebroadcast from a host
/// placed uniformly at random inside the transmitter's disk:
///
/// ```text
/// ∫₀ʳ 2πx (πr² − INTC(x)) / (πr²)² dx ≈ 0.41
/// ```
///
/// Computed by Simpson-rule integration with `steps` panels (paper §2.2.1,
/// "41%"). `steps` is rounded up to an even number; 1 000 gives ~12 digits.
pub fn mean_additional_coverage_fraction(steps: usize) -> f64 {
    let r = 1.0;
    let area = std::f64::consts::PI * r * r;
    let f = |x: f64| 2.0 * std::f64::consts::PI * x * (area - intc(x, r)) / (area * area);
    simpson(f, 0.0, r, steps)
}

/// The expected probability that a second receiver contends with the first:
///
/// ```text
/// ∫₀ʳ 2πx · INTC(x) / (πr²)² dx ≈ 0.59
/// ```
///
/// (paper §2.2.2, "59%").
pub fn expected_contention_probability(steps: usize) -> f64 {
    let r = 1.0;
    let area = std::f64::consts::PI * r * r;
    let f = |x: f64| 2.0 * std::f64::consts::PI * x * intc(x, r) / (area * area);
    simpson(f, 0.0, r, steps)
}

/// Composite Simpson's rule on `[a, b]` with `steps` panels (rounded up to
/// even).
fn simpson<F: Fn(f64) -> f64>(f: F, a: f64, b: f64, steps: usize) -> f64 {
    let n = steps.max(2) + (steps % 2);
    let h = (b - a) / n as f64;
    let mut sum = f(a) + f(b);
    for i in 1..n {
        let x = a + i as f64 * h;
        sum += f(x) * if i % 2 == 1 { 4.0 } else { 2.0 };
    }
    sum * h / 3.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    const R: f64 = 500.0;

    #[test]
    fn intc_boundary_values() {
        assert!((intc(0.0, R) - PI * R * R).abs() < 1e-6);
        assert_eq!(intc(2.0 * R, R), 0.0);
        assert_eq!(intc(3.0 * R, R), 0.0);
        assert_eq!(intc(1.0, 0.0), 0.0);
    }

    #[test]
    fn intc_is_monotone_decreasing() {
        let mut prev = intc(0.0, R);
        for i in 1..=100 {
            let d = 2.0 * R * i as f64 / 100.0;
            let cur = intc(d, R);
            assert!(cur <= prev + 1e-9, "INTC must not increase with d");
            prev = cur;
        }
    }

    #[test]
    fn intc_matches_numeric_integral() {
        // INTC(d) = 4 ∫_{d/2}^r sqrt(r² − x²) dx — check the closed form
        // against direct numeric integration at several distances.
        for frac in [0.1, 0.3, 0.5, 0.8, 1.0, 1.5, 1.9] {
            let d = frac * R;
            let numeric = simpson(|x| (R * R - x * x).max(0.0).sqrt(), d / 2.0, R, 20_000) * 4.0;
            let closed = intc(d, R);
            assert!(
                (numeric - closed).abs() / (PI * R * R) < 1e-6,
                "d={d}: numeric {numeric} vs closed {closed}"
            );
        }
    }

    #[test]
    fn paper_constant_61_percent() {
        // Additional coverage at d = r is "about 0.61 πr²".
        let frac = max_additional_coverage_fraction();
        assert!((frac - 0.6090).abs() < 5e-4, "got {frac}");
    }

    #[test]
    fn paper_constant_41_percent() {
        let frac = mean_additional_coverage_fraction(2_000);
        assert!((frac - 0.41).abs() < 5e-3, "got {frac}");
    }

    #[test]
    fn paper_constant_59_percent() {
        let p = expected_contention_probability(2_000);
        assert!((p - 0.59).abs() < 5e-3, "got {p}");
    }

    #[test]
    fn mean_and_contention_are_complementary() {
        // E[additional]/πr² + E[INTC]/πr² = 1 for a uniformly random point,
        // so 0.41 + 0.59 ≈ 1.
        let a = mean_additional_coverage_fraction(2_000);
        let c = expected_contention_probability(2_000);
        assert!((a + c - 1.0).abs() < 1e-9);
    }

    #[test]
    fn circle_contains_and_area() {
        let c = Circle::new(Vec2::new(10.0, 10.0), 5.0);
        assert!(c.contains(Vec2::new(13.0, 14.0)));
        assert!(!c.contains(Vec2::new(16.0, 10.0)));
        assert!((c.area() - PI * 25.0).abs() < 1e-9);
    }

    #[test]
    fn intersection_area_equal_uses_distance() {
        let a = Circle::new(Vec2::ZERO, R);
        let other = Vec2::new(R, 0.0);
        assert!((a.intersection_area_equal(other) - intc(R, R)).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_radius_panics() {
        let _ = Circle::new(Vec2::ZERO, -1.0);
    }
}
