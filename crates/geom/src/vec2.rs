//! Two-dimensional vectors and points.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A point or displacement in the plane, in meters.
///
/// # Examples
///
/// ```
/// use manet_geom::Vec2;
///
/// let a = Vec2::new(0.0, 0.0);
/// let b = Vec2::new(3.0, 4.0);
/// assert_eq!(a.distance_to(b), 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec2 {
    /// Horizontal coordinate, meters.
    pub x: f64,
    /// Vertical coordinate, meters.
    pub y: f64,
}

impl Vec2 {
    /// The origin / zero displacement.
    pub const ZERO: Vec2 = Vec2 { x: 0.0, y: 0.0 };

    /// Creates a vector from its components.
    pub const fn new(x: f64, y: f64) -> Self {
        Vec2 { x, y }
    }

    /// A unit vector pointing at `angle` radians from the positive x-axis.
    pub fn from_angle(angle: f64) -> Self {
        Vec2::new(angle.cos(), angle.sin())
    }

    /// Euclidean length.
    pub fn length(self) -> f64 {
        self.x.hypot(self.y)
    }

    /// Squared Euclidean length (avoids the square root).
    pub fn length_squared(self) -> f64 {
        self.x * self.x + self.y * self.y
    }

    /// Distance to another point.
    pub fn distance_to(self, other: Vec2) -> f64 {
        (other - self).length()
    }

    /// Squared distance to another point.
    pub fn distance_squared_to(self, other: Vec2) -> f64 {
        (other - self).length_squared()
    }

    /// Dot product.
    pub fn dot(self, other: Vec2) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// The vector scaled to unit length, or `None` for the zero vector.
    pub fn normalized(self) -> Option<Vec2> {
        let len = self.length();
        if len == 0.0 {
            None
        } else {
            Some(self / len)
        }
    }

    /// Component-wise clamp into the axis-aligned box `[min, max]`.
    pub fn clamp(self, min: Vec2, max: Vec2) -> Vec2 {
        Vec2::new(self.x.clamp(min.x, max.x), self.y.clamp(min.y, max.y))
    }

    /// `true` when both components are finite.
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl Add for Vec2 {
    type Output = Vec2;
    fn add(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl AddAssign for Vec2 {
    fn add_assign(&mut self, rhs: Vec2) {
        *self = *self + rhs;
    }
}

impl Sub for Vec2 {
    type Output = Vec2;
    fn sub(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl SubAssign for Vec2 {
    fn sub_assign(&mut self, rhs: Vec2) {
        *self = *self - rhs;
    }
}

impl Mul<f64> for Vec2 {
    type Output = Vec2;
    fn mul(self, rhs: f64) -> Vec2 {
        Vec2::new(self.x * rhs, self.y * rhs)
    }
}

impl Div<f64> for Vec2 {
    type Output = Vec2;
    fn div(self, rhs: f64) -> Vec2 {
        Vec2::new(self.x / rhs, self.y / rhs)
    }
}

impl Neg for Vec2 {
    type Output = Vec2;
    fn neg(self) -> Vec2 {
        Vec2::new(-self.x, -self.y)
    }
}

impl fmt::Display for Vec2 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({:.2}, {:.2})", self.x, self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Vec2::new(1.0, 2.0);
        let b = Vec2::new(3.0, -1.0);
        assert_eq!(a + b, Vec2::new(4.0, 1.0));
        assert_eq!(a - b, Vec2::new(-2.0, 3.0));
        assert_eq!(a * 2.0, Vec2::new(2.0, 4.0));
        assert_eq!(b / 2.0, Vec2::new(1.5, -0.5));
        assert_eq!(-a, Vec2::new(-1.0, -2.0));
    }

    #[test]
    fn lengths_and_distances() {
        let a = Vec2::new(3.0, 4.0);
        assert_eq!(a.length(), 5.0);
        assert_eq!(a.length_squared(), 25.0);
        assert_eq!(Vec2::ZERO.distance_to(a), 5.0);
        assert_eq!(Vec2::ZERO.distance_squared_to(a), 25.0);
    }

    #[test]
    fn from_angle_is_unit_length() {
        for i in 0..16 {
            let angle = i as f64 * std::f64::consts::TAU / 16.0;
            let v = Vec2::from_angle(angle);
            assert!((v.length() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn normalization() {
        let v = Vec2::new(0.0, 5.0).normalized().unwrap();
        assert!((v.length() - 1.0).abs() < 1e-12);
        assert_eq!(Vec2::ZERO.normalized(), None);
    }

    #[test]
    fn clamping() {
        let v = Vec2::new(-1.0, 10.0);
        let clamped = v.clamp(Vec2::ZERO, Vec2::new(5.0, 5.0));
        assert_eq!(clamped, Vec2::new(0.0, 5.0));
    }

    #[test]
    fn dot_product() {
        assert_eq!(Vec2::new(1.0, 0.0).dot(Vec2::new(0.0, 1.0)), 0.0);
        assert_eq!(Vec2::new(2.0, 3.0).dot(Vec2::new(4.0, 5.0)), 23.0);
    }
}
