//! # manet-geom
//!
//! Planar geometry for radio-coverage reasoning in the MANET
//! broadcast-storm reproduction.
//!
//! The crate has three layers:
//!
//! 1. **Primitives** — [`Vec2`], [`Circle`], [`Rect`].
//! 2. **Coverage math** — the closed-form two-circle intersection
//!    [`intc`]`(d)` from the paper, plus union-of-disks *additional
//!    coverage* estimators ([`CoverageGrid`],
//!    [`monte_carlo_additional_fraction`]) used by the location-based
//!    broadcast schemes.
//! 3. **Storm analyses** — the redundancy curve `EAC(k)`
//!    ([`expected_additional_coverage`], Fig. 1 of the paper) and the
//!    contention distribution `cf(n, k)`
//!    ([`contention_free_distribution`], Fig. 2).
//!
//! The paper's three headline constants are exposed as checked functions:
//! a single rebroadcast covers at most ≈ 61 % extra area
//! ([`max_additional_coverage_fraction`]), ≈ 41 % on average
//! ([`mean_additional_coverage_fraction`]), and two random receivers
//! contend with probability ≈ 59 %
//! ([`expected_contention_probability`]).
//!
//! # Examples
//!
//! ```
//! use manet_geom::{additional_coverage_two, intc};
//! use std::f64::consts::PI;
//!
//! let r = 500.0;
//! // A rebroadcast from the edge of coverage adds ~61% new area.
//! let frac = additional_coverage_two(r, r) / (PI * r * r);
//! assert!((frac - 0.61).abs() < 0.01);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod analysis;
mod circle;
mod coverage;
mod rect;
mod vec2;

pub use analysis::{contention_free_distribution, expected_additional_coverage};
pub use circle::{
    additional_coverage_two, expected_contention_probability, intc,
    max_additional_coverage_fraction, mean_additional_coverage_fraction, Circle,
};
pub use coverage::{monte_carlo_additional_fraction, sample_in_disk, CoverageGrid};
pub use rect::Rect;
pub use vec2::Vec2;
