//! Additional-coverage estimation against a *union* of heard disks.
//!
//! The location-based schemes need, at a receiving host `x`, the area of
//! `x`'s own transmission disk **not** already covered by the disks of the
//! transmitters it has heard the packet from. For one prior transmitter the
//! closed form [`crate::additional_coverage_two`] applies; for several, the
//! union of disks has no convenient closed form, so this module provides two
//! estimators:
//!
//! * [`CoverageGrid`] — deterministic grid sampling (the default in the
//!   simulator; same inputs, same output).
//! * [`monte_carlo_additional_fraction`] — randomized sampling, used by the
//!   redundancy analysis of Fig. 1 and as a cross-check in tests.
//!
//! Both return the additional coverage as a **fraction of `πr²`** in
//! `[0, 1]`, which is the unit the paper's `A(n)` thresholds use
//! (e.g. `A = 0.187`).

use manet_sim_engine::SimRng;

use crate::vec2::Vec2;

/// Deterministic grid estimator of additional coverage.
///
/// The estimator lays a `resolution × resolution` grid of cell centers over
/// the bounding square of the host's disk and counts cells that fall inside
/// the host's disk but outside every heard disk.
///
/// # Examples
///
/// ```
/// use manet_geom::{CoverageGrid, Vec2};
///
/// let grid = CoverageGrid::new(64);
/// // No one heard yet: the whole disk is additional coverage.
/// assert_eq!(grid.additional_fraction(Vec2::ZERO, 500.0, &[]), 1.0);
/// // Heard from a co-located transmitter: nothing left to cover.
/// assert_eq!(grid.additional_fraction(Vec2::ZERO, 500.0, &[Vec2::ZERO]), 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoverageGrid {
    resolution: usize,
}

impl CoverageGrid {
    /// Creates an estimator with the given grid resolution per axis.
    ///
    /// Resolution 64 keeps the error against the exact two-circle form
    /// under about one percentage point, which is far below the spacing of
    /// the paper's `A` thresholds.
    ///
    /// # Panics
    ///
    /// Panics if `resolution < 2`.
    pub fn new(resolution: usize) -> Self {
        assert!(resolution >= 2, "grid resolution must be at least 2");
        CoverageGrid { resolution }
    }

    /// Grid resolution per axis.
    pub fn resolution(&self) -> usize {
        self.resolution
    }

    /// Fraction of the disk at `center` with radius `r` that is **not**
    /// covered by any same-radius disk centered at a point of `heard`.
    ///
    /// Returns a value in `[0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is not positive and finite.
    pub fn additional_fraction(&self, center: Vec2, r: f64, heard: &[Vec2]) -> f64 {
        assert!(r.is_finite() && r > 0.0, "radius must be positive, got {r}");
        if heard.is_empty() {
            return 1.0;
        }
        // Fast path: a co-located (or nearly so) transmitter covers all.
        if heard
            .iter()
            .any(|h| h.distance_squared_to(center) < (r * 1e-9) * (r * 1e-9))
        {
            return 0.0;
        }
        let r2 = r * r;
        let n = self.resolution;
        let step = 2.0 * r / n as f64;
        let mut inside = 0u64;
        let mut uncovered = 0u64;
        for i in 0..n {
            let x = center.x - r + (i as f64 + 0.5) * step;
            for j in 0..n {
                let y = center.y - r + (j as f64 + 0.5) * step;
                let p = Vec2::new(x, y);
                if p.distance_squared_to(center) > r2 {
                    continue;
                }
                inside += 1;
                if heard.iter().all(|h| h.distance_squared_to(p) > r2) {
                    uncovered += 1;
                }
            }
        }
        if inside == 0 {
            return 0.0;
        }
        uncovered as f64 / inside as f64
    }

    /// The grid's sample points that fall inside the disk at `center`
    /// with radius `r`, as absolute positions.
    ///
    /// This is the same point set `additional_fraction` integrates over,
    /// exposed so callers can track coverage *incrementally*: keep the
    /// points, delete those covered as each new transmitter is heard, and
    /// the uncovered fraction is `remaining / initial` (used by the
    /// location-based broadcast schemes, which update their estimate on
    /// every duplicate).
    pub fn sample_points(&self, center: Vec2, r: f64) -> Vec<Vec2> {
        assert!(r.is_finite() && r > 0.0, "radius must be positive, got {r}");
        let r2 = r * r;
        let n = self.resolution;
        let step = 2.0 * r / n as f64;
        let mut points = Vec::with_capacity(n * n * 4 / 5);
        for i in 0..n {
            let x = center.x - r + (i as f64 + 0.5) * step;
            for j in 0..n {
                let y = center.y - r + (j as f64 + 0.5) * step;
                let p = Vec2::new(x, y);
                if p.distance_squared_to(center) <= r2 {
                    points.push(p);
                }
            }
        }
        points
    }
}

impl Default for CoverageGrid {
    /// The resolution used by the simulator (64).
    fn default() -> Self {
        CoverageGrid::new(64)
    }
}

/// Monte-Carlo estimate of the additional coverage fraction.
///
/// Draws `samples` points uniformly from the disk at `center` (radius `r`)
/// and returns the fraction that no heard disk covers.
pub fn monte_carlo_additional_fraction(
    center: Vec2,
    r: f64,
    heard: &[Vec2],
    samples: usize,
    rng: &mut SimRng,
) -> f64 {
    assert!(r.is_finite() && r > 0.0, "radius must be positive, got {r}");
    assert!(samples > 0, "need at least one sample");
    if heard.is_empty() {
        return 1.0;
    }
    let r2 = r * r;
    let mut uncovered = 0usize;
    for _ in 0..samples {
        let p = sample_in_disk(center, r, rng);
        if heard.iter().all(|h| h.distance_squared_to(p) > r2) {
            uncovered += 1;
        }
    }
    uncovered as f64 / samples as f64
}

/// Draws a point uniformly at random from the disk at `center`, radius `r`.
pub fn sample_in_disk(center: Vec2, r: f64, rng: &mut SimRng) -> Vec2 {
    // Inverse-CDF sampling: radius ~ r*sqrt(U) gives a uniform area density.
    let rho = r * rng.gen_unit_f64().sqrt();
    let theta = rng.gen_range_f64(0.0..std::f64::consts::TAU);
    center + Vec2::from_angle(theta) * rho
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::circle::additional_coverage_two;
    use std::f64::consts::PI;

    const R: f64 = 500.0;

    #[test]
    fn empty_heard_means_full_disk() {
        let grid = CoverageGrid::default();
        assert_eq!(grid.additional_fraction(Vec2::ZERO, R, &[]), 1.0);
    }

    #[test]
    fn colocated_transmitter_covers_everything() {
        let grid = CoverageGrid::default();
        assert_eq!(
            grid.additional_fraction(Vec2::new(3.0, 4.0), R, &[Vec2::new(3.0, 4.0)]),
            0.0
        );
    }

    #[test]
    fn grid_matches_two_circle_closed_form() {
        let grid = CoverageGrid::new(128);
        for frac in [0.2, 0.5, 0.8, 1.0, 1.5] {
            let d = frac * R;
            let exact = additional_coverage_two(d, R) / (PI * R * R);
            let est = grid.additional_fraction(Vec2::ZERO, R, &[Vec2::new(d, 0.0)]);
            assert!(
                (est - exact).abs() < 0.01,
                "d={d}: grid {est} vs exact {exact}"
            );
        }
    }

    #[test]
    fn monte_carlo_matches_two_circle_closed_form() {
        let mut rng = SimRng::seed_from(99);
        for frac in [0.3, 1.0, 1.7] {
            let d = frac * R;
            let exact = additional_coverage_two(d, R) / (PI * R * R);
            let est = monte_carlo_additional_fraction(
                Vec2::ZERO,
                R,
                &[Vec2::new(d, 0.0)],
                50_000,
                &mut rng,
            );
            assert!(
                (est - exact).abs() < 0.01,
                "d={d}: mc {est} vs exact {exact}"
            );
        }
    }

    #[test]
    fn more_hearers_never_increase_coverage() {
        let grid = CoverageGrid::default();
        let mut heard = Vec::new();
        let mut prev = 1.0;
        for k in 0..6 {
            heard.push(Vec2::new(
                R * 0.7 * (k as f64 * 1.1).cos(),
                R * 0.7 * (k as f64 * 1.1).sin(),
            ));
            let frac = grid.additional_fraction(Vec2::ZERO, R, &heard);
            assert!(frac <= prev + 1e-12, "coverage fraction must be monotone");
            prev = frac;
        }
    }

    #[test]
    fn disjoint_hearer_leaves_full_disk() {
        let grid = CoverageGrid::default();
        let far = Vec2::new(2.5 * R, 0.0);
        let frac = grid.additional_fraction(Vec2::ZERO, R, &[far]);
        assert!((frac - 1.0).abs() < 1e-12);
    }

    #[test]
    fn disk_sampling_is_uniform_enough() {
        // Mean squared distance from center of a uniform disk sample is r²/2.
        let mut rng = SimRng::seed_from(5);
        let n = 100_000;
        let mean_sq: f64 = (0..n)
            .map(|_| sample_in_disk(Vec2::ZERO, R, &mut rng).length_squared())
            .sum::<f64>()
            / n as f64;
        assert!(
            (mean_sq - R * R / 2.0).abs() / (R * R) < 0.01,
            "mean squared radius {mean_sq}"
        );
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn tiny_resolution_panics() {
        let _ = CoverageGrid::new(1);
    }
}
