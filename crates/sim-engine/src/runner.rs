//! The simulation driver loop.
//!
//! A simulation is a pairing of an [`EventQueue`] with a model implementing
//! [`EventHandler`]. The driver pops events in timestamp order and hands
//! each to the handler, which may schedule or cancel further events through
//! the queue it is given.

use crate::metrics::LoopProfiler;
use crate::queue::EventQueue;
use crate::time::SimTime;

/// A model that reacts to events of type `E`.
pub trait EventHandler<E> {
    /// Processes one event.
    ///
    /// `now` is the event's timestamp; `queue` may be used to schedule
    /// follow-up events (never in the past).
    fn handle(&mut self, now: SimTime, event: E, queue: &mut EventQueue<E>);
}

/// Outcome of [`run`] / [`run_until`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The queue drained: no events remain.
    Drained {
        /// Timestamp of the last delivered event.
        last_event: SimTime,
    },
    /// The horizon was reached with events still pending.
    HorizonReached {
        /// The horizon passed to [`run_until`].
        horizon: SimTime,
    },
    /// The event budget was exhausted (runaway protection).
    BudgetExhausted {
        /// Time of the last event delivered before stopping.
        stopped_at: SimTime,
    },
}

/// Runs until the queue is empty.
///
/// Equivalent to [`run_until`] with an infinite horizon and budget.
pub fn run<E, H: EventHandler<E>>(handler: &mut H, queue: &mut EventQueue<E>) -> RunOutcome {
    run_until(handler, queue, SimTime::MAX, u64::MAX)
}

/// Runs until the queue drains, the next event would be after `horizon`,
/// or `max_events` have been delivered — whichever comes first.
///
/// Events stamped exactly at `horizon` are still delivered.
pub fn run_until<E, H: EventHandler<E>>(
    handler: &mut H,
    queue: &mut EventQueue<E>,
    horizon: SimTime,
    max_events: u64,
) -> RunOutcome {
    let mut delivered = 0u64;
    let mut last = queue.now();
    loop {
        match queue.peek_time() {
            None => return RunOutcome::Drained { last_event: last },
            Some(t) if t > horizon => return RunOutcome::HorizonReached { horizon },
            Some(_) => {}
        }
        if delivered >= max_events {
            return RunOutcome::BudgetExhausted { stopped_at: last };
        }
        let (now, event) = queue.pop().expect("peeked event vanished");
        last = now;
        delivered += 1;
        handler.handle(now, event, queue);
    }
}

/// [`run_until`] with per-event profiling.
///
/// `kind_of` classifies each event under a static label before it is
/// consumed; the profiler attributes the handler's wall time to that label
/// (only when the profiler is enabled — a disabled profiler still counts
/// events but never reads the clock, so this variant is safe to use
/// unconditionally).
pub fn run_profiled<E, H: EventHandler<E>>(
    handler: &mut H,
    queue: &mut EventQueue<E>,
    horizon: SimTime,
    max_events: u64,
    profiler: &mut LoopProfiler,
    kind_of: impl Fn(&E) -> &'static str,
) -> RunOutcome {
    let mut delivered = 0u64;
    let mut last = queue.now();
    loop {
        match queue.peek_time() {
            None => return RunOutcome::Drained { last_event: last },
            Some(t) if t > horizon => return RunOutcome::HorizonReached { horizon },
            Some(_) => {}
        }
        if delivered >= max_events {
            return RunOutcome::BudgetExhausted { stopped_at: last };
        }
        let (now, event) = queue.pop().expect("peeked event vanished");
        last = now;
        delivered += 1;
        let kind = kind_of(&event);
        let t0 = profiler.begin();
        handler.handle(now, event, queue);
        profiler.record(kind, t0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    /// A handler that re-schedules itself `remaining` times, one second apart.
    struct Ticker {
        ticks: Vec<SimTime>,
        remaining: u32,
    }

    impl EventHandler<()> for Ticker {
        fn handle(&mut self, now: SimTime, _event: (), queue: &mut EventQueue<()>) {
            self.ticks.push(now);
            if self.remaining > 0 {
                self.remaining -= 1;
                queue.schedule(now + SimDuration::from_secs(1), ());
            }
        }
    }

    #[test]
    fn runs_to_drain() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1), ());
        let mut t = Ticker {
            ticks: vec![],
            remaining: 3,
        };
        let outcome = run(&mut t, &mut q);
        assert_eq!(
            outcome,
            RunOutcome::Drained {
                last_event: SimTime::from_secs(4)
            }
        );
        assert_eq!(t.ticks.len(), 4);
    }

    #[test]
    fn horizon_stops_delivery_but_keeps_events() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1), ());
        let mut t = Ticker {
            ticks: vec![],
            remaining: 100,
        };
        let outcome = run_until(&mut t, &mut q, SimTime::from_secs(3), u64::MAX);
        assert_eq!(
            outcome,
            RunOutcome::HorizonReached {
                horizon: SimTime::from_secs(3)
            }
        );
        // Events at 1, 2, 3 delivered; the one at 4 remains queued.
        assert_eq!(t.ticks.len(), 3);
        assert!(!q.is_empty());
    }

    #[test]
    fn profiled_run_matches_plain_run_and_attributes_kinds() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1), ());
        let mut t = Ticker {
            ticks: vec![],
            remaining: 3,
        };
        let mut profiler = LoopProfiler::enabled();
        let outcome = run_profiled(
            &mut t,
            &mut q,
            SimTime::MAX,
            u64::MAX,
            &mut profiler,
            |_| "tick",
        );
        assert_eq!(
            outcome,
            RunOutcome::Drained {
                last_event: SimTime::from_secs(4)
            }
        );
        assert_eq!(profiler.events_processed(), 4);
        let profile = profiler.profile();
        assert_eq!(profile.kinds.len(), 1);
        assert_eq!(profile.kinds[0].kind, "tick");
        assert_eq!(profile.kinds[0].count, 4);
    }

    #[test]
    fn budget_bounds_runaway_models() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1), ());
        let mut t = Ticker {
            ticks: vec![],
            remaining: u32::MAX,
        };
        let outcome = run_until(&mut t, &mut q, SimTime::MAX, 10);
        assert!(matches!(outcome, RunOutcome::BudgetExhausted { .. }));
        assert_eq!(t.ticks.len(), 10);
    }
}
