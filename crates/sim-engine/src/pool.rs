//! Persistent worker pool for intra-step parallelism.
//!
//! [`WorkerPool`] owns a fixed set of parked OS threads that execute
//! index-addressed jobs (`f(0), f(1), ..., f(count-1)`) on demand. The
//! pool exists so hot loops that fan work out every few simulated
//! microseconds — the epoch-parallel shard advance and the dense position
//! refresh — pay a condvar wake instead of a thread spawn/join per batch.
//!
//! Determinism contract: the pool itself orders nothing. Callers must
//! make every job write to disjoint state (per-index output slots) and
//! merge results in an index-derived order after [`WorkerPool::run`]
//! returns. With zero workers (single-core hosts, or a pool sized to
//! zero) jobs run inline on the caller, in index order — same results,
//! no threads.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

/// The published batch: a lifetime-erased pointer to the caller's job
/// closure plus the number of indices to cover.
///
/// Safety: the pointer is only dereferenced between publication and the
/// batch's completion handshake, and [`WorkerPool::run`] does not return
/// (even on panic) until every worker has finished the batch — so the
/// closure outlives every dereference.
#[derive(Clone, Copy)]
struct Job {
    f: *const (dyn Fn(usize) + Sync),
    count: usize,
}

// The pointer crosses threads inside the handshake described on `Job`.
unsafe impl Send for Job {}

struct PoolState {
    job: Option<Job>,
    /// Bumped once per published batch so parked workers can tell new
    /// work from the batch they just finished.
    batch: u64,
    /// Workers still running the current batch.
    active: usize,
    /// First panic payload captured from a worker this batch.
    panic: Option<Box<dyn std::any::Any + Send>>,
    shutdown: bool,
}

struct Shared {
    state: Mutex<PoolState>,
    work_ready: Condvar,
    batch_done: Condvar,
    /// Next unclaimed job index; workers and the caller race on it.
    cursor: AtomicUsize,
}

fn lock(shared: &Shared) -> MutexGuard<'_, PoolState> {
    shared.state.lock().unwrap_or_else(|e| e.into_inner())
}

/// A fixed-size pool of persistent worker threads; see the module docs.
pub struct WorkerPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("threads", &self.workers.len())
            .finish()
    }
}

impl WorkerPool {
    /// Creates a pool with `threads` worker threads (zero is valid and
    /// means every [`run`](Self::run) executes inline on the caller).
    pub fn new(threads: usize) -> Self {
        let shared = Arc::new(Shared {
            state: Mutex::new(PoolState {
                job: None,
                batch: 0,
                active: 0,
                panic: None,
                shutdown: false,
            }),
            work_ready: Condvar::new(),
            batch_done: Condvar::new(),
            cursor: AtomicUsize::new(0),
        });
        let workers = (0..threads)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_main(&shared))
            })
            .collect();
        WorkerPool { shared, workers }
    }

    /// Number of worker threads (not counting the participating caller).
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Runs `f(i)` for every `i in 0..count`, returning when all calls
    /// have completed. The caller participates in the batch alongside the
    /// workers. Index-to-thread assignment is dynamic (work stealing via
    /// a shared cursor); callers needing determinism must write per-index
    /// results and merge them afterwards.
    ///
    /// # Panics
    ///
    /// If any job panics, the first captured payload is re-raised here —
    /// after every thread has left the batch, so the closure is never
    /// used after free.
    pub fn run(&self, count: usize, f: &(dyn Fn(usize) + Sync)) {
        if count == 0 {
            return;
        }
        if self.workers.is_empty() || count == 1 {
            for i in 0..count {
                f(i);
            }
            return;
        }
        // SAFETY: erase the borrow lifetime so the pointer can sit in the
        // shared state; the completion handshake below guarantees no
        // dereference outlives this call.
        fn erase<'a>(f: &'a (dyn Fn(usize) + Sync + 'a)) -> *const (dyn Fn(usize) + Sync) {
            unsafe { std::mem::transmute(f as *const (dyn Fn(usize) + Sync + 'a)) }
        }
        let erased = erase(f);
        {
            let mut st = lock(&self.shared);
            debug_assert!(st.active == 0 && st.job.is_none(), "re-entrant run()");
            self.shared.cursor.store(0, Ordering::Relaxed);
            st.job = Some(Job { f: erased, count });
            st.batch += 1;
            st.active = self.workers.len();
            self.shared.work_ready.notify_all();
        }
        // Work the batch from this thread too; defer any panic until the
        // workers are done with the closure.
        let caller = catch_unwind(AssertUnwindSafe(|| loop {
            let i = self.shared.cursor.fetch_add(1, Ordering::Relaxed);
            if i >= count {
                break;
            }
            f(i);
        }));
        let mut st = lock(&self.shared);
        while st.active > 0 {
            st = self
                .shared
                .batch_done
                .wait(st)
                .unwrap_or_else(|e| e.into_inner());
        }
        st.job = None;
        let worker_panic = st.panic.take();
        drop(st);
        if let Err(payload) = caller {
            resume_unwind(payload);
        }
        if let Some(payload) = worker_panic {
            resume_unwind(payload);
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = lock(&self.shared);
            st.shutdown = true;
            self.shared.work_ready.notify_all();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_main(shared: &Shared) {
    let mut seen_batch = 0u64;
    loop {
        let job = {
            let mut st = lock(shared);
            loop {
                if st.shutdown {
                    return;
                }
                if st.batch != seen_batch {
                    seen_batch = st.batch;
                    break st.job.expect("batch published without a job");
                }
                st = shared
                    .work_ready
                    .wait(st)
                    .unwrap_or_else(|e| e.into_inner());
            }
        };
        // SAFETY: `run` keeps the closure alive until this batch's
        // completion handshake below.
        let f = unsafe { &*job.f };
        let result = catch_unwind(AssertUnwindSafe(|| loop {
            let i = shared.cursor.fetch_add(1, Ordering::Relaxed);
            if i >= job.count {
                break;
            }
            f(i);
        }));
        let mut st = lock(shared);
        if let Err(payload) = result {
            if st.panic.is_none() {
                st.panic = Some(payload);
            }
        }
        st.active -= 1;
        if st.active == 0 {
            shared.batch_done.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn covers_every_index_exactly_once() {
        for threads in [0, 1, 3] {
            let pool = WorkerPool::new(threads);
            for count in [0usize, 1, 2, 17, 100] {
                let hits: Vec<AtomicU64> = (0..count).map(|_| AtomicU64::new(0)).collect();
                pool.run(count, &|i| {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                });
                for (i, h) in hits.iter().enumerate() {
                    assert_eq!(
                        h.load(Ordering::Relaxed),
                        1,
                        "index {i} at {threads} threads"
                    );
                }
            }
        }
    }

    #[test]
    fn reusable_across_batches() {
        let pool = WorkerPool::new(2);
        let total = AtomicU64::new(0);
        for _ in 0..50 {
            pool.run(8, &|i| {
                total.fetch_add(i as u64, Ordering::Relaxed);
            });
        }
        assert_eq!(total.load(Ordering::Relaxed), 50 * (0..8).sum::<u64>());
    }

    #[test]
    fn job_panic_propagates_to_the_caller() {
        let pool = WorkerPool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.run(8, &|i| {
                assert!(i != 5, "boom");
            });
        }));
        assert!(result.is_err());
        // The pool must survive a panicked batch.
        let total = AtomicU64::new(0);
        pool.run(4, &|_| {
            total.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), 4);
    }
}
