//! A deterministic, time-ordered stream of externally scripted events.
//!
//! A [`Timeline`] holds a list of `(SimTime, T)` entries — typically world
//! actions compiled from a scenario description — sorted by time with
//! declaration order preserved for ties. The model interleaves it with the
//! main [`EventQueue`] by calling [`Timeline::schedule_into`] once at
//! start-up: every entry becomes one queue event carrying its timeline
//! index, and the queue's FIFO tie-breaking guarantees that same-instant
//! entries fire in declaration order.
//!
//! Keeping the payloads in the timeline (and only indices on the queue)
//! means queue events stay `Copy`-sized and the model can re-inspect the
//! full schedule at any point.
//!
//! # Examples
//!
//! ```
//! use manet_sim_engine::{EventQueue, SimTime, Timeline};
//!
//! let timeline = Timeline::new(vec![
//!     (SimTime::from_secs(5), "leave 3"),
//!     (SimTime::from_secs(2), "noise on"),
//! ]);
//! // Sorted on construction.
//! assert_eq!(timeline.get(0), (SimTime::from_secs(2), &"noise on"));
//!
//! let mut queue: EventQueue<usize> = EventQueue::new();
//! timeline.schedule_into(&mut queue, |index| index);
//! let (at, index) = queue.pop().unwrap();
//! assert_eq!((at, timeline.get(index).1), (SimTime::from_secs(2), &"noise on"));
//! ```

use crate::queue::EventQueue;
use crate::time::SimTime;

/// A sorted schedule of `(SimTime, T)` entries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Timeline<T> {
    entries: Vec<(SimTime, T)>,
}

impl<T> Timeline<T> {
    /// Builds a timeline from unsorted entries.
    ///
    /// Entries are stable-sorted by time: two entries at the same instant
    /// keep their relative order from `entries`.
    pub fn new(mut entries: Vec<(SimTime, T)>) -> Self {
        entries.sort_by_key(|&(at, _)| at);
        Timeline { entries }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the timeline holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The entry at `index` (indices follow sorted order).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of bounds.
    pub fn get(&self, index: usize) -> (SimTime, &T) {
        let (at, value) = &self.entries[index];
        (*at, value)
    }

    /// Iterates entries in time order.
    pub fn iter(&self) -> impl Iterator<Item = (SimTime, &T)> {
        self.entries.iter().map(|(at, value)| (*at, value))
    }

    /// Schedules every entry on `queue` at its timestamp, in timeline
    /// order, wrapping each index via `make`.
    ///
    /// Because the queue breaks timestamp ties FIFO, same-instant entries
    /// are later popped in timeline order — the stream interleaves
    /// deterministically with everything else on the queue.
    pub fn schedule_into<E>(&self, queue: &mut EventQueue<E>, mut make: impl FnMut(usize) -> E) {
        for (index, (at, _)) in self.entries.iter().enumerate() {
            queue.schedule(*at, make(index));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_sorts_stably() {
        let t = Timeline::new(vec![
            (SimTime::from_secs(3), "b"),
            (SimTime::from_secs(1), "a"),
            (SimTime::from_secs(3), "c"),
        ]);
        let order: Vec<&str> = t.iter().map(|(_, v)| *v).collect();
        assert_eq!(order, ["a", "b", "c"]);
        assert_eq!(t.len(), 3);
        assert!(!t.is_empty());
    }

    #[test]
    fn schedule_into_preserves_tie_order() {
        let t = Timeline::new(vec![
            (SimTime::from_secs(2), "x"),
            (SimTime::from_secs(2), "y"),
            (SimTime::from_secs(1), "w"),
        ]);
        let mut queue: EventQueue<usize> = EventQueue::new();
        t.schedule_into(&mut queue, |i| i);
        let mut seen = Vec::new();
        while let Some((_, i)) = queue.pop() {
            seen.push(*t.get(i).1);
        }
        assert_eq!(seen, ["w", "x", "y"]);
    }

    #[test]
    fn empty_timeline_is_empty() {
        let t: Timeline<u8> = Timeline::new(Vec::new());
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert_eq!(t.iter().count(), 0);
    }
}
