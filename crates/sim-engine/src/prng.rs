//! The in-tree pseudo-random number generator.
//!
//! This workspace builds with **zero third-party dependencies**, so the
//! generator behind [`SimRng`](crate::SimRng) lives here instead of coming
//! from the `rand` crate. The algorithm is **xoshiro256++** (Blackman &
//! Vigna, 2018): 256 bits of state, period 2²⁵⁶ − 1, excellent statistical
//! quality (passes BigCrush), and a handful of arithmetic ops per draw —
//! the same generator `rand`'s `SmallRng` used on 64-bit targets.
//!
//! Three deliberate choices:
//!
//! * **Seeding via splitmix64.** A 64-bit seed is expanded into the 256-bit
//!   state with a splitmix64 stream, so similar seeds (0, 1, 2, …) still
//!   produce uncorrelated states and the all-zero state is unreachable.
//! * **Unbiased bounded sampling.** Integer ranges use Lemire's
//!   widening-multiply rejection method (Lemire, 2019): one 64×64→128
//!   multiply in the common case, with a rejection loop only for the
//!   biased sliver of the 2⁶⁴ space.
//! * **53-bit floats.** `unit_f64` uses the top 53 bits of one output
//!   word, giving every representable multiple of 2⁻⁵³ in `[0, 1)` equal
//!   probability — the standard dyadic-rational construction.

/// A xoshiro256++ generator: the raw engine beneath
/// [`SimRng`](crate::SimRng).
///
/// Most simulation code should use [`SimRng`](crate::SimRng), which adds
/// forking and duration helpers; this type is public for callers that need
/// raw 64-bit output (e.g. the test harness in `manet-testkit`).
///
/// # Examples
///
/// ```
/// use manet_sim_engine::prng::Xoshiro256pp;
///
/// let mut a = Xoshiro256pp::seed_from(7);
/// let mut b = Xoshiro256pp::seed_from(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Xoshiro256pp {
    s: [u64; 4],
}

impl Xoshiro256pp {
    /// Creates a generator whose 256-bit state is expanded from `seed`
    /// with a splitmix64 stream.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for word in &mut s {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            *word = splitmix64_mix(sm);
        }
        // splitmix64 is a bijection of a non-constant counter, so at least
        // one word is non-zero for every seed; the all-zero fixed point of
        // xoshiro is unreachable.
        debug_assert!(s.iter().any(|&w| w != 0));
        Xoshiro256pp { s }
    }

    /// The next 64 uniformly random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform `u64` in `[0, bound)` via Lemire's unbiased
    /// widening-multiply method.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    #[inline]
    pub fn next_u64_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty sampling bound");
        let mut m = u128::from(self.next_u64()) * u128::from(bound);
        let mut low = m as u64;
        if low < bound {
            // Reject draws in the biased sliver: (2^64 mod bound) values.
            let threshold = bound.wrapping_neg() % bound;
            while low < threshold {
                m = u128::from(self.next_u64()) * u128::from(bound);
                low = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Uniform `u64` in `[lo, hi]` (inclusive; the full-width range
    /// `[0, u64::MAX]` degenerates to a raw draw).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    #[inline]
    pub fn next_u64_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo <= hi, "empty sampling range: {lo} > {hi}");
        let span = hi - lo;
        if span == u64::MAX {
            return self.next_u64();
        }
        lo + self.next_u64_below(span + 1)
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        const SCALE: f64 = 1.0 / (1u64 << 53) as f64;
        (self.next_u64() >> 11) as f64 * SCALE
    }

    /// The generator's full 256-bit state, for snapshot serialization.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator from a previously exported
    /// [`state`](Self::state). The stream continues exactly where the
    /// exported generator left off.
    ///
    /// # Panics
    ///
    /// Panics on the all-zero state (the generator's fixed point), which
    /// [`seed_from`](Self::seed_from) can never produce.
    pub fn from_state(s: [u64; 4]) -> Self {
        assert!(
            s.iter().any(|&w| w != 0),
            "all-zero xoshiro state is invalid"
        );
        Xoshiro256pp { s }
    }
}

/// The splitmix64 output function: a strong 64-bit bijective mixer.
#[inline]
pub(crate) fn splitmix64_mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// One full splitmix64 step (increment + mix), used to derive child seeds.
#[inline]
pub(crate) fn splitmix64(x: u64) -> u64 {
    splitmix64_mix(x.wrapping_add(0x9E37_79B9_7F4A_7C15))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reference vector from the xoshiro256++ reference implementation
    /// (Blackman & Vigna), state seeded as {1, 2, 3, 4}.
    #[test]
    fn matches_reference_stream() {
        let mut g = Xoshiro256pp { s: [1, 2, 3, 4] };
        let expected: [u64; 6] = [
            41943041,
            58720359,
            3588806011781223,
            3591011842654386,
            9228616714210784205,
            9973669472204895162,
        ];
        for want in expected {
            assert_eq!(g.next_u64(), want);
        }
    }

    #[test]
    fn seeding_is_deterministic_and_seed_sensitive() {
        let mut a = Xoshiro256pp::seed_from(0);
        let mut b = Xoshiro256pp::seed_from(0);
        let mut c = Xoshiro256pp::seed_from(1);
        let (x, y, z) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(x, y);
        assert_ne!(x, z, "adjacent seeds must not collide on word one");
    }

    #[test]
    fn below_respects_extreme_bounds() {
        let mut g = Xoshiro256pp::seed_from(42);
        for _ in 0..1_000 {
            assert_eq!(g.next_u64_below(1), 0);
            assert!(g.next_u64_below(2) < 2);
            assert!(g.next_u64_below(u64::MAX) < u64::MAX);
        }
    }

    #[test]
    fn inclusive_range_covers_endpoints_near_u64_max() {
        let mut g = Xoshiro256pp::seed_from(7);
        let lo = u64::MAX - 1;
        let mut seen_lo = false;
        let mut seen_hi = false;
        for _ in 0..1_000 {
            match g.next_u64_inclusive(lo, u64::MAX) {
                x if x == lo => seen_lo = true,
                u64::MAX => seen_hi = true,
                other => panic!("{other} outside [u64::MAX - 1, u64::MAX]"),
            }
        }
        assert!(seen_lo && seen_hi, "two-value range must hit both values");
        // Full width never panics and spans the whole space statistically.
        let any = g.next_u64_inclusive(0, u64::MAX);
        let _ = any;
        assert_eq!(g.next_u64_inclusive(5, 5), 5);
    }

    #[test]
    #[should_panic(expected = "empty sampling bound")]
    fn below_zero_bound_panics() {
        Xoshiro256pp::seed_from(0).next_u64_below(0);
    }

    #[test]
    fn unit_f64_is_in_half_open_interval() {
        let mut g = Xoshiro256pp::seed_from(3);
        for _ in 0..10_000 {
            let x = g.unit_f64();
            assert!((0.0..1.0).contains(&x), "{x} outside [0, 1)");
        }
    }
}
