//! Cancellable, deterministic event queue.
//!
//! [`EventQueue`] is a priority queue of `(SimTime, E)` pairs. Two events
//! scheduled for the same instant are delivered in the order they were
//! scheduled (FIFO tie-breaking via a monotonically increasing sequence
//! number), which makes runs bit-for-bit reproducible.
//!
//! Every scheduled event gets an [`EventKey`]. Cancelling a key tombstones
//! the entry: the heap node stays in place but is silently skipped by
//! [`EventQueue::pop`]. This is the standard lazy-deletion trick and keeps
//! both `schedule` and `cancel` at `O(log n)` / `O(1)`.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

use crate::time::{SimDuration, SimTime};

/// Multiplicative hasher for the tombstone set. Its keys are unique,
/// roughly sequential `u64` sequence numbers, so Fibonacci hashing spreads
/// them perfectly well and costs one multiply instead of a SipHash round.
#[derive(Debug, Default)]
struct SeqHasher(u64);

impl Hasher for SeqHasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("tombstone keys hash via write_u64");
    }

    fn write_u64(&mut self, value: u64) {
        self.0 = value.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    }
}

type SeqSet = HashSet<u64, BuildHasherDefault<SeqHasher>>;

/// Identifier of a scheduled event, used for cancellation.
///
/// Keys are unique over the lifetime of a queue and never reused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventKey(u64);

impl EventKey {
    /// The key's raw sequence number, for snapshot serialization.
    pub fn as_raw(self) -> u64 {
        self.0
    }

    /// Rebuilds a key from [`as_raw`](Self::as_raw) output. Only keys
    /// exported from the same queue lineage are meaningful; a fabricated
    /// key at worst cancels the wrong entry, never corrupts the queue.
    pub fn from_raw(raw: u64) -> Self {
        EventKey(raw)
    }
}

#[derive(Debug)]
struct Entry<E> {
    time: SimTime,
    seq: u64,
    event: E,
}

// Order entries so the BinaryHeap (a max-heap) pops the earliest time first,
// breaking ties by insertion order.
impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: earliest (time, seq) is the "greatest" heap element.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic future-event list.
///
/// # Examples
///
/// ```
/// use manet_sim_engine::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.schedule(SimTime::from_millis(2), "late");
/// let early = q.schedule(SimTime::from_millis(1), "early");
/// q.cancel(early);
/// assert_eq!(q.pop(), Some((SimTime::from_millis(2), "late")));
/// assert!(q.pop().is_none());
/// ```
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    cancelled: SeqSet,
    next_seq: u64,
    now: SimTime,
    popped: u64,
    scheduled: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            cancelled: SeqSet::default(),
            next_seq: 0,
            now: SimTime::ZERO,
            popped: 0,
            scheduled: 0,
        }
    }

    /// The time of the most recently popped event (the simulation "now").
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedules `event` at the absolute instant `time`.
    ///
    /// Returns a key that can later be passed to [`cancel`](Self::cancel).
    ///
    /// # Panics
    ///
    /// Panics if `time` is earlier than [`now`](Self::now): scheduling into
    /// the past would break causality.
    pub fn schedule(&mut self, time: SimTime, event: E) -> EventKey {
        assert!(
            time >= self.now,
            "cannot schedule into the past: {} < {}",
            time,
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled += 1;
        self.heap.push(Entry { time, seq, event });
        EventKey(seq)
    }

    /// Schedules `event` at `delay` after the current time.
    pub fn schedule_after(&mut self, delay: SimDuration, event: E) -> EventKey {
        self.schedule(self.now + delay, event)
    }

    /// Schedules `event` at `time` under an externally assigned sequence
    /// number. This is how a set of per-shard queues shares one global
    /// FIFO tie-break: the caller owns a single monotone counter, stamps
    /// every event from it, and the merged pop order over all queues is
    /// then identical to what a single queue would have produced — for
    /// any number of shards.
    ///
    /// The internal counter is bumped past `seq` so later plain
    /// [`schedule`](Self::schedule) calls (and the range check in
    /// [`cancel`](Self::cancel)) stay consistent.
    ///
    /// # Panics
    ///
    /// Panics if `time` is earlier than [`now`](Self::now), or if `seq`
    /// was already handed out by this queue (reuse would corrupt FIFO
    /// tie-breaking and tombstone identity).
    pub fn schedule_seq(&mut self, time: SimTime, seq: u64, event: E) -> EventKey {
        assert!(
            time >= self.now,
            "cannot schedule into the past: {} < {}",
            time,
            self.now
        );
        assert!(
            seq >= self.next_seq,
            "sequence number {seq} reused (queue already at {})",
            self.next_seq
        );
        self.next_seq = seq + 1;
        self.scheduled += 1;
        self.heap.push(Entry { time, seq, event });
        EventKey(seq)
    }

    /// Cancels a previously scheduled event.
    ///
    /// Returns `true` if the event had not yet fired or been cancelled.
    /// Cancelling an already-delivered or already-cancelled key is a no-op
    /// returning `false`.
    pub fn cancel(&mut self, key: EventKey) -> bool {
        if key.0 >= self.next_seq {
            return false;
        }
        // An event that already fired is gone from the heap; inserting its
        // key into `cancelled` would leak, so only record keys that can
        // still be in the heap. We cannot cheaply tell "fired" apart from
        // "pending", so we record and rely on pop() to clean up.
        self.cancelled.insert(key.0)
    }

    /// Removes and returns the earliest non-cancelled event, advancing the
    /// clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.pop_entry().map(|(time, _, event)| (time, event))
    }

    /// Like [`pop`](Self::pop), but also returns the entry's sequence
    /// number. A multi-queue executor uses this where the global sequence
    /// stamp of the popped entry matters — e.g. to order effects buffered
    /// during a parallel epoch by the `(time, seq)` of the event that
    /// produced them.
    pub fn pop_entry(&mut self) -> Option<(SimTime, u64, E)> {
        while let Some(entry) = self.heap.pop() {
            // Skip the tombstone hash lookup entirely while no
            // cancellations are outstanding — the common case on the hot
            // loop (hundreds of thousands of pops per run).
            if !self.cancelled.is_empty() && self.cancelled.remove(&entry.seq) {
                continue;
            }
            debug_assert!(entry.time >= self.now, "event queue went backwards");
            self.now = entry.time;
            self.popped += 1;
            return Some((entry.time, entry.seq, entry.event));
        }
        None
    }

    /// The timestamp of the next non-cancelled event, if any.
    ///
    /// Cancelled entries at the head are dropped eagerly so the returned
    /// time is accurate.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        while let Some(entry) = self.heap.peek() {
            if !self.cancelled.is_empty() && self.cancelled.contains(&entry.seq) {
                let entry = self.heap.pop().expect("peeked entry vanished");
                self.cancelled.remove(&entry.seq);
                continue;
            }
            return Some(entry.time);
        }
        None
    }

    /// The `(time, seq)` key of the next non-cancelled event, if any.
    ///
    /// This is the comparison key a multi-queue executor needs to merge
    /// several queues into one deterministic global order: pop from the
    /// queue whose head has the smallest `(time, seq)`. Cancelled entries
    /// at the head are dropped eagerly, as in [`peek_time`](Self::peek_time).
    pub fn peek_key(&mut self) -> Option<(SimTime, u64)> {
        while let Some(entry) = self.heap.peek() {
            if !self.cancelled.is_empty() && self.cancelled.contains(&entry.seq) {
                let entry = self.heap.pop().expect("peeked entry vanished");
                self.cancelled.remove(&entry.seq);
                continue;
            }
            return Some((entry.time, entry.seq));
        }
        None
    }

    /// Number of pending entries, **including** tombstoned ones.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// `true` when no entries (live or tombstoned) remain.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total events delivered so far (diagnostics).
    pub fn delivered_count(&self) -> u64 {
        self.popped
    }

    /// Total events ever scheduled (diagnostics).
    pub fn scheduled_count(&self) -> u64 {
        self.scheduled
    }

    /// The live (non-tombstoned) entries as `(time, seq, &event)`, sorted
    /// in pop order. Together with [`counters`](Self::counters) this is a
    /// complete image of the queue for snapshot serialization.
    pub fn snapshot_entries(&self) -> Vec<(SimTime, u64, &E)> {
        let mut entries: Vec<_> = self
            .heap
            .iter()
            .filter(|entry| !self.cancelled.contains(&entry.seq))
            .map(|entry| (entry.time, entry.seq, &entry.event))
            .collect();
        entries.sort_by_key(|&(time, seq, _)| (time, seq));
        entries
    }

    /// The queue's counters `(now, next_seq, delivered, scheduled)`, for
    /// snapshot serialization.
    pub fn counters(&self) -> (SimTime, u64, u64, u64) {
        (self.now, self.next_seq, self.popped, self.scheduled)
    }

    /// Rebuilds a queue from [`snapshot_entries`](Self::snapshot_entries)
    /// and [`counters`](Self::counters) output. Tombstoned entries are not
    /// restored (they were already logically gone); the restored queue pops
    /// the same `(time, seq, event)` stream and hands out fresh keys from
    /// `next_seq`, so it is behaviorally identical to the exported one.
    ///
    /// # Panics
    ///
    /// Panics if an entry predates `now` or carries a sequence number at
    /// or past `next_seq`.
    pub fn restore(
        now: SimTime,
        next_seq: u64,
        delivered: u64,
        scheduled: u64,
        entries: impl IntoIterator<Item = (SimTime, u64, E)>,
    ) -> Self {
        let mut heap = BinaryHeap::new();
        for (time, seq, event) in entries {
            assert!(time >= now, "restored event predates the clock");
            assert!(seq < next_seq, "restored event from the future");
            heap.push(Entry { time, seq, event });
        }
        EventQueue {
            heap,
            cancelled: SeqSet::default(),
            next_seq,
            now,
            popped: delivered,
            scheduled,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(3), 'c');
        q.schedule(SimTime::from_millis(1), 'a');
        q.schedule(SimTime::from_millis(2), 'b');
        let order: Vec<char> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!['a', 'b', 'c']);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(1);
        for i in 0..10 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn cancellation_skips_events() {
        let mut q = EventQueue::new();
        let k1 = q.schedule(SimTime::from_millis(1), 1);
        q.schedule(SimTime::from_millis(2), 2);
        assert!(q.cancel(k1));
        assert!(!q.cancel(k1), "double cancel reports false");
        assert_eq!(q.pop(), Some((SimTime::from_millis(2), 2)));
    }

    #[test]
    fn clock_advances_with_pop() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(5));
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_into_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5), ());
        q.pop();
        q.schedule(SimTime::from_secs(1), ());
    }

    #[test]
    fn schedule_after_uses_current_time() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(1), "first");
        q.pop();
        q.schedule_after(SimDuration::from_secs(2), "second");
        assert_eq!(q.pop(), Some((SimTime::from_secs(3), "second")));
    }

    #[test]
    fn peek_time_skips_cancelled_head() {
        let mut q = EventQueue::new();
        let k = q.schedule(SimTime::from_millis(1), 1);
        q.schedule(SimTime::from_millis(5), 2);
        q.cancel(k);
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(5)));
    }

    #[test]
    fn schedule_seq_merges_bit_identically_across_queue_counts() {
        // The same (time, seq) stream, split across K queues by an
        // arbitrary ownership function, must merge back into exactly the
        // single-queue pop order — this is the property the sharded world
        // executor is built on.
        let times = [5u64, 1, 3, 3, 1, 9, 3, 1, 7, 2, 2, 8];
        let mut single = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            single.schedule(SimTime::from_millis(t), i);
        }
        let expected: Vec<(SimTime, usize)> = std::iter::from_fn(|| single.pop()).collect();

        for shards in 1..=4usize {
            let mut queues: Vec<EventQueue<usize>> =
                (0..shards).map(|_| EventQueue::new()).collect();
            for (i, &t) in times.iter().enumerate() {
                queues[i % shards].schedule_seq(SimTime::from_millis(t), i as u64, i);
            }
            let mut merged = Vec::new();
            loop {
                let winner = queues
                    .iter_mut()
                    .enumerate()
                    .filter_map(|(q, queue)| queue.peek_key().map(|key| (key, q)))
                    .min();
                let Some((_, q)) = winner else { break };
                merged.push(queues[q].pop().expect("peeked entry vanished"));
            }
            assert_eq!(merged, expected, "merge order diverged at {shards} shards");
        }
    }

    #[test]
    fn schedule_seq_bumps_internal_counter() {
        let mut q = EventQueue::new();
        q.schedule_seq(SimTime::from_millis(1), 7, 'a');
        // A later plain schedule must not collide with seq 7.
        let key = q.schedule(SimTime::from_millis(1), 'b');
        assert_eq!(key.as_raw(), 8);
        assert_eq!(q.pop(), Some((SimTime::from_millis(1), 'a')));
        assert_eq!(q.pop(), Some((SimTime::from_millis(1), 'b')));
    }

    #[test]
    #[should_panic(expected = "reused")]
    fn schedule_seq_rejects_reuse() {
        let mut q = EventQueue::new();
        q.schedule_seq(SimTime::from_millis(1), 3, ());
        q.schedule_seq(SimTime::from_millis(2), 3, ());
    }

    #[test]
    fn peek_key_skips_cancelled_head() {
        let mut q = EventQueue::new();
        let k = q.schedule(SimTime::from_millis(1), 1);
        q.schedule(SimTime::from_millis(5), 2);
        q.cancel(k);
        assert_eq!(q.peek_key(), Some((SimTime::from_millis(5), 1)));
    }

    #[test]
    fn pop_entry_exposes_the_sequence_stamp() {
        let mut q = EventQueue::new();
        q.schedule_seq(SimTime::from_millis(2), 5, 'b');
        q.schedule_seq(SimTime::from_millis(1), 9, 'a');
        assert_eq!(q.pop_entry(), Some((SimTime::from_millis(1), 9, 'a')));
        assert_eq!(q.pop_entry(), Some((SimTime::from_millis(2), 5, 'b')));
        assert_eq!(q.pop_entry(), None);
    }

    #[test]
    fn counts_track_activity() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(1), ());
        let k = q.schedule(SimTime::from_millis(2), ());
        q.cancel(k);
        while q.pop().is_some() {}
        assert_eq!(q.scheduled_count(), 2);
        assert_eq!(q.delivered_count(), 1);
    }
}
