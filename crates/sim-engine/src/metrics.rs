//! Zero-dependency metrics primitives: counters, gauges, fixed-bucket
//! histograms, a named registry with a serialisable snapshot, and a
//! wall-clock profiler for event loops.
//!
//! Everything here is plain data — no atomics, no global state — because
//! the simulation is single-threaded per run. Aggregation across parallel
//! runs happens by merging snapshots after the fact.
//!
//! The JSON emitted by [`MetricsRegistry::to_json`] and
//! [`HistogramSnapshot::to_json`] is hand-rolled (the workspace builds with
//! an empty registry, so there is no serde). The schema is documented in
//! `DESIGN.md` § "Metrics JSON schema" and is considered stable.

use std::collections::BTreeMap;
// simlint: allow(wall-clock) — LoopProfiler measures real per-event cost
use std::time::Instant;

use crate::time::SimTime;

/// Mergeable tally of the work one shard did during a parallel epoch.
///
/// Each shard fills its own delta while draining its queue concurrently;
/// at the epoch barrier the executor folds the deltas into the global
/// counters with [`merge`](Self::merge) — associative and commutative, so
/// the merged totals are identical for any shard count or drain
/// interleaving.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardDelta {
    /// Events popped from the shard queue (including stale timers).
    pub events: u64,
    /// Timers re-armed back into the shard queue.
    pub rescheduled: u64,
    /// Effects deferred to the barrier (e.g. transmissions to begin).
    pub deferred: u64,
    /// Timestamp of the latest event drained, if any.
    pub last_event_at: Option<SimTime>,
}

impl ShardDelta {
    /// Folds another shard's tally into this one.
    pub fn merge(&mut self, other: &ShardDelta) {
        self.events += other.events;
        self.rescheduled += other.rescheduled;
        self.deferred += other.deferred;
        self.last_event_at = match (self.last_event_at, other.last_event_at) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (a, b) => a.or(b),
        };
    }
}

/// Default upper bucket bounds (seconds) for end-to-end latency
/// histograms.
///
/// Consumers that build latency histograms (the experiments metrics
/// pipeline) use these bounds unless explicitly configured otherwise, so
/// snapshots from differently sourced runs merge exactly by default.
pub const DEFAULT_LATENCY_BOUNDS_S: [f64; 12] = [
    0.0005, 0.001, 0.002, 0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.5, 1.0, 5.0,
];

/// A monotonically increasing `u64` counter.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// A counter at zero.
    pub const fn new() -> Self {
        Counter(0)
    }

    /// Increments by one.
    #[inline]
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Increments by `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0
    }
}

/// A last-write-wins `f64` gauge.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Gauge(f64);

impl Gauge {
    /// A gauge at zero.
    pub const fn new() -> Self {
        Gauge(0.0)
    }

    /// Overwrites the value.
    #[inline]
    pub fn set(&mut self, v: f64) {
        self.0 = v;
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> f64 {
        self.0
    }
}

/// A fixed-bucket histogram over `f64` samples.
///
/// Bucket `i` counts samples `v <= bounds[i]` (the first bound that is not
/// exceeded wins); one extra overflow bucket counts samples above the last
/// bound. Bounds are fixed at construction, which keeps [`merge`] exact:
/// two histograms with identical bounds merge without any re-binning error.
///
/// [`merge`]: Histogram::merge
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    bounds: Vec<f64>,
    counts: Vec<u64>,
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Histogram {
    /// Creates a histogram with the given upper bucket bounds.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty, not strictly increasing, or contains a
    /// non-finite value.
    pub fn new(bounds: &[f64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bound");
        for pair in bounds.windows(2) {
            assert!(
                pair[0] < pair[1],
                "histogram bounds must be strictly increasing"
            );
        }
        assert!(
            bounds.iter().all(|b| b.is_finite()),
            "histogram bounds must be finite"
        );
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Records one sample.
    #[inline]
    pub fn record(&mut self, v: f64) {
        self.record_n(v, 1);
    }

    /// Records `n` identical samples (used to fold pre-counted data, e.g.
    /// per-slot backoff draw counts, into a histogram in one step).
    pub fn record_n(&mut self, v: f64, n: u64) {
        if n == 0 {
            return;
        }
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += n;
        self.count += n;
        self.sum += v * n as f64;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Total number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Folds another histogram into this one.
    ///
    /// # Panics
    ///
    /// Panics if the bucket bounds differ — merging is only exact between
    /// identically configured histograms.
    pub fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.bounds, other.bounds,
            "cannot merge histograms with different bounds"
        );
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// An owned, serialisable copy of the current state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            counts: self.counts.clone(),
            count: self.count,
            sum: self.sum,
            min: (self.count > 0).then_some(self.min),
            max: (self.count > 0).then_some(self.max),
        }
    }
}

/// A frozen copy of a [`Histogram`]'s state.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Upper bucket bounds, strictly increasing.
    pub bounds: Vec<f64>,
    /// Per-bucket sample counts; `counts.len() == bounds.len() + 1`, the
    /// final entry being the overflow bucket (`v > bounds.last()`).
    pub counts: Vec<u64>,
    /// Total samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: f64,
    /// Smallest sample, or `None` if no samples were recorded.
    pub min: Option<f64>,
    /// Largest sample, or `None` if no samples were recorded.
    pub max: Option<f64>,
}

impl HistogramSnapshot {
    /// Mean of the recorded samples, or `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Renders as a JSON object:
    /// `{"bounds": [...], "counts": [...], "count": n, "sum": x, "min": x|null, "max": x|null}`.
    pub fn to_json(&self) -> String {
        let bounds: Vec<String> = self.bounds.iter().map(|b| json_f64(*b)).collect();
        let counts: Vec<String> = self.counts.iter().map(u64::to_string).collect();
        format!(
            "{{\"bounds\":[{}],\"counts\":[{}],\"count\":{},\"sum\":{},\"min\":{},\"max\":{}}}",
            bounds.join(","),
            counts.join(","),
            self.count,
            json_f64(self.sum),
            self.min.map_or("null".into(), json_f64),
            self.max.map_or("null".into(), json_f64),
        )
    }
}

/// Formats an `f64` as a JSON number; non-finite values become `null`
/// (JSON has no NaN/Infinity).
pub fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Escapes a string for embedding in a JSON document.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// A named collection of counters, gauges, and histogram snapshots.
///
/// `BTreeMap`-backed so iteration — and therefore the JSON rendering — is
/// deterministic regardless of insertion order. Names are dotted paths by
/// convention (`losses.overlap`, `mac.backoff_draws`).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, f64>,
    histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets (overwrites) a counter.
    pub fn set_counter(&mut self, name: &str, value: u64) {
        self.counters.insert(name.to_string(), value);
    }

    /// Adds to a counter, creating it at zero first if absent.
    pub fn add_counter(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Sets (overwrites) a gauge.
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Stores a histogram snapshot under `name`.
    pub fn set_histogram(&mut self, name: &str, snapshot: HistogramSnapshot) {
        self.histograms.insert(name.to_string(), snapshot);
    }

    /// Reads a counter back, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters.get(name).copied()
    }

    /// Reads a gauge back, if present.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.get(name).copied()
    }

    /// Reads a histogram snapshot back, if present.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Renders the registry as a JSON object with three sections:
    /// `{"counters": {...}, "gauges": {...}, "histograms": {...}}`.
    ///
    /// Keys are emitted in lexicographic order, so the output is
    /// byte-deterministic for a given registry state.
    pub fn to_json(&self) -> String {
        let counters: Vec<String> = self
            .counters
            .iter()
            .map(|(k, v)| format!("\"{}\":{}", json_escape(k), v))
            .collect();
        let gauges: Vec<String> = self
            .gauges
            .iter()
            .map(|(k, v)| format!("\"{}\":{}", json_escape(k), json_f64(*v)))
            .collect();
        let histograms: Vec<String> = self
            .histograms
            .iter()
            .map(|(k, v)| format!("\"{}\":{}", json_escape(k), v.to_json()))
            .collect();
        format!(
            "{{\"counters\":{{{}}},\"gauges\":{{{}}},\"histograms\":{{{}}}}}",
            counters.join(","),
            gauges.join(","),
            histograms.join(",")
        )
    }
}

/// Wall-clock profiler for an event loop, keyed by a static event-kind
/// label.
///
/// The disabled profiler is the default and is designed to cost nothing
/// measurable: [`begin`] returns `None` without touching the clock, and
/// [`record`] only bumps one `u64`. Timing (two `Instant` reads per event
/// plus a small linear label lookup) happens only when explicitly enabled.
///
/// [`begin`]: LoopProfiler::begin
/// [`record`]: LoopProfiler::record
#[derive(Debug, Clone)]
pub struct LoopProfiler {
    enabled: bool,
    events: u64,
    // Linear Vec, not a map: event-kind cardinality is tiny (< 10) and the
    // hot path only runs when profiling is opted into anyway.
    kinds: Vec<(&'static str, KindStats)>,
}

#[derive(Debug, Clone, Copy, Default)]
struct KindStats {
    count: u64,
    total_ns: u64,
    max_ns: u64,
}

impl LoopProfiler {
    /// A profiler that counts events but never reads the clock.
    pub fn disabled() -> Self {
        LoopProfiler {
            enabled: false,
            events: 0,
            kinds: Vec::new(),
        }
    }

    /// A profiler that times every event.
    pub fn enabled() -> Self {
        LoopProfiler {
            enabled: true,
            events: 0,
            kinds: Vec::new(),
        }
    }

    /// Whether per-kind timing is active.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Starts timing one event. Returns `None` (and does not read the
    /// clock) when disabled.
    #[inline]
    pub fn begin(&self) -> Option<Instant> {
        if self.enabled {
            // simlint: allow(wall-clock) — profiling reads, never sim state
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Finishes timing one event started with [`begin`](Self::begin).
    #[inline]
    pub fn record(&mut self, kind: &'static str, started: Option<Instant>) {
        self.events += 1;
        let Some(t0) = started else { return };
        let ns = t0.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        let stats = match self.kinds.iter_mut().find(|(k, _)| *k == kind) {
            Some((_, stats)) => stats,
            None => {
                self.kinds.push((kind, KindStats::default()));
                &mut self.kinds.last_mut().expect("just pushed").1
            }
        };
        stats.count += 1;
        stats.total_ns += ns;
        stats.max_ns = stats.max_ns.max(ns);
    }

    /// Finishes timing a *batch* of `count` events handled under one
    /// clock window (the epoch-parallel executor drains many timer events
    /// per wall-clock measurement). The window's elapsed time is
    /// attributed to `kind` once; the event count grows by `count`, so
    /// per-event means stay meaningful while max-per-event does not apply
    /// to batched kinds.
    pub fn record_batch(&mut self, kind: &'static str, started: Option<Instant>, count: u64) {
        self.events += count;
        let Some(t0) = started else { return };
        let ns = t0.elapsed().as_nanos().min(u64::MAX as u128) as u64;
        let stats = match self.kinds.iter_mut().find(|(k, _)| *k == kind) {
            Some((_, stats)) => stats,
            None => {
                self.kinds.push((kind, KindStats::default()));
                &mut self.kinds.last_mut().expect("just pushed").1
            }
        };
        stats.count += count;
        stats.total_ns += ns;
        stats.max_ns = stats.max_ns.max(ns);
    }

    /// Total events seen (counted even when disabled).
    pub fn events_processed(&self) -> u64 {
        self.events
    }

    /// An owned summary of what was observed so far. Per-kind entries are
    /// sorted by descending total time.
    pub fn profile(&self) -> LoopProfile {
        let mut kinds: Vec<KindProfile> = self
            .kinds
            .iter()
            .map(|(kind, s)| KindProfile {
                kind: (*kind).to_string(),
                count: s.count,
                total_ns: s.total_ns,
                max_ns: s.max_ns,
            })
            .collect();
        kinds.sort_by(|a, b| b.total_ns.cmp(&a.total_ns).then(a.kind.cmp(&b.kind)));
        LoopProfile {
            events: self.events,
            kinds,
        }
    }
}

/// Frozen output of a [`LoopProfiler`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoopProfile {
    /// Total events processed by the loop.
    pub events: u64,
    /// Per-event-kind timing, sorted by descending total wall time.
    /// Empty when the profiler ran disabled.
    pub kinds: Vec<KindProfile>,
}

/// Wall-time summary for one event kind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KindProfile {
    /// The label the loop classified the event under.
    pub kind: String,
    /// Events of this kind.
    pub count: u64,
    /// Total handler wall time, nanoseconds.
    pub total_ns: u64,
    /// Slowest single event, nanoseconds.
    pub max_ns: u64,
}

impl KindProfile {
    /// Mean handler time per event, nanoseconds.
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.total_ns as f64 / self.count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let mut c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let mut g = Gauge::new();
        g.set(2.5);
        assert_eq!(g.get(), 2.5);
    }

    #[test]
    fn histogram_buckets_and_overflow() {
        let mut h = Histogram::new(&[1.0, 2.0, 5.0]);
        h.record(0.5); // bucket 0 (<= 1.0)
        h.record(1.0); // bucket 0 (inclusive upper bound)
        h.record(1.5); // bucket 1
        h.record(10.0); // overflow
        let s = h.snapshot();
        assert_eq!(s.counts, vec![2, 1, 0, 1]);
        assert_eq!(s.count, 4);
        assert_eq!(s.min, Some(0.5));
        assert_eq!(s.max, Some(10.0));
        assert_eq!(s.mean(), Some(13.0 / 4.0));
    }

    #[test]
    fn histogram_record_n_matches_repeated_record() {
        let mut a = Histogram::new(&[1.0, 3.0]);
        let mut b = Histogram::new(&[1.0, 3.0]);
        for _ in 0..7 {
            a.record(2.0);
        }
        b.record_n(2.0, 7);
        assert_eq!(a.snapshot(), b.snapshot());
    }

    #[test]
    fn histogram_merge_sums_buckets() {
        let mut a = Histogram::new(&[1.0, 2.0]);
        let mut b = Histogram::new(&[1.0, 2.0]);
        a.record(0.5);
        b.record(1.5);
        b.record(9.0);
        a.merge(&b);
        let s = a.snapshot();
        assert_eq!(s.counts, vec![1, 1, 1]);
        assert_eq!(s.count, 3);
        assert_eq!(s.min, Some(0.5));
        assert_eq!(s.max, Some(9.0));
    }

    #[test]
    #[should_panic(expected = "different bounds")]
    fn histogram_merge_rejects_mismatched_bounds() {
        let mut a = Histogram::new(&[1.0]);
        let b = Histogram::new(&[2.0]);
        a.merge(&b);
    }

    #[test]
    fn empty_histogram_snapshot_has_null_extremes() {
        let s = Histogram::new(&[1.0]).snapshot();
        assert_eq!(s.min, None);
        assert_eq!(s.max, None);
        assert_eq!(s.mean(), None);
        assert!(s.to_json().contains("\"min\":null"));
    }

    #[test]
    fn registry_json_is_sorted_and_valid_shape() {
        let mut r = MetricsRegistry::new();
        r.set_counter("z.last", 2);
        r.add_counter("a.first", 1);
        r.add_counter("a.first", 1);
        r.set_gauge("ratio", 0.5);
        let mut h = Histogram::new(&[1.0]);
        h.record(0.5);
        r.set_histogram("lat", h.snapshot());
        let json = r.to_json();
        assert_eq!(r.counter("a.first"), Some(2));
        // Lexicographic key order: "a.first" before "z.last".
        let a = json.find("a.first").expect("a.first present");
        let z = json.find("z.last").expect("z.last present");
        assert!(a < z, "keys must be sorted: {json}");
        assert!(json.starts_with("{\"counters\":{"));
        assert!(json.contains("\"gauges\":{\"ratio\":0.5}"));
        assert!(json.contains("\"histograms\":{\"lat\":{\"bounds\":[1],"));
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn json_f64_rejects_non_finite() {
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
        assert_eq!(json_f64(1.25), "1.25");
    }

    #[test]
    fn disabled_profiler_counts_without_timing() {
        let mut p = LoopProfiler::disabled();
        assert!(p.begin().is_none());
        p.record("tick", None);
        p.record("tock", None);
        assert_eq!(p.events_processed(), 2);
        let profile = p.profile();
        assert_eq!(profile.events, 2);
        assert!(profile.kinds.is_empty());
    }

    #[test]
    fn shard_delta_merge_is_order_independent() {
        let deltas = [
            ShardDelta {
                events: 3,
                rescheduled: 1,
                deferred: 0,
                last_event_at: Some(SimTime::from_millis(5)),
            },
            ShardDelta::default(),
            ShardDelta {
                events: 2,
                rescheduled: 2,
                deferred: 4,
                last_event_at: Some(SimTime::from_millis(9)),
            },
        ];
        let mut forward = ShardDelta::default();
        let mut backward = ShardDelta::default();
        for d in &deltas {
            forward.merge(d);
        }
        for d in deltas.iter().rev() {
            backward.merge(d);
        }
        assert_eq!(forward, backward);
        assert_eq!(forward.events, 5);
        assert_eq!(forward.deferred, 4);
        assert_eq!(forward.last_event_at, Some(SimTime::from_millis(9)));
    }

    #[test]
    fn record_batch_counts_events_even_when_disabled() {
        let mut p = LoopProfiler::disabled();
        p.record_batch("mac_timer", None, 17);
        assert_eq!(p.events_processed(), 17);
        let mut p = LoopProfiler::enabled();
        let t0 = p.begin();
        p.record_batch("mac_timer", t0, 3);
        let profile = p.profile();
        assert_eq!(profile.events, 3);
        assert_eq!(profile.kinds[0].count, 3);
    }

    #[test]
    fn enabled_profiler_attributes_time_per_kind() {
        let mut p = LoopProfiler::enabled();
        for _ in 0..3 {
            let t0 = p.begin();
            assert!(t0.is_some());
            p.record("tick", t0);
        }
        let t0 = p.begin();
        p.record("tock", t0);
        let profile = p.profile();
        assert_eq!(profile.events, 4);
        assert_eq!(profile.kinds.len(), 2);
        let tick = profile
            .kinds
            .iter()
            .find(|k| k.kind == "tick")
            .expect("tick profiled");
        assert_eq!(tick.count, 3);
        assert!(tick.max_ns <= tick.total_ns);
        assert!(tick.mean_ns() >= 0.0);
    }
}
