//! Seeded randomness helpers.
//!
//! All stochastic behaviour in the simulator flows through [`SimRng`], a
//! thin wrapper over the in-tree xoshiro256++ generator
//! ([`prng::Xoshiro256pp`](crate::prng::Xoshiro256pp)). Constructing every
//! component's RNG by [`SimRng::fork`]-ing a single root seed makes whole
//! simulations reproducible from one `u64` while keeping streams
//! statistically independent.

use crate::prng::{splitmix64, Xoshiro256pp};
use crate::time::SimDuration;

/// A deterministic random number generator for simulation components.
///
/// # Examples
///
/// ```
/// use manet_sim_engine::SimRng;
///
/// let mut a = SimRng::seed_from(42);
/// let mut b = SimRng::seed_from(42);
/// assert_eq!(a.gen_range_u32(0..100), b.gen_range_u32(0..100));
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: Xoshiro256pp,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        SimRng {
            inner: Xoshiro256pp::seed_from(seed),
        }
    }

    /// Derives an independent child generator.
    ///
    /// The child's stream is a deterministic function of the parent's seed
    /// and the `stream` label, so components can be created in any order
    /// without perturbing each other's randomness.
    pub fn fork(&self, stream: u64) -> SimRng {
        // Mix the parent's seed material with the stream label through
        // splitmix64 so adjacent labels produce uncorrelated seeds.
        let mut base = self.clone();
        let parent_word = base.inner.next_u64();
        SimRng::seed_from(splitmix64(parent_word ^ splitmix64(stream)))
    }

    /// The next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }

    /// Uniform `u64` in `[lo, hi]` (inclusive; the full-width range is
    /// allowed).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn gen_u64_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        self.inner.next_u64_inclusive(lo, hi)
    }

    /// Uniform `u32` in `range` (half-open).
    ///
    /// # Panics
    ///
    /// Panics if `range` is empty.
    pub fn gen_range_u32(&mut self, range: std::ops::Range<u32>) -> u32 {
        assert!(!range.is_empty(), "empty range");
        range.start
            + self
                .inner
                .next_u64_below(u64::from(range.end - range.start)) as u32
    }

    /// Uniform `usize` in `range` (half-open).
    ///
    /// # Panics
    ///
    /// Panics if `range` is empty.
    pub fn gen_range_usize(&mut self, range: std::ops::Range<usize>) -> usize {
        assert!(!range.is_empty(), "empty range");
        range.start + self.inner.next_u64_below((range.end - range.start) as u64) as usize
    }

    /// Uniform `f64` in `range` (half-open).
    ///
    /// # Panics
    ///
    /// Panics if `range` is empty.
    pub fn gen_range_f64(&mut self, range: std::ops::Range<f64>) -> f64 {
        assert!(!range.is_empty(), "empty range");
        let sample = range.start + self.inner.unit_f64() * (range.end - range.start);
        // Floating-point rounding can land exactly on `end` when the span
        // is much larger than `start`; stay inside the half-open contract.
        if sample < range.end {
            sample
        } else {
            range.end.next_down().max(range.start)
        }
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn gen_unit_f64(&mut self) -> f64 {
        self.inner.unit_f64()
    }

    /// `true` with probability `p`.
    ///
    /// `gen_bool(0.0)` is always `false` and `gen_bool(1.0)` is always
    /// `true`, exactly.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        // unit_f64 is in [0, 1), so the comparison is exact at both ends.
        self.inner.unit_f64() < p
    }

    /// A uniformly random duration in `[SimDuration::ZERO, max]` (inclusive).
    pub fn gen_duration_up_to(&mut self, max: SimDuration) -> SimDuration {
        if max.is_zero() {
            return SimDuration::ZERO;
        }
        SimDuration::from_nanos(self.inner.next_u64_inclusive(0, max.as_nanos()))
    }

    /// A uniformly random duration in `[lo, hi]` (inclusive).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn gen_duration_between(&mut self, lo: SimDuration, hi: SimDuration) -> SimDuration {
        assert!(lo <= hi, "empty duration range: {lo} > {hi}");
        SimDuration::from_nanos(self.inner.next_u64_inclusive(lo.as_nanos(), hi.as_nanos()))
    }

    /// The generator's full stream position, for snapshot serialization.
    pub fn state(&self) -> [u64; 4] {
        self.inner.state()
    }

    /// Rebuilds a generator from an exported [`state`](Self::state); the
    /// stream continues exactly where the exporting generator stopped.
    ///
    /// # Panics
    ///
    /// Panics on the (unreachable-by-construction) all-zero state.
    pub fn from_state(state: [u64; 4]) -> Self {
        SimRng {
            inner: Xoshiro256pp::from_state(state),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range_u32(0..1000), b.gen_range_u32(0..1000));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(8);
        let same = (0..100)
            .filter(|_| a.gen_range_u32(0..1000) == b.gen_range_u32(0..1000))
            .count();
        assert!(same < 10, "streams should diverge, {same} collisions");
    }

    #[test]
    fn forks_are_deterministic_and_independent() {
        let root = SimRng::seed_from(7);
        let mut c1 = root.fork(1);
        let mut c1_again = SimRng::seed_from(7).fork(1);
        let mut c2 = root.fork(2);
        assert_eq!(c1.gen_range_u32(0..1000), c1_again.gen_range_u32(0..1000));
        let same = (0..100)
            .filter(|_| c1.gen_range_u32(0..1000) == c2.gen_range_u32(0..1000))
            .count();
        assert!(same < 10, "forked streams should differ, {same} collisions");
    }

    #[test]
    fn fork_streams_are_pairwise_divergent() {
        // Any two of the first 16 fork labels produce streams that almost
        // never collide on a 1000-bucket draw.
        let root = SimRng::seed_from(99);
        let mut streams: Vec<Vec<u32>> = (0..16)
            .map(|label| {
                let mut child = root.fork(label);
                (0..100).map(|_| child.gen_range_u32(0..1000)).collect()
            })
            .collect();
        while let Some(a) = streams.pop() {
            for b in &streams {
                let same = a.iter().zip(b).filter(|(x, y)| x == y).count();
                assert!(same < 10, "fork streams collided {same}/100 times");
            }
        }
    }

    #[test]
    fn duration_ranges_respect_bounds() {
        let mut rng = SimRng::seed_from(3);
        let lo = SimDuration::from_millis(10);
        let hi = SimDuration::from_millis(20);
        for _ in 0..1000 {
            let d = rng.gen_duration_between(lo, hi);
            assert!(d >= lo && d <= hi);
            let u = rng.gen_duration_up_to(hi);
            assert!(u <= hi);
        }
        assert_eq!(rng.gen_duration_up_to(SimDuration::ZERO), SimDuration::ZERO);
    }

    #[test]
    fn duration_ranges_survive_u64_extremes() {
        let mut rng = SimRng::seed_from(5);
        let top = SimDuration::from_nanos(u64::MAX);
        let near_top = SimDuration::from_nanos(u64::MAX - 1);
        for _ in 0..1000 {
            let d = rng.gen_duration_between(near_top, top);
            assert!(d >= near_top && d <= top);
            // The full-width range must not overflow or panic.
            let _ = rng.gen_duration_up_to(top);
            let same = rng.gen_duration_between(top, top);
            assert_eq!(same, top);
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = SimRng::seed_from(11);
        for _ in 0..1000 {
            let x = rng.gen_unit_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_bool_is_exact_at_the_extremes() {
        let mut rng = SimRng::seed_from(13);
        for _ in 0..10_000 {
            assert!(!rng.gen_bool(0.0), "gen_bool(0.0) must always be false");
            assert!(rng.gen_bool(1.0), "gen_bool(1.0) must always be true");
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SimRng::seed_from(17);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.3).abs() < 0.01, "gen_bool(0.3) rate {rate}");
    }

    #[test]
    fn output_bits_are_balanced() {
        // Mean popcount of next_u64 over 10k draws is 32 ± a small margin
        // (the binomial std dev of the mean is 4/sqrt(10_000) = 0.04).
        let mut rng = SimRng::seed_from(19);
        let total: u64 = (0..10_000)
            .map(|_| u64::from(rng.next_u64().count_ones()))
            .sum();
        let mean = total as f64 / 10_000.0;
        assert!((mean - 32.0).abs() < 0.25, "bit-balance mean {mean}");
    }

    #[test]
    fn unit_f64_mean_is_centered() {
        // Std dev of the mean over 100k uniform draws is ~0.0009.
        let mut rng = SimRng::seed_from(23);
        let total: f64 = (0..100_000).map(|_| rng.gen_unit_f64()).sum();
        let mean = total / 100_000.0;
        assert!((mean - 0.5).abs() < 0.005, "unit mean {mean}");
    }

    #[test]
    fn float_ranges_stay_half_open() {
        let mut rng = SimRng::seed_from(29);
        for _ in 0..10_000 {
            let x = rng.gen_range_f64(0.0..1e-300);
            assert!((0.0..1e-300).contains(&x));
            let y = rng.gen_range_f64(-3.0..7.5);
            assert!((-3.0..7.5).contains(&y));
        }
    }
}
