//! Seeded randomness helpers.
//!
//! All stochastic behaviour in the simulator flows through [`SimRng`], a
//! thin wrapper over a fast, seedable PRNG. Constructing every component's
//! RNG by [`SimRng::fork`]-ing a single root seed makes whole simulations
//! reproducible from one `u64` while keeping streams statistically
//! independent.

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

use crate::time::SimDuration;

/// A deterministic random number generator for simulation components.
///
/// # Examples
///
/// ```
/// use manet_sim_engine::SimRng;
///
/// let mut a = SimRng::seed_from(42);
/// let mut b = SimRng::seed_from(42);
/// assert_eq!(a.gen_range_u32(0..100), b.gen_range_u32(0..100));
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: SmallRng,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        SimRng {
            inner: SmallRng::seed_from_u64(seed),
        }
    }

    /// Derives an independent child generator.
    ///
    /// The child's stream is a deterministic function of the parent's seed
    /// and the `stream` label, so components can be created in any order
    /// without perturbing each other's randomness.
    pub fn fork(&self, stream: u64) -> SimRng {
        // Mix the parent's seed material with the stream label through
        // splitmix64 so adjacent labels produce uncorrelated seeds.
        let mut base = self.clone();
        let parent_word = base.inner.next_u64();
        SimRng::seed_from(splitmix64(parent_word ^ splitmix64(stream)))
    }

    /// Uniform `u32` in `range` (half-open).
    pub fn gen_range_u32(&mut self, range: std::ops::Range<u32>) -> u32 {
        self.inner.gen_range(range)
    }

    /// Uniform `usize` in `range` (half-open).
    pub fn gen_range_usize(&mut self, range: std::ops::Range<usize>) -> usize {
        self.inner.gen_range(range)
    }

    /// Uniform `f64` in `range` (half-open).
    pub fn gen_range_f64(&mut self, range: std::ops::Range<f64>) -> f64 {
        self.inner.gen_range(range)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn gen_unit_f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.inner.gen_bool(p)
    }

    /// A uniformly random duration in `[SimDuration::ZERO, max]` (inclusive).
    pub fn gen_duration_up_to(&mut self, max: SimDuration) -> SimDuration {
        if max.is_zero() {
            return SimDuration::ZERO;
        }
        SimDuration::from_nanos(self.inner.gen_range(0..=max.as_nanos()))
    }

    /// A uniformly random duration in `[lo, hi]` (inclusive).
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn gen_duration_between(&mut self, lo: SimDuration, hi: SimDuration) -> SimDuration {
        assert!(lo <= hi, "empty duration range: {lo} > {hi}");
        SimDuration::from_nanos(self.inner.gen_range(lo.as_nanos()..=hi.as_nanos()))
    }

    /// Access to the underlying [`rand::Rng`] for distributions not covered
    /// by the convenience methods.
    pub fn raw(&mut self) -> &mut impl Rng {
        &mut self.inner
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.gen_range_u32(0..1000), b.gen_range_u32(0..1000));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(8);
        let same = (0..100)
            .filter(|_| a.gen_range_u32(0..1000) == b.gen_range_u32(0..1000))
            .count();
        assert!(same < 10, "streams should diverge, {same} collisions");
    }

    #[test]
    fn forks_are_deterministic_and_independent() {
        let root = SimRng::seed_from(7);
        let mut c1 = root.fork(1);
        let mut c1_again = SimRng::seed_from(7).fork(1);
        let mut c2 = root.fork(2);
        assert_eq!(c1.gen_range_u32(0..1000), c1_again.gen_range_u32(0..1000));
        let same = (0..100)
            .filter(|_| c1.gen_range_u32(0..1000) == c2.gen_range_u32(0..1000))
            .count();
        assert!(same < 10, "forked streams should differ, {same} collisions");
    }

    #[test]
    fn duration_ranges_respect_bounds() {
        let mut rng = SimRng::seed_from(3);
        let lo = SimDuration::from_millis(10);
        let hi = SimDuration::from_millis(20);
        for _ in 0..1000 {
            let d = rng.gen_duration_between(lo, hi);
            assert!(d >= lo && d <= hi);
            let u = rng.gen_duration_up_to(hi);
            assert!(u <= hi);
        }
        assert_eq!(
            rng.gen_duration_up_to(SimDuration::ZERO),
            SimDuration::ZERO
        );
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = SimRng::seed_from(11);
        for _ in 0..1000 {
            let x = rng.gen_unit_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
