//! A fixed-overhead slab allocator: stable `u32` keys, free-list reuse,
//! zero steady-state heap traffic.
//!
//! The simulation hot path creates and destroys many short-lived records
//! (frames on the air, queued MAC payloads, per-packet scheme state).
//! Keying them through a `HashMap` costs a hash plus allocator traffic per
//! record; a [`Slab`] instead hands out dense `u32` slots and recycles
//! vacated slots through an intrusive free list, so steady-state insert
//! and remove touch no allocator and no hasher at all.
//!
//! Keys are reused: after `remove(k)`, a later `insert` may return `k`
//! again. Callers that need generation-checked keys must layer them on
//! top; the simulator's records are all removed exactly once by the owner
//! of the key, so raw slots suffice.
//!
//! # Examples
//!
//! ```
//! use manet_sim_engine::Slab;
//!
//! let mut slab = Slab::new();
//! let a = slab.insert("alpha");
//! let b = slab.insert("beta");
//! assert_eq!(slab.remove(a), "alpha");
//! let c = slab.insert("gamma"); // reuses slot `a`
//! assert_eq!(c, a);
//! assert_eq!(slab[b], "beta");
//! ```

use std::fmt;
use std::ops::{Index, IndexMut};

/// One slot: occupied with a value, or vacant and linking to the next
/// free slot.
#[derive(Debug, Clone)]
enum Entry<T> {
    Occupied(T),
    Vacant { next_free: u32 },
}

/// Sentinel terminating the free list.
const NIL: u32 = u32::MAX;

/// The raw image of one slab slot, exposed for snapshot serialization.
///
/// Restoring a slab from raw slots (rather than re-inserting the live
/// values) preserves the exact slot layout **and** free-list order, so
/// keys handed out after a restore match the keys the exporting slab would
/// have handed out.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SlabSlot<T> {
    /// The slot holds a live value.
    Occupied(T),
    /// The slot is vacant; `next_free` is the next slot on the free list
    /// (`u32::MAX` terminates the list).
    Vacant {
        /// Raw free-list link, exactly as stored.
        next_free: u32,
    },
}

/// A slab of `T` values with `u32` keys and free-list slot reuse.
#[derive(Clone)]
pub struct Slab<T> {
    entries: Vec<Entry<T>>,
    free_head: u32,
    len: usize,
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> Slab<T> {
    /// Creates an empty slab.
    pub fn new() -> Self {
        Slab {
            entries: Vec::new(),
            free_head: NIL,
            len: 0,
        }
    }

    /// Creates an empty slab that can hold `capacity` values before
    /// growing.
    pub fn with_capacity(capacity: usize) -> Self {
        Slab {
            entries: Vec::with_capacity(capacity),
            free_head: NIL,
            len: 0,
        }
    }

    /// Number of occupied slots.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when no slot is occupied.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Stores `value`, returning its slot. Reuses the most recently
    /// vacated slot if any (LIFO), else appends.
    pub fn insert(&mut self, value: T) -> u32 {
        self.len += 1;
        match self.free_head {
            NIL => {
                let key = u32::try_from(self.entries.len()).expect("slab exceeds u32 slots");
                self.entries.push(Entry::Occupied(value));
                key
            }
            key => {
                let slot = &mut self.entries[key as usize];
                let Entry::Vacant { next_free } = *slot else {
                    unreachable!("free list points at an occupied slot");
                };
                self.free_head = next_free;
                *slot = Entry::Occupied(value);
                key
            }
        }
    }

    /// Removes and returns the value in `key`.
    ///
    /// # Panics
    ///
    /// Panics if `key` is vacant or out of bounds.
    pub fn remove(&mut self, key: u32) -> T {
        let slot = &mut self.entries[key as usize];
        let filled = std::mem::replace(
            slot,
            Entry::Vacant {
                next_free: self.free_head,
            },
        );
        match filled {
            Entry::Occupied(value) => {
                self.free_head = key;
                self.len -= 1;
                value
            }
            vacant @ Entry::Vacant { .. } => {
                // Undo the link to keep the free list coherent, then die.
                *slot = vacant;
                panic!("slab slot {key} is vacant");
            }
        }
    }

    /// The value in `key`, or `None` when vacant or out of bounds.
    pub fn get(&self, key: u32) -> Option<&T> {
        match self.entries.get(key as usize) {
            Some(Entry::Occupied(value)) => Some(value),
            _ => None,
        }
    }

    /// Mutable access to the value in `key`, or `None` when vacant or out
    /// of bounds.
    pub fn get_mut(&mut self, key: u32) -> Option<&mut T> {
        match self.entries.get_mut(key as usize) {
            Some(Entry::Occupied(value)) => Some(value),
            _ => None,
        }
    }

    /// `true` when `key` holds a value.
    pub fn contains(&self, key: u32) -> bool {
        matches!(self.entries.get(key as usize), Some(Entry::Occupied(_)))
    }

    /// Iterates occupied slots as `(key, &value)` in ascending key order.
    ///
    /// Walks every slot including vacant ones, so this is `O(capacity)`
    /// rather than `O(len)` — fine for the cold paths (teardown, host
    /// deactivation) it exists for, not for per-event work.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &T)> {
        self.entries
            .iter()
            .enumerate()
            .filter_map(|(i, e)| match e {
                Entry::Occupied(value) => Some((i as u32, value)),
                Entry::Vacant { .. } => None,
            })
    }

    /// The free-list head plus every slot's raw image in index order, for
    /// snapshot serialization (see [`SlabSlot`]).
    pub fn export_slots(&self) -> (u32, impl Iterator<Item = SlabSlot<&T>>) {
        let slots = self.entries.iter().map(|entry| match entry {
            Entry::Occupied(value) => SlabSlot::Occupied(value),
            Entry::Vacant { next_free } => SlabSlot::Vacant {
                next_free: *next_free,
            },
        });
        (self.free_head, slots)
    }

    /// Rebuilds a slab from [`export_slots`](Self::export_slots) output,
    /// reproducing the exact slot layout and free-list order.
    pub fn from_slots(free_head: u32, slots: impl IntoIterator<Item = SlabSlot<T>>) -> Self {
        let entries: Vec<Entry<T>> = slots
            .into_iter()
            .map(|slot| match slot {
                SlabSlot::Occupied(value) => Entry::Occupied(value),
                SlabSlot::Vacant { next_free } => Entry::Vacant { next_free },
            })
            .collect();
        let len = entries
            .iter()
            .filter(|e| matches!(e, Entry::Occupied(_)))
            .count();
        Slab {
            entries,
            free_head,
            len,
        }
    }
}

impl<T> Index<u32> for Slab<T> {
    type Output = T;

    fn index(&self, key: u32) -> &T {
        self.get(key).expect("slab slot is vacant")
    }
}

impl<T> IndexMut<u32> for Slab<T> {
    fn index_mut(&mut self, key: u32) -> &mut T {
        self.get_mut(key).expect("slab slot is vacant")
    }
}

impl<T: fmt::Debug> fmt::Debug for Slab<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let occupied = self
            .entries
            .iter()
            .enumerate()
            .filter_map(|(i, e)| match e {
                Entry::Occupied(v) => Some((i, v)),
                Entry::Vacant { .. } => None,
            });
        f.debug_map().entries(occupied).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_round_trip() {
        let mut slab = Slab::new();
        let a = slab.insert(10);
        let b = slab.insert(20);
        assert_eq!(slab.len(), 2);
        assert_eq!(slab.get(a), Some(&10));
        assert_eq!(slab[b], 20);
        assert_eq!(slab.remove(a), 10);
        assert_eq!(slab.get(a), None);
        assert!(!slab.contains(a));
        assert!(slab.contains(b));
        assert_eq!(slab.len(), 1);
    }

    #[test]
    fn slots_are_reused_lifo() {
        let mut slab = Slab::new();
        let a = slab.insert('a');
        let b = slab.insert('b');
        slab.remove(a);
        slab.remove(b);
        // LIFO: most recently freed first.
        assert_eq!(slab.insert('c'), b);
        assert_eq!(slab.insert('d'), a);
        // Both slots live again; a third insert must append.
        assert_eq!(slab.insert('e'), 2);
    }

    #[test]
    fn no_growth_in_steady_state() {
        let mut slab = Slab::with_capacity(4);
        let base = slab.entries.capacity();
        for round in 0..1_000u32 {
            let k1 = slab.insert(round);
            let k2 = slab.insert(round + 1);
            assert_eq!(slab.remove(k1), round);
            assert_eq!(slab.remove(k2), round + 1);
        }
        assert_eq!(slab.entries.capacity(), base, "steady state must not grow");
        assert!(slab.is_empty());
    }

    #[test]
    fn get_mut_updates_in_place() {
        let mut slab = Slab::new();
        let k = slab.insert(5);
        *slab.get_mut(k).unwrap() += 1;
        slab[k] += 1;
        assert_eq!(slab[k], 7);
    }

    #[test]
    #[should_panic(expected = "vacant")]
    fn removing_vacant_slot_panics() {
        let mut slab = Slab::new();
        let k = slab.insert(1);
        slab.remove(k);
        slab.remove(k);
    }

    #[test]
    fn out_of_bounds_lookups_are_none() {
        let slab: Slab<u8> = Slab::new();
        assert_eq!(slab.get(3), None);
        assert!(!slab.contains(3));
    }
}
