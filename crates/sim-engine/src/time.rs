//! Simulation time and duration types.
//!
//! The engine measures time in integer **nanoseconds** since the start of the
//! simulation. An unsigned 64-bit nanosecond counter wraps after roughly
//! 584 years of simulated time, which is far beyond any scenario in this
//! workspace (the longest paper experiment simulates a few hours).
//!
//! Two newtypes keep instants and spans apart ([`SimTime`] and
//! [`SimDuration`]); mixing them up is a compile error. Arithmetic follows
//! the same conventions as [`std::time`]: `SimTime + SimDuration = SimTime`,
//! `SimTime - SimTime = SimDuration`, and so on.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant on the simulation clock, in nanoseconds since time zero.
///
/// # Examples
///
/// ```
/// use manet_sim_engine::{SimDuration, SimTime};
///
/// let start = SimTime::ZERO;
/// let later = start + SimDuration::from_millis(3);
/// assert_eq!(later - start, SimDuration::from_micros(3_000));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time, in nanoseconds.
///
/// # Examples
///
/// ```
/// use manet_sim_engine::SimDuration;
///
/// let slot = SimDuration::from_micros(20);
/// assert_eq!(slot * 31, SimDuration::from_micros(620));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The origin of the simulation clock.
    pub const ZERO: SimTime = SimTime(0);

    /// The largest representable instant; useful as an "infinite" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `nanos` nanoseconds after time zero.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime(nanos)
    }

    /// Creates an instant `micros` microseconds after time zero.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros * 1_000)
    }

    /// Creates an instant `millis` milliseconds after time zero.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000_000)
    }

    /// Creates an instant `secs` seconds after time zero.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000_000)
    }

    /// Nanoseconds since time zero.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds since time zero, truncating.
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds since time zero as a float (for metrics and display).
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// The span from `earlier` to `self`, or `None` when `earlier` is later.
    pub fn checked_duration_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }

    /// The span from `earlier` to `self`, clamping to zero when `earlier`
    /// is actually later than `self`.
    pub fn saturating_duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// The largest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a span of `nanos` nanoseconds.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimDuration(nanos)
    }

    /// Creates a span of `micros` microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros * 1_000)
    }

    /// Creates a span of `millis` milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000_000)
    }

    /// Creates a span of `secs` seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000_000)
    }

    /// Creates a span from a float number of seconds, rounding to the
    /// nearest nanosecond.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative, non-finite, or too large to represent.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "duration seconds must be finite and non-negative, got {secs}"
        );
        let nanos = secs * 1e9;
        assert!(
            nanos <= u64::MAX as f64,
            "duration of {secs} seconds overflows the simulation clock"
        );
        SimDuration(nanos.round() as u64)
    }

    /// Length of the span in nanoseconds.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Length of the span in microseconds, truncating.
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Length of the span in milliseconds, truncating.
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Length of the span in seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// `true` when the span has zero length.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction: `self - rhs`, clamped at zero.
    pub const fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_add(rhs.0)
                .expect("simulation clock overflow"),
        )
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;

    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(
            self.0
                .checked_sub(rhs.0)
                .expect("simulation clock underflow"),
        )
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;

    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("subtracting a later SimTime from an earlier one"),
        )
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_add(rhs.0).expect("duration overflow"))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;

    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.checked_sub(rhs.0).expect("duration underflow"))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;

    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.checked_mul(rhs).expect("duration overflow"))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;

    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.as_secs_f64())
        } else if self.0 >= 1_000_000 {
            write!(f, "{}ms", self.as_millis())
        } else if self.0 >= 1_000 {
            write!(f, "{}us", self.as_micros())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_secs(2).as_nanos(), 2_000_000_000);
        assert_eq!(SimTime::from_millis(2).as_nanos(), 2_000_000);
        assert_eq!(SimTime::from_micros(2).as_nanos(), 2_000);
        assert_eq!(SimDuration::from_secs(1).as_millis(), 1_000);
        assert_eq!(SimDuration::from_micros(20).as_nanos(), 20_000);
    }

    #[test]
    fn arithmetic_is_consistent() {
        let a = SimTime::from_millis(10);
        let d = SimDuration::from_millis(5);
        assert_eq!(a + d, SimTime::from_millis(15));
        assert_eq!((a + d) - a, d);
        assert_eq!((a + d) - d, a);
    }

    #[test]
    fn duration_scaling() {
        let slot = SimDuration::from_micros(20);
        assert_eq!(slot * 3, SimDuration::from_micros(60));
        assert_eq!((slot * 3) / 3, slot);
    }

    #[test]
    fn float_seconds_round_trip() {
        let d = SimDuration::from_secs_f64(1.25);
        assert_eq!(d.as_nanos(), 1_250_000_000);
        assert!((d.as_secs_f64() - 1.25).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_float_duration_panics() {
        let _ = SimDuration::from_secs_f64(-0.5);
    }

    #[test]
    fn saturating_behaviour() {
        let early = SimTime::from_secs(1);
        let late = SimTime::from_secs(3);
        assert_eq!(early.saturating_duration_since(late), SimDuration::ZERO);
        assert_eq!(
            late.saturating_duration_since(early),
            SimDuration::from_secs(2)
        );
        assert_eq!(early.checked_duration_since(late), None);
    }

    #[test]
    fn display_picks_sensible_units() {
        assert_eq!(SimDuration::from_nanos(5).to_string(), "5ns");
        assert_eq!(SimDuration::from_micros(5).to_string(), "5us");
        assert_eq!(SimDuration::from_millis(5).to_string(), "5ms");
        assert_eq!(SimDuration::from_secs(5).to_string(), "5.000s");
    }
}
