//! A zero-dependency binary wire format for snapshots and action traces.
//!
//! Snapshots (`MSNP`) and action traces (`MTRC`) both need a compact,
//! versioned, byte-exact serialization without pulling in serde. This
//! module provides the shared primitive layer: a [`WireEncoder`] that
//! appends fixed-width little-endian fields to a buffer, and a
//! [`WireDecoder`] that reads them back with positioned errors.
//!
//! Layout rules:
//!
//! * All integers are little-endian and fixed-width; `usize` travels as
//!   `u64`.
//! * `f64` travels as its IEEE-754 bit pattern, so round-trips are exact
//!   (including `-0.0`, infinities, and NaN payloads).
//! * Strings and byte slices are length-prefixed (`u64` count, then raw
//!   bytes); sequences are length-prefixed by element count.
//! * A file begins with a 4-byte magic and a `u32` format version via
//!   [`WireEncoder::with_magic`] / [`WireDecoder::expect_magic`].
//!
//! # Examples
//!
//! ```
//! use manet_sim_engine::{WireDecoder, WireEncoder};
//!
//! let mut enc = WireEncoder::with_magic(b"MSNP", 1);
//! enc.u32(7);
//! enc.str("hello");
//! let bytes = enc.into_bytes();
//!
//! let mut dec = WireDecoder::new(&bytes);
//! assert_eq!(dec.expect_magic(b"MSNP").unwrap(), 1);
//! assert_eq!(dec.u32().unwrap(), 7);
//! assert_eq!(dec.str().unwrap(), "hello");
//! assert!(dec.finish().is_ok());
//! ```

use std::fmt;

/// A decoding failure, carrying the byte offset where it happened.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// Byte offset in the input at which decoding failed.
    pub at: usize,
    /// What the decoder was trying to read.
    pub what: &'static str,
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wire decode error at byte {}: {}", self.at, self.what)
    }
}

impl std::error::Error for WireError {}

/// Appends fixed-width little-endian fields to a growable buffer.
#[derive(Debug, Clone, Default)]
pub struct WireEncoder {
    buf: Vec<u8>,
}

impl WireEncoder {
    /// Creates an empty encoder.
    pub fn new() -> Self {
        WireEncoder::default()
    }

    /// Creates an encoder whose buffer starts with a 4-byte magic and a
    /// `u32` format version.
    pub fn with_magic(magic: &[u8; 4], version: u32) -> Self {
        let mut enc = WireEncoder::new();
        enc.buf.extend_from_slice(magic);
        enc.u32(version);
        enc
    }

    /// Appends one byte.
    pub fn u8(&mut self, value: u8) {
        self.buf.push(value);
    }

    /// Appends a little-endian `u32`.
    pub fn u32(&mut self, value: u32) {
        self.buf.extend_from_slice(&value.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn u64(&mut self, value: u64) {
        self.buf.extend_from_slice(&value.to_le_bytes());
    }

    /// Appends a `usize` as a `u64`.
    pub fn usize(&mut self, value: usize) {
        self.u64(value as u64);
    }

    /// Appends an `f64` as its exact IEEE-754 bit pattern.
    pub fn f64(&mut self, value: f64) {
        self.u64(value.to_bits());
    }

    /// Appends a `bool` as one byte (`0` or `1`).
    pub fn bool(&mut self, value: bool) {
        self.u8(u8::from(value));
    }

    /// Appends a length-prefixed byte slice.
    pub fn bytes(&mut self, value: &[u8]) {
        self.usize(value.len());
        self.buf.extend_from_slice(value);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, value: &str) {
        self.bytes(value.as_bytes());
    }

    /// Appends a sequence length prefix; the caller then appends that many
    /// elements.
    pub fn len(&mut self, count: usize) {
        self.usize(count);
    }

    /// The encoded bytes so far.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Consumes the encoder, returning the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Empties the buffer so the allocation can be reused.
    pub fn clear(&mut self) {
        self.buf.clear();
    }
}

/// Reads fields written by [`WireEncoder`] back out of a byte slice.
#[derive(Debug, Clone)]
pub struct WireDecoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireDecoder<'a> {
    /// Creates a decoder over `bytes`, positioned at the start.
    pub fn new(bytes: &'a [u8]) -> Self {
        WireDecoder { buf: bytes, pos: 0 }
    }

    /// Current byte offset (for error reporting and framing checks).
    pub fn position(&self) -> usize {
        self.pos
    }

    /// `true` when every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.pos >= self.buf.len()
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len());
        match end {
            Some(end) => {
                let slice = &self.buf[self.pos..end];
                self.pos = end;
                Ok(slice)
            }
            None => Err(WireError { at: self.pos, what }),
        }
    }

    /// Verifies the 4-byte magic and returns the `u32` format version.
    pub fn expect_magic(&mut self, magic: &[u8; 4]) -> Result<u32, WireError> {
        let at = self.pos;
        let found = self.take(4, "magic")?;
        if found != magic {
            return Err(WireError {
                at,
                what: "magic mismatch",
            });
        }
        self.u32()
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1, "u8")?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, WireError> {
        let bytes = self.take(4, "u32")?;
        Ok(u32::from_le_bytes(bytes.try_into().expect("4 bytes")))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, WireError> {
        let bytes = self.take(8, "u64")?;
        Ok(u64::from_le_bytes(bytes.try_into().expect("8 bytes")))
    }

    /// Reads a `usize` (stored as `u64`), rejecting values that do not fit.
    pub fn usize(&mut self) -> Result<usize, WireError> {
        let at = self.pos;
        usize::try_from(self.u64()?).map_err(|_| WireError {
            at,
            what: "usize overflow",
        })
    }

    /// Reads an `f64` from its bit pattern.
    pub fn f64(&mut self) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a `bool`, rejecting bytes other than `0` and `1`.
    pub fn bool(&mut self) -> Result<bool, WireError> {
        let at = self.pos;
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(WireError {
                at,
                what: "invalid bool",
            }),
        }
    }

    /// Reads a length-prefixed byte slice.
    pub fn bytes(&mut self) -> Result<&'a [u8], WireError> {
        let n = self.usize()?;
        self.take(n, "bytes payload")
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<&'a str, WireError> {
        let at = self.pos;
        std::str::from_utf8(self.bytes()?).map_err(|_| WireError {
            at,
            what: "invalid utf-8",
        })
    }

    /// Reads a sequence length prefix.
    pub fn len(&mut self) -> Result<usize, WireError> {
        self.usize()
    }

    /// Asserts every input byte was consumed (catches framing drift).
    pub fn finish(&self) -> Result<(), WireError> {
        if self.is_empty() {
            Ok(())
        } else {
            Err(WireError {
                at: self.pos,
                what: "trailing bytes",
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut enc = WireEncoder::new();
        enc.u8(0xAB);
        enc.u32(0xDEAD_BEEF);
        enc.u64(u64::MAX - 3);
        enc.usize(12_345);
        enc.f64(-0.0);
        enc.f64(f64::INFINITY);
        enc.bool(true);
        enc.bool(false);
        enc.str("héllo");
        enc.bytes(&[1, 2, 3]);
        let bytes = enc.into_bytes();

        let mut dec = WireDecoder::new(&bytes);
        assert_eq!(dec.u8().unwrap(), 0xAB);
        assert_eq!(dec.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(dec.u64().unwrap(), u64::MAX - 3);
        assert_eq!(dec.usize().unwrap(), 12_345);
        assert_eq!(dec.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(dec.f64().unwrap(), f64::INFINITY);
        assert!(dec.bool().unwrap());
        assert!(!dec.bool().unwrap());
        assert_eq!(dec.str().unwrap(), "héllo");
        assert_eq!(dec.bytes().unwrap(), &[1, 2, 3]);
        assert!(dec.finish().is_ok());
    }

    #[test]
    fn nan_bit_patterns_survive() {
        let weird = f64::from_bits(0x7FF8_0000_0000_BEEF);
        let mut enc = WireEncoder::new();
        enc.f64(weird);
        let bytes = enc.into_bytes();
        let got = WireDecoder::new(&bytes).f64().unwrap();
        assert_eq!(got.to_bits(), weird.to_bits());
    }

    #[test]
    fn magic_and_version_frame_the_file() {
        let enc = WireEncoder::with_magic(b"MSNP", 3);
        let bytes = enc.into_bytes();
        let mut dec = WireDecoder::new(&bytes);
        assert_eq!(dec.expect_magic(b"MSNP").unwrap(), 3);
        assert!(dec.finish().is_ok());

        let mut wrong = WireDecoder::new(&bytes);
        let err = wrong.expect_magic(b"MTRC").unwrap_err();
        assert_eq!(err.what, "magic mismatch");
        assert_eq!(err.at, 0);
    }

    #[test]
    fn truncated_input_reports_position() {
        let mut enc = WireEncoder::new();
        enc.u32(9);
        let bytes = enc.into_bytes();
        let mut dec = WireDecoder::new(&bytes[..2]);
        let err = dec.u32().unwrap_err();
        assert_eq!(err.at, 0);
    }

    #[test]
    fn trailing_bytes_fail_finish() {
        let mut enc = WireEncoder::new();
        enc.u8(1);
        enc.u8(2);
        let bytes = enc.into_bytes();
        let mut dec = WireDecoder::new(&bytes);
        dec.u8().unwrap();
        let err = dec.finish().unwrap_err();
        assert_eq!(err.what, "trailing bytes");
        assert_eq!(err.at, 1);
    }

    #[test]
    fn invalid_bool_is_rejected() {
        let mut dec = WireDecoder::new(&[7]);
        assert_eq!(dec.bool().unwrap_err().what, "invalid bool");
    }

    #[test]
    fn clear_reuses_the_buffer() {
        let mut enc = WireEncoder::new();
        enc.u64(1);
        enc.clear();
        assert!(enc.as_slice().is_empty());
        enc.u8(5);
        assert_eq!(enc.as_slice(), &[5]);
    }
}
