//! # manet-sim-engine
//!
//! A small, deterministic discrete-event simulation engine.
//!
//! This crate is the foundation of the MANET broadcast-storm reproduction:
//! everything above it — radio channel, IEEE 802.11 DCF, mobility, the
//! broadcast schemes themselves — is expressed as events scheduled on the
//! [`EventQueue`] and consumed by an [`EventHandler`].
//!
//! Design goals:
//!
//! * **Determinism.** Same seed, same event order, same results. Ties at
//!   identical timestamps are broken FIFO, and all randomness flows through
//!   the seedable [`SimRng`].
//! * **Zero dependencies.** The generator behind [`SimRng`] is the in-tree
//!   xoshiro256++ in [`prng`]; the whole workspace builds offline from a
//!   clean checkout with an empty registry.
//! * **Cancellation.** Broadcast suppression schemes constantly cancel
//!   pending rebroadcasts, so [`EventQueue::cancel`] is a first-class,
//!   `O(1)` operation (lazy deletion).
//! * **No global state.** The engine owns nothing about the model; it is a
//!   clock, a queue, and a loop.
//!
//! # Examples
//!
//! ```
//! use manet_sim_engine::{run, EventHandler, EventQueue, SimDuration, SimTime};
//!
//! struct Countdown(u32);
//!
//! impl EventHandler<&'static str> for Countdown {
//!     fn handle(&mut self, now: SimTime, _: &'static str, q: &mut EventQueue<&'static str>) {
//!         if self.0 > 0 {
//!             self.0 -= 1;
//!             q.schedule(now + SimDuration::from_secs(1), "tick");
//!         }
//!     }
//! }
//!
//! let mut queue = EventQueue::new();
//! queue.schedule(SimTime::ZERO, "tick");
//! let mut model = Countdown(3);
//! run(&mut model, &mut queue);
//! assert_eq!(queue.now(), SimTime::from_secs(3));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod metrics;
mod pool;
pub mod prng;
mod queue;
mod rng;
mod runner;
mod slab;
mod time;
mod timeline;
mod wire;

pub use metrics::{
    json_escape, json_f64, Counter, Gauge, Histogram, HistogramSnapshot, KindProfile, LoopProfile,
    LoopProfiler, MetricsRegistry, ShardDelta, DEFAULT_LATENCY_BOUNDS_S,
};
pub use pool::WorkerPool;
pub use queue::{EventKey, EventQueue};
pub use rng::SimRng;
pub use runner::{run, run_profiled, run_until, EventHandler, RunOutcome};
pub use slab::{Slab, SlabSlot};
pub use time::{SimDuration, SimTime};
pub use timeline::Timeline;
pub use wire::{WireDecoder, WireEncoder, WireError};
