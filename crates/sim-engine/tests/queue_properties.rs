//! Property-based tests for the event queue: delivery order, cancellation,
//! and clock monotonicity under arbitrary schedules.

use manet_sim_engine::{EventQueue, SimTime};
use manet_testkit::{prop_check, Gen};

/// A random schedule: up to 200 timestamps in the first millisecond.
fn times(g: &mut Gen) -> Vec<u64> {
    g.vec(1..200, |g| g.u64_in(0..1_000_000))
}

prop_check! {
    /// Events always come out sorted by (time, insertion order).
    fn delivery_is_sorted_and_stable(g) {
        let times = times(g);
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_nanos(t), i);
        }
        let mut expected: Vec<(u64, usize)> =
            times.iter().enumerate().map(|(i, &t)| (t, i)).collect();
        expected.sort();
        let mut actual = Vec::new();
        while let Some((t, i)) = q.pop() {
            actual.push((t.as_nanos(), i));
        }
        assert_eq!(actual, expected);
    }

    /// Cancelled events never surface; everything else still does, in order.
    fn cancellation_preserves_order_of_survivors(g) {
        let times = times(g);
        let cancel_mask = g.vec(1..200, |g| g.bool());
        let mut q = EventQueue::new();
        let keys: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| q.schedule(SimTime::from_nanos(t), i))
            .collect();
        let mut survivors = Vec::new();
        for (i, key) in keys.iter().enumerate() {
            if *cancel_mask.get(i).unwrap_or(&false) {
                q.cancel(*key);
            } else {
                survivors.push((times[i], i));
            }
        }
        survivors.sort();
        let mut actual = Vec::new();
        while let Some((t, i)) = q.pop() {
            actual.push((t.as_nanos(), i));
        }
        assert_eq!(actual, survivors);
    }

    /// The clock never moves backwards no matter the schedule.
    fn clock_is_monotone(g) {
        let times = g.vec(1..100, |g| g.u64_in(0..1_000_000));
        let mut q = EventQueue::new();
        for &t in &times {
            q.schedule(SimTime::from_nanos(t), ());
        }
        let mut last = SimTime::ZERO;
        while let Some((t, _)) = q.pop() {
            assert!(t >= last);
            assert_eq!(q.now(), t);
            last = t;
        }
    }

    /// peek_time always matches the next popped timestamp.
    fn peek_agrees_with_pop(g) {
        let times = g.vec(1..100, |g| g.u64_in(0..1_000_000));
        let mut q = EventQueue::new();
        for &t in &times {
            q.schedule(SimTime::from_nanos(t), ());
        }
        while let Some(peeked) = q.peek_time() {
            let (popped, _) = q.pop().unwrap();
            assert_eq!(peeked, popped);
        }
        assert!(q.pop().is_none());
    }
}
