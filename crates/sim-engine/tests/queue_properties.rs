//! Property-based tests for the event queue: delivery order, cancellation,
//! and clock monotonicity under arbitrary schedules.

use manet_sim_engine::{EventQueue, SimTime};
use proptest::prelude::*;

proptest! {
    /// Events always come out sorted by (time, insertion order).
    #[test]
    fn delivery_is_sorted_and_stable(times in prop::collection::vec(0u64..1_000_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_nanos(t), i);
        }
        let mut expected: Vec<(u64, usize)> =
            times.iter().enumerate().map(|(i, &t)| (t, i)).collect();
        expected.sort();
        let mut actual = Vec::new();
        while let Some((t, i)) = q.pop() {
            actual.push((t.as_nanos(), i));
        }
        prop_assert_eq!(actual, expected);
    }

    /// Cancelled events never surface; everything else still does, in order.
    #[test]
    fn cancellation_preserves_order_of_survivors(
        times in prop::collection::vec(0u64..1_000_000, 1..200),
        cancel_mask in prop::collection::vec(any::<bool>(), 1..200),
    ) {
        let mut q = EventQueue::new();
        let keys: Vec<_> = times
            .iter()
            .enumerate()
            .map(|(i, &t)| q.schedule(SimTime::from_nanos(t), i))
            .collect();
        let mut survivors = Vec::new();
        for (i, key) in keys.iter().enumerate() {
            if *cancel_mask.get(i).unwrap_or(&false) {
                q.cancel(*key);
            } else {
                survivors.push((times[i], i));
            }
        }
        survivors.sort();
        let mut actual = Vec::new();
        while let Some((t, i)) = q.pop() {
            actual.push((t.as_nanos(), i));
        }
        prop_assert_eq!(actual, survivors);
    }

    /// The clock never moves backwards no matter the schedule.
    #[test]
    fn clock_is_monotone(times in prop::collection::vec(0u64..1_000_000, 1..100)) {
        let mut q = EventQueue::new();
        for &t in &times {
            q.schedule(SimTime::from_nanos(t), ());
        }
        let mut last = SimTime::ZERO;
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= last);
            prop_assert_eq!(q.now(), t);
            last = t;
        }
    }

    /// peek_time always matches the next popped timestamp.
    #[test]
    fn peek_agrees_with_pop(times in prop::collection::vec(0u64..1_000_000, 1..100)) {
        let mut q = EventQueue::new();
        for &t in &times {
            q.schedule(SimTime::from_nanos(t), ());
        }
        while let Some(peeked) = q.peek_time() {
            let (popped, _) = q.pop().unwrap();
            prop_assert_eq!(peeked, popped);
        }
        prop_assert!(q.pop().is_none());
    }
}
