//! Fig. 6 — the candidate threshold functions `C(n)` between `n₁ = 4` and
//! `n₂ = 12`, tabulated (the paper plots these curves; the solid/linear
//! one is the recommendation).

use broadcast_core::{CounterThreshold, DescentShape};

use crate::runner::Scale;
use crate::table::Table;

/// Regenerates Fig. 6 as a value table for `n = 1..=16`.
pub fn run(_scale: Scale) -> Vec<Table> {
    let shapes = [
        ("convex", DescentShape::Convex),
        ("linear (recommended)", DescentShape::Linear),
        ("concave", DescentShape::Concave),
    ];
    let functions: Vec<(&str, CounterThreshold)> = shapes
        .into_iter()
        .map(|(name, s)| (name, CounterThreshold::with_descent(4, 12, s)))
        .collect();

    let mut headers = vec!["n".to_string()];
    headers.extend(functions.iter().map(|(name, _)| format!("C(n) {name}")));
    let mut table = Table::new("Fig. 6 - candidate C(n) functions (n1=4, n2=12)", headers);
    for n in 1..=16usize {
        let mut row = vec![n.to_string()];
        for (_, f) in &functions {
            row.push(f.threshold(n).to_string());
        }
        table.row(row);
    }
    vec![table]
}
