//! Fig. 7 — the adaptive counter-based scheme (AC) against the
//! fixed-threshold counter-based scheme (`C = 2, 4, 6`): RE and SRB (a),
//! average broadcast latency (b).

use broadcast_core::{CounterThreshold, SchemeSpec};

use crate::runner::{run_grid, Scale, PAPER_MAPS};
use crate::table::{pct, secs, Table};

fn schemes() -> Vec<SchemeSpec> {
    vec![
        SchemeSpec::Counter(2),
        SchemeSpec::Counter(4),
        SchemeSpec::Counter(6),
        SchemeSpec::AdaptiveCounter(CounterThreshold::paper_recommended()),
    ]
}

/// Regenerates Fig. 7a (RE/SRB) and Fig. 7b (latency).
pub fn run(scale: Scale) -> Vec<Table> {
    let schemes = schemes();
    let grid = run_grid(&PAPER_MAPS, &schemes, scale, |b| b);

    let mut headers = vec!["map".to_string()];
    for s in &schemes {
        headers.push(format!("RE% {}", s.label()));
        headers.push(format!("SRB% {}", s.label()));
    }
    let mut a = Table::new(
        "Fig. 7a - adaptive (AC) vs fixed counter-based: RE and SRB",
        headers,
    );
    let mut headers_b = vec!["map".to_string()];
    headers_b.extend(schemes.iter().map(|s| format!("latency(s) {}", s.label())));
    let mut b = Table::new("Fig. 7b - average broadcast latency", headers_b);

    for (mi, &map) in PAPER_MAPS.iter().enumerate() {
        let mut row_a = vec![format!("{map}x{map}")];
        let mut row_b = vec![format!("{map}x{map}")];
        for results in &grid {
            let r = &results[mi];
            row_a.push(pct(r.reachability));
            row_a.push(pct(r.saved_rebroadcasts));
            row_b.push(secs(r.avg_latency_s));
        }
        a.row(row_a);
        b.row(row_b);
    }
    vec![a, b]
}
