//! Fig. 8 — the candidate threshold functions `A(n)` for the adaptive
//! location-based scheme, tabulated.

use broadcast_core::AreaThreshold;

use crate::runner::Scale;
use crate::table::Table;

/// The `(n₁, n₂)` pairs swept in Fig. 9, including the paper's named
/// finalists (6,12), (8,12), and (8,10).
pub fn candidate_pairs() -> Vec<(u32, u32)> {
    vec![
        (4, 10),
        (4, 12),
        (6, 10),
        (6, 12),
        (6, 14),
        (8, 10),
        (8, 12),
        (8, 14),
    ]
}

/// Regenerates Fig. 8 as a value table for `n = 1..=16`.
pub fn run(_scale: Scale) -> Vec<Table> {
    let functions: Vec<AreaThreshold> = candidate_pairs()
        .into_iter()
        .map(|(n1, n2)| AreaThreshold::adaptive(n1, n2))
        .collect();
    let mut headers = vec!["n".to_string()];
    headers.extend(functions.iter().map(|f| f.label().to_string()));
    let mut table = Table::new(
        "Fig. 8 - candidate A(n) functions (fraction of pi r^2)",
        headers,
    );
    for n in 1..=16usize {
        let mut row = vec![n.to_string()];
        for f in &functions {
            row.push(format!("{:.4}", f.threshold(n)));
        }
        table.row(row);
    }
    vec![table]
}
