//! Extension — mobility-model robustness: the paper's random-turn
//! roaming against the classic random-waypoint model.
//!
//! The adaptive schemes adapt to *local connectivity*, not to a
//! particular motion law, so their advantage over fixed thresholds should
//! survive a change of mobility model. Random waypoint concentrates
//! hosts toward the map center (the classic density bias), which tends to
//! raise connectivity on sparse maps.

use broadcast_core::{CounterThreshold, MobilitySpec, SchemeSpec};

use crate::runner::{parallel_map, run_averaged, Scale, BASE_SEED, PAPER_MAPS};
use crate::table::{pct, Table};

/// Runs `C = 2` and AC under both mobility models.
pub fn run(scale: Scale) -> Vec<Table> {
    let schemes = [
        SchemeSpec::Counter(2),
        SchemeSpec::AdaptiveCounter(CounterThreshold::paper_recommended()),
    ];
    let models = [
        ("turn", MobilitySpec::RandomTurn),
        ("waypoint", MobilitySpec::RandomWaypoint),
    ];
    let jobs: Vec<(usize, usize, u32)> = (0..schemes.len())
        .flat_map(|s| {
            (0..models.len()).flat_map(move |m| PAPER_MAPS.iter().map(move |&map| (s, m, map)))
        })
        .collect();
    let reports = parallel_map(jobs.clone(), |&(s, m, map)| {
        let config = broadcast_core::SimConfig::builder(map, schemes[s].clone())
            .broadcasts(scale.broadcasts())
            .seed(BASE_SEED)
            .mobility(models[m].1)
            .build();
        run_averaged(&config, scale.repeats())
    });

    let mut headers = vec!["map".to_string()];
    for scheme in &schemes {
        for (model, _) in &models {
            headers.push(format!("RE% {} ({model})", scheme.label()));
            headers.push(format!("SRB% {} ({model})", scheme.label()));
        }
    }
    let mut table = Table::new(
        "Extension - mobility-model robustness (random turn vs random waypoint)",
        headers,
    );
    for &map in &PAPER_MAPS {
        let mut row = vec![format!("{map}x{map}")];
        for s in 0..schemes.len() {
            for m in 0..models.len() {
                let idx = jobs
                    .iter()
                    .position(|&j| j == (s, m, map))
                    .expect("job exists");
                row.push(pct(reports[idx].reachability));
                row.push(pct(reports[idx].saved_rebroadcasts));
            }
        }
        table.row(row);
    }
    vec![table]
}
