//! Fig. 9 — sweeping the `(n₁, n₂)` parameters of the adaptive
//! location-based scheme over all maps.
//!
//! The paper concludes that (6,12), (8,12) and (8,10) all deliver
//! satisfactory RE, and picks (6,12) for its better SRB on sparse maps.

use broadcast_core::{AreaThreshold, SchemeSpec};

use crate::figures::fig08::candidate_pairs;
use crate::runner::{run_grid, Scale, PAPER_MAPS};
use crate::table::{pct, Table};

/// Regenerates Fig. 9: RE and SRB per candidate `(n₁, n₂)` per map.
pub fn run(scale: Scale) -> Vec<Table> {
    let schemes: Vec<SchemeSpec> = candidate_pairs()
        .into_iter()
        .map(|(n1, n2)| SchemeSpec::AdaptiveLocation(AreaThreshold::adaptive(n1, n2)))
        .collect();
    let grid = run_grid(&PAPER_MAPS, &schemes, scale, |b| b);

    let mut re = Table::new(
        "Fig. 9 - adaptive location-based: RE% per (n1,n2) candidate",
        {
            let mut h = vec!["map".to_string()];
            h.extend(schemes.iter().map(|s| s.label()));
            h
        },
    );
    let mut srb = Table::new(
        "Fig. 9 - adaptive location-based: SRB% per (n1,n2) candidate",
        {
            let mut h = vec!["map".to_string()];
            h.extend(schemes.iter().map(|s| s.label()));
            h
        },
    );
    for (mi, &map) in PAPER_MAPS.iter().enumerate() {
        let mut row_re = vec![format!("{map}x{map}")];
        let mut row_srb = vec![format!("{map}x{map}")];
        for results in &grid {
            row_re.push(pct(results[mi].reachability));
            row_srb.push(pct(results[mi].saved_rebroadcasts));
        }
        re.row(row_re);
        srb.row(row_srb);
    }
    vec![re, srb]
}
