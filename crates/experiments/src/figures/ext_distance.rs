//! Extension — the distance-based scheme of \[15\] alongside the paper's
//! adaptive schemes.
//!
//! The paper reviews the distance-based scheme but does not carry it into
//! the adaptive comparison. This extension table shows where it falls:
//! like the other fixed-threshold schemes, a distance threshold tuned for
//! dense maps (large `D`) surrenders reachability on sparse ones.

use broadcast_core::{AreaThreshold, CounterThreshold, SchemeSpec};

use crate::runner::{run_grid, Scale, PAPER_MAPS};
use crate::table::{pct, Table};

/// Runs distance-based baselines against AC/AL on every map.
pub fn run(scale: Scale) -> Vec<Table> {
    let schemes = vec![
        SchemeSpec::Distance(100.0),
        SchemeSpec::Distance(250.0),
        SchemeSpec::Distance(400.0),
        SchemeSpec::AdaptiveCounter(CounterThreshold::paper_recommended()),
        SchemeSpec::AdaptiveLocation(AreaThreshold::paper_recommended()),
    ];
    let grid = run_grid(&PAPER_MAPS, &schemes, scale, |b| b);
    let mut headers = vec!["map".to_string()];
    for s in &schemes {
        headers.push(format!("RE% {}", s.label()));
        headers.push(format!("SRB% {}", s.label()));
    }
    let mut table = Table::new(
        "Extension - distance-based baselines (D meters) vs adaptive schemes",
        headers,
    );
    for (mi, &map) in PAPER_MAPS.iter().enumerate() {
        let mut row = vec![format!("{map}x{map}")];
        for results in &grid {
            row.push(pct(results[mi].reachability));
            row.push(pct(results[mi].saved_rebroadcasts));
        }
        table.row(row);
    }
    vec![table]
}
