//! Fig. 1 — expected additional coverage `EAC(k)` after hearing the same
//! packet `k` times.

use manet_geom::expected_additional_coverage;
use manet_sim_engine::SimRng;

use crate::runner::{Scale, BASE_SEED};
use crate::table::Table;

/// Monte-Carlo trial counts per scale.
fn trials(scale: Scale) -> usize {
    match scale {
        Scale::Quick => 400,
        Scale::Default => 3_000,
        Scale::Full => 20_000,
    }
}

/// Regenerates Fig. 1.
pub fn run(scale: Scale) -> Vec<Table> {
    let mut rng = SimRng::seed_from(BASE_SEED);
    let eac = expected_additional_coverage(10, trials(scale), 800, &mut rng);
    let mut table = Table::new(
        "Fig. 1 - expected additional coverage EAC(k) / pi r^2",
        vec!["k".into(), "EAC(k)".into()],
    );
    for (i, value) in eac.iter().enumerate() {
        table.row(vec![format!("{}", i + 1), format!("{value:.4}")]);
    }
    vec![table]
}
