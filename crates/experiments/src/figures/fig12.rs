//! Fig. 12 — the neighbor-coverage scheme with the **dynamic hello
//! interval** (NC-DHI: `nv_max = 0.02`, `hi ∈ [1, 10] s`) at various host
//! speeds on all maps: RE and SRB (a) and the number of HELLO packets
//! sent (b).
//!
//! Expectation from the paper: RE stays high independent of speed and
//! density; sparse maps churn more, so hosts beacon near `hi_min` (many
//! hellos), while the quiet 1×1 map settles near `hi_max` (few hellos).

use broadcast_core::{NeighborInfo, SchemeSpec};
use manet_net::{DynamicHelloParams, HelloIntervalPolicy};
use manet_sim_engine::SimDuration;

use crate::runner::{parallel_map, run_averaged, Scale, BASE_SEED, PAPER_MAPS};
use crate::table::{pct, Table};

const SPEEDS_KMH: [f64; 4] = [20.0, 40.0, 60.0, 80.0];

/// Regenerates Fig. 12a/12b.
pub fn run(scale: Scale) -> Vec<Table> {
    let jobs: Vec<(u32, f64)> = PAPER_MAPS
        .iter()
        .flat_map(|&m| SPEEDS_KMH.iter().map(move |&v| (m, v)))
        .collect();
    let reports = parallel_map(jobs.clone(), |&(map, speed)| {
        let config = broadcast_core::SimConfig::builder(map, SchemeSpec::NeighborCoverage)
            .broadcasts(scale.broadcasts())
            .seed(BASE_SEED)
            .max_speed_kmh(speed)
            .neighbor_info(NeighborInfo::Hello(HelloIntervalPolicy::Dynamic(
                DynamicHelloParams::paper(),
            )))
            .warmup(SimDuration::from_secs(12))
            .build();
        run_averaged(&config, scale.repeats())
    });
    let report = |map: u32, speed: f64| {
        let idx = jobs
            .iter()
            .position(|&j| j == (map, speed))
            .expect("job exists");
        &reports[idx]
    };

    let mut headers_a = vec!["map".to_string()];
    for &v in &SPEEDS_KMH {
        headers_a.push(format!("RE% v={v:.0}"));
        headers_a.push(format!("SRB% v={v:.0}"));
    }
    let mut a = Table::new(
        "Fig. 12a - NC with dynamic hello interval: RE and SRB vs speed",
        headers_a,
    );
    let mut headers_b = vec!["map".to_string()];
    headers_b.extend(SPEEDS_KMH.iter().map(|v| format!("hellos/host/s v={v:.0}")));
    let mut b = Table::new(
        "Fig. 12b - NC-DHI hello traffic (hello packets per host per second)",
        headers_b,
    );

    for &map in &PAPER_MAPS {
        let mut row_a = vec![format!("{map}x{map}")];
        let mut row_b = vec![format!("{map}x{map}")];
        for &v in &SPEEDS_KMH {
            let r = report(map, v);
            row_a.push(pct(r.reachability));
            row_a.push(pct(r.saved_rebroadcasts));
            let rate = if r.sim_seconds > 0.0 {
                r.hello_packets / (100.0 * r.sim_seconds)
            } else {
                0.0
            };
            row_b.push(format!("{rate:.3}"));
        }
        a.row(row_a);
        b.row(row_b);
    }
    vec![a, b]
}
