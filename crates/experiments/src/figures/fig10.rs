//! Fig. 10 — the adaptive location-based scheme (AL) against the
//! fixed-threshold location-based scheme (`A = 0.1871, 0.0469, 0.0134`,
//! the values used in \[15\]): RE and SRB (a), latency (b).

use broadcast_core::{AreaThreshold, SchemeSpec};

use crate::runner::{run_grid, Scale, PAPER_MAPS};
use crate::table::{pct, secs, Table};

fn schemes() -> Vec<SchemeSpec> {
    vec![
        SchemeSpec::Location(0.1871),
        SchemeSpec::Location(0.0469),
        SchemeSpec::Location(0.0134),
        SchemeSpec::AdaptiveLocation(AreaThreshold::paper_recommended()),
    ]
}

/// Regenerates Fig. 10a (RE/SRB) and Fig. 10b (latency).
pub fn run(scale: Scale) -> Vec<Table> {
    let schemes = schemes();
    let grid = run_grid(&PAPER_MAPS, &schemes, scale, |b| b);

    let mut headers = vec!["map".to_string()];
    for s in &schemes {
        headers.push(format!("RE% {}", s.label()));
        headers.push(format!("SRB% {}", s.label()));
    }
    let mut a = Table::new(
        "Fig. 10a - adaptive (AL) vs fixed location-based: RE and SRB",
        headers,
    );
    let mut headers_b = vec!["map".to_string()];
    headers_b.extend(schemes.iter().map(|s| format!("latency(s) {}", s.label())));
    let mut b = Table::new("Fig. 10b - average broadcast latency", headers_b);

    for (mi, &map) in PAPER_MAPS.iter().enumerate() {
        let mut row_a = vec![format!("{map}x{map}")];
        let mut row_b = vec![format!("{map}x{map}")];
        for results in &grid {
            let r = &results[mi];
            row_a.push(pct(r.reachability));
            row_a.push(pct(r.saved_rebroadcasts));
            row_b.push(secs(r.avg_latency_s));
        }
        a.row(row_a);
        b.row(row_b);
    }
    vec![a, b]
}
