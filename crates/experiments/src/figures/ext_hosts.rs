//! Extension — host-count (density) sweep.
//!
//! The paper fixes 100 hosts and varies the map. This sweep holds the
//! 5×5 map and scales the population 100 → 300 → 1000, an order of
//! magnitude past the paper: average neighbor counts climb from ~12 to
//! ~125, so the fixed-threshold counter scheme saturates (everyone hears
//! C copies almost immediately) while the adaptive and neighbor-coverage
//! schemes keep suppressing harder as density grows. Flooding is omitted:
//! at 1000 hosts its storm makes runs quadratically slow without adding
//! information.

use broadcast_core::{CounterThreshold, SchemeSpec};

use crate::runner::{parallel_map, run_averaged, Scale, BASE_SEED};
use crate::table::{pct, secs, Table};

/// Host populations swept on the 5×5 map.
const HOSTS: [u32; 3] = [100, 300, 1_000];

/// Runs C=3 vs AC vs NC on the 5x5 map across host populations.
pub fn run(scale: Scale) -> Vec<Table> {
    let schemes = [
        SchemeSpec::Counter(3),
        SchemeSpec::AdaptiveCounter(CounterThreshold::paper_recommended()),
        SchemeSpec::NeighborCoverage,
    ];
    let jobs: Vec<(usize, u32)> = (0..schemes.len())
        .flat_map(|s| HOSTS.iter().map(move |&h| (s, h)))
        .collect();
    let reports = parallel_map(jobs.clone(), |&(s, hosts)| {
        let config = broadcast_core::SimConfig::builder(5, schemes[s].clone())
            .hosts(hosts)
            .broadcasts(scale.broadcasts())
            .seed(BASE_SEED)
            .build();
        run_averaged(&config, scale.repeats())
    });

    let mut headers = vec!["hosts".to_string()];
    for scheme in &schemes {
        headers.push(format!("RE% {}", scheme.label()));
        headers.push(format!("SRB% {}", scheme.label()));
        headers.push(format!("latency(s) {}", scheme.label()));
    }
    let mut table = Table::new("Extension - host-count sweep on the 5x5 map", headers);
    for &hosts in &HOSTS {
        let mut row = vec![hosts.to_string()];
        for s in 0..schemes.len() {
            let idx = jobs
                .iter()
                .position(|&j| j == (s, hosts))
                .expect("job exists");
            row.push(pct(reports[idx].reachability));
            row.push(pct(reports[idx].saved_rebroadcasts));
            row.push(secs(reports[idx].avg_latency_s));
        }
        table.row(row);
    }
    vec![table]
}
