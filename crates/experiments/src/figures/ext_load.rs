//! Extension — broadcast-load sensitivity.
//!
//! The paper fixes the workload at one broadcast every 0–2 s map-wide.
//! This sweep varies the offered load: under heavier load concurrent
//! broadcasts contend with each other, so flooding's storm compounds
//! while the suppression schemes degrade far more gracefully.

use broadcast_core::{CounterThreshold, SchemeSpec};
use manet_sim_engine::SimDuration;

use crate::runner::{parallel_map, run_averaged, Scale, BASE_SEED};
use crate::table::{pct, secs, Table};

/// Mean interarrival values swept, in milliseconds (uniform on [0, 2x]).
const MEAN_INTERARRIVAL_MS: [u64; 4] = [250, 500, 1_000, 2_000];

/// Runs flooding vs C=2 vs AC on the 3×3 map across offered loads.
pub fn run(scale: Scale) -> Vec<Table> {
    let schemes = [
        SchemeSpec::Flooding,
        SchemeSpec::Counter(2),
        SchemeSpec::AdaptiveCounter(CounterThreshold::paper_recommended()),
    ];
    let jobs: Vec<(usize, u64)> = (0..schemes.len())
        .flat_map(|s| MEAN_INTERARRIVAL_MS.iter().map(move |&m| (s, m)))
        .collect();
    let reports = parallel_map(jobs.clone(), |&(s, mean_ms)| {
        let config = broadcast_core::SimConfig::builder(3, schemes[s].clone())
            .broadcasts(scale.broadcasts())
            .seed(BASE_SEED)
            .max_interarrival(SimDuration::from_millis(mean_ms * 2))
            .build();
        run_averaged(&config, scale.repeats())
    });

    let mut headers = vec!["mean gap (s)".to_string()];
    for scheme in &schemes {
        headers.push(format!("RE% {}", scheme.label()));
        headers.push(format!("latency(s) {}", scheme.label()));
    }
    let mut table = Table::new(
        "Extension - offered-load sweep on the 3x3 map (broadcasts per ~gap seconds)",
        headers,
    );
    for &mean_ms in &MEAN_INTERARRIVAL_MS {
        let mut row = vec![format!("{:.2}", mean_ms as f64 / 1_000.0)];
        for s in 0..schemes.len() {
            let idx = jobs
                .iter()
                .position(|&j| j == (s, mean_ms))
                .expect("job exists");
            row.push(pct(reports[idx].reachability));
            row.push(secs(reports[idx].avg_latency_s));
        }
        table.row(row);
    }
    vec![table]
}
