//! Fig. 11 — the neighbor-coverage scheme under different **fixed** hello
//! intervals (1, 5, 10, 20, 30 s) and host speeds (20–80 km/h) on the
//! 5×5, 7×7, 9×9 and 11×11 maps.
//!
//! Expectation from the paper: on sparser maps, long hello intervals make
//! neighbor knowledge stale and RE degrades, the more so the faster the
//! hosts move.

use broadcast_core::{NeighborInfo, SchemeSpec};
use manet_net::HelloIntervalPolicy;
use manet_sim_engine::SimDuration;

use crate::runner::{parallel_map, run_averaged, Scale, BASE_SEED};
use crate::table::{pct, Table};

const INTERVALS_MS: [u64; 5] = [1_000, 5_000, 10_000, 20_000, 30_000];
const SPEEDS_KMH: [f64; 4] = [20.0, 40.0, 60.0, 80.0];
const MAPS: [u32; 4] = [5, 7, 9, 11];

/// Regenerates Fig. 11: one RE table per map, rows = speed, columns =
/// hello interval.
pub fn run(scale: Scale) -> Vec<Table> {
    // Flatten (map, speed, interval) into one parallel batch.
    let jobs: Vec<(u32, f64, u64)> = MAPS
        .iter()
        .flat_map(|&m| {
            SPEEDS_KMH
                .iter()
                .flat_map(move |&v| INTERVALS_MS.iter().map(move |&hi| (m, v, hi)))
        })
        .collect();
    let reports = parallel_map(jobs.clone(), |&(map, speed, hi)| {
        let config = broadcast_core::SimConfig::builder(map, SchemeSpec::NeighborCoverage)
            .broadcasts(scale.broadcasts())
            .seed(BASE_SEED)
            .max_speed_kmh(speed)
            .neighbor_info(NeighborInfo::Hello(HelloIntervalPolicy::Fixed(
                SimDuration::from_millis(hi),
            )))
            // Give slow beacons a chance to fill tables before measuring.
            .warmup(SimDuration::from_millis(2 * hi))
            .build();
        run_averaged(&config, scale.repeats())
    });

    let mut tables = Vec::new();
    for &map in &MAPS {
        let mut headers = vec!["speed km/h".to_string()];
        headers.extend(
            INTERVALS_MS
                .iter()
                .map(|hi| format!("RE% hi={}s", hi / 1000)),
        );
        let mut table = Table::new(
            format!("Fig. 11 - NC reachability vs hello interval, {map}x{map} map"),
            headers,
        );
        for &speed in &SPEEDS_KMH {
            let mut row = vec![format!("{speed:.0}")];
            for &hi in &INTERVALS_MS {
                let idx = jobs
                    .iter()
                    .position(|&j| j == (map, speed, hi))
                    .expect("job exists");
                row.push(pct(reports[idx].reachability));
            }
            table.row(row);
        }
        tables.push(table);
    }
    tables
}
