//! Extension — physical-layer capture ablation.
//!
//! The paper assumes any overlap garbles every frame involved (§2.2.3).
//! Real DSSS radios exhibit *capture*: a sufficiently dominant frame
//! survives interference. This ablation reruns flooding and two
//! suppression schemes with a 10 dB / path-loss-4 capture model to check
//! that the paper's conclusions do not hinge on the pessimistic collision
//! model: capture softens the storm (flooding recovers some RE on dense
//! maps) but the adaptive schemes still win on saving.

use broadcast_core::{CaptureConfig, CounterThreshold, SchemeSpec};

use crate::runner::{parallel_map, run_averaged, Scale, BASE_SEED, PAPER_MAPS};
use crate::table::{pct, Table};

/// Runs the capture-on/off grid.
pub fn run(scale: Scale) -> Vec<Table> {
    let schemes = [
        SchemeSpec::Flooding,
        SchemeSpec::Counter(2),
        SchemeSpec::AdaptiveCounter(CounterThreshold::paper_recommended()),
    ];
    let modes = [
        ("no-capture", None),
        ("capture", Some(CaptureConfig::typical())),
    ];
    let jobs: Vec<(usize, usize, u32)> = (0..schemes.len())
        .flat_map(|s| {
            (0..modes.len()).flat_map(move |m| PAPER_MAPS.iter().map(move |&map| (s, m, map)))
        })
        .collect();
    let reports = parallel_map(jobs.clone(), |&(s, m, map)| {
        let mut builder = broadcast_core::SimConfig::builder(map, schemes[s].clone())
            .broadcasts(scale.broadcasts())
            .seed(BASE_SEED);
        if let Some(capture) = modes[m].1 {
            builder = builder.capture(capture);
        }
        run_averaged(&builder.build(), scale.repeats())
    });

    let mut headers = vec!["map".to_string()];
    for scheme in &schemes {
        for (mode, _) in &modes {
            headers.push(format!("RE% {} ({mode})", scheme.label()));
        }
    }
    let mut table = Table::new(
        "Extension - capture-effect ablation (10 dB SIR, path loss 4)",
        headers,
    );
    for &map in &PAPER_MAPS {
        let mut row = vec![format!("{map}x{map}")];
        for s in 0..schemes.len() {
            for m in 0..modes.len() {
                let idx = jobs
                    .iter()
                    .position(|&j| j == (s, m, map))
                    .expect("job exists");
                row.push(pct(reports[idx].reachability));
            }
        }
        table.row(row);
    }
    vec![table]
}
