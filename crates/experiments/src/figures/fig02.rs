//! Fig. 2 — contention analysis: the probability `cf(n, k)` that exactly
//! `k` of `n` receivers experience no contention.

use manet_geom::contention_free_distribution;
use manet_sim_engine::SimRng;

use crate::runner::{Scale, BASE_SEED};
use crate::table::Table;

fn trials(scale: Scale) -> usize {
    match scale {
        Scale::Quick => 2_000,
        Scale::Default => 20_000,
        Scale::Full => 200_000,
    }
}

/// Regenerates Fig. 2 for `n = 1..=10`, reporting `k = 0..=4`.
pub fn run(scale: Scale) -> Vec<Table> {
    let mut rng = SimRng::seed_from(BASE_SEED + 2);
    let mut table = Table::new(
        "Fig. 2 - probability of k contention-free hosts among n receivers",
        vec![
            "n".into(),
            "cf(n,0)".into(),
            "cf(n,1)".into(),
            "cf(n,2)".into(),
            "cf(n,3)".into(),
            "cf(n,4)".into(),
        ],
    );
    for n in 1..=10usize {
        let dist = contention_free_distribution(n, trials(scale), &mut rng);
        let cell = |k: usize| dist.get(k).map_or("-".to_string(), |p| format!("{p:.4}"));
        table.row(vec![
            n.to_string(),
            cell(0),
            cell(1),
            cell(2),
            cell(3),
            cell(4),
        ]);
    }
    vec![table]
}
