//! Fig. 13 — the overall comparison: counter-based (`C = 2, 6`), adaptive
//! counter-based (AC), location-based (`A = 0.1871, 0.0134`), adaptive
//! location-based (AL), neighbor coverage with dynamic hello interval
//! (NC-DHI), and flooding, across all six maps.
//!
//! In the paper's scatter plots the upper-right corner wins (high RE,
//! high SRB). Expectations: flooding has SRB = 0 and loses RE on dense
//! maps; NC is strongest on dense maps; AC/AL are strongest on sparse
//! maps; the adaptive schemes hold RE ≈ 95 %+ everywhere.

use broadcast_core::{AreaThreshold, CounterThreshold, NeighborInfo, SchemeSpec};
use manet_net::{DynamicHelloParams, HelloIntervalPolicy};
use manet_sim_engine::SimDuration;

use crate::runner::{parallel_map, run_averaged, AveragedReport, Scale, BASE_SEED, PAPER_MAPS};
use crate::table::{pct, secs, Table};

/// The compared schemes with their per-scheme neighbor-info policies.
fn roster() -> Vec<(SchemeSpec, NeighborInfo)> {
    let hello_1s = NeighborInfo::Hello(HelloIntervalPolicy::fixed_1s());
    let dhi = NeighborInfo::Hello(HelloIntervalPolicy::Dynamic(DynamicHelloParams::paper()));
    vec![
        (SchemeSpec::Flooding, hello_1s.clone()),
        (SchemeSpec::Counter(2), hello_1s.clone()),
        (SchemeSpec::Counter(6), hello_1s.clone()),
        (
            SchemeSpec::AdaptiveCounter(CounterThreshold::paper_recommended()),
            hello_1s.clone(),
        ),
        (SchemeSpec::Location(0.1871), hello_1s.clone()),
        (SchemeSpec::Location(0.0134), hello_1s.clone()),
        (
            SchemeSpec::AdaptiveLocation(AreaThreshold::paper_recommended()),
            hello_1s,
        ),
        (SchemeSpec::NeighborCoverage, dhi),
    ]
}

/// Regenerates Fig. 13: one RE/SRB/latency table per map.
pub fn run(scale: Scale) -> Vec<Table> {
    let roster = roster();
    let jobs: Vec<(usize, u32)> = (0..roster.len())
        .flat_map(|s| PAPER_MAPS.iter().map(move |&m| (s, m)))
        .collect();
    let reports: Vec<AveragedReport> = parallel_map(jobs.clone(), |&(si, map)| {
        let (scheme, info) = &roster[si];
        let config = broadcast_core::SimConfig::builder(map, scheme.clone())
            .broadcasts(scale.broadcasts())
            .seed(BASE_SEED)
            .neighbor_info(info.clone())
            .warmup(SimDuration::from_secs(12))
            .build();
        run_averaged(&config, scale.repeats())
    });

    let mut tables = Vec::new();
    for &map in &PAPER_MAPS {
        let mut table = Table::new(
            format!("Fig. 13 - overall comparison, {map}x{map} map"),
            vec![
                "scheme".into(),
                "RE%".into(),
                "SRB%".into(),
                "latency(s)".into(),
            ],
        );
        for (si, (scheme, info)) in roster.iter().enumerate() {
            let idx = jobs
                .iter()
                .position(|&j| j == (si, map))
                .expect("job exists");
            let r = &reports[idx];
            let label = if matches!(scheme, SchemeSpec::NeighborCoverage)
                && matches!(info, NeighborInfo::Hello(HelloIntervalPolicy::Dynamic(_)))
            {
                "NC-DHI".to_string()
            } else {
                scheme.label()
            };
            table.row(vec![
                label,
                pct(r.reachability),
                pct(r.saved_rebroadcasts),
                secs(r.avg_latency_s),
            ]);
        }
        tables.push(table);
    }
    tables
}
