//! Extension — broadcast storms under host churn and injected faults.
//!
//! Every figure in the paper runs a fixed, fault-free population. This
//! extension replays one canonical fault script against each scheme: a
//! rolling wave of graceful leave/join churn, a burst of crashes (protocol
//! state lost), a band of links blacked out, a window of channel noise, and a
//! temporary partition of the map's west half. Because suppression schemes
//! lean on redundancy that churn erodes, the interesting question is how
//! much reachability each scheme gives back relative to flooding once the
//! network stops being static — and where the lost frames actually went,
//! which the per-cause loss split answers.
//!
//! Unlike the `run_averaged` figures this one drives [`World`] directly:
//! the per-cause loss and scenario counters live on the full [`SimReport`]
//! and would be averaged away. Captured metrics still reach the
//! `--metrics` document via [`record_metrics`].

use broadcast_core::{
    ChurnKind, CounterThreshold, Region, Scenario, SchemeSpec, SimConfig, SimReport, World,
};
use manet_sim_engine::SimTime;

use crate::runner::{parallel_map, record_metrics, Scale, BASE_SEED};
use crate::table::{pct, secs, Table};

/// Host population of the churn runs (the paper's default).
const HOSTS: u32 = 100;

/// The canonical fault script: all windows sit inside the first ~60
/// simulated seconds so even quick-scale runs (~60 s) exercise every
/// fault kind. Times and host ids are fixed — the script is part of the
/// figure's definition, not a random input.
fn churn_script() -> Scenario {
    let mut s = Scenario::new("churn-storm").with_hosts(HOSTS);
    // A rolling wave of graceful departures, each host down for 10 s.
    for host in 0..8u32 {
        let down = 6 + u64::from(host);
        s = s
            .churn(SimTime::from_secs(down), ChurnKind::Leave, host)
            .churn(SimTime::from_secs(down + 10), ChurnKind::Join, host);
    }
    // Four crashes: these hosts come back with blank neighbor tables.
    for i in 0..4u32 {
        let host = 20 + i;
        let down = 9 + 2 * u64::from(i);
        s = s
            .churn(SimTime::from_secs(down), ChurnKind::Crash, host)
            .churn(SimTime::from_secs(down + 8), ChurnKind::Recover, host);
    }
    // Link, channel, and region faults overlapping the churn window.
    // Blackouts are per-link, and with uniform placement any one pair is
    // within radio range only ~20% of the time even on this map — so a
    // band of 16 pairs is blacked out for a whole minute to make the
    // fault's cost visible above the placement lottery.
    for host in (60..92u32).step_by(2) {
        s = s.blackout(
            SimTime::from_secs(0),
            SimTime::from_secs(60),
            host,
            host + 1,
        );
    }
    s.noise(SimTime::from_secs(8), SimTime::from_secs(20), 0.15)
        .partition(
            SimTime::from_secs(12),
            SimTime::from_secs(22),
            Region {
                x0: 0.0,
                y0: 0.0,
                x1: 750.0,
                y1: 1_500.0,
            },
        )
}

/// Runs the canonical churn script against four schemes on the 3x3 map.
pub fn run(scale: Scale) -> Vec<Table> {
    let schemes = [
        SchemeSpec::Flooding,
        SchemeSpec::Counter(3),
        SchemeSpec::AdaptiveCounter(CounterThreshold::paper_recommended()),
        SchemeSpec::NeighborCoverage,
    ];
    let scenario = churn_script();
    let repeats = scale.repeats();
    let jobs: Vec<(usize, u64)> = (0..schemes.len())
        .flat_map(|s| (0..repeats).map(move |r| (s, r)))
        .collect();
    let reports: Vec<SimReport> = parallel_map(jobs, |&(s, rep)| {
        let config = SimConfig::builder(3, schemes[s].clone())
            .hosts(HOSTS)
            .broadcasts(scale.broadcasts())
            .scenario(scenario.clone())
            .seed(BASE_SEED.wrapping_add(rep))
            .build();
        World::new(config).run()
    });

    let mut headline = Table::new(
        "Extension - churn + fault injection on the 3x3 map, 100 hosts",
        vec![
            "scheme".into(),
            "RE%".into(),
            "SRB%".into(),
            "latency(s)".into(),
        ],
    );
    let mut split = Table::new(
        "Extension - churn run loss accounting (frames dropped, by cause; summed over repeats)",
        vec![
            "scheme".into(),
            "overlap".into(),
            "capture".into(),
            "half-duplex".into(),
            "blackout".into(),
            "partition".into(),
            "noise".into(),
            "churn applied".into(),
        ],
    );
    for (s, scheme) in schemes.iter().enumerate() {
        let chunk = &reports[s * repeats as usize..(s + 1) * repeats as usize];
        record_metrics(chunk);
        let n = chunk.len() as f64;
        headline.row(vec![
            scheme.label(),
            pct(chunk.iter().map(|r| r.reachability).sum::<f64>() / n),
            pct(chunk.iter().map(|r| r.saved_rebroadcasts).sum::<f64>() / n),
            secs(chunk.iter().map(|r| r.avg_latency_s).sum::<f64>() / n),
        ]);
        let sum = |f: fn(&SimReport) -> u64| chunk.iter().map(f).sum::<u64>().to_string();
        let sc = |f: fn(&broadcast_core::ScenarioCounts) -> u64| {
            chunk
                .iter()
                .map(|r| f(r.scenario.as_ref().expect("scenario run")))
                .sum::<u64>()
                .to_string()
        };
        let down = chunk
            .iter()
            .map(|r| {
                let c = r.scenario.as_ref().expect("scenario run");
                c.leaves + c.crashes
            })
            .sum::<u64>();
        let up = chunk
            .iter()
            .map(|r| {
                let c = r.scenario.as_ref().expect("scenario run");
                c.joins + c.recoveries
            })
            .sum::<u64>();
        split.row(vec![
            scheme.label(),
            sum(|r| r.losses.overlap),
            sum(|r| r.losses.capture),
            sum(|r| r.losses.half_duplex),
            sc(|c| c.blackout_drops),
            sc(|c| c.partition_drops),
            sc(|c| c.noise_drops),
            format!("{down} down / {up} up"),
        ]);
    }
    vec![headline, split]
}
