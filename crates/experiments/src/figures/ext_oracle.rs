//! Extension — how much does imperfect (HELLO-derived) neighbor knowledge
//! cost the adaptive schemes, relative to a geometric oracle?
//!
//! The paper runs everything over real HELLO beacons. This ablation
//! quantifies the gap: the oracle bound shows how much of any RE loss is
//! due to stale tables rather than to the scheme's decision rule.

use broadcast_core::{AreaThreshold, CounterThreshold, NeighborInfo, SchemeSpec};

use crate::runner::{parallel_map, run_averaged, Scale, BASE_SEED, PAPER_MAPS};
use crate::table::{pct, Table};

/// Runs AC, AL, and NC under oracle and HELLO neighbor information.
pub fn run(scale: Scale) -> Vec<Table> {
    let schemes = [
        SchemeSpec::AdaptiveCounter(CounterThreshold::paper_recommended()),
        SchemeSpec::AdaptiveLocation(AreaThreshold::paper_recommended()),
        SchemeSpec::NeighborCoverage,
    ];
    let infos = [
        (
            "hello",
            NeighborInfo::Hello(manet_net::HelloIntervalPolicy::fixed_1s()),
        ),
        ("oracle", NeighborInfo::Oracle),
    ];
    let jobs: Vec<(usize, usize, u32)> = (0..schemes.len())
        .flat_map(|s| {
            (0..infos.len()).flat_map(move |i| PAPER_MAPS.iter().map(move |&m| (s, i, m)))
        })
        .collect();
    let reports = parallel_map(jobs.clone(), |&(s, i, map)| {
        let config = broadcast_core::SimConfig::builder(map, schemes[s].clone())
            .broadcasts(scale.broadcasts())
            .seed(BASE_SEED)
            .neighbor_info(infos[i].1.clone())
            .build();
        run_averaged(&config, scale.repeats())
    });

    let mut headers = vec!["map".to_string()];
    for scheme in &schemes {
        for (info_name, _) in &infos {
            headers.push(format!("RE% {} ({info_name})", scheme.label()));
        }
    }
    let mut table = Table::new(
        "Extension - oracle vs HELLO neighbor knowledge (reachability)",
        headers,
    );
    for &map in &PAPER_MAPS {
        let mut row = vec![format!("{map}x{map}")];
        for s in 0..schemes.len() {
            for i in 0..infos.len() {
                let idx = jobs
                    .iter()
                    .position(|&j| j == (s, i, map))
                    .expect("job exists");
                row.push(pct(reports[idx].reachability));
            }
        }
        table.row(row);
    }
    vec![table]
}
