//! Fig. 5 — tuning the threshold function `C(n)` for the adaptive
//! counter-based scheme, in the paper's four steps:
//!
//! * **(a)** the slope of the ramp before `n₁` (1/3, 1/2, 1),
//! * **(b)** the value of `n₁` (2, 3, 4, 5),
//! * **(c)** the value of `n₂` (8, 12, 16) with `n₁ = 4`,
//! * **(d)** the descent shape between `n₁` and `n₂` (Fig. 6's curves).
//!
//! Each candidate runs on all six maps; RE and SRB are reported per map.

use broadcast_core::{CounterThreshold, DescentShape, SchemeSpec};

use crate::runner::{run_grid, AveragedReport, Scale, PAPER_MAPS};
use crate::table::{pct, Table};

/// Builds the RE/SRB table for a set of AC threshold candidates.
fn candidate_table(title: &str, candidates: Vec<CounterThreshold>, scale: Scale) -> Table {
    let schemes: Vec<SchemeSpec> = candidates
        .iter()
        .cloned()
        .map(SchemeSpec::AdaptiveCounter)
        .collect();
    let grid = run_grid(&PAPER_MAPS, &schemes, scale, |b| b);
    let mut headers = vec!["map".to_string()];
    for c in &candidates {
        headers.push(format!("RE% {}", c.label()));
        headers.push(format!("SRB% {}", c.label()));
    }
    let mut table = Table::new(title, headers);
    for (mi, &map) in PAPER_MAPS.iter().enumerate() {
        let mut row = vec![format!("{map}x{map}")];
        for results in &grid {
            let r: &AveragedReport = &results[mi];
            row.push(pct(r.reachability));
            row.push(pct(r.saved_rebroadcasts));
        }
        table.row(row);
    }
    table
}

/// Fig. 5a: the ramp slope before `n₁`.
pub fn run_a(scale: Scale) -> Vec<Table> {
    vec![candidate_table(
        "Fig. 5a - C(n) ramp slope (22233344455..., 22334455..., 23455...)",
        vec![
            CounterThreshold::ramp(3),
            CounterThreshold::ramp(2),
            CounterThreshold::ramp(1),
        ],
        scale,
    )]
}

/// Fig. 5b: choosing `n₁`.
pub fn run_b(scale: Scale) -> Vec<Table> {
    vec![candidate_table(
        "Fig. 5b - choosing n1 (233..., 2344..., 23455..., 234566...)",
        (2..=5).map(CounterThreshold::ramp_to).collect(),
        scale,
    )]
}

/// Fig. 5c: choosing `n₂` with `n₁ = 4`.
pub fn run_c(scale: Scale) -> Vec<Table> {
    vec![candidate_table(
        "Fig. 5c - choosing n2 with n1=4 (linear descent)",
        [8, 12, 16]
            .into_iter()
            .map(|n2| CounterThreshold::with_descent(4, n2, DescentShape::Linear))
            .collect(),
        scale,
    )]
}

/// Fig. 5d: the descent shape between `n₁ = 4` and `n₂ = 12`.
pub fn run_d(scale: Scale) -> Vec<Table> {
    vec![candidate_table(
        "Fig. 5d - descent shape between n1=4 and n2=12",
        [
            DescentShape::Convex,
            DescentShape::Linear,
            DescentShape::Concave,
        ]
        .into_iter()
        .map(|s| CounterThreshold::with_descent(4, 12, s))
        .collect(),
        scale,
    )]
}
