//! Shared experiment machinery: run scales, seed-averaged simulation
//! runs, and a std-only parallel map over independent configurations.

use std::num::NonZeroUsize;
use std::sync::Mutex;
use std::thread;

use broadcast_core::{
    LossCounters, MacStats, NetActivity, ScenarioCounts, SimConfig, SimReport, SuppressionCounts,
    World,
};
use manet_sim_engine::{Histogram, HistogramSnapshot, DEFAULT_LATENCY_BOUNDS_S};

/// How much work a figure reproduction does.
///
/// The paper runs 10 000 broadcast requests per data point. [`Scale::Full`]
/// matches that; the smaller scales preserve every curve's shape while
/// keeping the whole suite interactive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Smoke-test sized: ~1 minute for the whole figure suite.
    Quick,
    /// The default: statistically stable curves in a few minutes.
    Default,
    /// The paper's full 10 000 broadcasts per data point.
    Full,
}

impl Scale {
    /// Broadcast requests per simulation run.
    pub fn broadcasts(self) -> u32 {
        match self {
            Scale::Quick => 60,
            Scale::Default => 400,
            Scale::Full => 10_000,
        }
    }

    /// Independent repetitions (distinct seeds) averaged per data point.
    pub fn repeats(self) -> u64 {
        match self {
            Scale::Quick => 1,
            Scale::Default => 2,
            Scale::Full => 1,
        }
    }

    /// Parses a `--scale` argument.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "quick" => Some(Scale::Quick),
            "default" => Some(Scale::Default),
            "full" => Some(Scale::Full),
            _ => None,
        }
    }
}

/// Mean RE / SRB / latency over the repeats of one configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct AveragedReport {
    /// Scheme label of the underlying runs.
    pub scheme: String,
    /// Map label of the underlying runs.
    pub map: String,
    /// Mean reachability.
    pub reachability: f64,
    /// Mean saved-rebroadcast ratio.
    pub saved_rebroadcasts: f64,
    /// Mean broadcast latency, seconds.
    pub avg_latency_s: f64,
    /// Mean HELLO frames per run.
    pub hello_packets: f64,
    /// Mean data frames per run.
    pub data_frames: f64,
    /// Mean collisions per run.
    pub collisions: f64,
    /// Mean simulated seconds per run.
    pub sim_seconds: f64,
    /// Sample standard deviation of reachability across repeats (0 for a
    /// single repeat).
    pub reachability_std: f64,
    /// Number of repeats averaged.
    pub repeats: usize,
}

impl AveragedReport {
    fn from_reports(reports: &[SimReport]) -> Self {
        assert!(!reports.is_empty(), "need at least one report to average");
        let n = reports.len() as f64;
        let re_mean = reports.iter().map(|r| r.reachability).sum::<f64>() / n;
        let re_std = if reports.len() > 1 {
            let var = reports
                .iter()
                .map(|r| (r.reachability - re_mean).powi(2))
                .sum::<f64>()
                / (n - 1.0);
            var.sqrt()
        } else {
            0.0
        };
        AveragedReport {
            scheme: reports[0].scheme.clone(),
            map: reports[0].map.clone(),
            reachability: re_mean,
            saved_rebroadcasts: reports.iter().map(|r| r.saved_rebroadcasts).sum::<f64>() / n,
            avg_latency_s: reports.iter().map(|r| r.avg_latency_s).sum::<f64>() / n,
            hello_packets: reports.iter().map(|r| r.hello_packets as f64).sum::<f64>() / n,
            data_frames: reports.iter().map(|r| r.data_frames as f64).sum::<f64>() / n,
            collisions: reports.iter().map(|r| r.collisions as f64).sum::<f64>() / n,
            sim_seconds: reports.iter().map(|r| r.sim_seconds).sum::<f64>() / n,
            reachability_std: re_std,
            repeats: reports.len(),
        }
    }
}

/// Low-level counters and distributions summed over the repeats of one
/// configuration — the payload of the `--metrics` JSON output.
#[derive(Debug, Clone, PartialEq)]
pub struct RunMetricsSummary {
    /// Frame-delivery losses by cause, summed over repeats.
    pub losses: LossCounters,
    /// MAC activity summed over repeats (`max_queue_depth` is the max).
    pub mac: MacStats,
    /// HELLO traffic and neighbor churn summed over repeats.
    pub net: NetActivity,
    /// Scheme decisions summed over repeats.
    pub suppression: SuppressionCounts,
    /// Per-broadcast latency distribution, seconds.
    pub latency_s: HistogramSnapshot,
    /// Distribution of the MAC's backoff draws, in slots.
    pub backoff_slots: HistogramSnapshot,
    /// Scenario activity summed over repeats; `None` when no run carried
    /// a scenario.
    pub scenario: Option<ScenarioCounts>,
}

impl RunMetricsSummary {
    fn from_reports(reports: &[SimReport]) -> Self {
        Self::from_reports_with_bounds(reports, &DEFAULT_LATENCY_BOUNDS_S)
    }

    /// Sums `reports` with explicit latency-histogram bucket edges in
    /// seconds (strictly increasing; see [`Histogram::new`]). The default
    /// edges ([`DEFAULT_LATENCY_BOUNDS_S`]) suit the paper's
    /// few-millisecond to few-hundred-millisecond range; sweeps whose
    /// latencies live elsewhere (large maps, heavy churn) pass their own.
    pub fn from_reports_with_bounds(reports: &[SimReport], latency_bounds_s: &[f64]) -> Self {
        let mut losses = LossCounters::default();
        let mut mac = MacStats::default();
        let mut net = NetActivity::default();
        let mut suppression = SuppressionCounts::default();
        let mut scenario: Option<ScenarioCounts> = None;
        let mut latency = Histogram::new(latency_bounds_s);
        for r in reports {
            losses.merge(&r.losses);
            mac.merge(&r.mac);
            net.merge(&r.net);
            suppression.merge(&r.suppression);
            if let Some(counts) = &r.scenario {
                scenario
                    .get_or_insert_with(ScenarioCounts::default)
                    .merge(counts);
            }
            for b in &r.per_broadcast {
                latency.record(b.latency.as_secs_f64());
            }
        }
        // The DCF draws uniformly from 0..=CW_MIN slots; buckets are
        // upper-inclusive (`v <= bound`), so bounds 0..=CW_MIN-1 give one
        // bucket per slot with the largest slot in the overflow bucket.
        let backoff_bounds: Vec<f64> = (0..mac.draw_counts.len() - 1).map(|s| s as f64).collect();
        let mut backoff = Histogram::new(&backoff_bounds);
        for (slots, &n) in mac.draw_counts.iter().enumerate() {
            backoff.record_n(slots as f64, n);
        }
        RunMetricsSummary {
            losses,
            mac,
            net,
            suppression,
            latency_s: latency.snapshot(),
            backoff_slots: backoff.snapshot(),
            scenario,
        }
    }
}

/// One captured `(scheme, map)` data point, recorded by [`run_averaged`]
/// while metrics capture is enabled.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsRecord {
    /// Scheme label of the underlying runs.
    pub scheme: String,
    /// Map label of the underlying runs.
    pub map: String,
    /// Repeats summed into the metrics.
    pub repeats: usize,
    /// The summed counters and distributions.
    pub metrics: RunMetricsSummary,
}

/// What an enabled capture sink holds: the records so far plus the
/// latency-histogram bucket edges every record is summed with.
#[derive(Debug)]
struct CaptureState {
    latency_bounds_s: Vec<f64>,
    records: Vec<MetricsRecord>,
}

/// The capture sink: `None` while disabled (the common case — recording
/// costs nothing when off). A plain `Mutex` rather than thread-locals
/// because `run_grid` fans runs out over worker threads.
static METRICS_SINK: Mutex<Option<CaptureState>> = Mutex::new(None);

/// Execution-only shard-count override applied by [`run_averaged`]
/// (0 = none). Sharded execution is bit-identical to sequential, so this
/// knob changes wall time, never results — which is why a process-wide
/// atomic is safe even with figure sweeps running concurrently.
static SHARDS_OVERRIDE: std::sync::atomic::AtomicU32 = std::sync::atomic::AtomicU32::new(0);

/// Makes every subsequent [`run_averaged`] run its worlds with `shards`
/// spatial strips (clamped per-map by the world so every strip spans at
/// least one radio radius). Pass 0 to clear.
pub fn set_shards_override(shards: u32) {
    SHARDS_OVERRIDE.store(shards, std::sync::atomic::Ordering::Relaxed);
}

/// The active shard-count override, if any.
pub fn shards_override() -> Option<u32> {
    match SHARDS_OVERRIDE.load(std::sync::atomic::Ordering::Relaxed) {
        0 => None,
        n => Some(n),
    }
}

/// Whether [`run_averaged`] worlds run the epoch-parallel executor.
/// Unlike plain sharding, `--parallel-epochs` waives byte-identity for
/// count-level equivalence, so this is opt-in per process and the figure
/// pipelines keep their pinned hashes unless the user asks for it.
static PARALLEL_EPOCHS_OVERRIDE: std::sync::atomic::AtomicBool =
    std::sync::atomic::AtomicBool::new(false);

/// Makes every subsequent [`run_averaged`] world drain its shard queues
/// in parallel epochs (no-op for worlds that end up with one strip).
pub fn set_parallel_epochs_override(enabled: bool) {
    PARALLEL_EPOCHS_OVERRIDE.store(enabled, std::sync::atomic::Ordering::Relaxed);
}

/// The active epoch-parallel override.
pub fn parallel_epochs_override() -> bool {
    PARALLEL_EPOCHS_OVERRIDE.load(std::sync::atomic::Ordering::Relaxed)
}

/// Pool-thread override for sharded executors (`u32::MAX` = none).
/// `Some(0)` is meaningful — it forces inline execution — so the
/// sentinel is `MAX` rather than zero. Like the shard override, this is
/// execution-only: it never changes results, only wall time.
static WORKERS_OVERRIDE: std::sync::atomic::AtomicU32 = std::sync::atomic::AtomicU32::new(u32::MAX);

/// Makes every subsequent [`run_averaged`] world use `workers` pool
/// threads for sharded execution (`None` restores auto-detection).
pub fn set_workers_override(workers: Option<u32>) {
    WORKERS_OVERRIDE.store(
        workers.unwrap_or(u32::MAX),
        std::sync::atomic::Ordering::Relaxed,
    );
}

/// The active worker-thread override, if any.
pub fn workers_override() -> Option<u32> {
    match WORKERS_OVERRIDE.load(std::sync::atomic::Ordering::Relaxed) {
        u32::MAX => None,
        n => Some(n),
    }
}

fn sink_lock() -> std::sync::MutexGuard<'static, Option<CaptureState>> {
    // A worker that panicked mid-run poisons the lock; the sink's data is
    // append-only and stays coherent, so recover rather than cascade.
    METRICS_SINK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Starts capturing a [`MetricsRecord`] per [`run_averaged`] call with the
/// default latency buckets, discarding anything captured earlier.
pub fn enable_metrics_capture() {
    enable_metrics_capture_with_bounds(&DEFAULT_LATENCY_BOUNDS_S);
}

/// Starts capturing with explicit latency-histogram bucket edges, seconds
/// (strictly increasing). Existing captures are discarded.
pub fn enable_metrics_capture_with_bounds(latency_bounds_s: &[f64]) {
    *sink_lock() = Some(CaptureState {
        latency_bounds_s: latency_bounds_s.to_vec(),
        records: Vec::new(),
    });
}

/// Stops capturing and returns the captured records sorted by
/// `(scheme, map)` — worker scheduling must not leak into the output.
pub fn drain_metrics_capture() -> Vec<MetricsRecord> {
    let mut records = sink_lock()
        .take()
        .map(|state| state.records)
        .unwrap_or_default();
    records.sort_by(|a, b| (&a.scheme, &a.map).cmp(&(&b.scheme, &b.map)));
    records
}

/// Runs `config` `repeats` times with seeds `seed, seed+1, …` and averages
/// the headline metrics. The same seed is reused across schemes by the
/// figure modules, giving paired comparisons (identical placements,
/// trajectories, and workloads).
pub fn run_averaged(config: &SimConfig, repeats: u64) -> AveragedReport {
    assert!(repeats > 0, "need at least one repeat");
    // Repeats are independent — repeat `i` owns seed `seed + i` and nothing
    // else — so they fan out over worker threads like the figure sweeps do.
    // `parallel_map` returns outputs in input order, so the averages and
    // the summed metrics below fold the reports in exactly the sequential
    // order regardless of worker scheduling (bit-identical output).
    let reports: Vec<SimReport> = parallel_map((0..repeats).collect(), |&i| {
        let mut c = config.clone();
        c.seed = config.seed.wrapping_add(i);
        if let Some(shards) = shards_override() {
            c.shards = shards;
        }
        if parallel_epochs_override() {
            c.parallel_epochs = true;
        }
        if let Some(workers) = workers_override() {
            c.workers = Some(workers);
        }
        World::new(c).run()
    });
    let averaged = AveragedReport::from_reports(&reports);
    record_metrics(&reports);
    averaged
}

/// Feeds already-run reports into the capture sink as one record (a no-op
/// while capture is disabled). [`run_averaged`] calls this itself; figures
/// that drive [`World`] directly — because they need the full
/// [`SimReport`], e.g. per-cause loss splits — call it so their runs still
/// land in the `--metrics` document.
pub fn record_metrics(reports: &[SimReport]) {
    let mut sink = sink_lock();
    if let Some(state) = sink.as_mut() {
        let record = metrics_record_with_bounds(reports, &state.latency_bounds_s);
        state.records.push(record);
    }
}

/// Builds the `--metrics` record for reports that already ran — the same
/// summation [`run_averaged`] feeds the capture sink, exposed so single-run
/// front ends (`manet-sim --metrics`) can emit the identical document.
///
/// # Panics
///
/// Panics when `reports` is empty.
pub fn metrics_record(reports: &[SimReport]) -> MetricsRecord {
    assert!(!reports.is_empty(), "need at least one report");
    MetricsRecord {
        scheme: reports[0].scheme.clone(),
        map: reports[0].map.clone(),
        repeats: reports.len(),
        metrics: RunMetricsSummary::from_reports(reports),
    }
}

/// [`metrics_record`] with explicit latency-histogram bucket edges.
///
/// # Panics
///
/// Panics when `reports` is empty or the edges are not strictly
/// increasing.
pub fn metrics_record_with_bounds(
    reports: &[SimReport],
    latency_bounds_s: &[f64],
) -> MetricsRecord {
    assert!(!reports.is_empty(), "need at least one report");
    MetricsRecord {
        scheme: reports[0].scheme.clone(),
        map: reports[0].map.clone(),
        repeats: reports.len(),
        metrics: RunMetricsSummary::from_reports_with_bounds(reports, latency_bounds_s),
    }
}

/// Evaluates `job` over `inputs` on up to `available_parallelism` OS
/// threads, preserving input order. Plain `std::thread` — simulations are
/// independent and CPU-bound, so this is all the parallelism the harness
/// needs.
///
/// Workers collect into thread-local vectors (no shared lock that a
/// panicking job would poison); a panic in `job` is re-raised on the
/// caller with its original payload once every worker has stopped.
pub fn parallel_map<I, O, F>(inputs: Vec<I>, job: F) -> Vec<O>
where
    I: Send + Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    let workers = thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
        .min(inputs.len().max(1));
    if workers <= 1 {
        return inputs.iter().map(&job).collect();
    }
    let next = std::sync::atomic::AtomicUsize::new(0);
    let per_worker: Vec<Vec<(usize, O)>> = thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let idx = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                        if idx >= inputs.len() {
                            break;
                        }
                        local.push((idx, job(&inputs[idx])));
                    }
                    local
                })
            })
            .collect();
        // Join everything first so no worker outlives the scope, then
        // propagate the first panic with its original payload.
        let joined: Vec<thread::Result<Vec<(usize, O)>>> =
            handles.into_iter().map(|h| h.join()).collect();
        let mut collected = Vec::with_capacity(workers);
        let mut payload_hold = None;
        for result in joined {
            match result {
                Ok(local) => collected.push(local),
                Err(payload) => {
                    if payload_hold.is_none() {
                        payload_hold = Some(payload);
                    }
                }
            }
        }
        if let Some(payload) = payload_hold {
            std::panic::resume_unwind(payload);
        }
        collected
    });
    let mut slots: Vec<Option<O>> = Vec::new();
    slots.resize_with(inputs.len(), || None);
    for (idx, out) in per_worker.into_iter().flatten() {
        slots[idx] = Some(out);
    }
    slots
        .into_iter()
        .map(|o| o.expect("worker skipped a slot"))
        .collect()
}

/// Runs every `(scheme, map)` pair of a figure's sweep in parallel.
///
/// Returns `results[scheme_index][map_index]`. All runs share
/// [`BASE_SEED`]-derived seeds, so schemes are compared on identical host
/// placements, trajectories, and workloads. `tweak` customizes each
/// configuration (speed overrides, neighbor-info policy, …).
pub fn run_grid(
    maps: &[u32],
    schemes: &[broadcast_core::SchemeSpec],
    scale: Scale,
    tweak: impl Fn(broadcast_core::SimConfigBuilder) -> broadcast_core::SimConfigBuilder + Sync,
) -> Vec<Vec<AveragedReport>> {
    let pairs: Vec<(usize, usize)> = (0..schemes.len())
        .flat_map(|s| (0..maps.len()).map(move |m| (s, m)))
        .collect();
    let flat = parallel_map(pairs.clone(), |&(s, m)| {
        let builder = broadcast_core::SimConfig::builder(maps[m], schemes[s].clone())
            .broadcasts(scale.broadcasts())
            .seed(BASE_SEED);
        let config = tweak(builder).build();
        run_averaged(&config, scale.repeats())
    });
    let mut grid: Vec<Vec<Option<AveragedReport>>> = (0..schemes.len())
        .map(|_| (0..maps.len()).map(|_| None).collect())
        .collect();
    for ((s, m), report) in pairs.into_iter().zip(flat) {
        grid[s][m] = Some(report);
    }
    grid.into_iter()
        .map(|row| {
            row.into_iter()
                .map(|r| r.expect("missing grid cell"))
                .collect()
        })
        .collect()
}

/// The paper's six map sizes (side length in 500 m units).
pub const PAPER_MAPS: [u32; 6] = [1, 3, 5, 7, 9, 11];

/// Base seed shared by all figures so runs are reproducible end to end.
pub const BASE_SEED: u64 = 20_260_705;

#[cfg(test)]
mod tests {
    use super::*;
    use broadcast_core::SchemeSpec;

    #[test]
    fn parallel_map_preserves_order() {
        let inputs: Vec<u64> = (0..37).collect();
        let outputs = parallel_map(inputs.clone(), |&x| x * 2);
        assert_eq!(outputs, inputs.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_handles_empty() {
        let outputs: Vec<u64> = parallel_map(Vec::<u64>::new(), |&x| x);
        assert!(outputs.is_empty());
    }

    #[test]
    fn averaging_runs_distinct_seeds() {
        let config = broadcast_core::SimConfig::builder(3, SchemeSpec::Flooding)
            .hosts(15)
            .broadcasts(3)
            .seed(1)
            .build();
        let avg = run_averaged(&config, 2);
        assert_eq!(avg.map, "3x3");
        assert!(avg.reachability >= 0.0 && avg.reachability <= 1.01);
    }

    #[test]
    fn averaging_reports_spread() {
        let config = broadcast_core::SimConfig::builder(5, SchemeSpec::Counter(2))
            .hosts(25)
            .broadcasts(5)
            .seed(9)
            .build();
        let avg = run_averaged(&config, 3);
        assert_eq!(avg.repeats, 3);
        assert!(avg.reachability_std >= 0.0);
        // Three distinct seeds virtually never agree to 15 decimal places.
        assert!(avg.reachability_std > 0.0 || avg.reachability == 1.0);
    }

    #[test]
    fn parallel_map_propagates_worker_panics() {
        // Quiet the default "thread panicked" spew for the expected panic.
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            parallel_map((0..64u64).collect::<Vec<_>>(), |&x| {
                if x == 7 {
                    panic!("boom at {x}");
                }
                x * 2
            })
        }));
        std::panic::set_hook(prev);
        let payload = result.expect_err("a worker panic must reach the caller");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_default();
        assert!(msg.contains("boom at 7"), "original payload, got: {msg:?}");
    }

    #[test]
    fn metrics_capture_records_and_drains_sorted() {
        let config = broadcast_core::SimConfig::builder(3, SchemeSpec::Counter(2))
            .hosts(20)
            .broadcasts(4)
            .seed(5)
            .build();
        let flooding = broadcast_core::SimConfig::builder(3, SchemeSpec::Flooding)
            .hosts(20)
            .broadcasts(4)
            .seed(5)
            .build();
        enable_metrics_capture();
        let _ = run_averaged(&flooding, 1);
        let _ = run_averaged(&config, 2);
        let records = drain_metrics_capture();
        // Other tests may run run_averaged concurrently and add records of
        // their own; assert on ours by (scheme, map) instead of by count.
        let rec = records
            .iter()
            .find(|r| r.scheme == "C=2" && r.map == "3x3")
            .expect("captured the C=2 record");
        assert_eq!(rec.repeats, 2);
        assert_eq!(rec.metrics.latency_s.count, 8, "4 broadcasts x 2 repeats");
        assert_eq!(
            rec.metrics.backoff_slots.count,
            rec.metrics.mac.backoff_draws
        );
        assert!(rec.metrics.suppression.scheduled > 0);
        // Drained records come back sorted by (scheme, map).
        let c2 = records.iter().position(|r| r.scheme == "C=2").unwrap();
        let fl = records.iter().position(|r| r.scheme == "flooding").unwrap();
        assert!(c2 < fl, "records sorted by scheme label");
    }

    #[test]
    fn parallel_repeats_match_sequential() {
        // The exact loop `run_averaged` ran before repeats were fanned out
        // over workers; the parallel version must reproduce it bit for bit,
        // both in the averaged report and in the captured metrics record.
        let config = broadcast_core::SimConfig::builder(3, SchemeSpec::Counter(3))
            .hosts(20)
            .broadcasts(5)
            .seed(77)
            .build();
        let repeats = 4u64;
        let seq_reports: Vec<SimReport> = (0..repeats)
            .map(|i| {
                let mut c = config.clone();
                c.seed = config.seed.wrapping_add(i);
                World::new(c).run()
            })
            .collect();
        let seq_avg = AveragedReport::from_reports(&seq_reports);
        let seq_metrics = RunMetricsSummary::from_reports(&seq_reports);

        enable_metrics_capture();
        let par_avg = run_averaged(&config, repeats);
        let records = drain_metrics_capture();

        assert_eq!(par_avg, seq_avg, "averaged report must be bit-identical");
        let rec = records
            .iter()
            .find(|r| r.scheme == seq_avg.scheme && r.map == seq_avg.map)
            .expect("captured the parallel run's metrics record");
        assert_eq!(rec.repeats, repeats as usize);
        assert_eq!(
            rec.metrics, seq_metrics,
            "summed metrics must be bit-identical"
        );
    }

    #[test]
    fn custom_latency_bounds_reach_the_capture_sink() {
        let config = broadcast_core::SimConfig::builder(3, SchemeSpec::Counter(4))
            .hosts(18)
            .broadcasts(4)
            .seed(21)
            .build();
        let coarse = [0.01, 1.0];
        enable_metrics_capture_with_bounds(&coarse);
        let _ = run_averaged(&config, 1);
        let records = drain_metrics_capture();
        let rec = records
            .iter()
            .find(|r| r.scheme == "C=4" && r.map == "3x3")
            .expect("captured the C=4 record");
        assert_eq!(
            rec.metrics.latency_s.bounds,
            coarse.to_vec(),
            "sink uses the configured bucket edges"
        );
        // The default-bounds path is byte-identical to the old constant.
        let reports = vec![World::new(config).run()];
        let default_rec = metrics_record(&reports);
        let explicit = metrics_record_with_bounds(&reports, &DEFAULT_LATENCY_BOUNDS_S);
        assert_eq!(default_rec, explicit);
    }

    #[test]
    fn scale_parsing() {
        assert_eq!(Scale::parse("quick"), Some(Scale::Quick));
        assert_eq!(Scale::parse("full"), Some(Scale::Full));
        assert_eq!(Scale::parse("bogus"), None);
        assert_eq!(Scale::Full.broadcasts(), 10_000);
    }
}
