//! Shared experiment machinery: run scales, seed-averaged simulation
//! runs, and a std-only parallel map over independent configurations.

use std::num::NonZeroUsize;
use std::thread;

use broadcast_core::{SimConfig, SimReport, World};

/// How much work a figure reproduction does.
///
/// The paper runs 10 000 broadcast requests per data point. [`Scale::Full`]
/// matches that; the smaller scales preserve every curve's shape while
/// keeping the whole suite interactive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Smoke-test sized: ~1 minute for the whole figure suite.
    Quick,
    /// The default: statistically stable curves in a few minutes.
    Default,
    /// The paper's full 10 000 broadcasts per data point.
    Full,
}

impl Scale {
    /// Broadcast requests per simulation run.
    pub fn broadcasts(self) -> u32 {
        match self {
            Scale::Quick => 60,
            Scale::Default => 400,
            Scale::Full => 10_000,
        }
    }

    /// Independent repetitions (distinct seeds) averaged per data point.
    pub fn repeats(self) -> u64 {
        match self {
            Scale::Quick => 1,
            Scale::Default => 2,
            Scale::Full => 1,
        }
    }

    /// Parses a `--scale` argument.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "quick" => Some(Scale::Quick),
            "default" => Some(Scale::Default),
            "full" => Some(Scale::Full),
            _ => None,
        }
    }
}

/// Mean RE / SRB / latency over the repeats of one configuration.
#[derive(Debug, Clone)]
pub struct AveragedReport {
    /// Scheme label of the underlying runs.
    pub scheme: String,
    /// Map label of the underlying runs.
    pub map: String,
    /// Mean reachability.
    pub reachability: f64,
    /// Mean saved-rebroadcast ratio.
    pub saved_rebroadcasts: f64,
    /// Mean broadcast latency, seconds.
    pub avg_latency_s: f64,
    /// Mean HELLO frames per run.
    pub hello_packets: f64,
    /// Mean data frames per run.
    pub data_frames: f64,
    /// Mean collisions per run.
    pub collisions: f64,
    /// Mean simulated seconds per run.
    pub sim_seconds: f64,
    /// Sample standard deviation of reachability across repeats (0 for a
    /// single repeat).
    pub reachability_std: f64,
    /// Number of repeats averaged.
    pub repeats: usize,
}

impl AveragedReport {
    fn from_reports(reports: &[SimReport]) -> Self {
        assert!(!reports.is_empty(), "need at least one report to average");
        let n = reports.len() as f64;
        let re_mean = reports.iter().map(|r| r.reachability).sum::<f64>() / n;
        let re_std = if reports.len() > 1 {
            let var = reports
                .iter()
                .map(|r| (r.reachability - re_mean).powi(2))
                .sum::<f64>()
                / (n - 1.0);
            var.sqrt()
        } else {
            0.0
        };
        AveragedReport {
            scheme: reports[0].scheme.clone(),
            map: reports[0].map.clone(),
            reachability: re_mean,
            saved_rebroadcasts: reports.iter().map(|r| r.saved_rebroadcasts).sum::<f64>() / n,
            avg_latency_s: reports.iter().map(|r| r.avg_latency_s).sum::<f64>() / n,
            hello_packets: reports.iter().map(|r| r.hello_packets as f64).sum::<f64>() / n,
            data_frames: reports.iter().map(|r| r.data_frames as f64).sum::<f64>() / n,
            collisions: reports.iter().map(|r| r.collisions as f64).sum::<f64>() / n,
            sim_seconds: reports.iter().map(|r| r.sim_seconds).sum::<f64>() / n,
            reachability_std: re_std,
            repeats: reports.len(),
        }
    }
}

/// Runs `config` `repeats` times with seeds `seed, seed+1, …` and averages
/// the headline metrics. The same seed is reused across schemes by the
/// figure modules, giving paired comparisons (identical placements,
/// trajectories, and workloads).
pub fn run_averaged(config: &SimConfig, repeats: u64) -> AveragedReport {
    assert!(repeats > 0, "need at least one repeat");
    let reports: Vec<SimReport> = (0..repeats)
        .map(|i| {
            let mut c = config.clone();
            c.seed = config.seed.wrapping_add(i);
            World::new(c).run()
        })
        .collect();
    AveragedReport::from_reports(&reports)
}

/// Evaluates `job` over `inputs` on up to `available_parallelism` OS
/// threads, preserving input order. Plain `std::thread` — simulations are
/// independent and CPU-bound, so this is all the parallelism the harness
/// needs.
pub fn parallel_map<I, O, F>(inputs: Vec<I>, job: F) -> Vec<O>
where
    I: Send + Sync,
    O: Send,
    F: Fn(&I) -> O + Sync,
{
    let workers = thread::available_parallelism()
        .map(NonZeroUsize::get)
        .unwrap_or(1)
        .min(inputs.len().max(1));
    if workers <= 1 {
        return inputs.iter().map(&job).collect();
    }
    let next = std::sync::atomic::AtomicUsize::new(0);
    let mut slots: Vec<Option<O>> = Vec::new();
    slots.resize_with(inputs.len(), || None);
    let slots_mutex = std::sync::Mutex::new(&mut slots);
    thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let idx = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if idx >= inputs.len() {
                    break;
                }
                let out = job(&inputs[idx]);
                slots_mutex.lock().expect("result mutex poisoned")[idx] = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .map(|o| o.expect("worker skipped a slot"))
        .collect()
}

/// Runs every `(scheme, map)` pair of a figure's sweep in parallel.
///
/// Returns `results[scheme_index][map_index]`. All runs share
/// [`BASE_SEED`]-derived seeds, so schemes are compared on identical host
/// placements, trajectories, and workloads. `tweak` customizes each
/// configuration (speed overrides, neighbor-info policy, …).
pub fn run_grid(
    maps: &[u32],
    schemes: &[broadcast_core::SchemeSpec],
    scale: Scale,
    tweak: impl Fn(broadcast_core::SimConfigBuilder) -> broadcast_core::SimConfigBuilder + Sync,
) -> Vec<Vec<AveragedReport>> {
    let pairs: Vec<(usize, usize)> = (0..schemes.len())
        .flat_map(|s| (0..maps.len()).map(move |m| (s, m)))
        .collect();
    let flat = parallel_map(pairs.clone(), |&(s, m)| {
        let builder = broadcast_core::SimConfig::builder(maps[m], schemes[s].clone())
            .broadcasts(scale.broadcasts())
            .seed(BASE_SEED);
        let config = tweak(builder).build();
        run_averaged(&config, scale.repeats())
    });
    let mut grid: Vec<Vec<Option<AveragedReport>>> = (0..schemes.len())
        .map(|_| (0..maps.len()).map(|_| None).collect())
        .collect();
    for ((s, m), report) in pairs.into_iter().zip(flat) {
        grid[s][m] = Some(report);
    }
    grid.into_iter()
        .map(|row| {
            row.into_iter()
                .map(|r| r.expect("missing grid cell"))
                .collect()
        })
        .collect()
}

/// The paper's six map sizes (side length in 500 m units).
pub const PAPER_MAPS: [u32; 6] = [1, 3, 5, 7, 9, 11];

/// Base seed shared by all figures so runs are reproducible end to end.
pub const BASE_SEED: u64 = 20_260_705;

#[cfg(test)]
mod tests {
    use super::*;
    use broadcast_core::SchemeSpec;

    #[test]
    fn parallel_map_preserves_order() {
        let inputs: Vec<u64> = (0..37).collect();
        let outputs = parallel_map(inputs.clone(), |&x| x * 2);
        assert_eq!(outputs, inputs.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn parallel_map_handles_empty() {
        let outputs: Vec<u64> = parallel_map(Vec::<u64>::new(), |&x| x);
        assert!(outputs.is_empty());
    }

    #[test]
    fn averaging_runs_distinct_seeds() {
        let config = broadcast_core::SimConfig::builder(3, SchemeSpec::Flooding)
            .hosts(15)
            .broadcasts(3)
            .seed(1)
            .build();
        let avg = run_averaged(&config, 2);
        assert_eq!(avg.map, "3x3");
        assert!(avg.reachability >= 0.0 && avg.reachability <= 1.01);
    }

    #[test]
    fn averaging_reports_spread() {
        let config = broadcast_core::SimConfig::builder(5, SchemeSpec::Counter(2))
            .hosts(25)
            .broadcasts(5)
            .seed(9)
            .build();
        let avg = run_averaged(&config, 3);
        assert_eq!(avg.repeats, 3);
        assert!(avg.reachability_std >= 0.0);
        // Three distinct seeds virtually never agree to 15 decimal places.
        assert!(avg.reachability_std > 0.0 || avg.reachability == 1.0);
    }

    #[test]
    fn scale_parsing() {
        assert_eq!(Scale::parse("quick"), Some(Scale::Quick));
        assert_eq!(Scale::parse("full"), Some(Scale::Full));
        assert_eq!(Scale::parse("bogus"), None);
        assert_eq!(Scale::Full.broadcasts(), 10_000);
    }
}
