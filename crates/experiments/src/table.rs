//! Aligned text tables and CSV emission for experiment results.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// A simple column-aligned table that can render to the terminal and to
/// CSV.
///
/// # Examples
///
/// ```
/// use manet_experiments::Table;
///
/// let mut t = Table::new("demo", vec!["map".into(), "RE".into()]);
/// t.row(vec!["1x1".into(), "0.99".into()]);
/// let text = t.render();
/// assert!(text.contains("map"));
/// assert!(text.contains("1x1"));
/// ```
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table with the given title and column headers.
    pub fn new(title: impl Into<String>, headers: Vec<String>) -> Self {
        Table {
            title: title.into(),
            headers,
            rows: Vec::new(),
        }
    }

    /// Appends one row.
    ///
    /// # Panics
    ///
    /// Panics if the row's width differs from the header's.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width must match header width"
        );
        self.rows.push(cells);
    }

    /// The table's title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Renders an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        let mut line = String::new();
        for (w, h) in widths.iter().zip(&self.headers) {
            let _ = write!(line, "{h:>w$}  ", w = w);
        }
        let _ = writeln!(out, "{}", line.trim_end());
        let _ = writeln!(out, "{}", "-".repeat(line.trim_end().len()));
        for row in &self.rows {
            let mut line = String::new();
            for (w, cell) in widths.iter().zip(row) {
                let _ = write!(line, "{cell:>w$}  ", w = w);
            }
            let _ = writeln!(out, "{}", line.trim_end());
        }
        out
    }

    /// Renders a GitHub-flavored markdown table (with the title as a
    /// heading), ready for inclusion in EXPERIMENTS.md.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "### {}\n", self.title);
        let _ = writeln!(out, "| {} |", self.headers.join(" | "));
        let _ = writeln!(
            out,
            "|{}|",
            self.headers
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        );
        for row in &self.rows {
            let _ = writeln!(out, "| {} |", row.join(" | "));
        }
        out
    }

    /// Renders RFC-4180-ish CSV (quotes only when needed).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let escape = |cell: &str| -> String {
            if cell.contains([',', '"', '\n']) {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let _ = writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(|h| escape(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Writes the CSV form to `dir/<file_stem>.csv`.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn write_csv(&self, dir: &Path, file_stem: &str) -> io::Result<PathBuf> {
        fs::create_dir_all(dir)?;
        let path = dir.join(format!("{file_stem}.csv"));
        fs::write(&path, self.to_csv())?;
        Ok(path)
    }
}

/// Formats a ratio as a percent with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}", x * 100.0)
}

/// Formats a latency in seconds with four decimals.
pub fn secs(x: f64) -> String {
    format!("{x:.4}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("t", vec!["a".into(), "long-header".into()]);
        t.row(vec!["xxxxxx".into(), "1".into()]);
        let s = t.render();
        assert!(s.contains("## t"));
        // Header line and row line have the same width.
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[1].len(), lines[3].len());
    }

    #[test]
    fn markdown_has_header_separator_and_rows() {
        let mut t = Table::new("sample", vec!["a".into(), "b".into()]);
        t.row(vec!["1".into(), "2".into()]);
        let md = t.to_markdown();
        assert!(md.starts_with("### sample"));
        assert!(md.contains("| a | b |"));
        assert!(md.contains("|---|---|"));
        assert!(md.contains("| 1 | 2 |"));
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = Table::new("t", vec!["a".into(), "b".into()]);
        t.row(vec!["x,y".into(), "say \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn ragged_row_panics() {
        let mut t = Table::new("t", vec!["a".into()]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(pct(0.876), "87.6");
        assert_eq!(secs(0.03344), "0.0334");
    }
}
