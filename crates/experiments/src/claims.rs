//! Programmatic verification of the paper's qualitative claims.
//!
//! The reproduction is judged on *shape*, not absolute numbers: who wins,
//! by roughly what factor, and where the crossovers fall. This module
//! encodes those statements as executable checks and reports a
//! PASS/FAIL verdict for each, giving `EXPERIMENTS.md` a mechanically
//! verifiable backbone.

use broadcast_core::{AreaThreshold, CounterThreshold, NeighborInfo, SchemeSpec, SimConfig};
use manet_geom::{contention_free_distribution, expected_additional_coverage};
use manet_net::{DynamicHelloParams, HelloIntervalPolicy};
use manet_sim_engine::{SimDuration, SimRng};

use crate::runner::{parallel_map, run_averaged, AveragedReport, Scale, BASE_SEED};
use crate::table::Table;

/// One verified claim.
#[derive(Debug, Clone)]
struct Claim {
    id: &'static str,
    statement: &'static str,
    expected: String,
    measured: String,
    pass: bool,
}

fn config(map: u32, scheme: SchemeSpec, scale: Scale) -> SimConfig {
    SimConfig::builder(map, scheme)
        .broadcasts(scale.broadcasts())
        .seed(BASE_SEED)
        .build()
}

/// Runs every encoded claim and renders the verdict table.
pub fn run(scale: Scale) -> Vec<Table> {
    let mut claims = Vec::new();

    // ---- analytic claims (paper §2.2) -----------------------------------
    let mut rng = SimRng::seed_from(BASE_SEED);
    let eac = expected_additional_coverage(4, 3_000, 600, &mut rng);
    claims.push(Claim {
        id: "fig1-eac1",
        statement: "a random rebroadcast covers ~41% new area (EAC(1))",
        expected: "0.41 +/- 0.03".into(),
        measured: format!("{:.3}", eac[0]),
        pass: (eac[0] - 0.41).abs() < 0.03,
    });
    claims.push(Claim {
        id: "fig1-eac4",
        statement: "after 4 hearings the additional coverage is below ~5%",
        expected: "< 0.06".into(),
        measured: format!("{:.3}", eac[3]),
        pass: eac[3] < 0.06,
    });
    let cf2 = contention_free_distribution(2, 30_000, &mut rng);
    claims.push(Claim {
        id: "fig2-cf2",
        statement: "two random receivers contend with probability ~59%",
        expected: "0.59 +/- 0.03".into(),
        measured: format!("{:.3}", cf2[0]),
        pass: (cf2[0] - 0.59).abs() < 0.03,
    });
    let cf6 = contention_free_distribution(6, 10_000, &mut rng);
    claims.push(Claim {
        id: "fig2-cf6",
        statement: "with 6+ receivers, all contend with probability > 0.8",
        expected: "> 0.75".into(),
        measured: format!("{:.3}", cf6[0]),
        pass: cf6[0] > 0.75,
    });

    // ---- simulation claims ----------------------------------------------
    // One parallel batch of every run the claims need.
    let ac = || SchemeSpec::AdaptiveCounter(CounterThreshold::paper_recommended());
    let al = || SchemeSpec::AdaptiveLocation(AreaThreshold::paper_recommended());
    let jobs: Vec<(&'static str, SimConfig)> = vec![
        ("flood-1", config(1, SchemeSpec::Flooding, scale)),
        ("c2-1", config(1, SchemeSpec::Counter(2), scale)),
        ("c2-7", config(7, SchemeSpec::Counter(2), scale)),
        ("c6-7", config(7, SchemeSpec::Counter(6), scale)),
        ("ac-1", config(1, ac(), scale)),
        ("ac-3", config(3, ac(), scale)),
        ("ac-7", config(7, ac(), scale)),
        ("ac-11", config(11, ac(), scale)),
        ("a1871-7", config(7, SchemeSpec::Location(0.1871), scale)),
        ("a1871-1", config(1, SchemeSpec::Location(0.1871), scale)),
        ("al-7", config(7, al(), scale)),
        ("al-1", config(1, al(), scale)),
        ("nc-dhi-9", {
            let mut c = config(9, SchemeSpec::NeighborCoverage, scale);
            c.neighbor_info =
                NeighborInfo::Hello(HelloIntervalPolicy::Dynamic(DynamicHelloParams::paper()));
            c.warmup = SimDuration::from_secs(12);
            c
        }),
        ("nc-hi1-9", {
            let mut c = config(9, SchemeSpec::NeighborCoverage, scale);
            c.max_speed_kmh = Some(60.0);
            c
        }),
        ("nc-hi30-9", {
            let mut c = config(9, SchemeSpec::NeighborCoverage, scale);
            c.max_speed_kmh = Some(60.0);
            c.neighbor_info =
                NeighborInfo::Hello(HelloIntervalPolicy::Fixed(SimDuration::from_secs(30)));
            c.warmup = SimDuration::from_secs(60);
            c
        }),
        ("nc-1", config(1, SchemeSpec::NeighborCoverage, scale)),
    ];
    let reports: Vec<AveragedReport> =
        parallel_map(jobs.clone(), |(_, c)| run_averaged(c, scale.repeats()));
    let get = |id: &str| -> &AveragedReport {
        let idx = jobs.iter().position(|(j, _)| *j == id).expect("job exists");
        &reports[idx]
    };

    let flood1 = get("flood-1");
    let c2_1 = get("c2-1");
    claims.push(Claim {
        id: "storm-latency",
        statement: "on the dense map, flooding's latency dwarfs counter-based (storm)",
        expected: "flooding > 3x C=2".into(),
        measured: format!("{:.4}s vs {:.4}s", flood1.avg_latency_s, c2_1.avg_latency_s),
        pass: flood1.avg_latency_s > 3.0 * c2_1.avg_latency_s,
    });
    claims.push(Claim {
        id: "storm-collisions",
        statement: "flooding causes far more collisions than counter-based on 1x1",
        expected: "flooding > 3x C=2".into(),
        measured: format!("{:.0} vs {:.0}", flood1.collisions, c2_1.collisions),
        pass: flood1.collisions > 3.0 * c2_1.collisions,
    });
    claims.push(Claim {
        id: "flooding-srb",
        statement: "flooding never saves rebroadcasts",
        expected: "SRB = 0".into(),
        measured: format!("{:.4}", flood1.saved_rebroadcasts),
        pass: flood1.saved_rebroadcasts < 1e-9,
    });

    let c2_7 = get("c2-7");
    claims.push(Claim {
        id: "dilemma-c2",
        statement: "a small fixed threshold collapses on sparse maps (the dilemma)",
        expected: "C=2 RE < 85% on 7x7".into(),
        measured: format!("{:.1}%", c2_7.reachability * 100.0),
        pass: c2_7.reachability < 0.85,
    });
    let c6_7 = get("c6-7");
    claims.push(Claim {
        id: "dilemma-c6",
        statement: "a large fixed threshold saves almost nothing anywhere",
        expected: "C=6 SRB < 5% on 7x7".into(),
        measured: format!("{:.1}%", c6_7.saved_rebroadcasts * 100.0),
        pass: c6_7.saved_rebroadcasts < 0.05,
    });

    let ac_all = ["ac-1", "ac-3", "ac-7", "ac-11"].map(get);
    let ac_min_re = ac_all
        .iter()
        .map(|r| r.reachability)
        .fold(f64::INFINITY, f64::min);
    claims.push(Claim {
        id: "ac-re",
        statement: "AC keeps reachability high on every map density",
        expected: "min RE >= 93%".into(),
        measured: format!("{:.1}%", ac_min_re * 100.0),
        pass: ac_min_re >= 0.93,
    });
    claims.push(Claim {
        id: "ac-srb-dense",
        statement: "AC still saves most rebroadcasts on dense maps",
        expected: "SRB >= 60% on 1x1 and 3x3".into(),
        measured: format!(
            "{:.1}% / {:.1}%",
            get("ac-1").saved_rebroadcasts * 100.0,
            get("ac-3").saved_rebroadcasts * 100.0
        ),
        pass: get("ac-1").saved_rebroadcasts >= 0.6 && get("ac-3").saved_rebroadcasts >= 0.6,
    });
    claims.push(Claim {
        id: "ac-beats-c2",
        statement: "AC clearly beats C=2 reachability on sparse maps",
        expected: "AC - C=2 >= 10 points on 7x7".into(),
        measured: format!(
            "{:.1}% vs {:.1}%",
            get("ac-7").reachability * 100.0,
            c2_7.reachability * 100.0
        ),
        pass: get("ac-7").reachability - c2_7.reachability >= 0.10,
    });

    let a1871_7 = get("a1871-7");
    let al_7 = get("al-7");
    claims.push(Claim {
        id: "al-beats-fixed",
        statement: "AL beats the largest fixed location threshold on sparse maps",
        expected: "AL RE > A=0.1871 RE on 7x7".into(),
        measured: format!(
            "{:.1}% vs {:.1}%",
            al_7.reachability * 100.0,
            a1871_7.reachability * 100.0
        ),
        pass: al_7.reachability > a1871_7.reachability,
    });
    claims.push(Claim {
        id: "al-srb-dense",
        statement: "AL saves like the strictest fixed threshold on dense maps",
        expected: "AL SRB within 5 points of A=0.1871 on 1x1".into(),
        measured: format!(
            "{:.1}% vs {:.1}%",
            get("al-1").saved_rebroadcasts * 100.0,
            get("a1871-1").saved_rebroadcasts * 100.0
        ),
        pass: get("al-1").saved_rebroadcasts >= get("a1871-1").saved_rebroadcasts - 0.05,
    });

    let nc_fresh = get("nc-hi1-9");
    let nc_stale = get("nc-hi30-9");
    claims.push(Claim {
        id: "nc-staleness",
        statement: "long hello intervals cost NC reachability on sparse, fast maps",
        expected: "hi=1s RE - hi=30s RE >= 5 points (9x9, 60 km/h)".into(),
        measured: format!(
            "{:.1}% vs {:.1}%",
            nc_fresh.reachability * 100.0,
            nc_stale.reachability * 100.0
        ),
        pass: nc_fresh.reachability - nc_stale.reachability >= 0.05,
    });
    let nc_dhi = get("nc-dhi-9");
    claims.push(Claim {
        id: "nc-dhi-re",
        statement: "the dynamic hello interval keeps NC reachability high",
        expected: "RE >= 85% on 9x9".into(),
        measured: format!("{:.1}%", nc_dhi.reachability * 100.0),
        pass: nc_dhi.reachability >= 0.85,
    });
    claims.push(Claim {
        id: "nc-best-dense",
        statement: "NC is the strongest saver on the dense map (paper Fig. 13a)",
        expected: "NC SRB >= AC SRB on 1x1".into(),
        measured: format!(
            "{:.1}% vs {:.1}%",
            get("nc-1").saved_rebroadcasts * 100.0,
            get("ac-1").saved_rebroadcasts * 100.0
        ),
        pass: get("nc-1").saved_rebroadcasts >= get("ac-1").saved_rebroadcasts - 0.02,
    });

    // ---- render -----------------------------------------------------------
    let mut table = Table::new(
        "Paper-claim verification",
        vec![
            "id".into(),
            "claim".into(),
            "expected".into(),
            "measured".into(),
            "verdict".into(),
        ],
    );
    for claim in &claims {
        table.row(vec![
            claim.id.to_string(),
            claim.statement.to_string(),
            claim.expected.clone(),
            claim.measured.clone(),
            if claim.pass { "PASS" } else { "FAIL" }.to_string(),
        ]);
    }
    let passed = claims.iter().filter(|c| c.pass).count();
    let mut summary = Table::new("Claim summary", vec!["passed".into(), "total".into()]);
    summary.row(vec![passed.to_string(), claims.len().to_string()]);
    vec![table, summary]
}
