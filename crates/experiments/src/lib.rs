//! # manet-experiments
//!
//! The experiment harness that regenerates every table and figure of the
//! broadcast-storm paper's evaluation (§4). Each `figures::figNN` module
//! owns one figure: it sweeps the paper's parameters, runs the simulation
//! grid (in parallel across CPU cores), and renders text tables plus CSV.
//!
//! Run via the `manet-experiments` binary:
//!
//! ```text
//! manet-experiments all --scale default
//! manet-experiments fig13 --scale full --csv results/
//! ```
//!
//! See `EXPERIMENTS.md` at the repository root for the paper-vs-measured
//! record produced with this harness.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod figures {
    //! One module per reproduced figure.
    pub mod ext_capture;
    pub mod ext_churn;
    pub mod ext_distance;
    pub mod ext_hosts;
    pub mod ext_load;
    pub mod ext_mobility;
    pub mod ext_oracle;
    pub mod fig01;
    pub mod fig02;
    pub mod fig05;
    pub mod fig06;
    pub mod fig07;
    pub mod fig08;
    pub mod fig09;
    pub mod fig10;
    pub mod fig11;
    pub mod fig12;
    pub mod fig13;
}

pub mod claims;
mod metrics_out;
mod runner;
mod table;

pub use manet_sim_engine::DEFAULT_LATENCY_BOUNDS_S;
pub use metrics_out::render_metrics_json;
pub use runner::{
    drain_metrics_capture, enable_metrics_capture, enable_metrics_capture_with_bounds,
    metrics_record, metrics_record_with_bounds, parallel_epochs_override, parallel_map,
    record_metrics, run_averaged, run_grid, set_parallel_epochs_override, set_shards_override,
    set_workers_override, shards_override, workers_override, AveragedReport, MetricsRecord,
    RunMetricsSummary, Scale, BASE_SEED, PAPER_MAPS,
};
pub use table::{pct, secs, Table};

/// A figure generator: takes a [`Scale`], returns rendered tables.
pub type FigureRunner = fn(Scale) -> Vec<Table>;

/// Every figure id the harness knows, with its runner.
pub fn all_figures() -> Vec<(&'static str, FigureRunner)> {
    vec![
        ("fig1", figures::fig01::run),
        ("fig2", figures::fig02::run),
        ("fig5a", figures::fig05::run_a),
        ("fig5b", figures::fig05::run_b),
        ("fig5c", figures::fig05::run_c),
        ("fig5d", figures::fig05::run_d),
        ("fig6", figures::fig06::run),
        ("fig7", figures::fig07::run),
        ("fig8", figures::fig08::run),
        ("fig9", figures::fig09::run),
        ("fig10", figures::fig10::run),
        ("fig11", figures::fig11::run),
        ("fig12", figures::fig12::run),
        ("fig13", figures::fig13::run),
        ("ext-distance", figures::ext_distance::run),
        ("ext-oracle", figures::ext_oracle::run),
        ("ext-capture", figures::ext_capture::run),
        ("ext-mobility", figures::ext_mobility::run),
        ("ext-load", figures::ext_load::run),
        ("ext-hosts", figures::ext_hosts::run),
        ("ext-churn", figures::ext_churn::run),
        ("claims", claims::run),
    ]
}
