//! CLI for the figure-reproduction harness.
//!
//! ```text
//! manet-experiments <figure>... [--scale quick|default|full] [--csv DIR]
//! manet-experiments all [--scale default]
//! manet-experiments --list
//! ```

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use manet_experiments::{all_figures, FigureRunner, Scale};

fn usage() -> &'static str {
    "usage: manet-experiments <figure>... [options]\n\
     \n\
     figures: fig1 fig2 fig5a fig5b fig5c fig5d fig6 fig7 fig8 fig9\n\
     \x20        fig10 fig11 fig12 fig13 ext-distance ext-oracle ext-capture\n\
     \x20        ext-mobility ext-load claims | all\n\
     \n\
     options:\n\
     \x20 --scale quick|default|full   work per data point (default: default)\n\
     \x20                              full = the paper's 10,000 broadcasts\n\
     \x20 --csv DIR                    also write each table as CSV into DIR\n\
     \x20 --list                       list available figures and exit\n"
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Default;
    let mut csv_dir: Option<PathBuf> = None;
    let mut wanted: Vec<String> = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--scale" => {
                let Some(value) = iter.next() else {
                    eprintln!("--scale needs a value\n\n{}", usage());
                    return ExitCode::FAILURE;
                };
                let Some(parsed) = Scale::parse(value) else {
                    eprintln!("unknown scale '{value}'\n\n{}", usage());
                    return ExitCode::FAILURE;
                };
                scale = parsed;
            }
            "--csv" => {
                let Some(value) = iter.next() else {
                    eprintln!("--csv needs a directory\n\n{}", usage());
                    return ExitCode::FAILURE;
                };
                csv_dir = Some(PathBuf::from(value));
            }
            "--list" => {
                for (id, _) in all_figures() {
                    println!("{id}");
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("unknown option '{other}'\n\n{}", usage());
                return ExitCode::FAILURE;
            }
            figure => wanted.push(figure.to_string()),
        }
    }
    if wanted.is_empty() {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    }

    let registry = all_figures();
    let selected: Vec<(&str, FigureRunner)> = if wanted.iter().any(|w| w == "all") {
        registry
    } else {
        let mut selected = Vec::new();
        for want in &wanted {
            match registry.iter().find(|(id, _)| id == want) {
                Some(entry) => selected.push(*entry),
                None => {
                    eprintln!("unknown figure '{want}'\n\n{}", usage());
                    return ExitCode::FAILURE;
                }
            }
        }
        selected
    };

    for (id, runner) in selected {
        let started = Instant::now();
        let tables = runner(scale);
        let elapsed = started.elapsed();
        for (i, table) in tables.iter().enumerate() {
            println!("{}", table.render());
            if let Some(dir) = &csv_dir {
                let stem = if tables.len() == 1 {
                    id.to_string()
                } else {
                    format!("{id}_{}", (b'a' + i as u8) as char)
                };
                match table.write_csv(dir, &stem) {
                    Ok(path) => println!("[csv] {}", path.display()),
                    Err(err) => {
                        eprintln!("failed to write CSV for {id}: {err}");
                        return ExitCode::FAILURE;
                    }
                }
            }
        }
        eprintln!("[{id}] done in {:.1}s", elapsed.as_secs_f64());
    }
    ExitCode::SUCCESS
}
