//! CLI for the figure-reproduction harness.
//!
//! ```text
//! manet-experiments <figure>... [--scale quick|default|full] [--csv DIR]
//! manet-experiments all [--scale default]
//! manet-experiments --list
//! ```

use std::path::PathBuf;
use std::process::ExitCode;
// simlint: allow(wall-clock) — the CLI prints real elapsed time per figure
use std::time::Instant;

use manet_experiments::{
    all_figures, drain_metrics_capture, enable_metrics_capture, render_metrics_json,
    set_parallel_epochs_override, set_shards_override, set_workers_override, FigureRunner,
    MetricsRecord, Scale,
};

fn usage() -> &'static str {
    "usage: manet-experiments <figure>... [options]\n\
     \n\
     figures: fig1 fig2 fig5a fig5b fig5c fig5d fig6 fig7 fig8 fig9\n\
     \x20        fig10 fig11 fig12 fig13 ext-distance ext-oracle ext-capture\n\
     \x20        ext-mobility ext-load ext-hosts ext-churn claims | all\n\
     \n\
     options:\n\
     \x20 --scale quick|default|full   work per data point (default: default)\n\
     \x20                              full = the paper's 10,000 broadcasts\n\
     \x20 --csv DIR                    also write each table as CSV into DIR\n\
     \x20 --figure ID                  select a figure by id; zero-padded ids\n\
     \x20                              normalize (fig05 = fig5 = fig5a-fig5d)\n\
     \x20 --metrics FILE               write per-run counters and histograms\n\
     \x20                              as JSON (schema manet-broadcast-metrics/1)\n\
     \x20 --shards N                   spatial strips per world (default 1);\n\
     \x20                              execution-only: results are bit-identical\n\
     \x20 --parallel-epochs            drain shard queues concurrently in\n\
     \x20                              carrier-sense-bounded epochs; counts are\n\
     \x20                              equivalent but byte-identity is waived\n\
     \x20 --workers N                  pool threads for sharded execution\n\
     \x20                              (default: cores - 1; 0 = inline);\n\
     \x20                              execution-only, never changes results\n\
     \x20 --list                       list available figures and exit\n"
}

/// Normalizes a `--figure` id: `fig` followed by a zero-padded number
/// loses the padding (`fig05` → `fig5`, `fig05a` → `fig5a`). Other ids
/// pass through unchanged.
fn normalize_figure_id(id: &str) -> String {
    match id.strip_prefix("fig") {
        Some(rest) => {
            let digits = rest.len() - rest.trim_start_matches('0').len();
            // Keep one zero if the number *is* zero, and don't touch ids
            // with no digits at all.
            if digits > 0 && rest.chars().next().is_some_and(|c| c.is_ascii_digit()) {
                let trimmed = rest.trim_start_matches('0');
                if trimmed.chars().next().is_some_and(|c| c.is_ascii_digit()) {
                    format!("fig{trimmed}")
                } else {
                    format!("fig0{trimmed}")
                }
            } else {
                id.to_string()
            }
        }
        None => id.to_string(),
    }
}

/// Expands one `--figure` id against the registry: an exact match wins;
/// otherwise the id selects every sub-figure that extends it with a
/// letter suffix (`fig5` → `fig5a` … `fig5d`).
fn expand_figure_id(registry: &[(&'static str, FigureRunner)], id: &str) -> Vec<String> {
    let wanted = normalize_figure_id(id);
    if registry.iter().any(|(rid, _)| *rid == wanted) {
        return vec![wanted];
    }
    registry
        .iter()
        .filter(|(rid, _)| {
            rid.strip_prefix(wanted.as_str()).is_some_and(|rest| {
                !rest.is_empty() && rest.chars().all(|c| c.is_ascii_alphabetic())
            })
        })
        .map(|(rid, _)| (*rid).to_string())
        .collect()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Default;
    let mut csv_dir: Option<PathBuf> = None;
    let mut metrics_path: Option<PathBuf> = None;
    let mut wanted: Vec<String> = Vec::new();
    let mut figure_args: Vec<String> = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--figure" => {
                let Some(value) = iter.next() else {
                    eprintln!("--figure needs an id\n\n{}", usage());
                    return ExitCode::FAILURE;
                };
                figure_args.push(value.clone());
            }
            "--metrics" => {
                let Some(value) = iter.next() else {
                    eprintln!("--metrics needs a file path\n\n{}", usage());
                    return ExitCode::FAILURE;
                };
                metrics_path = Some(PathBuf::from(value));
            }
            "--scale" => {
                let Some(value) = iter.next() else {
                    eprintln!("--scale needs a value\n\n{}", usage());
                    return ExitCode::FAILURE;
                };
                let Some(parsed) = Scale::parse(value) else {
                    eprintln!("unknown scale '{value}'\n\n{}", usage());
                    return ExitCode::FAILURE;
                };
                scale = parsed;
            }
            "--shards" => {
                let Some(value) = iter.next() else {
                    eprintln!("--shards needs a value\n\n{}", usage());
                    return ExitCode::FAILURE;
                };
                match value.parse::<u32>() {
                    Ok(shards) if shards > 0 => set_shards_override(shards),
                    _ => {
                        eprintln!("bad --shards '{value}' (positive integer)\n\n{}", usage());
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--parallel-epochs" => set_parallel_epochs_override(true),
            "--workers" => {
                let Some(value) = iter.next() else {
                    eprintln!("--workers needs a value\n\n{}", usage());
                    return ExitCode::FAILURE;
                };
                match value.parse::<u32>() {
                    Ok(workers) => set_workers_override(Some(workers)),
                    Err(_) => {
                        eprintln!("bad --workers '{value}' (integer)\n\n{}", usage());
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--csv" => {
                let Some(value) = iter.next() else {
                    eprintln!("--csv needs a directory\n\n{}", usage());
                    return ExitCode::FAILURE;
                };
                csv_dir = Some(PathBuf::from(value));
            }
            "--list" => {
                for (id, _) in all_figures() {
                    println!("{id}");
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("unknown option '{other}'\n\n{}", usage());
                return ExitCode::FAILURE;
            }
            figure => wanted.push(figure.to_string()),
        }
    }
    let registry = all_figures();
    for figure_arg in &figure_args {
        let expanded = expand_figure_id(&registry, figure_arg);
        if expanded.is_empty() {
            eprintln!("unknown figure '{figure_arg}'\n\n{}", usage());
            return ExitCode::FAILURE;
        }
        wanted.extend(expanded);
    }
    if wanted.is_empty() {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    }

    let selected: Vec<(&str, FigureRunner)> = if wanted.iter().any(|w| w == "all") {
        registry
    } else {
        let mut selected = Vec::new();
        for want in &wanted {
            match registry.iter().find(|(id, _)| id == want) {
                Some(entry) => selected.push(*entry),
                None => {
                    eprintln!("unknown figure '{want}'\n\n{}", usage());
                    return ExitCode::FAILURE;
                }
            }
        }
        selected
    };

    let scale_name = match scale {
        Scale::Quick => "quick",
        Scale::Default => "default",
        Scale::Full => "full",
    };
    let mut captured: Vec<(String, Vec<MetricsRecord>)> = Vec::new();
    for (id, runner) in selected {
        // simlint: allow(wall-clock) — wall time never feeds the sim, only stderr
        let started = Instant::now();
        if metrics_path.is_some() {
            enable_metrics_capture();
        }
        let tables = runner(scale);
        if metrics_path.is_some() {
            captured.push((id.to_string(), drain_metrics_capture()));
        }
        let elapsed = started.elapsed();
        for (i, table) in tables.iter().enumerate() {
            println!("{}", table.render());
            if let Some(dir) = &csv_dir {
                let stem = if tables.len() == 1 {
                    id.to_string()
                } else {
                    format!("{id}_{}", (b'a' + i as u8) as char)
                };
                match table.write_csv(dir, &stem) {
                    Ok(path) => println!("[csv] {}", path.display()),
                    Err(err) => {
                        eprintln!("failed to write CSV for {id}: {err}");
                        return ExitCode::FAILURE;
                    }
                }
            }
        }
        eprintln!("[{id}] done in {:.1}s", elapsed.as_secs_f64());
    }
    if let Some(path) = &metrics_path {
        let json = render_metrics_json(scale_name, &captured);
        if let Err(err) = std::fs::write(path, json) {
            eprintln!("failed to write metrics to {}: {err}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!("[metrics] {}", path.display());
    }
    ExitCode::SUCCESS
}
