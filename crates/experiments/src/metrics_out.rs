//! The `--metrics` JSON document.
//!
//! Schema `manet-broadcast-metrics/1` (stable; documented in DESIGN.md):
//!
//! ```json
//! {
//!   "schema": "manet-broadcast-metrics/1",
//!   "scale": "quick",
//!   "figures": [
//!     {
//!       "figure": "fig5a",
//!       "runs": [
//!         {
//!           "scheme": "flooding",
//!           "map": "1x1",
//!           "repeats": 1,
//!           "metrics": { "counters": {...}, "gauges": {...}, "histograms": {...} }
//!         }
//!       ]
//!     }
//!   ]
//! }
//! ```
//!
//! Each run's `metrics` object is a [`MetricsRegistry`] snapshot: dotted
//! counter names (`losses.overlap`, `mac.backoff_draws`,
//! `suppression.cancelled`, …) plus the `latency_s` and `backoff_slots`
//! histograms. Keys are emitted in lexicographic order, so the document is
//! byte-stable for a given run set.

use manet_sim_engine::{json_escape, MetricsRegistry};

use crate::runner::MetricsRecord;

/// Builds the per-run registry out of one captured record.
fn registry_for(record: &MetricsRecord) -> MetricsRegistry {
    let mut reg = MetricsRegistry::new();
    let m = &record.metrics;

    reg.set_counter("losses.overlap", m.losses.overlap);
    reg.set_counter("losses.half_duplex", m.losses.half_duplex);
    reg.set_counter("losses.injected", m.losses.injected);
    reg.set_counter("losses.capture", m.losses.capture);
    reg.set_counter("losses.total", m.losses.total());

    reg.set_counter("mac.backoff_draws", m.mac.backoff_draws);
    reg.set_counter("mac.backoff_slots_total", m.mac.backoff_slots_total);
    reg.set_counter("mac.freezes", m.mac.freezes);
    reg.set_counter("mac.deferrals", m.mac.deferrals);
    reg.set_counter("mac.enqueued", m.mac.enqueued);
    reg.set_counter("mac.cancelled", m.mac.cancelled);
    reg.set_counter("mac.max_queue_depth", m.mac.max_queue_depth);

    reg.set_counter("net.hello_sent", m.net.hello_sent);
    reg.set_counter("net.hello_received", m.net.hello_received);
    reg.set_counter("net.neighbor_joins", m.net.neighbor_joins);
    reg.set_counter("net.neighbor_leaves", m.net.neighbor_leaves);

    reg.set_counter("suppression.scheduled", m.suppression.scheduled);
    reg.set_counter(
        "suppression.inhibited_first_hear",
        m.suppression.inhibited_first_hear,
    );
    reg.set_counter("suppression.cancelled", m.suppression.cancelled);
    reg.set_counter(
        "suppression.counter_threshold",
        m.suppression.counter_threshold,
    );
    reg.set_counter(
        "suppression.coverage_threshold",
        m.suppression.coverage_threshold,
    );
    reg.set_counter(
        "suppression.neighbor_coverage",
        m.suppression.neighbor_coverage,
    );
    reg.set_counter("suppression.probabilistic", m.suppression.probabilistic);

    // Scenario counters appear only on scenario (churn/fault) runs, so
    // non-scenario documents stay byte-identical to earlier versions.
    if let Some(sc) = &m.scenario {
        reg.set_counter("scenario.leaves", sc.leaves);
        reg.set_counter("scenario.joins", sc.joins);
        reg.set_counter("scenario.crashes", sc.crashes);
        reg.set_counter("scenario.recoveries", sc.recoveries);
        reg.set_counter("scenario.blackout_drops", sc.blackout_drops);
        reg.set_counter("scenario.partition_drops", sc.partition_drops);
        reg.set_counter("scenario.noise_drops", sc.noise_drops);
        reg.set_counter("scenario.injected_drops", sc.injected_drops());
    }

    reg.set_histogram("latency_s", m.latency_s.clone());
    reg.set_histogram("backoff_slots", m.backoff_slots.clone());
    reg
}

/// Renders the full `--metrics` document for the figures that ran, in run
/// order. `figures` pairs each figure id with the records its runs
/// captured (already sorted by [`drain_metrics_capture`]).
///
/// [`drain_metrics_capture`]: crate::runner::drain_metrics_capture
pub fn render_metrics_json(scale: &str, figures: &[(String, Vec<MetricsRecord>)]) -> String {
    let mut out = String::new();
    out.push_str("{\"schema\":\"manet-broadcast-metrics/1\",\"scale\":\"");
    out.push_str(&json_escape(scale));
    out.push_str("\",\"figures\":[");
    for (i, (figure, records)) in figures.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"figure\":\"");
        out.push_str(&json_escape(figure));
        out.push_str("\",\"runs\":[");
        for (j, record) in records.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str("{\"scheme\":\"");
            out.push_str(&json_escape(&record.scheme));
            out.push_str("\",\"map\":\"");
            out.push_str(&json_escape(&record.map));
            out.push_str("\",\"repeats\":");
            out.push_str(&record.repeats.to_string());
            out.push_str(",\"metrics\":");
            out.push_str(&registry_for(record).to_json());
            out.push('}');
        }
        out.push_str("]}");
    }
    out.push_str("]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::{drain_metrics_capture, enable_metrics_capture, run_averaged};
    use broadcast_core::{SchemeSpec, SimConfig};

    #[test]
    fn document_contains_the_required_keys() {
        let config = SimConfig::builder(3, SchemeSpec::Counter(2))
            .hosts(20)
            .broadcasts(4)
            .seed(11)
            .build();
        enable_metrics_capture();
        let _ = run_averaged(&config, 1);
        let records: Vec<_> = drain_metrics_capture()
            .into_iter()
            .filter(|r| r.scheme == "C=2" && r.map == "3x3")
            .collect();
        assert_eq!(records.len(), 1);
        let json = render_metrics_json("quick", &[("fig5a".to_string(), records)]);

        for key in [
            "\"schema\":\"manet-broadcast-metrics/1\"",
            "\"scale\":\"quick\"",
            "\"figure\":\"fig5a\"",
            "\"scheme\":\"C=2\"",
            "\"map\":\"3x3\"",
            "\"losses.overlap\"",
            "\"losses.half_duplex\"",
            "\"losses.injected\"",
            "\"losses.capture\"",
            "\"suppression.counter_threshold\"",
            "\"mac.backoff_draws\"",
            "\"net.hello_sent\"",
            "\"latency_s\"",
            "\"backoff_slots\"",
        ] {
            assert!(json.contains(key), "document misses {key}: {json}");
        }
        // Brackets and braces balance — a cheap structural sanity check
        // (string values here never contain brackets).
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn empty_figure_list_is_still_valid() {
        let json = render_metrics_json("default", &[]);
        assert_eq!(
            json,
            "{\"schema\":\"manet-broadcast-metrics/1\",\"scale\":\"default\",\"figures\":[]}\n"
        );
    }
}
