//! End-to-end determinism of scenario runs: the committed example script
//! plus a fixed seed must reproduce the simulation bit for bit — run to
//! run, and across the harness's parallel fan-out — and the rendered
//! metrics document must be byte-identical.

use broadcast_core::{ChurnKind, Scenario, SchemeSpec, SimConfig, SimReport, World};
use manet_experiments::{metrics_record, parallel_map, render_metrics_json};
use manet_sim_engine::SimTime;

fn committed_script() -> Scenario {
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../examples/scenarios/churn_quick.txt"
    );
    let text = std::fs::read_to_string(path).expect("committed scenario script exists");
    let scenario = Scenario::parse(&text).expect("script parses");
    scenario
        .validate(scenario.hosts.expect("script declares hosts"))
        .expect("script validates against its own host count");
    scenario
}

fn run_committed(seed: u64) -> SimReport {
    let scenario = committed_script();
    let config = SimConfig::builder(3, SchemeSpec::Counter(3))
        .hosts(scenario.hosts.unwrap())
        .broadcasts(30)
        .scenario(scenario)
        .seed(seed)
        .build();
    World::new(config).run()
}

#[test]
fn committed_scenario_runs_are_byte_identical() {
    let a = run_committed(9);
    let b = run_committed(9);
    // The Debug rendering covers every field of the report, including the
    // per-broadcast outcomes, loss counters, and scenario counts.
    assert_eq!(format!("{a:?}"), format!("{b:?}"));

    // The rendered metrics document is byte-stable too.
    let json_a = render_metrics_json("test", &[("churn".into(), vec![metrics_record(&[a])])]);
    let json_b = render_metrics_json("test", &[("churn".into(), vec![metrics_record(&[b])])]);
    assert_eq!(json_a, json_b);
    assert!(json_a.contains("scenario.noise_drops"));
}

#[test]
fn parallel_fan_out_matches_sequential_runs() {
    let seeds: Vec<u64> = vec![1, 2, 3, 4];
    let sequential: Vec<String> = seeds
        .iter()
        .map(|&s| format!("{:?}", run_committed(s)))
        .collect();
    let fanned: Vec<String> = parallel_map(seeds, |&s| format!("{:?}", run_committed(s)));
    assert_eq!(sequential, fanned);
}

/// The acceptance-scale run: 1000 hosts under churn still satisfy the
/// reachability accounting invariant (delivered ⊆ reachable-at-send-time)
/// and attribute every scripted drop to its own cause.
#[test]
fn thousand_host_churn_holds_reachability_invariant() {
    let mut scenario = Scenario::new("thousand").with_hosts(1_000);
    for i in 0..10u32 {
        let host = i * 97; // spread over the population
        scenario = scenario
            .churn(SimTime::from_secs(1 + u64::from(i)), ChurnKind::Crash, host)
            .churn(
                SimTime::from_secs(4 + u64::from(i)),
                ChurnKind::Recover,
                host,
            );
    }
    scenario = scenario.noise(SimTime::from_secs(2), SimTime::from_secs(6), 0.1);
    let config = SimConfig::builder(5, SchemeSpec::Counter(3))
        .hosts(1_000)
        .broadcasts(8)
        .neighbor_info(broadcast_core::NeighborInfo::Oracle)
        .scenario(scenario)
        .seed(33)
        .build();
    let report = World::new(config).run();
    assert_eq!(report.broadcasts, 8);
    for outcome in &report.per_broadcast {
        assert!(
            outcome.received <= outcome.reachable,
            "delivered ({}) beyond reach at send time ({})",
            outcome.received,
            outcome.reachable,
        );
        assert!(outcome.rebroadcast <= outcome.received);
    }
    let counts = report.scenario.expect("scenario counters");
    assert_eq!(counts.crashes, 10);
    assert_eq!(report.losses.injected, counts.injected_drops());
    assert!(counts.noise_drops > 0, "noise burst over a dense map bites");
}
