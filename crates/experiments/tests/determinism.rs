//! Determinism regression: the experiment runner is a pure function of
//! its arguments. Running the same figures twice with the same seed must
//! produce byte-identical tables and CSV files.
//!
//! This is the end-to-end guarantee the in-tree PRNG and the
//! single-threaded event queue promise; if it breaks, every figure in
//! the paper reproduction becomes unrepeatable.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::Command;

/// Runs the real `manet-experiments` binary and returns its stdout with
/// the machine-specific `[csv] <path>` lines stripped (the CSV *bytes*
/// are compared separately).
fn run_once(csv_dir: &Path) -> String {
    let output = Command::new(env!("CARGO_BIN_EXE_manet-experiments"))
        .args(["fig1", "fig2", "fig6", "--scale", "quick", "--csv"])
        .arg(csv_dir)
        .output()
        .expect("experiment binary runs");
    assert!(
        output.status.success(),
        "runner failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    String::from_utf8(output.stdout)
        .expect("tables are UTF-8")
        .lines()
        .filter(|line| !line.starts_with("[csv]"))
        .collect::<Vec<_>>()
        .join("\n")
}

/// Reads every CSV in a directory into a name -> bytes map.
fn csv_bytes(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut files = BTreeMap::new();
    for entry in std::fs::read_dir(dir).expect("csv dir exists") {
        let path = entry.expect("dir entry").path();
        if path.extension().is_some_and(|ext| ext == "csv") {
            let name = path
                .file_name()
                .expect("file name")
                .to_string_lossy()
                .into_owned();
            files.insert(name, std::fs::read(&path).expect("csv readable"));
        }
    }
    files
}

fn fresh_dir(label: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("manet-determinism-{}-{label}", std::process::id()));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).expect("stale dir removable");
    }
    std::fs::create_dir_all(&dir).expect("temp dir creatable");
    dir
}

#[test]
fn repeated_runs_are_byte_identical() {
    let dir_a = fresh_dir("a");
    let dir_b = fresh_dir("b");

    let stdout_a = run_once(&dir_a);
    let stdout_b = run_once(&dir_b);
    assert!(
        !stdout_a.is_empty(),
        "runner printed no tables; the comparison below would be vacuous"
    );
    assert_eq!(stdout_a, stdout_b, "table output differs between runs");

    let csv_a = csv_bytes(&dir_a);
    let csv_b = csv_bytes(&dir_b);
    assert!(!csv_a.is_empty(), "no CSV files were written");
    assert_eq!(
        csv_a.keys().collect::<Vec<_>>(),
        csv_b.keys().collect::<Vec<_>>(),
        "runs wrote different CSV file sets"
    );
    for (name, bytes_a) in &csv_a {
        assert_eq!(
            Some(bytes_a),
            csv_b.get(name),
            "CSV '{name}' differs between runs"
        );
    }

    std::fs::remove_dir_all(&dir_a).ok();
    std::fs::remove_dir_all(&dir_b).ok();
}
