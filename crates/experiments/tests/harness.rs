//! Smoke tests of the experiment harness: figure registry sanity and the
//! instant (non-simulation) figures.

use manet_experiments::{all_figures, figures, Scale};

#[test]
fn figure_ids_are_unique_and_complete() {
    let ids: Vec<&str> = all_figures().iter().map(|(id, _)| *id).collect();
    let mut deduped = ids.clone();
    deduped.sort_unstable();
    deduped.dedup();
    assert_eq!(deduped.len(), ids.len(), "duplicate figure ids");
    for required in [
        "fig1", "fig2", "fig5a", "fig5b", "fig5c", "fig5d", "fig6", "fig7", "fig8", "fig9",
        "fig10", "fig11", "fig12", "fig13",
    ] {
        assert!(ids.contains(&required), "missing paper figure {required}");
    }
}

#[test]
fn fig6_tabulates_the_recommended_function() {
    let tables = figures::fig06::run(Scale::Quick);
    assert_eq!(tables.len(), 1);
    let rendered = tables[0].render();
    assert!(rendered.contains("linear (recommended)"));
    // n = 4 has the ramp peak C = 5, n = 12 the floor C = 2.
    let csv = tables[0].to_csv();
    let rows: Vec<&str> = csv.lines().collect();
    assert!(rows[4].starts_with("4,") && rows[4].contains(",5,"));
    assert!(rows[12].starts_with("12,2,2,2"));
}

#[test]
fn fig8_tabulates_candidate_area_thresholds() {
    let tables = figures::fig08::run(Scale::Quick);
    let csv = tables[0].to_csv();
    // The ceiling 0.187 appears once n is large.
    assert!(csv.lines().last().expect("non-empty").contains("0.1870"));
    // The paper's named finalists are among the candidates.
    let header = csv.lines().next().expect("non-empty");
    for pair in ["AL(6,12)", "AL(8,12)", "AL(8,10)"] {
        assert!(header.contains(pair), "missing candidate {pair}");
    }
}

#[test]
fn fig1_eac_is_decreasing_at_quick_scale() {
    let tables = figures::fig01::run(Scale::Quick);
    let csv = tables[0].to_csv();
    let values: Vec<f64> = csv
        .lines()
        .skip(1)
        .map(|l| {
            l.split(',')
                .nth(1)
                .expect("two columns")
                .parse()
                .expect("a float")
        })
        .collect();
    assert_eq!(values.len(), 10);
    assert!(
        values[0] > 0.35 && values[0] < 0.47,
        "EAC(1) = {}",
        values[0]
    );
    assert!(
        values.windows(2).all(|w| w[1] <= w[0] + 0.03),
        "EAC must trend down: {values:?}"
    );
}

#[test]
fn fig2_distribution_rows_sum_to_one() {
    let tables = figures::fig02::run(Scale::Quick);
    let csv = tables[0].to_csv();
    for line in csv.lines().skip(1) {
        let total: f64 = line
            .split(',')
            .skip(1)
            .filter_map(|cell| cell.parse::<f64>().ok())
            .sum();
        // Rows report k = 0..=4 only, so the sum is at most 1 and close
        // to 1 for small n where higher k is impossible.
        assert!(total <= 1.0 + 1e-6, "row over 1: {line}");
    }
}
