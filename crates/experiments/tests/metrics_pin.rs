//! Pinned-metrics regression: the fig5a quick-scale metrics JSON must
//! hash to a known constant. `determinism.rs` proves two runs agree with
//! each other; this test proves they agree with *history* — any change
//! to the PRNG, event ordering, propagation model, or metrics encoding
//! shows up as a hash mismatch even if the run is still self-consistent.
//!
//! If the change is intentional (a model fix that legitimately moves the
//! numbers), regenerate the hash with the command in the assert message
//! and update `PINNED_FNV1A64` in the same commit.

use std::path::PathBuf;
use std::process::Command;

/// FNV-1a 64 of the fig05 quick-scale metrics JSON, pinned at the commit
/// that introduced this test.
const PINNED_FNV1A64: u64 = 0xc05cb88f2d2fe4a3;

/// FNV-1a 64-bit: tiny, dependency-free, and stable across platforms.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Runs fig05 at quick scale (optionally sharded) and returns the FNV-1a
/// 64 hash of the metrics JSON it writes.
fn fig05_quick_hash(label: &str, extra_args: &[&str]) -> u64 {
    let dir =
        std::env::temp_dir().join(format!("manet-metrics-pin-{label}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir creatable");
    let metrics: PathBuf = dir.join("fig05-quick-metrics.json");

    let output = Command::new(env!("CARGO_BIN_EXE_manet-experiments"))
        .args(["--figure", "fig05", "--scale", "quick", "--metrics"])
        .arg(&metrics)
        .args(extra_args)
        .output()
        .expect("experiment binary runs");
    assert!(
        output.status.success(),
        "runner failed: {}",
        String::from_utf8_lossy(&output.stderr)
    );

    let bytes = std::fs::read(&metrics).expect("metrics JSON written");
    assert!(!bytes.is_empty(), "metrics JSON is empty");
    let hash = fnv1a64(&bytes);
    std::fs::remove_dir_all(&dir).ok();
    hash
}

#[test]
fn fig05_quick_metrics_hash_is_pinned() {
    let hash = fig05_quick_hash("seq", &[]);
    assert_eq!(
        hash, PINNED_FNV1A64,
        "fig05 quick metrics drifted from the pinned baseline \
         (got {hash:#018x}, pinned {PINNED_FNV1A64:#018x}). If the change \
         is intentional, rerun `manet-experiments --figure fig05 --scale \
         quick --metrics m.json`, recompute FNV-1a 64 over the file, and \
         update PINNED_FNV1A64."
    );
}

#[test]
fn fig05_quick_metrics_hash_is_pinned_at_four_shards() {
    // Sharded execution is a pure execution strategy: the same pinned
    // hash must come out at --shards 4 as sequentially. A mismatch here
    // (with the sequential pin passing) means the shard merge reordered
    // events or perturbed an RNG stream.
    let hash = fig05_quick_hash("sh4", &["--shards", "4"]);
    assert_eq!(
        hash, PINNED_FNV1A64,
        "fig05 quick metrics at --shards 4 diverged from the sequential \
         pin (got {hash:#018x}, pinned {PINNED_FNV1A64:#018x}): sharded \
         execution is no longer bit-identical."
    );
}
