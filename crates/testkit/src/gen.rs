//! The value generator handed to every property body.

use std::collections::BTreeSet;
use std::fmt::Debug;
use std::ops::Range;

use manet_sim_engine::SimRng;

/// A deterministic source of random test inputs.
///
/// Every draw is logged (with the generator call that produced it) so a
/// failing property can print the exact inputs of the offending case.
/// Composite generators such as [`Gen::vec`] log only the final composite
/// value, not every element draw.
#[derive(Debug)]
pub struct Gen {
    rng: SimRng,
    trace: Vec<String>,
    depth: u32,
}

impl Gen {
    /// Creates a generator for one test case.
    pub fn from_seed(seed: u64) -> Gen {
        Gen {
            rng: SimRng::seed_from(seed),
            trace: Vec::new(),
            depth: 0,
        }
    }

    /// The inputs generated so far, most recent last.
    pub fn trace(&self) -> &[String] {
        &self.trace
    }

    fn record<T: Debug>(&mut self, call: &str, value: T) -> T {
        if self.depth == 0 {
            self.trace.push(format!("{call} -> {value:?}"));
        }
        value
    }

    /// Any `u64` (the full 64-bit space, like `any::<u64>()`).
    pub fn u64(&mut self) -> u64 {
        let v = self.rng.next_u64();
        self.record("u64()", v)
    }

    /// Uniform `bool`.
    pub fn bool(&mut self) -> bool {
        let v = self.rng.next_u64() & 1 == 1;
        self.record("bool()", v)
    }

    /// Uniform `u32` in a half-open range.
    pub fn u32_in(&mut self, range: Range<u32>) -> u32 {
        let call = format!("u32_in({range:?})");
        let v = self.rng.gen_range_u32(range);
        self.record(&call, v)
    }

    /// Uniform `u64` in a half-open range.
    pub fn u64_in(&mut self, range: Range<u64>) -> u64 {
        assert!(!range.is_empty(), "empty range");
        let call = format!("u64_in({range:?})");
        let v = self.rng.gen_u64_inclusive(range.start, range.end - 1);
        self.record(&call, v)
    }

    /// Uniform `usize` in a half-open range.
    pub fn usize_in(&mut self, range: Range<usize>) -> usize {
        let call = format!("usize_in({range:?})");
        let v = self.rng.gen_range_usize(range);
        self.record(&call, v)
    }

    /// Uniform `f64` in a half-open range.
    pub fn f64_in(&mut self, range: Range<f64>) -> f64 {
        let call = format!("f64_in({range:?})");
        let v = self.rng.gen_range_f64(range);
        self.record(&call, v)
    }

    /// Uniform `f64` in a closed range (both endpoints reachable).
    pub fn f64_in_incl(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi, "empty range: {lo} > {hi}");
        const DENOM: f64 = ((1u64 << 53) - 1) as f64;
        let unit = (self.rng.next_u64() >> 11) as f64 / DENOM;
        let v = lo + unit * (hi - lo);
        self.record(&format!("f64_in_incl({lo:?}, {hi:?})"), v)
    }

    /// A vector whose length is uniform in `len`, elements drawn by `f`.
    pub fn vec<T: Debug>(&mut self, len: Range<usize>, mut f: impl FnMut(&mut Gen) -> T) -> Vec<T> {
        let call = format!("vec({len:?})");
        self.depth += 1;
        let n = self.rng.gen_range_usize(len);
        let out: Vec<T> = (0..n).map(|_| f(self)).collect();
        self.depth -= 1;
        self.record(&call, out)
    }

    /// A `u32` set whose size is uniform in `len` (capped at the size of
    /// the value range), values uniform in `values`.
    pub fn u32_set(&mut self, values: Range<u32>, len: Range<usize>) -> BTreeSet<u32> {
        let call = format!("u32_set({values:?}, {len:?})");
        self.depth += 1;
        let space = (values.end - values.start) as usize;
        let target = self.rng.gen_range_usize(len).min(space);
        let mut set = BTreeSet::new();
        while set.len() < target {
            set.insert(self.rng.gen_range_u32(values.clone()));
        }
        self.depth -= 1;
        self.record(&call, set)
    }
}
