//! # manet-testkit
//!
//! A minimal, fully deterministic property-testing harness — the in-tree
//! replacement for `proptest` in this zero-dependency workspace.
//!
//! A property is an ordinary test body that draws its inputs from a
//! [`Gen`] and asserts with plain `assert!`/`assert_eq!`. The
//! [`prop_check!`] macro wraps it into a `#[test]` that runs `cases`
//! seeded cases; case seeds are a pure function of the test's name and
//! the case index, so every run of every checkout explores the same
//! inputs — failures reproduce without a regression file.
//!
//! On a failing case the harness reports the case index, the seed, and
//! every generated input, then re-raises the panic:
//!
//! ```text
//! testkit: property 'geometry_properties::intc_is_bounded' failed at case 17/256 (seed 0x3a4c…)
//! testkit:   f64_in(0.0..5000.0) -> 4711.3
//! testkit: rerun just this case with TESTKIT_SEED=0x3a4c…
//! ```
//!
//! Environment overrides:
//!
//! * `TESTKIT_CASES=N` — run `N` cases per property instead of each
//!   property's configured count (like `PROPTEST_CASES`).
//! * `TESTKIT_SEED=0xHEX|decimal` — run exactly one case with that seed,
//!   for reproducing a reported failure.
//!
//! # Examples
//!
//! ```
//! use manet_testkit::prop_check;
//!
//! prop_check! {
//!     /// Addition never loses either operand.
//!     fn sum_bounds(g, cases = 64) {
//!         let a = g.u32_in(0..1000);
//!         let b = g.u32_in(0..1000);
//!         assert!(a + b >= a.max(b));
//!     }
//! }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod gen;

pub use gen::Gen;

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

/// Cases run per property when neither the property nor the environment
/// says otherwise (matches proptest's default).
pub const DEFAULT_CASES: u64 = 256;

/// Runs `cases` seeded cases of `property`, honouring the `TESTKIT_CASES`
/// and `TESTKIT_SEED` environment overrides. Called by [`prop_check!`];
/// not usually invoked directly.
///
/// # Panics
///
/// Re-raises the property's panic after printing the failing case's seed
/// and generated inputs.
pub fn run_cases(name: &str, cases: u64, mut property: impl FnMut(&mut Gen)) {
    if let Some(seed) = env_u64("TESTKIT_SEED") {
        eprintln!("testkit: running single case of '{name}' with TESTKIT_SEED={seed:#x}");
        run_one(name, seed, 0, 1, &mut property);
        return;
    }
    let cases = env_u64("TESTKIT_CASES").unwrap_or(cases).max(1);
    for case in 0..cases {
        let seed = case_seed(name, case);
        run_one(name, seed, case, cases, &mut property);
    }
}

fn run_one(name: &str, seed: u64, case: u64, cases: u64, property: &mut impl FnMut(&mut Gen)) {
    let mut g = Gen::from_seed(seed);
    if let Err(panic) = catch_unwind(AssertUnwindSafe(|| property(&mut g))) {
        eprintln!("testkit: property '{name}' failed at case {case}/{cases} (seed {seed:#x})");
        for line in g.trace() {
            eprintln!("testkit:   {line}");
        }
        eprintln!("testkit: rerun just this case with TESTKIT_SEED={seed:#x}");
        resume_unwind(panic);
    }
}

/// The seed of one case: a pure function of the property name and the
/// case index, stable across runs, checkouts, and platforms.
pub fn case_seed(name: &str, case: u64) -> u64 {
    splitmix64(fnv1a(name.as_bytes()) ^ splitmix64(case))
}

fn env_u64(var: &str) -> Option<u64> {
    let raw = std::env::var(var).ok()?;
    let parsed = if let Some(hex) = raw.strip_prefix("0x").or_else(|| raw.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16)
    } else {
        raw.parse()
    };
    match parsed {
        Ok(v) => Some(v),
        Err(_) => panic!("{var} must be a u64 (decimal or 0x-hex), got '{raw}'"),
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Declares property tests.
///
/// Each `fn name(g) { … }` becomes a `#[test]` running
/// [`DEFAULT_CASES`] seeded cases; `fn name(g, cases = N)` overrides the
/// count. The body receives `g: &mut Gen` to draw inputs from.
///
/// ```
/// use manet_testkit::prop_check;
///
/// prop_check! {
///     /// Reversing twice is the identity.
///     fn double_reverse(g) {
///         let v = g.vec(0..20, |g| g.u32_in(0..100));
///         let mut w = v.clone();
///         w.reverse();
///         w.reverse();
///         assert_eq!(v, w);
///     }
/// }
/// ```
#[macro_export]
macro_rules! prop_check {
    ($($(#[$meta:meta])* fn $name:ident($g:ident $(, cases = $cases:expr)?) $body:block)+) => {
        $(
            $(#[$meta])*
            #[test]
            fn $name() {
                #[allow(unused_mut, unused_assignments)]
                let mut cases: u64 = $crate::DEFAULT_CASES;
                $(cases = $cases;)?
                $crate::run_cases(
                    concat!(module_path!(), "::", stringify!($name)),
                    cases,
                    |$g: &mut $crate::Gen| $body,
                );
            }
        )+
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn case_seeds_are_stable_and_name_sensitive() {
        assert_eq!(case_seed("a::b", 0), case_seed("a::b", 0));
        assert_ne!(case_seed("a::b", 0), case_seed("a::b", 1));
        assert_ne!(case_seed("a::b", 0), case_seed("a::c", 0));
    }

    #[test]
    fn generators_respect_ranges() {
        run_cases("testkit::selfcheck::ranges", 512, |g| {
            let a = g.u32_in(3..17);
            assert!((3..17).contains(&a));
            let b = g.usize_in(0..1);
            assert_eq!(b, 0);
            let c = g.f64_in(-2.0..2.0);
            assert!((-2.0..2.0).contains(&c));
            let d = g.f64_in_incl(0.0, 1.0);
            assert!((0.0..=1.0).contains(&d));
            let e = g.u64_in(10..11);
            assert_eq!(e, 10);
            let v = g.vec(2..5, |g| g.bool());
            assert!((2..5).contains(&v.len()));
            let s = g.u32_set(0..30, 1..10);
            assert!((1..10).contains(&s.len()));
            assert!(s.iter().all(|&x| x < 30));
        });
    }

    #[test]
    fn failing_property_reports_and_panics() {
        let result = catch_unwind(AssertUnwindSafe(|| {
            run_cases("testkit::selfcheck::fails", 16, |g| {
                let x = g.u32_in(0..100);
                assert!(x > 1_000, "always fails");
            });
        }));
        assert!(result.is_err(), "failing property must propagate its panic");
    }

    #[test]
    fn cases_are_deterministic_across_runs() {
        let mut a = Vec::new();
        run_cases("testkit::selfcheck::det", 32, |g| {
            a.push((g.u64(), g.f64_in(0.0..1.0)));
        });
        let mut b = Vec::new();
        run_cases("testkit::selfcheck::det", 32, |g| {
            b.push((g.u64(), g.f64_in(0.0..1.0)));
        });
        assert_eq!(a, b);
    }

    prop_check! {
        /// The macro itself: default and explicit case counts both drive
        /// the body with in-range values.
        fn macro_smoke(g, cases = 8) {
            let n = g.usize_in(1..4);
            assert!((1..4).contains(&n));
        }
    }
}
