//! Property-based tests for the mobility layer.

use manet_geom::Vec2;
use manet_mobility::{
    uniform_placement, Map, Mobility, RandomTurn, RandomTurnParams, RandomWaypoint,
    RandomWaypointParams, Stationary,
};
use manet_sim_engine::{SimDuration, SimRng, SimTime};
use manet_testkit::prop_check;

prop_check! {
    /// Hosts never leave the map regardless of seed, map size, or speed.
    fn random_turn_stays_on_map(g) {
        let seed = g.u64();
        let units = g.u32_in(1..12);
        let kmh = g.f64_in(0.0..120.0);
        let map = Map::square_units(units);
        let mut host = RandomTurn::new(
            map,
            RandomTurnParams::paper(kmh),
            map.bounds().center(),
            SimTime::ZERO,
            SimRng::seed_from(seed),
        );
        for _ in 0..100 {
            let end = host.next_change().unwrap();
            assert!(map.contains(host.position_at(end)));
            host.advance(end);
        }
    }

    /// Displacement over a segment never exceeds max_speed × elapsed time,
    /// and the instantaneous speed never exceeds the configured maximum.
    fn displacement_bounded_by_speed(g) {
        let seed = g.u64();
        let kmh = g.f64_in(1.0..100.0);
        let map = Map::square_units(7);
        let params = RandomTurnParams::paper(kmh);
        let mut host = RandomTurn::new(
            map, params, map.bounds().center(), SimTime::ZERO, SimRng::seed_from(seed),
        );
        let mut seg_start_t = SimTime::ZERO;
        for _ in 0..50 {
            let start_pos = host.position_at(seg_start_t);
            let end_t = host.next_change().unwrap();
            let end_pos = host.position_at(end_t);
            let elapsed = (end_t - seg_start_t).as_secs_f64();
            assert!(start_pos.distance_to(end_pos) <= params.max_speed_mps * elapsed + 1e-6);
            assert!(host.velocity().length() <= params.max_speed_mps + 1e-9);
            host.advance(end_t);
            seg_start_t = end_t;
        }
    }

    /// Uniform placement always lands on the map and is deterministic per seed.
    fn placement_deterministic(g) {
        let seed = g.u64();
        let units = g.u32_in(1..12);
        let map = Map::square_units(units);
        let a = uniform_placement(&map, 50, &mut SimRng::seed_from(seed));
        let b = uniform_placement(&map, 50, &mut SimRng::seed_from(seed));
        assert_eq!(a.len(), b.len());
        for (pa, pb) in a.iter().zip(b.iter()) {
            assert_eq!(*pa, *pb);
            assert!(map.contains(*pa));
        }
    }

    /// Hosts built from the same fork stream replay identically.
    fn same_fork_replays_identically(g) {
        let seed = g.u64();
        let map = Map::square_units(5);
        let make = || {
            RandomTurn::new(
                map,
                RandomTurnParams::paper(50.0),
                map.bounds().center(),
                SimTime::ZERO,
                SimRng::seed_from(seed).fork(9),
            )
        };
        let mut a = make();
        let mut b = make();
        for _ in 0..20 {
            let ta = a.next_change().unwrap();
            let tb = b.next_change().unwrap();
            assert_eq!(ta, tb);
            let (pa, pb): (Vec2, Vec2) = (a.position_at(ta), b.position_at(tb));
            assert_eq!(pa, pb);
            a.advance(ta);
            b.advance(tb);
        }
    }

    /// The exported canonical segment reproduces every model's own
    /// `position_at` bit for bit, at arbitrary in-segment times. The
    /// world's dense position refresh depends on this exactness.
    fn segment_matches_position_at(g, cases = 128) {
        let seed = g.u64();
        let map = Map::square_units(g.u32_in(1..8));
        let bounds = map.bounds();
        let kmh = g.f64_in(0.5..120.0);
        let mut turn = RandomTurn::new(
            map,
            RandomTurnParams::paper(kmh),
            bounds.center(),
            SimTime::ZERO,
            SimRng::seed_from(seed),
        );
        let mut wp = RandomWaypoint::new(
            map,
            RandomWaypointParams::conventional(kmh.max(3.6)),
            bounds.center(),
            SimTime::ZERO,
            SimRng::seed_from(seed ^ 0xABCD),
        );
        let fixed = Stationary::new(Vec2::new(
            g.f64_in(0.0..bounds.width()),
            g.f64_in(0.0..bounds.height()),
        ));
        for _ in 0..30 {
            let turn_end = turn.next_change().unwrap();
            let wp_end = wp.next_change().unwrap();
            // Sample a few instants inside (and slightly past) each
            // segment; equality must be exact, not approximate.
            for frac in [0.0, 0.37, 0.5, 0.99, 1.0, 1.01] {
                let at = |end: SimTime, start: SimTime| {
                    start + SimDuration::from_secs_f64((end - start).as_secs_f64() * frac)
                };
                let tt = at(turn_end, turn.segment().seg_start);
                assert_eq!(turn.segment().position_at(tt, bounds), turn.position_at(tt));
                let tw = at(wp_end, wp.segment().seg_start);
                assert_eq!(wp.segment().position_at(tw, bounds), wp.position_at(tw));
                assert_eq!(
                    fixed.segment().position_at(tt, bounds),
                    fixed.position_at(tt)
                );
            }
            turn.advance(turn_end);
            wp.advance(wp_end);
        }
    }
}
