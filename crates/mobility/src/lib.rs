//! # manet-mobility
//!
//! Host mobility for the MANET broadcast-storm reproduction.
//!
//! Provides the paper's **random-turn** roaming model ([`RandomTurn`]):
//! each host repeatedly draws a uniform direction (0–360°), a uniform
//! speed (0 to the map's maximum), and a uniform interval (1–100 s), then
//! travels in a straight line for that long. Motion is piecewise-linear,
//! so the simulator can evaluate exact positions at any event timestamp.
//!
//! Also provides the paper's square [`Map`]s (1×1 … 11×11 units of the
//! 500 m radio radius), initial [placements](uniform_placement), and a
//! [`Stationary`] model plus deterministic placements for tests.
//!
//! # Examples
//!
//! ```
//! use manet_mobility::{uniform_placement, Map, Mobility, RandomTurn, RandomTurnParams};
//! use manet_sim_engine::{SimRng, SimTime};
//!
//! let map = Map::square_units(5);
//! let mut rng = SimRng::seed_from(42);
//! let starts = uniform_placement(&map, 100, &mut rng);
//! let mut hosts: Vec<RandomTurn> = starts
//!     .into_iter()
//!     .enumerate()
//!     .map(|(i, p)| {
//!         RandomTurn::new(
//!             map,
//!             RandomTurnParams::paper(map.paper_max_speed_kmh()),
//!             p,
//!             SimTime::ZERO,
//!             rng.fork(i as u64),
//!         )
//!     })
//!     .collect();
//! assert!(map.contains(hosts[0].position_at(SimTime::ZERO)));
//! let next = hosts[0].next_change().unwrap();
//! hosts[0].advance(next);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod map;
mod model;
mod placement;
mod random_turn;
mod waypoint;

pub use map::{kmh_to_mps, Map, PAPER_RADIO_RADIUS_M};
pub use model::{Mobility, Segment, Stationary};
pub use placement::{grid_placement, line_placement, uniform_placement};
pub use random_turn::{RandomTurn, RandomTurnParams};
pub use waypoint::{RandomWaypoint, RandomWaypointParams};
