//! Simulation maps, measured in multiples of the radio radius.
//!
//! The paper simulates 100 hosts on square maps of `1×1`, `3×3`, …, `11×11`
//! *units*, where one unit equals the 500 m transmission radius. Smaller
//! maps are denser; an `11×11` map is very sparse.

use manet_geom::{Rect, Vec2};

/// The transmission radius used throughout the paper, in meters.
pub const PAPER_RADIO_RADIUS_M: f64 = 500.0;

/// A square (or rectangular) simulation map.
///
/// # Examples
///
/// ```
/// use manet_mobility::Map;
///
/// let map = Map::square_units(3);           // the paper's 3×3 map
/// assert_eq!(map.bounds().width(), 1500.0); // 3 × 500 m
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Map {
    bounds: Rect,
    units_x: u32,
    units_y: u32,
}

impl Map {
    /// A `units × units` map with the paper's 500 m unit length.
    ///
    /// # Panics
    ///
    /// Panics if `units == 0`.
    pub fn square_units(units: u32) -> Self {
        Map::units(units, units, PAPER_RADIO_RADIUS_M)
    }

    /// A `units_x × units_y` map with a custom unit length in meters.
    ///
    /// # Panics
    ///
    /// Panics if either unit count is zero or `unit_len` is not positive.
    pub fn units(units_x: u32, units_y: u32, unit_len: f64) -> Self {
        assert!(units_x > 0 && units_y > 0, "map must have at least 1 unit");
        Map {
            bounds: Rect::new(f64::from(units_x) * unit_len, f64::from(units_y) * unit_len),
            units_x,
            units_y,
        }
    }

    /// The map's rectangle in meters.
    pub fn bounds(&self) -> Rect {
        self.bounds
    }

    /// Horizontal size in units.
    pub fn units_x(&self) -> u32 {
        self.units_x
    }

    /// Vertical size in units.
    pub fn units_y(&self) -> u32 {
        self.units_y
    }

    /// `true` when `p` lies on the map.
    pub fn contains(&self, p: Vec2) -> bool {
        self.bounds.contains(p)
    }

    /// A label such as `"3x3"` for tables and CSV output.
    pub fn label(&self) -> String {
        format!("{}x{}", self.units_x, self.units_y)
    }

    /// The paper's default maximum roaming speed for this map size, in
    /// km/h: 10 km/h on the 1×1 map, 30 on 3×3, 50 on 5×5, and so on
    /// ("this is to make a host move through a wider range in a larger
    /// map", §4).
    pub fn paper_max_speed_kmh(&self) -> f64 {
        f64::from(self.units_x.max(self.units_y)) * 10.0
    }
}

/// Converts km/h (the paper's speed unit) to m/s (the simulator's).
pub fn kmh_to_mps(kmh: f64) -> f64 {
    kmh * 1_000.0 / 3_600.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_maps_have_expected_sizes() {
        for (units, side) in [(1u32, 500.0), (3, 1500.0), (11, 5500.0)] {
            let m = Map::square_units(units);
            assert_eq!(m.bounds().width(), side);
            assert_eq!(m.bounds().height(), side);
        }
    }

    #[test]
    fn paper_speed_schedule() {
        assert_eq!(Map::square_units(1).paper_max_speed_kmh(), 10.0);
        assert_eq!(Map::square_units(3).paper_max_speed_kmh(), 30.0);
        assert_eq!(Map::square_units(11).paper_max_speed_kmh(), 110.0);
    }

    #[test]
    fn labels() {
        assert_eq!(Map::square_units(5).label(), "5x5");
        assert_eq!(Map::units(2, 4, 100.0).label(), "2x4");
    }

    #[test]
    fn unit_conversion() {
        assert!((kmh_to_mps(36.0) - 10.0).abs() < 1e-12);
        assert!((kmh_to_mps(10.0) - 2.777_78).abs() < 1e-4);
    }

    #[test]
    #[should_panic(expected = "at least 1 unit")]
    fn zero_units_panics() {
        let _ = Map::square_units(0);
    }
}
