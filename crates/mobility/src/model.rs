//! The mobility-model abstraction.
//!
//! A mobility model answers two questions for one host:
//!
//! 1. *Where is the host at time `t`?* — [`Mobility::position_at`], valid
//!    for any `t` within the current motion segment.
//! 2. *When does its motion change next?* — [`Mobility::next_change`], at
//!    which point the driver must call [`Mobility::advance`] so the model
//!    can start its next segment (pick a new direction, bounce off a wall,
//!    …).
//!
//! Keeping motion piecewise-linear lets the simulator query exact positions
//! at arbitrary event timestamps in `O(1)` without integrating trajectories.

use manet_geom::{Rect, Vec2};
use manet_sim_engine::SimTime;

/// One host's motion over its current piecewise-linear segment, in the
/// canonical form every mobility model reduces to: a start point, a
/// velocity, and the segment's time window.
///
/// [`Mobility::segment`] exports this so a driver holding many hosts can
/// evaluate all their positions in one dense pass instead of dispatching
/// through the trait per host — the evaluation reproduces each model's
/// own `position_at` arithmetic operation for operation, so the results
/// are bit-identical.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Segment {
    /// Position at `seg_start` (and the exact result for non-moving
    /// segments).
    pub origin: Vec2,
    /// Straight-line velocity in map units per second; zero while paused.
    pub velocity: Vec2,
    /// When this segment began.
    pub seg_start: SimTime,
    /// When this segment ends ([`Mobility::next_change`]).
    pub seg_end: SimTime,
    /// `true` for moving segments, which interpolate and clamp into the
    /// map; `false` for paused or stationary hosts, which return `origin`
    /// verbatim (exactly what their `position_at` does).
    pub moving: bool,
}

impl Segment {
    /// The segment's position at `t`, clamping `t` into the segment's
    /// window — the same tolerance for same-timestamp queries ordered
    /// before the segment-change event that the models themselves allow.
    #[inline]
    pub fn position_at(&self, t: SimTime, bounds: Rect) -> Vec2 {
        if !self.moving {
            return self.origin;
        }
        let t = t.clamp(self.seg_start, self.seg_end);
        let dt = (t - self.seg_start).as_secs_f64();
        bounds.clamp(self.origin + self.velocity * dt)
    }
}

/// A single host's motion over time.
pub trait Mobility {
    /// The host's position at `t`.
    ///
    /// `t` must lie within the current segment: not before the segment's
    /// start and not after [`next_change`](Self::next_change) (when one is
    /// pending). Implementations may clamp or panic outside that window —
    /// see each implementation's documentation.
    fn position_at(&self, t: SimTime) -> Vec2;

    /// The instant at which the current motion segment ends and
    /// [`advance`](Self::advance) must be called, or `None` for models that
    /// never change (e.g. a stationary host).
    fn next_change(&self) -> Option<SimTime>;

    /// Begins the next motion segment at `now`.
    ///
    /// Called by the simulation driver when `now ==`
    /// [`next_change`](Self::next_change).
    fn advance(&mut self, now: SimTime);

    /// The current motion segment in canonical form (see [`Segment`]).
    /// Valid until the next [`advance`](Self::advance).
    fn segment(&self) -> Segment;
}

/// A host that never moves.
///
/// # Examples
///
/// ```
/// use manet_geom::Vec2;
/// use manet_mobility::{Mobility, Stationary};
/// use manet_sim_engine::SimTime;
///
/// let host = Stationary::new(Vec2::new(100.0, 200.0));
/// assert_eq!(host.position_at(SimTime::from_secs(99)), Vec2::new(100.0, 200.0));
/// assert_eq!(host.next_change(), None);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Stationary {
    position: Vec2,
}

impl Stationary {
    /// Creates a host fixed at `position`.
    pub fn new(position: Vec2) -> Self {
        Stationary { position }
    }
}

impl Mobility for Stationary {
    fn position_at(&self, _t: SimTime) -> Vec2 {
        self.position
    }

    fn next_change(&self) -> Option<SimTime> {
        None
    }

    fn advance(&mut self, _now: SimTime) {}

    fn segment(&self) -> Segment {
        Segment {
            origin: self.position,
            velocity: Vec2::ZERO,
            seg_start: SimTime::ZERO,
            seg_end: SimTime::ZERO,
            moving: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stationary_is_inert() {
        let mut s = Stationary::new(Vec2::new(1.0, 2.0));
        s.advance(SimTime::from_secs(10));
        assert_eq!(s.position_at(SimTime::from_secs(20)), Vec2::new(1.0, 2.0));
        assert_eq!(s.next_change(), None);
    }
}
